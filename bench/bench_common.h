#ifndef SQOD_BENCH_BENCH_COMMON_H_
#define SQOD_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include "src/base/check.h"
#include "src/eval/evaluator.h"
#include "src/sqo/optimizer.h"
#include "src/workload/graphs.h"
#include "src/workload/programs.h"

namespace sqod {

// Evaluates `program` on `edb`, reports work counters on `state`, and
// returns the query answers (to keep the optimizer honest).
inline std::vector<Tuple> RunAndReport(const Program& program,
                                       const Database& edb,
                                       benchmark::State& state,
                                       EvalOptions options = {}) {
  EvalStats stats;
  Result<std::vector<Tuple>> answers =
      EvaluateQuery(program, edb, options, &stats);
  SQOD_CHECK_MSG(answers.ok(), answers.status().message().c_str());
  state.counters["derived"] = static_cast<double>(stats.tuples_derived);
  state.counters["probes"] = static_cast<double>(stats.join_probes);
  state.counters["answers"] = static_cast<double>(answers.value().size());
  return answers.take();
}

// Runs the full SQO pipeline; CHECK-fails on error.
inline SqoReport MustOptimize(const Program& program,
                              const std::vector<Constraint>& ics,
                              SqoOptions options = {}) {
  Result<SqoReport> report = OptimizeProgram(program, ics, options);
  SQOD_CHECK_MSG(report.ok(), report.status().message().c_str());
  return report.take();
}

}  // namespace sqod

#endif  // SQOD_BENCH_BENCH_COMMON_H_
