#ifndef SQOD_BENCH_BENCH_COMMON_H_
#define SQOD_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "src/base/check.h"
#include "src/engine/engine.h"
#include "src/obs/metrics.h"
#include "src/workload/graphs.h"
#include "src/workload/programs.h"

namespace sqod {

// Evaluates `program` on `edb` through an engine session, reports work
// counters on `state`, and returns the query answers (to keep the optimizer
// honest). Counters are sourced from the engine's MetricsRegistry, so they
// match the CLI's --stats-json output key for key.
//
// SQOD_EVAL_MODE=interpret|compile in the environment overrides
// options.mode for every benchmark in the process — the CI bench-smoke job
// runs the suite under both modes and diffs the reports
// (scripts/compare_eval_modes.py). SQOD_EVAL_THREADS=N likewise overrides
// options.threads, so any evaluation bench (E1/E2/E4/...) can be swept
// across intra-query parallelism without a recompile:
//   SQOD_EVAL_THREADS=4 ./bench_e2_pushdown ...
// The work counters are thread-count-invariant by the parallel contract,
// so a sweep's reports diff clean on everything but wall time.
inline std::vector<Tuple> RunAndReport(const Program& program,
                                       const Database& edb,
                                       benchmark::State& state,
                                       EvalOptions options = {}) {
  if (const char* mode = std::getenv("SQOD_EVAL_MODE")) {
    if (std::strcmp(mode, "interpret") == 0) {
      options.mode = EvalMode::kInterpret;
    } else if (std::strcmp(mode, "compile") == 0) {
      options.mode = EvalMode::kCompile;
    }
  }
  if (const char* threads = std::getenv("SQOD_EVAL_THREADS")) {
    const int n = std::atoi(threads);
    if (n >= 1) options.threads = n;
  }
  MetricsRegistry metrics;
  EngineOptions engine_options;
  engine_options.metrics = &metrics;
  Engine engine(engine_options);
  Result<Session> session = engine.Open(program, {});
  SQOD_CHECK_MSG(session.ok(), session.status().message().c_str());
  options.metrics_prefix = "eval";
  Result<std::vector<Tuple>> answers =
      session.value().ExecuteOriginal(edb, options);
  SQOD_CHECK_MSG(answers.ok(), answers.status().message().c_str());
  auto counter = [&](const char* name) {
    return static_cast<double>(metrics.GetCounter(name)->value());
  };
  state.counters["iterations"] = counter("eval/iterations");
  state.counters["derived"] = counter("eval/tuples_derived");
  state.counters["duplicates"] = counter("eval/duplicate_derivations");
  state.counters["probes"] = counter("eval/join_probes");
  state.counters["answers"] = static_cast<double>(answers.value().size());
  if (options.mode == EvalMode::kCompile) {
    // Plan-lowering cost and executed bytecode ops, per iteration like the
    // other counters (zero in interpret mode, so only reported here).
    state.counters["compile_ns"] = counter("eval/compile_ns");
    state.counters["bytecode_ops"] = counter("eval/bytecode_ops");
  }
  return answers.take();
}

// Prepares (optimizes) the program through an engine session; CHECK-fails
// on error. With `state`, attaches a MetricsRegistry and reports per-phase
// wall time ("opt_<phase>_ns") and pipeline size gauges alongside the
// benchmark's own timings.
inline SqoReport MustOptimize(const Program& program,
                              const std::vector<Constraint>& ics,
                              SqoOptions options = {},
                              benchmark::State* state = nullptr) {
  MetricsRegistry metrics;
  EngineOptions engine_options;
  if (state != nullptr) engine_options.metrics = &metrics;
  Engine engine(engine_options);
  Result<Session> session = engine.Open(program, ics);
  SQOD_CHECK_MSG(session.ok(), session.status().message().c_str());
  Result<const PreparedProgram*> prepared =
      session.value().Prepare(options);
  SQOD_CHECK_MSG(prepared.ok(), prepared.status().message().c_str());
  if (state != nullptr) {
    for (const auto& [name, gauge] : metrics.gauges()) {
      // "sqo/phase/adorn_ns" -> counter "opt_adorn_ns".
      constexpr const char* kPhasePrefix = "sqo/phase/";
      if (name.rfind(kPhasePrefix, 0) == 0) {
        state->counters["opt_" + name.substr(std::strlen(kPhasePrefix))] =
            static_cast<double>(gauge->value());
      }
    }
  }
  return prepared.value()->report;
}

}  // namespace sqod

#endif  // SQOD_BENCH_BENCH_COMMON_H_
