// Experiment E10 — FD-based join elimination (the "removing redundant
// joins" use of semantic query optimization from the paper's introduction;
// the FD constraint shape is Theorem 5.5's).
//
// Workload: a wide analytical rule that re-joins an employee relation once
// per extracted attribute — the classic pattern FD rewriting collapses.

#include "bench/bench_common.h"
#include "src/parser/parser.h"
#include "src/sqo/fd.h"

namespace sqod {
namespace {

// profile(I, N, D, S) :- emp(I, N, _, _), emp(I, _, D, _), emp(I, _, _, S).
// With the key FD I -> each attribute, the three emp atoms collapse to one.
Program WideJoinProgram(int copies) {
  Program p;
  Rule r;
  std::vector<Term> head_args{Term::Var("I")};
  for (int c = 0; c < copies; ++c) {
    std::vector<Term> args{Term::Var("I")};
    for (int a = 0; a < copies; ++a) {
      args.push_back(Term::Var("A" + std::to_string(c) + "_" +
                               std::to_string(a)));
    }
    r.body.push_back(Literal::Pos(Atom("emp", std::move(args))));
    head_args.push_back(Term::Var("A" + std::to_string(c) + "_" +
                                  std::to_string(c)));
  }
  r.head = Atom("profile", std::move(head_args));
  p.AddRule(std::move(r));
  p.SetQuery("profile");
  return p;
}

std::vector<FunctionalDependency> KeyFds(int copies) {
  std::vector<FunctionalDependency> fds;
  for (int a = 0; a < copies; ++a) {
    FunctionalDependency fd;
    fd.pred = InternPred("emp");
    fd.determinants = {0};
    fd.determined = a + 1;
    fds.push_back(fd);
  }
  return fds;
}

Database EmpDatabase(int rows, int copies, uint64_t seed) {
  Rng rng(seed);
  std::uniform_int_distribution<int64_t> value(0, 1000000);
  Database db;
  for (int i = 0; i < rows; ++i) {
    Tuple t{Value::Int(i)};
    for (int a = 0; a < copies; ++a) t.push_back(Value::Int(value(rng)));
    db.Insert(InternPred("emp"), std::move(t));
  }
  return db;
}

void BM_E10_SelfJoins(benchmark::State& state) {
  const int copies = static_cast<int>(state.range(0));
  Program p = WideJoinProgram(copies);
  Database edb = EmpDatabase(20000, copies, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

void BM_E10_FdEliminated(benchmark::State& state) {
  const int copies = static_cast<int>(state.range(0));
  Program p = ApplyFdRewriting(WideJoinProgram(copies), KeyFds(copies));
  Database edb = EmpDatabase(20000, copies, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

BENCHMARK(BM_E10_SelfJoins)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E10_FdEliminated)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqod
