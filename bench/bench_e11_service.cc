// Experiment E11 — throughput scaling of the concurrent serving layer.
//
// A batch of identical Figure-1 requests (the Section 4 a/b closure with
// its IC) is pushed through the QueryService at 1, 2, 4, and 8 worker
// threads. The session is parsed and the Levy–Sagiv pipeline run exactly
// once (single-flight prepare, warmed before the timing loop), so the
// measured region is pure serving: admission, dispatch, per-request EDB
// materialization, and evaluation of the rewritten program. items_per_second
// is requests served per second; the scaling claim for EXPERIMENTS.md is
// >1.5x at 4 threads over 1.

#include <benchmark/benchmark.h>

#include <future>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/service/query_service.h"

namespace sqod {
namespace {

// The Figure-1 unit over a chain of `nodes` nodes: b-edges on the first
// half, a-edges on the second, so the IC (no a-edge followed by a b-edge)
// holds and the rewriting's pruned closure is exercised on a database with
// O(nodes^2) path tuples.
std::string MakeFigure1Source(int nodes) {
  std::ostringstream out;
  out << "p(X, Y) :- a(X, Y).\n"
         "p(X, Y) :- b(X, Y).\n"
         "p(X, Y) :- a(X, Z), p(Z, Y).\n"
         "p(X, Y) :- b(X, Z), p(Z, Y).\n"
         ":- a(X, Y), b(Y, Z).\n";
  const int half = nodes / 2;
  for (int i = 0; i < half; ++i) {
    out << "b(" << i << ", " << i + 1 << ").\n";
  }
  for (int i = half; i < nodes - 1; ++i) {
    out << "a(" << i << ", " << i + 1 << ").\n";
  }
  out << "?- p.\n";
  return out.str();
}

void BM_E11_ServeBatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kNodes = 192;
  constexpr int kRequests = 32;
  const std::string source = MakeFigure1Source(kNodes);

  ServiceOptions options;
  options.threads = threads;
  QueryService service(options);

  // Warm the session and the prepared-program cache: the timing loop then
  // measures steady-state serving, not the one-off optimization cost.
  {
    Request warm;
    warm.source = source;
    Response response = service.Call(std::move(warm));
    if (!response.status.ok()) {
      state.SkipWithError(response.status.message().c_str());
      return;
    }
  }

  for (auto _ : state) {
    std::vector<std::future<Response>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
      Request request;
      request.source = source;
      futures.push_back(service.Submit(std::move(request)));
    }
    for (std::future<Response>& future : futures) {
      Response response = future.get();
      if (!response.status.ok()) {
        state.SkipWithError(response.status.message().c_str());
        return;
      }
      benchmark::DoNotOptimize(response.answers.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * kRequests);
  state.counters["threads"] = threads;
  state.counters["pipeline_runs"] = static_cast<double>(
      service.metrics().GetCounter("engine/pipeline_runs")->value());
  // One-off bytecode lowering cost, paid at Prepare time. Stays constant
  // while pipeline_runs stays at 1: the compiled artifact is cached with
  // the prepared program, never re-lowered per request.
  state.counters["compile_ns"] = static_cast<double>(
      service.metrics().GetCounter("eval/compile_ns")->value());
  // Latency tails, not just the mean: the serving claim is about the
  // distribution under contention, and the p99/max gap is where queueing
  // shows up.
  HistogramSnapshot execute =
      service.metrics().GetHistogram("service/execute_ns")->Snapshot();
  state.counters["lat_p50_ns"] = static_cast<double>(execute.p50());
  state.counters["lat_p95_ns"] = static_cast<double>(execute.p95());
  state.counters["lat_p99_ns"] = static_cast<double>(execute.p99());
  state.counters["lat_max_ns"] = static_cast<double>(execute.max);
}

// The two-axis sweep of the serving layer's parallelism: request workers
// (inter-query, range 0) crossed with intra-query eval threads (range 1,
// ServiceOptions::eval_threads — each request's semi-naive iterations run
// hash-partitioned on the engine's shared eval pool). On a 1-CPU host both
// axes are flat; the interesting claim there is the overhead bound, i.e.
// eval_threads > 1 costs only the partition bookkeeping.
void BM_E11_ServeBatchEvalThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int eval_threads = static_cast<int>(state.range(1));
  constexpr int kNodes = 192;
  constexpr int kRequests = 32;
  const std::string source = MakeFigure1Source(kNodes);

  ServiceOptions options;
  options.threads = threads;
  options.eval_threads = eval_threads;
  QueryService service(options);
  {
    Request warm;
    warm.source = source;
    Response response = service.Call(std::move(warm));
    if (!response.status.ok()) {
      state.SkipWithError(response.status.message().c_str());
      return;
    }
  }

  for (auto _ : state) {
    std::vector<std::future<Response>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
      Request request;
      request.source = source;
      futures.push_back(service.Submit(std::move(request)));
    }
    for (std::future<Response>& future : futures) {
      Response response = future.get();
      if (!response.status.ok()) {
        state.SkipWithError(response.status.message().c_str());
        return;
      }
      benchmark::DoNotOptimize(response.answers.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * kRequests);
  state.counters["threads"] = threads;
  state.counters["eval_threads"] = eval_threads;
  state.counters["partition_tasks"] = static_cast<double>(
      service.metrics().GetCounter("eval/partition_tasks")->value());
  HistogramSnapshot execute =
      service.metrics().GetHistogram("service/execute_ns")->Snapshot();
  state.counters["lat_p50_ns"] = static_cast<double>(execute.p50());
  state.counters["lat_p99_ns"] = static_cast<double>(execute.p99());
}

// The baseline a serving layer replaces: every request pays the full cold
// path — parse the unit, run the optimizer pipeline, evaluate. Contrast
// with BM_E11_WarmService below, where the session and prepared program are
// shared single-flight and each request only evaluates. The ratio is the
// amortization win of the serving layer and is independent of core count
// (unlike the thread-scaling numbers above, which need >1 online CPU).
void BM_E11_ColdSessionBaseline(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const std::string source = MakeFigure1Source(nodes);
  for (auto _ : state) {
    Engine engine;
    Session session = engine.Open(source).take();
    const PreparedProgram* prepared = session.Prepare().value();
    Database edb = session.MakeEdb();
    benchmark::DoNotOptimize(session.Execute(*prepared, edb).take());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_E11_WarmService(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const std::string source = MakeFigure1Source(nodes);
  ServiceOptions options;
  options.threads = 1;  // isolate amortization from parallelism
  QueryService service(options);
  {
    Request warm;
    warm.source = source;
    Response response = service.Call(std::move(warm));
    if (!response.status.ok()) {
      state.SkipWithError(response.status.message().c_str());
      return;
    }
  }
  for (auto _ : state) {
    Request request;
    request.source = source;
    Response response = service.Call(std::move(request));
    if (!response.status.ok()) {
      state.SkipWithError(response.status.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(response.answers.size());
  }
  state.SetItemsProcessed(state.iterations());
  HistogramSnapshot execute =
      service.metrics().GetHistogram("service/execute_ns")->Snapshot();
  state.counters["lat_p50_ns"] = static_cast<double>(execute.p50());
  state.counters["lat_p95_ns"] = static_cast<double>(execute.p95());
  state.counters["lat_p99_ns"] = static_cast<double>(execute.p99());
  state.counters["lat_max_ns"] = static_cast<double>(execute.max);
  state.counters["compile_ns"] = static_cast<double>(
      service.metrics().GetCounter("eval/compile_ns")->value());
}

// The same batch submitted with an already-expired deadline: an upper bound
// on the service's per-request overhead (queue round-trip + bookkeeping,
// no evaluation).
void BM_E11_RejectOverhead(benchmark::State& state) {
  constexpr int kRequests = 32;
  const std::string source = MakeFigure1Source(16);
  ServiceOptions options;
  options.threads = 4;
  QueryService service(options);
  for (auto _ : state) {
    std::vector<std::future<Response>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
      Request request;
      request.source = source;
      request.deadline_ms = 0;
      futures.push_back(service.Submit(std::move(request)));
    }
    for (std::future<Response>& future : futures) {
      benchmark::DoNotOptimize(future.get().status.code());
    }
  }
  state.SetItemsProcessed(state.iterations() * kRequests);
}

BENCHMARK(BM_E11_ServeBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E11_ServeBatchEvalThreads)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E11_ColdSessionBaseline)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E11_WarmService)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E11_RejectOverhead)->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqod
