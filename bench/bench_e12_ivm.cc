// Experiment E12 — incremental view maintenance vs recompute-from-scratch.
//
// Two workload families, each swept over database size x churn rate:
//
//  * Join2: q(X,Z) :- a(X,Y), b(Y,Z) over random graphs. Non-recursive,
//    so maintenance runs the counting algorithm (signed delta joins,
//    derivation-count updates).
//
//  * Tc: transitive closure over a forest of short chains with ~25%
//    shortcut edges. Recursive, so maintenance runs DRed; the shortcuts
//    create alternative derivations, making the rederivation phase do real
//    work instead of rubber-stamping every over-deletion.
//
// Every (size, churn) point is measured twice with identical seeds and
// hence identical delta sequences: BM_E12_Maintain* applies each batch
// through the incremental path (counting/DRed, fallback disabled), and
// BM_E12_Recompute* applies the same batches with force_recompute — the
// cost an engine without a maintenance layer pays per batch. The ratio is
// the E12 headline: scripts/compare_ivm.py pairs the entries and gates
// maintain >= 5x recompute at <=1% churn at the largest size (EXPERIMENTS.md).
//
// Batches alternate between a forward delta (delete k live edges, insert k
// fresh ones) and its inverse, so the database stays bounded, every batch
// nets to a real change, and the timing loop measures steady state. The
// churn argument is in per-mille of the edge count: 1 = 0.1%, 10 = 1%,
// 100 = 10%.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/eval/evaluator.h"
#include "src/eval/maintain.h"
#include "src/parser/parser.h"
#include "src/workload/graphs.h"

namespace sqod {
namespace {

constexpr char kJoin2Source[] =
    "q(X, Z) :- a(X, Y), b(Y, Z).\n"
    "?- q.\n";

constexpr char kTcSource[] =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
    "?- tc.\n";

Atom EdgeAtom(const char* pred, int u, int v) {
  return Atom(pred, {Term::Int(u), Term::Int(v)});
}

struct IvmWorkload {
  Program program;
  Database edb;
  FactDelta forward;   // delete k live edges, insert k fresh ones
  FactDelta backward;  // the exact inverse
  int edges = 0;
};

// Picks k spread-out victims from `live` and k fresh insertions from
// `candidates` (first k not already present), and builds the alternating
// forward/backward batches on `pred`.
void BuildChurn(const char* pred, const std::vector<std::pair<int, int>>& live,
                const std::vector<std::pair<int, int>>& candidates,
                const std::set<std::pair<int, int>>& present, int churn,
                IvmWorkload* w) {
  const int n = static_cast<int>(live.size());
  std::set<std::pair<int, int>> taken;
  for (int i = 0; i < churn; ++i) {
    const auto& e = live[static_cast<size_t>(i) * n / churn];
    if (!taken.insert(e).second) continue;
    w->forward.deletes.push_back(EdgeAtom(pred, e.first, e.second));
    w->backward.inserts.push_back(EdgeAtom(pred, e.first, e.second));
  }
  int fresh = 0;
  for (const auto& e : candidates) {
    if (fresh == churn) break;
    if (present.count(e) || !taken.insert(e).second) continue;
    w->forward.inserts.push_back(EdgeAtom(pred, e.first, e.second));
    w->backward.deletes.push_back(EdgeAtom(pred, e.first, e.second));
    ++fresh;
  }
  SQOD_CHECK_MSG(fresh == churn, "not enough fresh churn edges");
}

// Random graphs a and b of 4*nodes edges each; churn lands on `a`.
IvmWorkload MakeJoin2Workload(int nodes, int churn_per_mille) {
  IvmWorkload w;
  Result<Program> program = ParseProgram(kJoin2Source);
  SQOD_CHECK_MSG(program.ok(), program.status().message().c_str());
  w.program = program.take();
  Rng rng(20260808u + 31u * static_cast<unsigned>(nodes) +
          static_cast<unsigned>(churn_per_mille));
  const int edges = 4 * nodes;
  auto random_edges = [&](const char* pred, std::set<std::pair<int, int>>* out,
                          std::vector<std::pair<int, int>>* order) {
    while (static_cast<int>(out->size()) < edges) {
      std::pair<int, int> e(static_cast<int>(rng() % nodes),
                            static_cast<int>(rng() % nodes));
      if (!out->insert(e).second) continue;
      if (order != nullptr) order->push_back(e);
      w.edb.InsertAtom(EdgeAtom(pred, e.first, e.second));
    }
  };
  std::set<std::pair<int, int>> a_set, b_set;
  std::vector<std::pair<int, int>> a_edges;
  random_edges("a", &a_set, &a_edges);
  random_edges("b", &b_set, nullptr);
  w.edges = 2 * edges;
  const int churn = std::max(1, w.edges * churn_per_mille / 1000);
  std::vector<std::pair<int, int>> candidates;
  for (int i = 0; i < churn * 4; ++i) {
    candidates.emplace_back(static_cast<int>(rng() % nodes),
                            static_cast<int>(rng() % nodes));
  }
  BuildChurn("a", a_edges, candidates, a_set, churn, &w);
  return w;
}

// A forest of nodes/8 chains, 8 nodes each, plus a ~25% sprinkle of
// (i, i+2) shortcuts so deleted chain edges are often rederivable. Fresh
// churn edges are (i, i+3) hops inside a random chain. Chains are short
// on purpose: a deleted edge's over-deletion cone is O(chain_len^2)
// tuples while the recompute baseline pays the whole closure, so the
// chain length sets where maintain-vs-recompute lands — the E12 claim is
// about churn locality, not about maintaining dense global closures
// (where DRed's cone approaches the database and the recompute fallback
// is the right call anyway).
IvmWorkload MakeTcWorkload(int nodes, int churn_per_mille) {
  constexpr int kChainLen = 8;
  IvmWorkload w;
  Result<Program> program = ParseProgram(kTcSource);
  SQOD_CHECK_MSG(program.ok(), program.status().message().c_str());
  w.program = program.take();
  Rng rng(20260808u + 37u * static_cast<unsigned>(nodes) +
          static_cast<unsigned>(churn_per_mille));
  const int chains = std::max(1, nodes / kChainLen);
  std::set<std::pair<int, int>> present;
  std::vector<std::pair<int, int>> order;
  auto add = [&](int u, int v) {
    if (!present.insert({u, v}).second) return;
    order.emplace_back(u, v);
    w.edb.InsertAtom(EdgeAtom("edge", u, v));
  };
  for (int c = 0; c < chains; ++c) {
    const int base = c * kChainLen;
    for (int i = 0; i < kChainLen - 1; ++i) {
      add(base + i, base + i + 1);
      if (i < kChainLen - 2 && rng() % 4 == 0) add(base + i, base + i + 2);
    }
  }
  w.edges = static_cast<int>(order.size());
  const int churn = std::max(1, w.edges * churn_per_mille / 1000);
  std::vector<std::pair<int, int>> candidates;
  for (int i = 0; i < churn * 8; ++i) {
    const int base = static_cast<int>(rng() % chains) * kChainLen;
    const int from = static_cast<int>(rng() % (kChainLen - 3));
    candidates.emplace_back(base + from, base + from + 3);
  }
  BuildChurn("edge", order, candidates, present, churn, &w);
  return w;
}

// Materializes the workload's IDB, then applies the alternating churn
// batches once per benchmark iteration — incrementally, or through the
// full-recompute path when `force_recompute` is set.
void RunChurn(benchmark::State& state, const IvmWorkload& w,
              bool force_recompute) {
  MaterializedState ms;
  ms.edb = w.edb;
  ms.edb.EnableVersioning(0);
  Result<MaintenancePlan> plan = BuildMaintenancePlan(w.program);
  SQOD_CHECK_MSG(plan.ok(), plan.status().message().c_str());

  ApplyDeltaOptions options;
  options.force_recompute = force_recompute;
  options.recompute_fraction = 1e9;  // pair stays pure: no silent fallback
  if (const char* mode = std::getenv("SQOD_EVAL_MODE")) {
    if (std::strcmp(mode, "interpret") == 0) {
      options.eval.mode = EvalMode::kInterpret;
    } else if (std::strcmp(mode, "compile") == 0) {
      options.eval.mode = EvalMode::kCompile;
    }
  }

  Evaluator evaluator(w.program, options.eval);
  Result<Database> idb = evaluator.Evaluate(ms.edb);
  SQOD_CHECK_MSG(idb.ok(), idb.status().message().c_str());
  ms.idb = idb.take();
  ms.idb.EnableVersioning(0);
  InitializeDerivationCounts(w.program, plan.value(), &ms);

  MaintainStats totals;
  bool flip = false;
  int64_t batches = 0;
  for (auto _ : state) {
    const FactDelta& delta = flip ? w.backward : w.forward;
    flip = !flip;
    Result<MaintainStats> stats =
        ApplyDeltaToState(w.program, plan.value(), delta, options, &ms);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().message().c_str());
      return;
    }
    totals.Accumulate(stats.value());
    ++batches;
  }
  if (batches == 0) return;
  state.SetItemsProcessed(batches);
  state.counters["edb_edges"] = w.edges;
  state.counters["churn_edges"] =
      static_cast<double>(w.forward.inserts.size() + w.forward.deletes.size());
  state.counters["idb_delta_per_batch"] = static_cast<double>(
      (totals.idb_inserted + totals.idb_deleted) / batches);
  state.counters["over_del_ratio"] = totals.over_deletion_ratio();
  state.counters["recomputed_strata"] =
      static_cast<double>(totals.strata_recomputed);
}

void BM_E12_MaintainJoin2(benchmark::State& state) {
  RunChurn(state,
           MakeJoin2Workload(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1))),
           /*force_recompute=*/false);
}

void BM_E12_RecomputeJoin2(benchmark::State& state) {
  RunChurn(state,
           MakeJoin2Workload(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1))),
           /*force_recompute=*/true);
}

void BM_E12_MaintainTc(benchmark::State& state) {
  RunChurn(state,
           MakeTcWorkload(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1))),
           /*force_recompute=*/false);
}

void BM_E12_RecomputeTc(benchmark::State& state) {
  RunChurn(state,
           MakeTcWorkload(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1))),
           /*force_recompute=*/true);
}

// Args: {nodes, churn per-mille}. 1 = 0.1% churn, 10 = 1%, 100 = 10%.
BENCHMARK(BM_E12_MaintainJoin2)
    ->ArgsProduct({{256, 1024, 4096}, {1, 10, 100}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E12_RecomputeJoin2)
    ->ArgsProduct({{256, 1024, 4096}, {1, 10, 100}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E12_MaintainTc)
    ->ArgsProduct({{256, 1024, 4096}, {1, 10, 100}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E12_RecomputeTc)
    ->ArgsProduct({{256, 1024, 4096}, {1, 10, 100}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqod
