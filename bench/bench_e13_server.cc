// Experiment E13 — the network front-end under multi-connection load.
//
// A real sqo_server (in-process, loopback TCP, ephemeral port) is driven
// by N concurrent client connections, each pipelining a batch of Figure-1
// queries over the wire protocol. The sweep crosses connection count with
// worker-thread count; items_per_second is end-to-end requests per second
// (frame encode -> TCP -> poll thread -> worker pool -> reply frame), and
// the latency counters are the server-side end-to-end distribution
// (tenant/default/latency_ns), where transport queueing shows up as a
// p99/max gap. BM_E13_SerialWire isolates the per-request wire overhead
// (compare against BM_E11_WarmService, the same warm path without TCP);
// BM_E13_DeltaStream measures streamed view maintenance over the wire.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/net/client.h"
#include "src/net/server.h"

namespace sqod {
namespace {

std::string MakeFigure1Source(int nodes) {
  std::ostringstream out;
  out << "p(X, Y) :- a(X, Y).\n"
         "p(X, Y) :- b(X, Y).\n"
         "p(X, Y) :- a(X, Z), p(Z, Y).\n"
         "p(X, Y) :- b(X, Z), p(Z, Y).\n"
         ":- a(X, Y), b(Y, Z).\n";
  const int half = nodes / 2;
  for (int i = 0; i < half; ++i) {
    out << "b(" << i << ", " << i + 1 << ").\n";
  }
  for (int i = half; i < nodes - 1; ++i) {
    out << "a(" << i << ", " << i + 1 << ").\n";
  }
  out << "?- p.\n";
  return out.str();
}

void ReportServerTails(Server& server, benchmark::State& state) {
  HistogramSnapshot latency =
      server.metrics().GetHistogram("tenant/default/latency_ns")->Snapshot();
  state.counters["lat_p50_ns"] = static_cast<double>(latency.p50());
  state.counters["lat_p95_ns"] = static_cast<double>(latency.p95());
  state.counters["lat_p99_ns"] = static_cast<double>(latency.p99());
  state.counters["lat_max_ns"] = static_cast<double>(latency.max);
}

// connections x worker threads; every connection pipelines its whole batch
// before collecting, so the server sees connections*batch requests in
// flight at once.
void BM_E13_MultiConnection(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr int kPerConnection = 16;
  const std::string source = MakeFigure1Source(128);

  ServerOptions options;
  options.service.threads = threads;
  Server server(std::move(options));
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }

  ClientOptions client_options;
  client_options.port = server.port();
  std::vector<Client> clients;
  clients.reserve(static_cast<size_t>(connections));
  for (int i = 0; i < connections; ++i) {
    Result<Client> connected = Client::Connect(client_options);
    if (!connected.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    clients.push_back(std::move(connected.value()));
  }

  // Warm the session and the prepared plan; the loop measures steady-state
  // serving over the wire, not the one-off optimization.
  {
    QueryParams warm;
    warm.source = source;
    Result<Response> response = clients[0].Query(warm);
    if (!response.ok() || !response.value().status.ok()) {
      state.SkipWithError("warmup failed");
      return;
    }
  }

  for (auto _ : state) {
    std::vector<std::thread> drivers;
    drivers.reserve(clients.size());
    std::atomic<int> errors{0};
    for (Client& client : clients) {
      drivers.emplace_back([&client, &errors, &source] {
        QueryParams params;
        params.source = source;
        std::vector<uint64_t> ids;
        ids.reserve(kPerConnection);
        for (int i = 0; i < kPerConnection; ++i) {
          Result<uint64_t> sent = client.SendQuery(params);
          if (!sent.ok()) {
            errors.fetch_add(1);
            return;
          }
          ids.push_back(sent.value());
        }
        for (uint64_t id : ids) {
          Result<ServerMessage> reply = client.WaitFor(id);
          if (!reply.ok() || !reply.value().status.ok()) {
            errors.fetch_add(1);
            return;
          }
          benchmark::DoNotOptimize(reply.value().query.answers.size());
        }
      });
    }
    for (std::thread& driver : drivers) driver.join();
    if (errors.load() != 0) {
      state.SkipWithError("request failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * connections * kPerConnection);
  state.counters["connections"] = connections;
  state.counters["threads"] = threads;
  state.counters["frames_out"] = static_cast<double>(
      server.metrics().GetCounter("net/frames_out")->value());
  ReportServerTails(server, state);
  for (Client& client : clients) client.Close();
  server.Stop();
}

// One connection, strictly serial round trips: the wire protocol's
// per-request overhead on the warm path. BM_E11_WarmService is the same
// request without the network; the delta is framing + TCP + poll-thread
// dispatch + callback delivery.
void BM_E13_SerialWire(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const std::string source = MakeFigure1Source(nodes);
  ServerOptions options;
  options.service.threads = 1;
  Server server(std::move(options));
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  ClientOptions client_options;
  client_options.port = server.port();
  Result<Client> connected = Client::Connect(client_options);
  if (!connected.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  Client& client = connected.value();
  QueryParams params;
  params.source = source;
  if (!client.Query(params).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (auto _ : state) {
    Result<Response> response = client.Query(params);
    if (!response.ok() || !response.value().status.ok()) {
      state.SkipWithError("request failed");
      return;
    }
    benchmark::DoNotOptimize(response.value().answers.size());
  }
  state.SetItemsProcessed(state.iterations());
  ReportServerTails(server, state);
  client.Close();
  server.Stop();
}

// Streamed view maintenance over the wire: a named session, then a long
// alternating insert/delete delta stream against its materialized view.
// Every reply carries the advanced snapshot version; items are batches.
void BM_E13_DeltaStream(benchmark::State& state) {
  const std::string source = MakeFigure1Source(64);
  ServerOptions options;
  options.service.threads = 1;
  Server server(std::move(options));
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  ClientOptions client_options;
  client_options.port = server.port();
  Result<Client> connected = Client::Connect(client_options);
  if (!connected.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  Client& client = connected.value();
  Result<Response> loaded = client.LoadProgram("view", source);
  if (!loaded.ok() || !loaded.value().status.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  // Materialize the view before timing.
  QueryParams params;
  params.session = "view";
  if (!client.Query(params).ok()) {
    state.SkipWithError("materialize failed");
    return;
  }
  int64_t version = 0;
  bool insert = true;
  for (auto _ : state) {
    // One fresh b-edge appended to the chain head, then removed again the
    // next batch: bounded state, every batch touches the fixpoint.
    Result<DeltaResponse> response =
        insert ? client.ApplyDelta("view", {"b(1000, 0)"}, {})
               : client.ApplyDelta("view", {}, {"b(1000, 0)"});
    insert = !insert;
    if (!response.ok() || !response.value().status.ok()) {
      state.SkipWithError("delta failed");
      return;
    }
    if (response.value().snapshot_version <= version) {
      state.SkipWithError("snapshot version did not advance");
      return;
    }
    version = response.value().snapshot_version;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["final_version"] = static_cast<double>(version);
  client.Close();
  server.Stop();
}

BENCHMARK(BM_E13_MultiConnection)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E13_SerialWire)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E13_DeltaStream)->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqod
