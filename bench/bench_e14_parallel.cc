// Experiment E14 — intra-query parallel evaluation (EvalOptions::threads).
//
// Semi-naive iterations hash-partition each compiled plan's first join
// level P ways and run the (plan, partition) tasks on a shared executor,
// merging per-task scratch at the iteration barrier (docs/evaluator.md,
// "Parallel evaluation"). Two claims to measure:
//
//   (a) threads = 1 is the serial code path untouched: its wall time must
//       match the pre-parallelism baseline within noise (the zero-regression
//       gate for this subsystem), and
//   (b) the partition overhead — task creation, scratch databases, barrier
//       merge — is bounded: on a single online CPU threads = P > 1 may not
//       cost more than a modest constant factor, and on a multi-core host
//       the same sweep shows the speedup.
//
// The work counters (derived/probes/duplicates) are thread-count-invariant
// by contract, so the sweep's reports diff clean on everything but wall
// time and the parallel-machinery counters (partition_tasks, skew).

#include "bench/bench_common.h"

namespace sqod {
namespace {

Database MakeDb(int nodes, int threshold, uint64_t seed) {
  Rng rng(seed);
  GoodPathConfig config;
  config.nodes = nodes;
  config.edges = nodes * 3;
  config.num_start = 25;
  config.num_end = 25;
  config.threshold = threshold;
  return MakeGoodPathWorkload(config, &rng);
}

// Reports the parallel-machinery counters alongside the work counters.
std::vector<Tuple> RunParallel(const Program& program, const Database& edb,
                               benchmark::State& state, int threads) {
  EvalOptions options;
  options.threads = threads;
  ParallelEvalStats pstats;
  options.parallel_stats = &pstats;
  std::vector<Tuple> answers = RunAndReport(program, edb, state, options);
  state.counters["threads"] = threads;
  state.counters["partition_tasks"] =
      static_cast<double>(pstats.partition_tasks);
  state.counters["parallel_iters"] =
      static_cast<double>(pstats.parallel_iterations);
  state.counters["skew_max_ns"] = static_cast<double>(pstats.skew_max_ns);
  return answers;
}

// Thread sweep over the E2-size GoodPath closure (linear recursion plus
// bound-key joins; the scan_probe_emit kernel's home turf).
void BM_E14_GoodPath_Threads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kNodes = 1000;
  Program p = MakeGoodPathProgram();
  Database edb = MakeDb(kNodes, kNodes / 2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunParallel(p, edb, state, threads));
  }
}

// The same sweep over the k-colored transitive closure (the E4 family):
// several mutually recursive rules per stratum means more plans per
// iteration, hence more partition tasks per barrier — the shape where
// parallelism has the most to grab and the merge the most to reconcile.
void BM_E14_ColoredClosure_Threads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(20260808);
  ColoredClosure workload = MakeColoredClosure(/*colors=*/3, /*num_ics=*/0,
                                               &rng);
  Database edb = MakeColoredEdges(/*colors=*/3, /*nodes=*/150, /*edges=*/600,
                                  workload.ics, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunParallel(workload.program, edb, state, threads));
  }
}

// Overhead floor: a workload too small to benefit (3-node chain) makes
// the per-task fixed costs — scratch setup, barrier, merge — the entire
// threads > 1 delta.
void BM_E14_PartitionOverhead(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kNodes = 48;
  Program p = MakeGoodPathProgram();
  Database edb = MakeDb(kNodes, kNodes / 2, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunParallel(p, edb, state, threads));
  }
}

BENCHMARK(BM_E14_GoodPath_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E14_ColoredClosure_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E14_PartitionOverhead)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqod
