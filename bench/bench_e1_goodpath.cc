// Experiment E1 — Example 3.1 of the paper.
//
// Program: goodPath over a recursive path closure.
// IC:      :- startPoint(X), endPoint(Y), Y <= X.
// The rewriting attaches the residue-derived selection Y > X to the
// goodPath rule. The paper's claim: "by applying the selection Y > X to
// path(X, Y), we can reduce the cost of evaluating rule r3". We sweep the
// database size and report wall time plus work counters for the original
// and the rewritten program.

#include "bench/bench_common.h"

namespace sqod {
namespace {

Database MakeDb(int nodes, uint64_t seed) {
  Rng rng(seed);
  // Generous start/end sets so that the goodPath join (rule r3, the one the
  // residue Y > X filters) is a visible share of the total work.
  return MakeStartBeforeEndWorkload(nodes, nodes * 3, /*num_start=*/nodes / 8,
                                    /*num_end=*/nodes / 8, &rng);
}

void BM_E1_Original(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Program p = MakeGoodPathProgram();
  Database edb = MakeDb(nodes, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

void BM_E1_Rewritten(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Program p = MakeGoodPathProgram();
  SqoReport report = MustOptimize(p, {MakeStartBeforeEndIc()});
  Database edb = MakeDb(nodes, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(report.rewritten, edb, state));
  }
}

void BM_E1_OptimizationCost(benchmark::State& state) {
  Program p = MakeGoodPathProgram();
  std::vector<Constraint> ics{MakeStartBeforeEndIc()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustOptimize(p, ics));
  }
}

BENCHMARK(BM_E1_Original)->Arg(125)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E1_Rewritten)->Arg(125)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E1_OptimizationCost)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqod
