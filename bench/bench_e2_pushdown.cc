// Experiment E2 — the Section 3 headline rewriting (ICs (1) and (2)).
//
//   :- startPoint(X), step(X, Y), X < threshold.
//   :- step(X, Y), X >= Y.
//
// The rewritten program is exactly the paper's r1'/r2'/r3': path
// exploration is confined to X >= threshold, skipping every path rooted in
// the sub-threshold region. We sweep (a) the database size at a fixed
// skippable fraction and (b) the skippable fraction at a fixed size; the
// win should grow with the skippable fraction.

#include "bench/bench_common.h"

namespace sqod {
namespace {

Database MakeDb(int nodes, int threshold, uint64_t seed) {
  Rng rng(seed);
  GoodPathConfig config;
  config.nodes = nodes;
  config.edges = nodes * 3;
  config.num_start = 25;
  config.num_end = 25;
  config.threshold = threshold;
  return MakeGoodPathWorkload(config, &rng);
}

// Size sweep: half of the nodes are below the threshold.
void BM_E2_Original_Size(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Program p = MakeGoodPathProgram();
  Database edb = MakeDb(nodes, nodes / 2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

void BM_E2_Rewritten_Size(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Program p = MakeGoodPathProgram();
  SqoReport report = MustOptimize(p, MakeMonotoneIcs(nodes / 2));
  Database edb = MakeDb(nodes, nodes / 2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(report.rewritten, edb, state));
  }
}

// Fraction sweep at 1000 nodes: threshold = range(0) percent of the nodes.
void BM_E2_Original_Fraction(benchmark::State& state) {
  const int nodes = 1000;
  const int threshold = nodes * static_cast<int>(state.range(0)) / 100;
  Program p = MakeGoodPathProgram();
  Database edb = MakeDb(nodes, threshold, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

void BM_E2_Rewritten_Fraction(benchmark::State& state) {
  const int nodes = 1000;
  const int threshold = nodes * static_cast<int>(state.range(0)) / 100;
  Program p = MakeGoodPathProgram();
  SqoReport report = MustOptimize(p, MakeMonotoneIcs(threshold));
  Database edb = MakeDb(nodes, threshold, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(report.rewritten, edb, state));
  }
}

BENCHMARK(BM_E2_Original_Size)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2_Rewritten_Size)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2_Original_Fraction)->Arg(0)->Arg(30)->Arg(60)->Arg(90)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2_Rewritten_Fraction)->Arg(0)->Arg(30)->Arg(60)->Arg(90)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqod
