// Experiment E3 — the Section 4 running example and Figure 1.
//
// Program: p = transitive closure of a- and b-edges.
// IC:      :- a(X, Y), b(Y, Z).   (an a-edge may not be followed by a b-edge)
//
// The rewritten program is the paper's s1..s6: three adorned predicates
// (a-closure, b-closure, b-then-a paths), never attempting to extend an
// a-path with a b-edge ("saving the effort involved in performing joins
// that are guaranteed to be empty"). This binary also prints the query
// tree, regenerating Figure 1 (see the --print_tree run in EXPERIMENTS.md,
// and the figure1 counters here: 3 classes, 6 rule nodes).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cq/ic_check.h"
#include "src/parser/parser.h"

namespace sqod {
namespace {

Database MakeAbDb(int nodes, int edges, uint64_t seed) {
  Rng rng(seed);
  Constraint e_ic = ParseConstraint(":- e0(X, Y), e1(Y, Z).").take();
  Database colored = MakeColoredEdges(2, nodes, edges, {e_ic}, &rng);
  Database ab;
  for (const auto& [pred, rel] : colored.relations()) {
    PredId target = PredName(pred) == "e0" ? InternPred("a") : InternPred("b");
    for (TupleRef t : rel.rows()) ab.Insert(target, t);
  }
  return ab;
}

void BM_E3_Original(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Program p = MakeAbClosureProgram();
  Database edb = MakeAbDb(nodes, nodes * 2, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

void BM_E3_Rewritten(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Program p = MakeAbClosureProgram();
  SqoReport report = MustOptimize(p, {MakeAbIc()});
  Database edb = MakeAbDb(nodes, nodes * 2, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(report.rewritten, edb, state));
  }
}

// Scan-join variants: with nested-loop joins (the engine model of the
// paper's era) the original joins every a-edge against the *whole* p
// relation, while the rewritten program only scans the pure-a partition —
// the "joins that are guaranteed to be empty" savings become visible.
void BM_E3_OriginalScan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Program p = MakeAbClosureProgram();
  Database edb = MakeAbDb(nodes, nodes * 2, 13);
  EvalOptions options;
  options.use_indexes = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state, options));
  }
}

void BM_E3_RewrittenScan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Program p = MakeAbClosureProgram();
  SqoReport report = MustOptimize(p, {MakeAbIc()});
  Database edb = MakeAbDb(nodes, nodes * 2, 13);
  EvalOptions options;
  options.use_indexes = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(report.rewritten, edb, state,
                                          options));
  }
}

// The Figure 1 construction itself: adornments + query tree.
void BM_E3_QueryTreeConstruction(benchmark::State& state) {
  Program p = MakeAbClosureProgram();
  std::vector<Constraint> ics{MakeAbIc()};
  SqoReport last;
  for (auto _ : state) {
    last = MustOptimize(p, ics);
    benchmark::DoNotOptimize(last);
  }
  state.counters["adorned_preds"] = last.adorned_predicates;
  state.counters["adorned_rules"] = last.adorned_rules;
  state.counters["tree_classes"] = last.tree_classes;
}

BENCHMARK(BM_E3_Original)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E3_Rewritten)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E3_OriginalScan)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E3_RewrittenScan)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E3_QueryTreeConstruction)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqod

// Prints the reproduced Figure 1 before the benchmark table.
int main(int argc, char** argv) {
  {
    using namespace sqod;
    SqoOptions fig_options;
    fig_options.capture_dumps = true;
    SqoReport report =
        MustOptimize(MakeAbClosureProgram(), {MakeAbIc()}, fig_options);
    std::printf("=== Figure 1: the final query tree ===\n%s\n",
                report.tree_dump.c_str());
    std::printf("=== Rewritten program (the paper's s1..s6) ===\n%s\n",
                report.rewritten.ToString().c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
