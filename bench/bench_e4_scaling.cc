// Experiment E4 — Theorem 5.1's complexity shape.
//
// Satisfiability (and the full rewriting) via the query-tree construction
// has doubly exponential worst-case cost. We sweep the number of
// composition ICs over a k-colored closure program and report the growth of
// the adornment sets, the adorned rule count, and wall time. The shape to
// observe: super-polynomial growth in the number of ICs / colors.

#include "bench/bench_common.h"

namespace sqod {
namespace {

void BM_E4_AdornmentGrowthWithIcs(benchmark::State& state) {
  const int colors = 3;
  const int num_ics = static_cast<int>(state.range(0));
  Rng rng(1000 + num_ics);
  ColoredClosure cc = MakeColoredClosure(colors, num_ics, &rng);
  SqoOptions options;
  options.adorn.max_adorned_preds = 100000;
  options.adorn.max_adorned_rules = 1000000;
  options.tree.max_classes = 200000;
  SqoReport last;
  for (auto _ : state) {
    last = MustOptimize(cc.program, cc.ics, options, &state);
    benchmark::DoNotOptimize(last);
  }
  state.counters["adorned_preds"] = last.adorned_predicates;
  state.counters["adorned_rules"] = last.adorned_rules;
  state.counters["tree_classes"] = last.tree_classes;
}

void BM_E4_AdornmentGrowthWithColors(benchmark::State& state) {
  const int colors = static_cast<int>(state.range(0));
  // One forbidden composition per color pair (i, i+1 mod colors).
  Rng rng(77);
  ColoredClosure cc = MakeColoredClosure(colors, colors, &rng);
  SqoOptions options;
  options.adorn.max_adorned_preds = 100000;
  options.adorn.max_adorned_rules = 1000000;
  options.tree.max_classes = 200000;
  SqoReport last;
  for (auto _ : state) {
    last = MustOptimize(cc.program, cc.ics, options, &state);
    benchmark::DoNotOptimize(last);
  }
  state.counters["adorned_preds"] = last.adorned_predicates;
  state.counters["adorned_rules"] = last.adorned_rules;
}

// Wider ICs (3 atoms) stress the per-IC mapping enumeration.
void BM_E4_WideIc(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  Program p = MakeAbClosureProgram();
  // IC: a chain of `width` alternating edges is forbidden.
  Constraint ic;
  for (int i = 0; i < width; ++i) {
    const char* pred = (i % 2 == 0) ? "a" : "b";
    ic.body.push_back(Literal::Pos(
        Atom(pred, {Term::Var("V" + std::to_string(i)),
                    Term::Var("V" + std::to_string(i + 1))})));
  }
  SqoOptions options;
  options.adorn.max_adorned_preds = 100000;
  options.adorn.max_adorned_rules = 1000000;
  options.tree.max_classes = 200000;
  SqoReport last;
  for (auto _ : state) {
    last = MustOptimize(p, {ic}, options, &state);
    benchmark::DoNotOptimize(last);
  }
  state.counters["adorned_preds"] = last.adorned_predicates;
  state.counters["adorned_rules"] = last.adorned_rules;
}

BENCHMARK(BM_E4_AdornmentGrowthWithIcs)->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E4_AdornmentGrowthWithColors)->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E4_WideIc)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqod
