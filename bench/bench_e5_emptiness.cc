// Experiment E5 — Proposition 5.2 / Theorem 5.2.
//
// Program emptiness reduces to the initialization rules only (NP-complete
// for plain ICs) and is therefore *much* cheaper than full query
// satisfiability (doubly exponential, Theorem 5.1). We measure both
// procedures on the same inputs; the gap is the point.

#include "bench/bench_common.h"
#include "src/sqo/satisfiability.h"

namespace sqod {
namespace {

void BM_E5_Emptiness(benchmark::State& state) {
  const int colors = static_cast<int>(state.range(0));
  Rng rng(55);
  ColoredClosure cc = MakeColoredClosure(colors, colors, &rng);
  for (auto _ : state) {
    Result<bool> empty = ProgramEmpty(cc.program, cc.ics);
    SQOD_CHECK(empty.ok());
    benchmark::DoNotOptimize(empty.value());
  }
}

void BM_E5_FullSatisfiability(benchmark::State& state) {
  const int colors = static_cast<int>(state.range(0));
  Rng rng(55);
  ColoredClosure cc = MakeColoredClosure(colors, colors, &rng);
  SqoOptions options;
  options.adorn.max_adorned_preds = 100000;
  options.adorn.max_adorned_rules = 1000000;
  options.tree.max_classes = 200000;
  for (auto _ : state) {
    Result<bool> sat = QuerySatisfiable(cc.program, cc.ics, options);
    SQOD_CHECK(sat.ok());
    benchmark::DoNotOptimize(sat.value());
  }
}

// Emptiness with order ICs (the Pi2P case of Theorem 5.2(3)): init-rule
// bodies with order atoms against {theta}-ICs, decided by the dense-order
// clause solver.
void BM_E5_OrderEmptiness(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  // q :- e(X0,X1), ..., e(Xk-1,Xk), X0 < X1 < ... < Xk, with ICs that
  // forbid ascending edges above each step.
  Program p;
  Rule r;
  r.head = Atom("q", {Term::Var("X0")});
  std::vector<Constraint> ics;
  for (int i = 0; i < chain; ++i) {
    Term a = Term::Var("X" + std::to_string(i));
    Term b = Term::Var("X" + std::to_string(i + 1));
    r.body.push_back(Literal::Pos(Atom("e", {a, b})));
    r.comparisons.push_back(Comparison(a, CmpOp::kLt, b));
    Constraint ic;
    ic.body.push_back(Literal::Pos(Atom("e", {Term::Var("A"), Term::Var("B")})));
    ic.comparisons.push_back(
        Comparison(Term::Var("A"), CmpOp::kGe, Term::Int(100 + i)));
    ics.push_back(std::move(ic));
  }
  p.AddRule(std::move(r));
  p.SetQuery("q");
  for (auto _ : state) {
    Result<bool> empty = ProgramEmpty(p, ics);
    SQOD_CHECK(empty.ok());
    benchmark::DoNotOptimize(empty.value());
  }
}

BENCHMARK(BM_E5_Emptiness)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E5_FullSatisfiability)->DenseRange(1, 4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E5_OrderEmptiness)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqod
