// Experiment E6 — Proposition 5.1: containment of a datalog program in a
// union of conjunctive queries, decided through the satisfiability
// reduction (add a marked answer predicate, turn each disjunct into an IC).
// We time contained and non-contained instances as the UCQ grows, plus the
// plain CQ/UCQ containment substrate.

#include "bench/bench_common.h"
#include "src/parser/parser.h"
#include "src/sqo/containment.h"

namespace sqod {
namespace {

Program TransitiveClosure() {
  return ParseProgram(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    ?- tc.
  )").take();
}

// The union of paths of length 1..k.
UnionOfCqs BoundedPaths(int k) {
  UnionOfCqs ucq;
  for (int len = 1; len <= k; ++len) {
    Rule q;
    q.head = Atom("tc", {Term::Var("X0"), Term::Var("X" + std::to_string(len))});
    for (int i = 0; i < len; ++i) {
      q.body.push_back(Literal::Pos(
          Atom("e", {Term::Var("X" + std::to_string(i)),
                     Term::Var("X" + std::to_string(i + 1))})));
    }
    ucq.push_back(std::move(q));
  }
  return ucq;
}

// Non-contained family: tc is never contained in bounded paths.
void BM_E6_NotContained(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Program p = TransitiveClosure();
  UnionOfCqs ucq = BoundedPaths(k);
  SqoOptions options;
  options.adorn.max_adorned_preds = 100000;
  options.adorn.max_adorned_rules = 1000000;
  options.tree.max_classes = 200000;
  for (auto _ : state) {
    Result<bool> contained = DatalogContainedInUcq(p, ucq, options);
    SQOD_CHECK(contained.ok());
    SQOD_CHECK(!contained.value());
    benchmark::DoNotOptimize(contained.value());
  }
}

// Contained family: a k-bounded program against k-bounded paths.
void BM_E6_Contained(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Program p;
  for (int len = 1; len <= k; ++len) {
    Rule r;
    r.head = Atom("tc", {Term::Var("X0"), Term::Var("X" + std::to_string(len))});
    for (int i = 0; i < len; ++i) {
      r.body.push_back(Literal::Pos(
          Atom("e", {Term::Var("X" + std::to_string(i)),
                     Term::Var("X" + std::to_string(i + 1))})));
    }
    p.AddRule(std::move(r));
  }
  p.SetQuery("tc");
  UnionOfCqs ucq = BoundedPaths(k);
  SqoOptions options;
  options.adorn.max_adorned_preds = 100000;
  options.adorn.max_adorned_rules = 1000000;
  options.tree.max_classes = 200000;
  for (auto _ : state) {
    Result<bool> contained = DatalogContainedInUcq(p, ucq, options);
    SQOD_CHECK(contained.ok());
    SQOD_CHECK(contained.value());
    benchmark::DoNotOptimize(contained.value());
  }
}

// Substrate: plain CQ containment (the classic NP test) as query size grows.
void BM_E6_CqContainment(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  Rule q1;
  q1.head = Atom("q", {Term::Var("X0")});
  for (int i = 0; i < len; ++i) {
    q1.body.push_back(Literal::Pos(
        Atom("e", {Term::Var("X" + std::to_string(i)),
                   Term::Var("X" + std::to_string(i + 1))})));
  }
  Rule q2 = ParseRule("q(X) :- e(X, Y), e(Y, Z).").take();
  for (auto _ : state) {
    Result<bool> c = CqContained(q1, q2);
    SQOD_CHECK(c.ok());
    benchmark::DoNotOptimize(c.value());
  }
}

// Substrate: Klug's test with order atoms (linearization enumeration).
void BM_E6_OrderContainment(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  Rule q1;
  q1.head = Atom("q", {Term::Var("X0"), Term::Var("X" + std::to_string(len))});
  for (int i = 0; i < len; ++i) {
    q1.body.push_back(Literal::Pos(
        Atom("e", {Term::Var("X" + std::to_string(i)),
                   Term::Var("X" + std::to_string(i + 1))})));
  }
  // q1 has no comparisons of its own; the union needs both sides.
  Rule lo = q1;
  lo.comparisons.push_back(Comparison(Term::Var("X0"), CmpOp::kLe,
                                      Term::Var("X" + std::to_string(len))));
  Rule hi = q1;
  hi.comparisons.push_back(Comparison(Term::Var("X0"), CmpOp::kGe,
                                      Term::Var("X" + std::to_string(len))));
  UnionOfCqs ucq{lo, hi};
  for (auto _ : state) {
    Result<bool> c = CqContainedInUnion(q1, ucq);
    SQOD_CHECK(c.ok());
    SQOD_CHECK(c.value());
    benchmark::DoNotOptimize(c.value());
  }
}

BENCHMARK(BM_E6_NotContained)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E6_Contained)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E6_CqContainment)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E6_OrderContainment)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqod
