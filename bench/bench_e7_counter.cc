// Experiment E7 — the Theorem 5.4 reduction (appendix of the paper).
//
// We measure (a) the size and generation cost of the {not}-IC reduction as
// the machine grows, (b) consistency checking of the canonical run
// database, and (c) the bounded witness search (chase over the unrolled
// halting query) — whose cost explodes with the unroll depth, as expected
// for an undecidable problem attacked by finite search.

#include "bench/bench_common.h"
#include "src/chase/chase.h"
#include "src/counter/machine.h"
#include "src/counter/reduction.h"
#include "src/cq/ic_check.h"
#include "src/sqo/satisfiability.h"

namespace sqod {
namespace {

void BM_E7_ReductionGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TwoCounterMachine m = MakeBumpMachine(n);
  ReductionOutput last;
  for (auto _ : state) {
    last = BuildReduction(m);
    benchmark::DoNotOptimize(last);
  }
  state.counters["ics"] = static_cast<double>(last.ics.size());
  state.counters["rules"] = static_cast<double>(last.program.rules().size());
}

void BM_E7_CanonicalRunConsistency(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TwoCounterMachine m = MakeBumpMachine(n);
  ReductionOutput red = BuildReduction(m);
  Database db = CanonicalRunDatabase(m, 2 * n + 2);
  for (auto _ : state) {
    bool ok = SatisfiesAll(db, red.ics);
    SQOD_CHECK(ok);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["facts"] = static_cast<double>(db.TotalTuples());
}

void BM_E7_HaltDerivation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TwoCounterMachine m = MakeBumpMachine(n);
  ReductionOutput red = BuildReduction(m);
  Database db = CanonicalRunDatabase(m, 2 * n + 2);
  for (auto _ : state) {
    auto answers = RunAndReport(red.program, db, state);
    SQOD_CHECK(answers.size() == 1);
  }
}

void BM_E7_BoundedWitnessChase(benchmark::State& state) {
  // MakeBumpMachine(0) halts in exactly 1 step; chase the depth-1 unrolled
  // query. This is the expensive end: the chase must saturate the eq/neq
  // closure over the frozen constants.
  TwoCounterMachine m = MakeBumpMachine(0);
  ReductionOutput red = BuildReduction(m);
  Rule query = UnrolledHaltQuery(m, 1);
  ChaseOptions options;
  options.max_steps = 5000000;
  int64_t steps = 0;
  for (auto _ : state) {
    Result<ChaseOutcome> outcome =
        CqSatisfiableWithChase(query, red.ics, options);
    SQOD_CHECK(outcome.ok());
    SQOD_CHECK(outcome.value().result == ChaseResult::kSatisfiable);
    steps = outcome.value().steps;
    benchmark::DoNotOptimize(outcome.value().steps);
  }
  state.counters["chase_steps"] = static_cast<double>(steps);
}

void BM_E7_BoundedWitnessRefutation(benchmark::State& state) {
  // Depth-0: no halting run of length 0 exists; the chase refutes it.
  TwoCounterMachine m = MakeBumpMachine(0);
  ReductionOutput red = BuildReduction(m);
  Rule query = UnrolledHaltQuery(m, 0);
  ChaseOptions options;
  options.max_steps = 5000000;
  for (auto _ : state) {
    Result<ChaseOutcome> outcome =
        CqSatisfiableWithChase(query, red.ics, options);
    SQOD_CHECK(outcome.ok());
    SQOD_CHECK(outcome.value().result == ChaseResult::kUnsatisfiable);
    benchmark::DoNotOptimize(outcome.value().steps);
  }
}

// The Theorem 5.3 ({!=}-IC) variant: bounded witness search through the
// dense-order clause solver instead of the chase.
void BM_E7_OrderWitnessSearch(benchmark::State& state) {
  TwoCounterMachine m = MakeBumpMachine(0);
  ReductionOutput red = BuildOrderReduction(m);
  Rule query = UnrolledHaltQuery(m, 1);
  for (auto _ : state) {
    Result<bool> sat = RuleBodySatisfiable(query, red.ics);
    SQOD_CHECK(sat.ok());
    SQOD_CHECK(sat.value());
    benchmark::DoNotOptimize(sat.value());
  }
}

void BM_E7_OrderWitnessRefutation(benchmark::State& state) {
  TwoCounterMachine m = MakeBumpMachine(0);
  ReductionOutput red = BuildOrderReduction(m);
  Rule query = UnrolledHaltQuery(m, 0);
  for (auto _ : state) {
    Result<bool> sat = RuleBodySatisfiable(query, red.ics);
    SQOD_CHECK(sat.ok());
    SQOD_CHECK(!sat.value());
    benchmark::DoNotOptimize(sat.value());
  }
}

BENCHMARK(BM_E7_OrderWitnessSearch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E7_OrderWitnessRefutation)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_E7_ReductionGeneration)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E7_CanonicalRunConsistency)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E7_HaltDerivation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E7_BoundedWitnessChase)->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_E7_BoundedWitnessRefutation)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace sqod
