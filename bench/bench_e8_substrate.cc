// Experiment E8 — substrate ablations.
//
// The speedups of E1-E3 are only meaningful if the underlying evaluator is
// a credible datalog engine. This bench ablates its two main design
// choices: semi-naive vs naive iteration, and indexed vs scan joins.

#include "bench/bench_common.h"
#include "src/parser/parser.h"

namespace sqod {
namespace {

Program Closure() {
  return ParseProgram(R"(
    path(X, Y) :- e(X, Y).
    path(X, Y) :- e(X, Z), path(Z, Y).
    ?- path.
  )").take();
}

void BM_E8_SemiNaiveIndexed(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Rng rng(21);
  Database edb = MakeRandomGraph(nodes, nodes * 2, &rng, "e");
  Program p = Closure();
  EvalOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state, options));
  }
}

void BM_E8_NaiveIndexed(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Rng rng(21);
  Database edb = MakeRandomGraph(nodes, nodes * 2, &rng, "e");
  Program p = Closure();
  EvalOptions options;
  options.semi_naive = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state, options));
  }
}

void BM_E8_SemiNaiveScan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Rng rng(21);
  Database edb = MakeRandomGraph(nodes, nodes * 2, &rng, "e");
  Program p = Closure();
  EvalOptions options;
  options.use_indexes = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state, options));
  }
}

void BM_E8_ChainDepth(benchmark::State& state) {
  // Long chains stress the iteration count (one delta round per length).
  const int n = static_cast<int>(state.range(0));
  Database edb = MakeChain(n, "e");
  Program p = Closure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

BENCHMARK(BM_E8_SemiNaiveIndexed)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E8_NaiveIndexed)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E8_SemiNaiveScan)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E8_ChainDepth)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqod
