// Experiment E9 — SQO machinery ablation.
//
// Section 3's argument: per-rule residue analysis (classic SQO, CGM88)
// cannot push the threshold of IC (1) into the recursion — only the
// query-tree algorithm can. We compare four levels of optimization on the
// Section 3 workload:
//   none      — the original program,
//   classic   — per-rule residues only,
//   p1        — the bottom-up adorned program (no query tree),
//   full      — the complete pipeline (query tree + residue attachment).

#include "bench/bench_common.h"
#include "src/sqo/residue.h"

namespace sqod {
namespace {

constexpr int kNodes = 1200;
constexpr int kThreshold = 600;  // half the nodes are skippable

Database MakeDb(uint64_t seed) {
  Rng rng(seed);
  GoodPathConfig config;
  config.nodes = kNodes;
  config.edges = kNodes * 3;
  config.num_start = 25;
  config.num_end = 25;
  config.threshold = kThreshold;
  return MakeGoodPathWorkload(config, &rng);
}

void BM_E9_None(benchmark::State& state) {
  Program p = MakeGoodPathProgram();
  Database edb = MakeDb(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

void BM_E9_Classic(benchmark::State& state) {
  Program p = ApplyClassicSqo(MakeGoodPathProgram(),
                              MakeMonotoneIcs(kThreshold));
  Database edb = MakeDb(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(p, edb, state));
  }
}

void BM_E9_P1Only(benchmark::State& state) {
  SqoOptions options;
  options.build_query_tree = false;
  options.attach_residues = false;
  SqoReport report = MustOptimize(MakeGoodPathProgram(),
                                  MakeMonotoneIcs(kThreshold), options);
  Database edb = MakeDb(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(report.rewritten, edb, state));
  }
}

void BM_E9_Full(benchmark::State& state) {
  SqoReport report =
      MustOptimize(MakeGoodPathProgram(), MakeMonotoneIcs(kThreshold));
  Database edb = MakeDb(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAndReport(report.rewritten, edb, state));
  }
}

BENCHMARK(BM_E9_None)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E9_Classic)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E9_P1Only)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E9_Full)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqod
