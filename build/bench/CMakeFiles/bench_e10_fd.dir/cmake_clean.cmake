file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_fd.dir/bench_e10_fd.cc.o"
  "CMakeFiles/bench_e10_fd.dir/bench_e10_fd.cc.o.d"
  "bench_e10_fd"
  "bench_e10_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
