# Empty dependencies file for bench_e10_fd.
# This may be replaced when dependencies are built.
