file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_goodpath.dir/bench_e1_goodpath.cc.o"
  "CMakeFiles/bench_e1_goodpath.dir/bench_e1_goodpath.cc.o.d"
  "bench_e1_goodpath"
  "bench_e1_goodpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_goodpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
