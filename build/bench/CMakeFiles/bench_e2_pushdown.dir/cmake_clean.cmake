file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_pushdown.dir/bench_e2_pushdown.cc.o"
  "CMakeFiles/bench_e2_pushdown.dir/bench_e2_pushdown.cc.o.d"
  "bench_e2_pushdown"
  "bench_e2_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
