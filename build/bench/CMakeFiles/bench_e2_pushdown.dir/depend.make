# Empty dependencies file for bench_e2_pushdown.
# This may be replaced when dependencies are built.
