file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_emptiness.dir/bench_e5_emptiness.cc.o"
  "CMakeFiles/bench_e5_emptiness.dir/bench_e5_emptiness.cc.o.d"
  "bench_e5_emptiness"
  "bench_e5_emptiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_emptiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
