# Empty compiler generated dependencies file for bench_e5_emptiness.
# This may be replaced when dependencies are built.
