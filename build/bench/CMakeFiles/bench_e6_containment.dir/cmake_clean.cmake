file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_containment.dir/bench_e6_containment.cc.o"
  "CMakeFiles/bench_e6_containment.dir/bench_e6_containment.cc.o.d"
  "bench_e6_containment"
  "bench_e6_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
