# Empty dependencies file for bench_e6_containment.
# This may be replaced when dependencies are built.
