
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e7_counter.cc" "bench/CMakeFiles/bench_e7_counter.dir/bench_e7_counter.cc.o" "gcc" "bench/CMakeFiles/bench_e7_counter.dir/bench_e7_counter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sqo/CMakeFiles/sqod_sqo.dir/DependInfo.cmake"
  "/root/repo/build/src/counter/CMakeFiles/sqod_counter.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sqod_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/sqod_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/sqod_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/sqod_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sqod_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/sqod_order.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/sqod_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sqod_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
