file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_counter.dir/bench_e7_counter.cc.o"
  "CMakeFiles/bench_e7_counter.dir/bench_e7_counter.cc.o.d"
  "bench_e7_counter"
  "bench_e7_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
