file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_substrate.dir/bench_e8_substrate.cc.o"
  "CMakeFiles/bench_e8_substrate.dir/bench_e8_substrate.cc.o.d"
  "bench_e8_substrate"
  "bench_e8_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
