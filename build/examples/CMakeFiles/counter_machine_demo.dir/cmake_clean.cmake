file(REMOVE_RECURSE
  "CMakeFiles/counter_machine_demo.dir/counter_machine_demo.cpp.o"
  "CMakeFiles/counter_machine_demo.dir/counter_machine_demo.cpp.o.d"
  "counter_machine_demo"
  "counter_machine_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_machine_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
