# Empty compiler generated dependencies file for counter_machine_demo.
# This may be replaced when dependencies are built.
