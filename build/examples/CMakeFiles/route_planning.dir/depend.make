# Empty dependencies file for route_planning.
# This may be replaced when dependencies are built.
