file(REMOVE_RECURSE
  "CMakeFiles/sqo_cli.dir/sqo_cli.cpp.o"
  "CMakeFiles/sqo_cli.dir/sqo_cli.cpp.o.d"
  "sqo_cli"
  "sqo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
