# Empty compiler generated dependencies file for sqo_cli.
# This may be replaced when dependencies are built.
