# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("ast")
subdirs("parser")
subdirs("order")
subdirs("eval")
subdirs("cq")
subdirs("chase")
subdirs("sqo")
subdirs("counter")
subdirs("workload")
