
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/atom.cc" "src/ast/CMakeFiles/sqod_ast.dir/atom.cc.o" "gcc" "src/ast/CMakeFiles/sqod_ast.dir/atom.cc.o.d"
  "/root/repo/src/ast/comparison.cc" "src/ast/CMakeFiles/sqod_ast.dir/comparison.cc.o" "gcc" "src/ast/CMakeFiles/sqod_ast.dir/comparison.cc.o.d"
  "/root/repo/src/ast/pattern.cc" "src/ast/CMakeFiles/sqod_ast.dir/pattern.cc.o" "gcc" "src/ast/CMakeFiles/sqod_ast.dir/pattern.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/ast/CMakeFiles/sqod_ast.dir/program.cc.o" "gcc" "src/ast/CMakeFiles/sqod_ast.dir/program.cc.o.d"
  "/root/repo/src/ast/rule.cc" "src/ast/CMakeFiles/sqod_ast.dir/rule.cc.o" "gcc" "src/ast/CMakeFiles/sqod_ast.dir/rule.cc.o.d"
  "/root/repo/src/ast/substitution.cc" "src/ast/CMakeFiles/sqod_ast.dir/substitution.cc.o" "gcc" "src/ast/CMakeFiles/sqod_ast.dir/substitution.cc.o.d"
  "/root/repo/src/ast/term.cc" "src/ast/CMakeFiles/sqod_ast.dir/term.cc.o" "gcc" "src/ast/CMakeFiles/sqod_ast.dir/term.cc.o.d"
  "/root/repo/src/ast/unify.cc" "src/ast/CMakeFiles/sqod_ast.dir/unify.cc.o" "gcc" "src/ast/CMakeFiles/sqod_ast.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sqod_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
