file(REMOVE_RECURSE
  "CMakeFiles/sqod_ast.dir/atom.cc.o"
  "CMakeFiles/sqod_ast.dir/atom.cc.o.d"
  "CMakeFiles/sqod_ast.dir/comparison.cc.o"
  "CMakeFiles/sqod_ast.dir/comparison.cc.o.d"
  "CMakeFiles/sqod_ast.dir/pattern.cc.o"
  "CMakeFiles/sqod_ast.dir/pattern.cc.o.d"
  "CMakeFiles/sqod_ast.dir/program.cc.o"
  "CMakeFiles/sqod_ast.dir/program.cc.o.d"
  "CMakeFiles/sqod_ast.dir/rule.cc.o"
  "CMakeFiles/sqod_ast.dir/rule.cc.o.d"
  "CMakeFiles/sqod_ast.dir/substitution.cc.o"
  "CMakeFiles/sqod_ast.dir/substitution.cc.o.d"
  "CMakeFiles/sqod_ast.dir/term.cc.o"
  "CMakeFiles/sqod_ast.dir/term.cc.o.d"
  "CMakeFiles/sqod_ast.dir/unify.cc.o"
  "CMakeFiles/sqod_ast.dir/unify.cc.o.d"
  "libsqod_ast.a"
  "libsqod_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
