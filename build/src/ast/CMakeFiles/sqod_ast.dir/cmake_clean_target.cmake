file(REMOVE_RECURSE
  "libsqod_ast.a"
)
