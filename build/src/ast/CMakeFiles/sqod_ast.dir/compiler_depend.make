# Empty compiler generated dependencies file for sqod_ast.
# This may be replaced when dependencies are built.
