file(REMOVE_RECURSE
  "CMakeFiles/sqod_base.dir/interner.cc.o"
  "CMakeFiles/sqod_base.dir/interner.cc.o.d"
  "CMakeFiles/sqod_base.dir/status.cc.o"
  "CMakeFiles/sqod_base.dir/status.cc.o.d"
  "CMakeFiles/sqod_base.dir/value.cc.o"
  "CMakeFiles/sqod_base.dir/value.cc.o.d"
  "libsqod_base.a"
  "libsqod_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
