file(REMOVE_RECURSE
  "libsqod_base.a"
)
