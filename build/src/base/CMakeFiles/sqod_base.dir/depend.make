# Empty dependencies file for sqod_base.
# This may be replaced when dependencies are built.
