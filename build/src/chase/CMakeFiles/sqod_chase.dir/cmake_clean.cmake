file(REMOVE_RECURSE
  "CMakeFiles/sqod_chase.dir/chase.cc.o"
  "CMakeFiles/sqod_chase.dir/chase.cc.o.d"
  "libsqod_chase.a"
  "libsqod_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
