file(REMOVE_RECURSE
  "libsqod_chase.a"
)
