# Empty compiler generated dependencies file for sqod_chase.
# This may be replaced when dependencies are built.
