file(REMOVE_RECURSE
  "CMakeFiles/sqod_counter.dir/machine.cc.o"
  "CMakeFiles/sqod_counter.dir/machine.cc.o.d"
  "CMakeFiles/sqod_counter.dir/reduction.cc.o"
  "CMakeFiles/sqod_counter.dir/reduction.cc.o.d"
  "libsqod_counter.a"
  "libsqod_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
