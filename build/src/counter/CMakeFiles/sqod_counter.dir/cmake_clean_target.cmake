file(REMOVE_RECURSE
  "libsqod_counter.a"
)
