# Empty dependencies file for sqod_counter.
# This may be replaced when dependencies are built.
