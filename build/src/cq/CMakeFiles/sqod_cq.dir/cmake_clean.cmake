file(REMOVE_RECURSE
  "CMakeFiles/sqod_cq.dir/containment.cc.o"
  "CMakeFiles/sqod_cq.dir/containment.cc.o.d"
  "CMakeFiles/sqod_cq.dir/homomorphism.cc.o"
  "CMakeFiles/sqod_cq.dir/homomorphism.cc.o.d"
  "CMakeFiles/sqod_cq.dir/ic_check.cc.o"
  "CMakeFiles/sqod_cq.dir/ic_check.cc.o.d"
  "CMakeFiles/sqod_cq.dir/linearize.cc.o"
  "CMakeFiles/sqod_cq.dir/linearize.cc.o.d"
  "CMakeFiles/sqod_cq.dir/minimize.cc.o"
  "CMakeFiles/sqod_cq.dir/minimize.cc.o.d"
  "libsqod_cq.a"
  "libsqod_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
