file(REMOVE_RECURSE
  "libsqod_cq.a"
)
