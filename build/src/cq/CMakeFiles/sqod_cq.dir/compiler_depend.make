# Empty compiler generated dependencies file for sqod_cq.
# This may be replaced when dependencies are built.
