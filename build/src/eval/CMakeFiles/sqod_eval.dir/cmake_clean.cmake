file(REMOVE_RECURSE
  "CMakeFiles/sqod_eval.dir/database.cc.o"
  "CMakeFiles/sqod_eval.dir/database.cc.o.d"
  "CMakeFiles/sqod_eval.dir/evaluator.cc.o"
  "CMakeFiles/sqod_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/sqod_eval.dir/relation.cc.o"
  "CMakeFiles/sqod_eval.dir/relation.cc.o.d"
  "libsqod_eval.a"
  "libsqod_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
