file(REMOVE_RECURSE
  "libsqod_eval.a"
)
