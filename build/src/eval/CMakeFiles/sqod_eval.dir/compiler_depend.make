# Empty compiler generated dependencies file for sqod_eval.
# This may be replaced when dependencies are built.
