
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/order/clause_solver.cc" "src/order/CMakeFiles/sqod_order.dir/clause_solver.cc.o" "gcc" "src/order/CMakeFiles/sqod_order.dir/clause_solver.cc.o.d"
  "/root/repo/src/order/solver.cc" "src/order/CMakeFiles/sqod_order.dir/solver.cc.o" "gcc" "src/order/CMakeFiles/sqod_order.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/sqod_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sqod_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
