file(REMOVE_RECURSE
  "CMakeFiles/sqod_order.dir/clause_solver.cc.o"
  "CMakeFiles/sqod_order.dir/clause_solver.cc.o.d"
  "CMakeFiles/sqod_order.dir/solver.cc.o"
  "CMakeFiles/sqod_order.dir/solver.cc.o.d"
  "libsqod_order.a"
  "libsqod_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
