file(REMOVE_RECURSE
  "libsqod_order.a"
)
