# Empty dependencies file for sqod_order.
# This may be replaced when dependencies are built.
