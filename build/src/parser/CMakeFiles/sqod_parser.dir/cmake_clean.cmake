file(REMOVE_RECURSE
  "CMakeFiles/sqod_parser.dir/lexer.cc.o"
  "CMakeFiles/sqod_parser.dir/lexer.cc.o.d"
  "CMakeFiles/sqod_parser.dir/parser.cc.o"
  "CMakeFiles/sqod_parser.dir/parser.cc.o.d"
  "libsqod_parser.a"
  "libsqod_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
