file(REMOVE_RECURSE
  "libsqod_parser.a"
)
