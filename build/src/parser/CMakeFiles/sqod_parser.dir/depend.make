# Empty dependencies file for sqod_parser.
# This may be replaced when dependencies are built.
