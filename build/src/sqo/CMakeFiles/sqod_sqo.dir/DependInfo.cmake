
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqo/adorn.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/adorn.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/adorn.cc.o.d"
  "/root/repo/src/sqo/containment.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/containment.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/containment.cc.o.d"
  "/root/repo/src/sqo/fd.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/fd.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/fd.cc.o.d"
  "/root/repo/src/sqo/local.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/local.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/local.cc.o.d"
  "/root/repo/src/sqo/optimizer.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/optimizer.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/optimizer.cc.o.d"
  "/root/repo/src/sqo/preprocess.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/preprocess.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/preprocess.cc.o.d"
  "/root/repo/src/sqo/query_tree.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/query_tree.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/query_tree.cc.o.d"
  "/root/repo/src/sqo/residue.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/residue.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/residue.cc.o.d"
  "/root/repo/src/sqo/satisfiability.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/satisfiability.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/satisfiability.cc.o.d"
  "/root/repo/src/sqo/triplet.cc" "src/sqo/CMakeFiles/sqod_sqo.dir/triplet.cc.o" "gcc" "src/sqo/CMakeFiles/sqod_sqo.dir/triplet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/sqod_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/sqod_order.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/sqod_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/sqod_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sqod_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sqod_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
