file(REMOVE_RECURSE
  "CMakeFiles/sqod_sqo.dir/adorn.cc.o"
  "CMakeFiles/sqod_sqo.dir/adorn.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/containment.cc.o"
  "CMakeFiles/sqod_sqo.dir/containment.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/fd.cc.o"
  "CMakeFiles/sqod_sqo.dir/fd.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/local.cc.o"
  "CMakeFiles/sqod_sqo.dir/local.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/optimizer.cc.o"
  "CMakeFiles/sqod_sqo.dir/optimizer.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/preprocess.cc.o"
  "CMakeFiles/sqod_sqo.dir/preprocess.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/query_tree.cc.o"
  "CMakeFiles/sqod_sqo.dir/query_tree.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/residue.cc.o"
  "CMakeFiles/sqod_sqo.dir/residue.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/satisfiability.cc.o"
  "CMakeFiles/sqod_sqo.dir/satisfiability.cc.o.d"
  "CMakeFiles/sqod_sqo.dir/triplet.cc.o"
  "CMakeFiles/sqod_sqo.dir/triplet.cc.o.d"
  "libsqod_sqo.a"
  "libsqod_sqo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_sqo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
