file(REMOVE_RECURSE
  "libsqod_sqo.a"
)
