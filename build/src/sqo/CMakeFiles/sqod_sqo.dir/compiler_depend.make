# Empty compiler generated dependencies file for sqod_sqo.
# This may be replaced when dependencies are built.
