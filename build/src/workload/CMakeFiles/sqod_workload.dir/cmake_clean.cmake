file(REMOVE_RECURSE
  "CMakeFiles/sqod_workload.dir/graphs.cc.o"
  "CMakeFiles/sqod_workload.dir/graphs.cc.o.d"
  "CMakeFiles/sqod_workload.dir/programs.cc.o"
  "CMakeFiles/sqod_workload.dir/programs.cc.o.d"
  "libsqod_workload.a"
  "libsqod_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqod_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
