file(REMOVE_RECURSE
  "libsqod_workload.a"
)
