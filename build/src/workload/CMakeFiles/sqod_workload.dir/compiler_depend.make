# Empty compiler generated dependencies file for sqod_workload.
# This may be replaced when dependencies are built.
