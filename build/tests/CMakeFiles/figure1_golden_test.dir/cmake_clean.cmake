file(REMOVE_RECURSE
  "CMakeFiles/figure1_golden_test.dir/figure1_golden_test.cc.o"
  "CMakeFiles/figure1_golden_test.dir/figure1_golden_test.cc.o.d"
  "figure1_golden_test"
  "figure1_golden_test.pdb"
  "figure1_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
