file(REMOVE_RECURSE
  "CMakeFiles/triplet_test.dir/triplet_test.cc.o"
  "CMakeFiles/triplet_test.dir/triplet_test.cc.o.d"
  "triplet_test"
  "triplet_test.pdb"
  "triplet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triplet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
