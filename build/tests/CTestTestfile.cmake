# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/cq_test[1]_include.cmake")
include("/root/repo/build/tests/chase_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_test[1]_include.cmake")
include("/root/repo/build/tests/residue_test[1]_include.cmake")
include("/root/repo/build/tests/local_test[1]_include.cmake")
include("/root/repo/build/tests/adorn_test[1]_include.cmake")
include("/root/repo/build/tests/query_tree_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/satisfiability_test[1]_include.cmake")
include("/root/repo/build/tests/containment_test[1]_include.cmake")
include("/root/repo/build/tests/counter_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/triplet_test[1]_include.cmake")
include("/root/repo/build/tests/fd_test[1]_include.cmake")
include("/root/repo/build/tests/stratified_test[1]_include.cmake")
include("/root/repo/build/tests/figure1_golden_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
