// Containment checker — a small CLI around Proposition 5.1.
//
// Reads a datalog source file with a `?- q.` query declaration, followed by
// the UCQ disjuncts given as extra rules for a predicate named `ucq` with
// the same arity, and decides whether the program's query predicate is
// contained in the union.
//
//   $ ./containment_checker file.dl
//   $ echo '...' | ./containment_checker -
//
// Input format example (is transitive closure contained in 1-2 step paths?):
//
//   tc(X, Y) :- e(X, Y).
//   tc(X, Y) :- e(X, Z), tc(Z, Y).
//   ?- tc.
//   ucq(X, Y) :- e(X, Y).
//   ucq(X, Y) :- e(X, Z), e(Z, Y).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/parser/parser.h"
#include "src/sqo/containment.h"

int main(int argc, char** argv) {
  using namespace sqod;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <file.dl | ->\n", argv[0]);
    return 2;
  }
  std::string source;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  Result<ParsedUnit> parsed = ParseUnit(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  ParsedUnit& unit = parsed.value();
  if (unit.program.query() == -1) {
    std::fprintf(stderr, "missing query declaration (?- q.)\n");
    return 2;
  }

  // Split off the `ucq` rules; rewrite their heads to the query predicate.
  PredId ucq_pred = InternPred("ucq");
  Program program;
  program.SetQuery(unit.program.query());
  UnionOfCqs ucq;
  for (const Rule& r : unit.program.rules()) {
    if (r.head.pred() == ucq_pred) {
      Rule disjunct = r;
      disjunct.head = Atom(unit.program.query(), r.head.args());
      ucq.push_back(std::move(disjunct));
    } else {
      program.AddRule(r);
    }
  }
  if (ucq.empty()) {
    std::fprintf(stderr, "no ucq(...) disjuncts found\n");
    return 2;
  }

  Result<bool> contained = DatalogContainedInUcq(program, ucq);
  if (!contained.ok()) {
    std::fprintf(stderr, "error: %s\n", contained.status().message().c_str());
    return 2;
  }
  std::printf("%s is %scontained in the union of %zu conjunctive queries\n",
              PredName(program.query()).c_str(),
              contained.value() ? "" : "NOT ", ucq.size());
  return contained.value() ? 0 : 1;
}
