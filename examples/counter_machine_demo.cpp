// The Theorem 5.4 construction, live.
//
// Builds a 2-counter machine, emits the {not}-IC reduction from the
// paper's appendix, and demonstrates both directions of the equivalence
// "machine halts <=> the datalog query `halt` is satisfiable w.r.t. the
// ICs":
//   * for a halting machine, the canonical run database is consistent and
//     derives `halt`; the bounded chase finds a witness at the right depth;
//   * for a looping machine, no consistent database within the explored
//     bound derives `halt`.
//
//   $ ./counter_machine_demo [bump_n]

#include <cstdio>
#include <cstdlib>

#include "src/chase/chase.h"
#include "src/counter/machine.h"
#include "src/counter/reduction.h"
#include "src/cq/ic_check.h"
#include "src/eval/evaluator.h"

int main(int argc, char** argv) {
  using namespace sqod;

  int n = argc > 1 ? std::atoi(argv[1]) : 1;
  TwoCounterMachine machine = MakeBumpMachine(n);
  auto halt_steps = machine.RunsToHalt(10000);
  std::printf("Bump machine (n = %d): halts after %d steps\n", n,
              halt_steps.has_value() ? *halt_steps : -1);

  ReductionOutput red = BuildReduction(machine);
  std::printf("Reduction: %zu integrity constraints ({not}-ICs only), "
              "program:\n%s\n",
              red.ics.size(), red.program.ToString().c_str());

  // Direction 1: the canonical encoding of the halting run is a consistent
  // database on which `halt` is derivable.
  Database run = CanonicalRunDatabase(machine, *halt_steps + 1);
  std::printf("Canonical run database: %lld facts, consistent: %s\n",
              static_cast<long long>(run.TotalTuples()),
              SatisfiesAll(run, red.ics) ? "yes" : "no");
  auto answers = EvaluateQuery(red.program, run).take();
  std::printf("`halt` derivable on it: %s\n\n",
              answers.empty() ? "no" : "yes");

  // Direction 2: a looping machine never satisfies `halt`.
  TwoCounterMachine loop = MakeLoopMachine();
  ReductionOutput loop_red = BuildReduction(loop);
  Database loop_run = CanonicalRunDatabase(loop, 12);
  auto loop_answers = EvaluateQuery(loop_red.program, loop_run).take();
  std::printf("Loop machine: canonical database consistent: %s, `halt` "
              "derivable: %s\n\n",
              SatisfiesAll(loop_run, loop_red.ics) ? "yes" : "no",
              loop_answers.empty() ? "no" : "yes");

  // The Theorem 5.3 variant: the same machine encoded with != order atoms
  // instead of the axiomatized eq/neq predicates. The bounded witness
  // search runs through the dense-order clause solver — orders of
  // magnitude faster than the chase because real equality replaces the
  // congruence closure.
  {
    ReductionOutput order_red = BuildOrderReduction(machine);
    Database order_run = CanonicalOrderRunDatabase(machine, *halt_steps + 1);
    auto order_answers = EvaluateQuery(order_red.program, order_run).take();
    std::printf("{!=}-IC variant (Theorem 5.3): %zu ICs, canonical run "
                "consistent: %s, `halt` derivable: %s\n\n",
                order_red.ics.size(),
                SatisfiesAll(order_run, order_red.ics) ? "yes" : "no",
                order_answers.empty() ? "no" : "yes");
  }

  // Bounded witness search via the chase (only for the tiny machine; the
  // saturation cost grows explosively with the unroll depth — the paper is
  // about undecidability, after all).
  if (n == 0 || *halt_steps <= 1) {
    ChaseOptions options;
    options.max_steps = 5000000;
    for (int depth = 0; depth <= *halt_steps; ++depth) {
      Rule query = UnrolledHaltQuery(machine, depth);
      Result<ChaseOutcome> outcome =
          CqSatisfiableWithChase(query, red.ics, options);
      if (!outcome.ok()) {
        std::fprintf(stderr, "chase error: %s\n",
                     outcome.status().message().c_str());
        return 1;
      }
      const char* verdict =
          outcome.value().result == ChaseResult::kSatisfiable
              ? "satisfiable"
              : outcome.value().result == ChaseResult::kUnsatisfiable
                    ? "unsatisfiable"
                    : "gave up";
      std::printf("Depth-%d unrolled halting query: %s (%lld chase steps)\n",
                  depth, verdict,
                  static_cast<long long>(outcome.value().steps));
    }
  } else {
    std::printf("(run with n = 0 to see the bounded chase witness search)\n");
  }
  return 0;
}
