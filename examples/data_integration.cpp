// Data integration — the motivation of the paper's introduction: semantic
// query optimization matters most when integrating multiple heterogeneous
// sources, because inter-source constraints prune whole access paths.
//
// Scenario: a mediator exposes `reachable` flight connectivity over three
// airline feeds. Integrity constraints record what the sources guarantee:
//   * regional and intercontinental fleets never share a leg
//     (:- regional(X, Y), intercontinental(X, Y).),
//   * after an intercontinental leg arrives at a hub, budget airlines do
//     not operate the onward leg (:- intercontinental(X, Y), budget(Y, Z).).
// The optimizer deletes every mediator rule chain that crosses sources in a
// forbidden way — queries never touch those feeds at all.

#include <cstdio>

#include "src/cq/ic_check.h"
#include "src/engine/engine.h"

int main() {
  using namespace sqod;

  const char* source = R"(
    % The mediator's view over three airline feeds.
    leg(X, Y) :- regional(X, Y).
    leg(X, Y) :- budget(X, Y).
    leg(X, Y) :- intercontinental(X, Y).

    reachable(X, Y) :- leg(X, Y).
    reachable(X, Y) :- leg(X, Z), reachable(Z, Y).

    % A suspicious route auditor: intercontinental leg followed by a budget
    % continuation (the constraint says this cannot happen).
    audit(X, Y) :- intercontinental(X, Z), budget(Z, W), reachable(W, Y).

    % What the sources guarantee.
    :- regional(X, Y), intercontinental(X, Y).
    :- intercontinental(X, Y), budget(Y, Z).

    % Feed extracts.
    regional(tlv, ath). regional(ath, rom).
    budget(rom, par). budget(par, lon).
    intercontinental(lon, jfk). intercontinental(jfk, sfo).

    ?- audit.
  )";

  Engine engine;
  Result<Session> opened = engine.Open(source);
  if (!opened.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 opened.status().message().c_str());
    return 1;
  }
  Session& session = opened.value();

  Database edb = session.MakeEdb();
  std::printf("Feeds are consistent with the source guarantees: %s\n\n",
              SatisfiesAll(edb, session.ics()) ? "yes" : "no");

  Result<const PreparedProgram*> prepared = session.Prepare();
  if (!prepared.ok()) {
    std::fprintf(stderr, "optimizer error [%s]: %s\n",
                 StatusCodeName(prepared.status().code()),
                 prepared.status().message().c_str());
    return 1;
  }
  const SqoReport& report = prepared.value()->report;

  // The audit rule needs an intercontinental->budget hop, which the second
  // constraint forbids: the optimizer proves `audit` unsatisfiable and the
  // rewritten program is empty — no feed is ever contacted.
  std::printf("Is `audit` satisfiable over consistent feeds? %s\n",
              report.query_satisfiable ? "yes" : "no");
  std::printf("Rewritten program:\n%s\n",
              report.rewritten.rules().empty()
                  ? "(empty - the query can never produce answers)\n"
                  : report.rewritten.ToString().c_str());

  EvalStats stats;
  auto answers = session.ExecuteOriginal(edb, {}, &stats).take();
  std::printf("Evaluating the original anyway: %zu answers, %s\n",
              answers.size(), stats.ToString().c_str());

  // Flip the query to plain reachability and show the optimizer keeps it.
  // A different query predicate is a different program, so it gets its own
  // session (and its own prepared-program cache entry).
  Program reach_program = session.program();
  reach_program.SetQuery("reachable");
  Result<Session> reach_opened =
      engine.Open(reach_program, session.ics(), session.facts());
  if (!reach_opened.ok()) {
    std::fprintf(stderr, "open error: %s\n",
                 reach_opened.status().message().c_str());
    return 1;
  }
  Session& reach_session = reach_opened.value();
  Result<const PreparedProgram*> reach = reach_session.Prepare();
  if (!reach.ok()) {
    std::fprintf(stderr, "optimizer error [%s]: %s\n",
                 StatusCodeName(reach.status().code()),
                 reach.status().message().c_str());
    return 1;
  }
  auto a = reach_session.ExecuteOriginal(edb).take();
  auto b = reach_session.Execute(*reach.value(), edb).take();
  std::printf("\n`reachable` stays satisfiable: %s; %zu answers; rewritten "
              "agrees: %s\n",
              reach.value()->report.query_satisfiable ? "yes" : "no", a.size(),
              a == b ? "yes" : "NO");
  return a == b ? 0 : 1;
}
