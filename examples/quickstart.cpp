// Quickstart: open a datalog program with integrity constraints as an
// engine session, prepare (optimize) it, and execute both versions.
//
//   $ ./quickstart
//
// The program is the paper's Section 4 running example (Figure 1).

#include <cstdio>

#include "src/cq/ic_check.h"
#include "src/engine/engine.h"

int main() {
  using namespace sqod;

  // 1. Open a session: rules, an integrity constraint, facts, and the query.
  const char* source = R"(
    % p is the transitive closure over two edge colors.
    p(X, Y) :- a(X, Y).
    p(X, Y) :- b(X, Y).
    p(X, Y) :- a(X, Z), p(Z, Y).
    p(X, Y) :- b(X, Z), p(Z, Y).

    % Integrity constraint: an a-edge is never followed by a b-edge.
    :- a(X, Y), b(Y, Z).

    % A small consistent database: b-edges first, then a-edges.
    b(1, 2). b(2, 3). a(3, 4). a(4, 5).

    ?- p.
  )";
  Engine engine;
  Result<Session> opened = engine.Open(source);
  if (!opened.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 opened.status().message().c_str());
    return 1;
  }
  Session& session = opened.value();

  Database edb = session.MakeEdb();
  if (!SatisfiesAll(edb, session.ics())) {
    std::fprintf(stderr, "the facts violate the integrity constraints\n");
    return 1;
  }

  // 2. Prepare: the full pipeline of the paper (adornments, query tree,
  //    residue attachment), cached in the session for repeated use.
  Result<const PreparedProgram*> prepared = session.Prepare();
  if (!prepared.ok()) {
    std::fprintf(stderr, "optimizer error [%s]: %s\n",
                 StatusCodeName(prepared.status().code()),
                 prepared.status().message().c_str());
    return 1;
  }
  const SqoReport& report = prepared.value()->report;

  std::printf("Original program:\n%s\n", session.program().ToString().c_str());
  std::printf("Rewritten program (completely incorporates the ICs):\n%s\n",
              report.rewritten.ToString().c_str());

  // 3. Execute both; they agree on every consistent database.
  EvalStats original_stats, rewritten_stats;
  auto original = session.ExecuteOriginal(edb, {}, &original_stats).take();
  auto rewritten =
      session.Execute(*prepared.value(), edb, {}, &rewritten_stats).take();

  std::printf("Answers (%zu tuples):\n", original.size());
  for (const Tuple& t : original) {
    std::printf("  p(%s, %s)\n", t[0].ToString().c_str(),
                t[1].ToString().c_str());
  }
  std::printf("\nOriginal evaluation:  %s\n",
              original_stats.ToString().c_str());
  std::printf("Rewritten evaluation: %s\n",
              rewritten_stats.ToString().c_str());
  std::printf("Results identical: %s\n",
              original == rewritten ? "yes" : "NO (bug!)");
  return original == rewritten ? 0 : 1;
}
