// Route planning — the paper's Section 3 scenario, end to end.
//
// A navigation service stores step(X, Y) hops between waypoints and marks
// startPoint/endPoint candidates. Domain knowledge, recorded as integrity
// constraints, says
//   (1) journeys never begin below waypoint 100:
//         :- startPoint(X), step(X, Y), X < 100.
//   (2) hops strictly increase the waypoint value:
//         :- step(X, Y), X >= Y.
// The optimizer turns those constraints into the rewritten program r1'/r2'
// of the paper: path exploration confined to X >= 100, skipping the whole
// low-valued region of the map.
//
//   $ ./route_planning [nodes] [threshold]

#include <cstdio>
#include <cstdlib>

#include "src/cq/ic_check.h"
#include "src/engine/engine.h"
#include "src/workload/graphs.h"
#include "src/workload/programs.h"

int main(int argc, char** argv) {
  using namespace sqod;

  int nodes = argc > 1 ? std::atoi(argv[1]) : 1000;
  int threshold = argc > 2 ? std::atoi(argv[2]) : nodes / 2;

  Program program = MakeGoodPathProgram();
  std::vector<Constraint> ics = MakeMonotoneIcs(threshold);

  std::printf("Map: %d waypoints, journeys start at >= %d\n\n", nodes,
              threshold);
  std::printf("Program:\n%s\nIntegrity constraints:\n",
              program.ToString().c_str());
  for (const Constraint& ic : ics) {
    std::printf("%s\n", ic.ToString().c_str());
  }

  Engine engine;
  Result<Session> opened = engine.Open(program, ics);
  if (!opened.ok()) {
    std::fprintf(stderr, "open error: %s\n", opened.status().message().c_str());
    return 1;
  }
  Session& session = opened.value();

  Result<const PreparedProgram*> prepared = session.Prepare();
  if (!prepared.ok()) {
    std::fprintf(stderr, "optimizer error [%s]: %s\n",
                 StatusCodeName(prepared.status().code()),
                 prepared.status().message().c_str());
    return 1;
  }
  std::printf("\nRewritten program (the paper's r1'/r2'/r3'):\n%s\n",
              prepared.value()->program().ToString().c_str());

  Rng rng(2026);
  GoodPathConfig config;
  config.nodes = nodes;
  config.edges = nodes * 3;
  config.num_start = 30;
  config.num_end = 30;
  config.threshold = threshold;
  Database edb = MakeGoodPathWorkload(config, &rng);
  if (!SatisfiesAll(edb, ics)) {
    std::fprintf(stderr, "generator bug: workload violates the ICs\n");
    return 1;
  }

  EvalStats original_stats, rewritten_stats;
  auto original = session.ExecuteOriginal(edb, {}, &original_stats).take();
  auto rewritten =
      session.Execute(*prepared.value(), edb, {}, &rewritten_stats).take();

  std::printf("Routes found: %zu (identical answers: %s)\n", original.size(),
              original == rewritten ? "yes" : "NO");
  std::printf("Original:  %s\n", original_stats.ToString().c_str());
  std::printf("Rewritten: %s\n", rewritten_stats.ToString().c_str());
  if (rewritten_stats.tuples_derived > 0) {
    std::printf("Work reduction: %.1fx fewer derived tuples\n",
                static_cast<double>(original_stats.tuples_derived) /
                    static_cast<double>(rewritten_stats.tuples_derived));
  }
  return original == rewritten ? 0 : 1;
}
