# CTest smoke test for the sqo_cli observability surface. Invoked as:
#
#   cmake -DSQO_CLI=<binary> -DINPUT=<figure1.dl> -DWORK_DIR=<dir>
#         -P smoke_test.cmake
#
# Runs the CLI with --eval --profile --stats-json --trace on the Figure-1
# example, then validates both JSON artifacts with the CLI's built-in
# minimal JSON parser (--check-json) and greps for the expected keys.

set(STATS "${WORK_DIR}/smoke_stats.json")
set(TRACE "${WORK_DIR}/smoke_trace.json")

execute_process(
  COMMAND "${SQO_CLI}" --eval --profile
          "--stats-json=${STATS}" "--trace=${TRACE}" "${INPUT}"
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "sqo_cli failed (rc=${RC}):\n${STDOUT}\n${STDERR}")
endif()

# The eval report must show matching answers and both profile tables.
foreach(needle
    "match: yes"
    "per-rule profile, original program P:"
    "per-rule profile, rewritten program P':"
    "span tree:")
  string(FIND "${STDOUT}" "${needle}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "missing '${needle}' in sqo_cli output:\n${STDOUT}")
  endif()
endforeach()

# Both artifacts parse with the built-in minimal JSON parser.
foreach(artifact "${STATS}" "${TRACE}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "${artifact} was not written")
  endif()
  execute_process(
    COMMAND "${SQO_CLI}" "--check-json=${artifact}"
    ERROR_VARIABLE CHECK_ERR
    RESULT_VARIABLE CHECK_RC)
  if(NOT CHECK_RC EQUAL 0)
    message(FATAL_ERROR "invalid JSON in ${artifact}: ${CHECK_ERR}")
  endif()
endforeach()

# Spot-check the expected metric and span names.
file(READ "${STATS}" STATS_TEXT)
foreach(needle
    "eval/original/tuples_derived"
    "eval/rewritten/tuples_derived"
    "sqo/phase/adorn_ns"
    "cli/answers_match\":1")
  string(FIND "${STATS_TEXT}" "${needle}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "missing '${needle}' in ${STATS}:\n${STATS_TEXT}")
  endif()
endforeach()

file(READ "${TRACE}" TRACE_TEXT)
foreach(needle "traceEvents" "sqo.optimize" "sqo.adorn" "eval.iteration")
  string(FIND "${TRACE_TEXT}" "${needle}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "missing '${needle}' in ${TRACE}")
  endif()
endforeach()

# --list-passes prints the pipeline in order and exits cleanly.
execute_process(
  COMMAND "${SQO_CLI}" --list-passes
  OUTPUT_VARIABLE PASS_LIST
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "sqo_cli --list-passes failed (rc=${RC})")
endif()
string(STRIP "${PASS_LIST}" PASS_LIST)
string(REPLACE "\n" ";" PASS_LIST "${PASS_LIST}")
set(EXPECTED_PASSES
    validate normalize fd_rewrite local_rewrite adorn tree residues prune)
if(NOT PASS_LIST STREQUAL EXPECTED_PASSES)
  message(FATAL_ERROR
      "--list-passes mismatch: got '${PASS_LIST}', want '${EXPECTED_PASSES}'")
endif()

# --disable-pass=NAME ablates one pass; --reprepare demonstrates that the
# second Prepare of the same program is a pure cache hit (one pipeline run).
set(ABLATE_STATS "${WORK_DIR}/smoke_ablate_stats.json")
execute_process(
  COMMAND "${SQO_CLI}" --passes --disable-pass=residues --reprepare
          "--stats-json=${ABLATE_STATS}" "${INPUT}"
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR
      "sqo_cli --disable-pass run failed (rc=${RC}):\n${STDOUT}\n${STDERR}")
endif()
string(REGEX MATCH "residues[ ]+disabled" DISABLED_LINE "${STDOUT}")
if(DISABLED_LINE STREQUAL "")
  message(FATAL_ERROR
      "pass table does not mark residues as disabled:\n${STDOUT}")
endif()
file(READ "${ABLATE_STATS}" ABLATE_TEXT)
foreach(needle
    "engine/prepare_cache_hits\":1"
    "engine/prepare_cache_misses\":1"
    "engine/pipeline_runs\":1")
  string(FIND "${ABLATE_TEXT}" "${needle}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "missing '${needle}' in ${ABLATE_STATS}:\n${ABLATE_TEXT}")
  endif()
endforeach()

# An unknown pass name is rejected with a helpful error.
execute_process(
  COMMAND "${SQO_CLI}" --disable-pass=typo "${INPUT}"
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR
  RESULT_VARIABLE RC)
if(RC EQUAL 0)
  message(FATAL_ERROR "--disable-pass=typo unexpectedly succeeded")
endif()
string(FIND "${STDERR}" "INVALID_ARGUMENT" POS)
if(POS EQUAL -1)
  message(FATAL_ERROR "expected INVALID_ARGUMENT in stderr:\n${STDERR}")
endif()

# --serve-batch pushes the same unit through the concurrent QueryService:
# all requests succeed with matching answers, and the stats must show the
# single-flight guarantee (8 requests, 1 optimizer pipeline run) plus the
# per-request latency histograms.
set(SERVE_STATS "${WORK_DIR}/smoke_serve_stats.json")
execute_process(
  COMMAND "${SQO_CLI}" --serve-batch --threads=4 --requests=8
          "--stats-json=${SERVE_STATS}" "${INPUT}"
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR
      "sqo_cli --serve-batch failed (rc=${RC}):\n${STDOUT}\n${STDERR}")
endif()
foreach(needle
    "ok=8 rejected=0 cancelled=0 deadline_exceeded=0 failed=0"
    "(all match: yes)"
    "queue_wait p50=")
  string(FIND "${STDOUT}" "${needle}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR
        "missing '${needle}' in serve-batch output:\n${STDOUT}")
  endif()
endforeach()
execute_process(
  COMMAND "${SQO_CLI}" "--check-json=${SERVE_STATS}"
  ERROR_VARIABLE CHECK_ERR
  RESULT_VARIABLE CHECK_RC)
if(NOT CHECK_RC EQUAL 0)
  message(FATAL_ERROR "invalid JSON in ${SERVE_STATS}: ${CHECK_ERR}")
endif()
file(READ "${SERVE_STATS}" SERVE_TEXT)
foreach(needle
    "service/requests_accepted\":8"
    "service/requests_completed\":8"
    "engine/pipeline_runs\":1"
    "engine/sessions_opened\":1"
    "service/queue_wait_ns"
    "service/execute_ns")
  string(FIND "${SERVE_TEXT}" "${needle}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "missing '${needle}' in ${SERVE_STATS}:\n${SERVE_TEXT}")
  endif()
endforeach()

message(STATUS "sqo_cli smoke test passed")
