// sqo_cli — the optimizer as a command-line filter.
//
// Reads a datalog unit (rules, ICs, optional facts, a `?- q.` query
// declaration) from a file or stdin, runs the full semantic query
// optimization pipeline, and prints the rewritten program. Options expose
// the intermediate artifacts and the observability layer.
//
//   usage: sqo_cli [--p1] [--tree] [--dot] [--adornments] [--eval]
//                  [--profile] [--trace=FILE] [--stats-json=FILE] <file|->
//          sqo_cli --check-json=FILE
//
//     --p1          print the bottom-up adorned program P1 instead of P'
//     --tree        print the query tree (the Figure 1 artifact)
//     --dot         print the query tree as Graphviz dot
//     --adornments  print the adorned predicates and their triplets
//     --eval        if the unit contains facts, evaluate both programs and
//                   report answers + work counters
//     --profile     per-rule profile tables (with --eval, for both the
//                   original and rewritten program) and a span-tree summary
//     --trace=FILE  write a Chrome trace-event JSON file covering the
//                   optimizer phases and (with --eval) both evaluations;
//                   load it in chrome://tracing or Perfetto
//     --stats-json=FILE  write all collected metrics as JSON
//     --check-json=FILE  validate FILE with the built-in minimal JSON
//                   parser and exit (0 = valid); used by the smoke test

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/cq/ic_check.h"
#include "src/eval/evaluator.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parser/parser.h"
#include "src/sqo/optimizer.h"

namespace {

std::string ReadAll(const char* path) {
  std::ostringstream buffer;
  if (std::strcmp(path, "-") == 0) {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      std::exit(2);
    }
    buffer << in.rdbuf();
  }
  return buffer.str();
}

bool WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqod;

  bool show_p1 = false, show_tree = false, show_dot = false,
       show_adornments = false, do_eval = false, do_profile = false;
  std::string trace_path, stats_json_path;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--p1") == 0) {
      show_p1 = true;
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      show_tree = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      show_dot = true;
    } else if (std::strcmp(argv[i], "--adornments") == 0) {
      show_adornments = true;
    } else if (std::strcmp(argv[i], "--eval") == 0) {
      do_eval = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      do_profile = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
      stats_json_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--check-json=", 13) == 0) {
      std::string text = ReadAll(argv[i] + 13);
      Status s = ValidateJson(text);
      if (!s.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i] + 13, s.message().c_str());
        return 1;
      }
      return 0;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--p1] [--tree] [--dot] [--adornments] [--eval] "
                 "[--profile] [--trace=FILE] [--stats-json=FILE] <file|->\n"
                 "       %s --check-json=FILE\n",
                 argv[0], argv[0]);
    return 2;
  }

  Result<ParsedUnit> parsed = ParseUnit(ReadAll(path));
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  ParsedUnit& unit = parsed.value();

  // The observability layer: spans when tracing or profiling was requested,
  // metrics whenever any report needs them.
  Tracer tracer(!trace_path.empty() || do_profile);
  MetricsRegistry metrics;

  SqoOptions sqo_options;
  sqo_options.tracer = &tracer;
  sqo_options.metrics = &metrics;

  Result<SqoReport> optimized =
      OptimizeProgram(unit.program, unit.constraints, sqo_options);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimizer error: %s\n",
                 optimized.status().message().c_str());
    return 2;
  }
  const SqoReport& report = optimized.value();

  if (show_adornments) {
    std::printf("%% adorned predicates\n%s\n",
                report.adornment_dump.c_str());
  }
  if (show_tree) {
    std::printf("%% query tree\n%s\n", report.tree_dump.c_str());
  }
  if (show_dot) {
    std::printf("%s", report.tree_dot.c_str());
    return 0;
  }
  std::printf("%s", show_p1 ? report.adorned.ToString().c_str()
                            : report.rewritten.ToString().c_str());
  if (!report.query_satisfiable) {
    std::printf("%% note: the query is unsatisfiable w.r.t. the ICs\n");
  }

  int exit_code = 0;
  if (do_eval && !unit.facts.empty()) {
    Database edb;
    for (const Atom& fact : unit.facts) edb.InsertAtom(fact);
    if (!SatisfiesAll(edb, unit.constraints)) {
      std::fprintf(stderr,
                   "warning: the facts violate the integrity constraints; "
                   "equivalence is not guaranteed\n");
    }
    EvalStats original_stats, rewritten_stats;
    std::vector<RuleProfile> original_profiles, rewritten_profiles;
    EvalOptions eval_options;
    eval_options.tracer = &tracer;
    eval_options.metrics = &metrics;
    eval_options.profile_rules = do_profile;

    eval_options.metrics_prefix = "eval/original";
    auto original = EvaluateQuery(unit.program, edb, eval_options,
                                  &original_stats, &original_profiles)
                        .take();
    eval_options.metrics_prefix = "eval/rewritten";
    auto rewritten = EvaluateQuery(report.rewritten, edb, eval_options,
                                   &rewritten_stats, &rewritten_profiles)
                         .take();
    std::printf("%% answers: %zu (match: %s)\n", original.size(),
                original == rewritten ? "yes" : "NO");
    std::printf("%% original:  %s\n%% rewritten: %s\n",
                original_stats.ToString().c_str(),
                rewritten_stats.ToString().c_str());
    metrics.GetGauge("cli/answers")
        ->Set(static_cast<int64_t>(original.size()));
    metrics.GetGauge("cli/answers_match")->Set(original == rewritten ? 1 : 0);
    if (do_profile) {
      std::printf("%% per-rule profile, original program P:\n%s",
                  RenderRuleProfileTable(original_profiles).c_str());
      std::printf("%% per-rule profile, rewritten program P':\n%s",
                  RenderRuleProfileTable(rewritten_profiles).c_str());
    }
    exit_code = original == rewritten ? 0 : 1;
  }

  if (do_profile) {
    std::printf("%% span tree:\n%s", RenderSpanTree(tracer.spans()).c_str());
  }
  if (!trace_path.empty() &&
      !WriteAll(trace_path, ExportChromeTrace(tracer.spans()))) {
    return 2;
  }
  if (!stats_json_path.empty() &&
      !WriteAll(stats_json_path, ExportMetricsJson(metrics))) {
    return 2;
  }
  return exit_code;
}
