// sqo_cli — the optimizer as a command-line filter.
//
// Reads a datalog unit (rules, ICs, optional facts, a `?- q.` query
// declaration) from a file or stdin, opens it as an engine session, runs
// the semantic query optimization pass pipeline, and prints the rewritten
// program. Options expose the intermediate artifacts, the pass manager,
// and the observability layer.
//
//   usage: sqo_cli [--p1] [--tree] [--dot] [--adornments] [--eval]
//                  [--profile] [--passes] [--disable-pass=NAME ...]
//                  [--reprepare] [--trace=FILE] [--stats-json=FILE] <file|->
//          sqo_cli --list-passes
//          sqo_cli --check-json=FILE
//
//     --p1          print the bottom-up adorned program P1 instead of P'
//     --tree        print the query tree (the Figure 1 artifact)
//     --dot         print the query tree as Graphviz dot
//     --adornments  print the adorned predicates and their triplets
//     --eval        if the unit contains facts, evaluate both programs and
//                   report answers + work counters
//     --profile     per-rule profile tables (with --eval, for both the
//                   original and rewritten program) and a span-tree summary
//     --passes      print the per-pass report (ran/disabled/skipped, wall
//                   time, rules after) for this run
//     --list-passes print the pipeline's pass names, in order, and exit
//     --disable-pass=NAME  switch off one pass (repeatable); NAME is any
//                   entry of --list-passes
//     --reprepare   prepare the same program a second time to demonstrate
//                   the session's prepared-program cache (hit counters land
//                   in --stats-json under engine/prepare_cache_*)
//     --trace=FILE  write a Chrome trace-event JSON file covering the
//                   optimizer phases and (with --eval) both evaluations;
//                   load it in chrome://tracing or Perfetto
//     --stats-json=FILE  write all collected metrics as JSON
//     --check-json=FILE  validate FILE with the built-in minimal JSON
//                   parser and exit (0 = valid); used by the smoke test

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cq/ic_check.h"
#include "src/engine/engine.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sqo/pass_manager.h"

namespace {

std::string ReadAll(const char* path) {
  std::ostringstream buffer;
  if (std::strcmp(path, "-") == 0) {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      std::exit(2);
    }
    buffer << in.rdbuf();
  }
  return buffer.str();
}

bool WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqod;

  bool show_p1 = false, show_tree = false, show_dot = false,
       show_adornments = false, do_eval = false, do_profile = false,
       show_passes = false, reprepare = false;
  std::string trace_path, stats_json_path;
  std::vector<std::string> disabled_passes;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--p1") == 0) {
      show_p1 = true;
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      show_tree = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      show_dot = true;
    } else if (std::strcmp(argv[i], "--adornments") == 0) {
      show_adornments = true;
    } else if (std::strcmp(argv[i], "--eval") == 0) {
      do_eval = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      do_profile = true;
    } else if (std::strcmp(argv[i], "--passes") == 0) {
      show_passes = true;
    } else if (std::strcmp(argv[i], "--list-passes") == 0) {
      for (const std::string& name : PassManager::PassNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (std::strncmp(argv[i], "--disable-pass=", 15) == 0) {
      disabled_passes.push_back(argv[i] + 15);
    } else if (std::strcmp(argv[i], "--reprepare") == 0) {
      reprepare = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
      stats_json_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--check-json=", 13) == 0) {
      std::string text = ReadAll(argv[i] + 13);
      Status s = ValidateJson(text);
      if (!s.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i] + 13, s.message().c_str());
        return 1;
      }
      return 0;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--p1] [--tree] [--dot] [--adornments] [--eval] "
                 "[--profile] [--passes] [--disable-pass=NAME ...] "
                 "[--reprepare] [--trace=FILE] [--stats-json=FILE] <file|->\n"
                 "       %s --list-passes\n"
                 "       %s --check-json=FILE\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  // The observability layer: spans when tracing or profiling was requested,
  // metrics whenever any report needs them. Both are handed to the engine,
  // so engine counters (cache hits, executions) land in the same export.
  Tracer tracer(!trace_path.empty() || do_profile);
  MetricsRegistry metrics;
  EngineOptions engine_options;
  engine_options.tracer = &tracer;
  engine_options.metrics = &metrics;
  Engine engine(engine_options);

  Result<Session> opened = engine.Open(ReadAll(path));
  if (!opened.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 opened.status().message().c_str());
    return 2;
  }
  Session& session = opened.value();

  SqoOptions sqo_options;
  sqo_options.disabled_passes = disabled_passes;

  Result<const PreparedProgram*> prepared = session.Prepare(sqo_options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "optimizer error [%s]: %s\n",
                 StatusCodeName(prepared.status().code()),
                 prepared.status().message().c_str());
    return 2;
  }
  if (reprepare) {
    // Same program, ICs, and options: served from the session cache with
    // zero re-optimization (see engine/prepare_cache_hits in --stats-json).
    prepared = session.Prepare(sqo_options);
  }
  const SqoReport& report = prepared.value()->report;

  if (show_adornments) {
    std::printf("%% adorned predicates\n%s\n",
                report.adornment_dump.c_str());
  }
  if (show_tree) {
    std::printf("%% query tree\n%s\n", report.tree_dump.c_str());
  }
  if (show_dot) {
    std::printf("%s", report.tree_dot.c_str());
    return 0;
  }
  if (show_passes) {
    std::printf("%% pass pipeline\n");
    for (const PassRunInfo& info : report.pass_runs) {
      std::printf("%%   %-14s %-8s %8lld ns  rules=%d\n", info.name.c_str(),
                  info.disabled ? "disabled"
                                : (info.skipped ? "skipped" : "ran"),
                  static_cast<long long>(info.wall_ns), info.rules_after);
    }
  }
  std::printf("%s", show_p1 ? report.adorned.ToString().c_str()
                            : report.rewritten.ToString().c_str());
  if (!report.query_satisfiable) {
    std::printf("%% note: the query is unsatisfiable w.r.t. the ICs\n");
  }

  int exit_code = 0;
  if (do_eval && !session.facts().empty()) {
    Database edb = session.MakeEdb();
    if (!SatisfiesAll(edb, session.ics())) {
      std::fprintf(stderr,
                   "warning: the facts violate the integrity constraints; "
                   "equivalence is not guaranteed\n");
    }
    EvalStats original_stats, rewritten_stats;
    std::vector<RuleProfile> original_profiles, rewritten_profiles;
    EvalOptions eval_options;
    eval_options.profile_rules = do_profile;

    eval_options.metrics_prefix = "eval/original";
    auto original = session
                        .ExecuteOriginal(edb, eval_options, &original_stats,
                                         &original_profiles)
                        .take();
    eval_options.metrics_prefix = "eval/rewritten";
    auto rewritten = session
                         .Execute(*prepared.value(), edb, eval_options,
                                  &rewritten_stats, &rewritten_profiles)
                         .take();
    std::printf("%% answers: %zu (match: %s)\n", original.size(),
                original == rewritten ? "yes" : "NO");
    std::printf("%% original:  %s\n%% rewritten: %s\n",
                original_stats.ToString().c_str(),
                rewritten_stats.ToString().c_str());
    metrics.GetGauge("cli/answers")
        ->Set(static_cast<int64_t>(original.size()));
    metrics.GetGauge("cli/answers_match")->Set(original == rewritten ? 1 : 0);
    if (do_profile) {
      std::printf("%% per-rule profile, original program P:\n%s",
                  RenderRuleProfileTable(original_profiles).c_str());
      std::printf("%% per-rule profile, rewritten program P':\n%s",
                  RenderRuleProfileTable(rewritten_profiles).c_str());
    }
    exit_code = original == rewritten ? 0 : 1;
  }

  if (do_profile) {
    std::printf("%% span tree:\n%s", RenderSpanTree(tracer.spans()).c_str());
  }
  if (!trace_path.empty() &&
      !WriteAll(trace_path, ExportChromeTrace(tracer.spans()))) {
    return 2;
  }
  if (!stats_json_path.empty() &&
      !WriteAll(stats_json_path, ExportMetricsJson(metrics))) {
    return 2;
  }
  return exit_code;
}
