// sqo_cli — the optimizer as a command-line filter.
//
// Reads a datalog unit (rules, ICs, optional facts, a `?- q.` query
// declaration) from a file or stdin, runs the full semantic query
// optimization pipeline, and prints the rewritten program. Options expose
// the intermediate artifacts.
//
//   usage: sqo_cli [--p1] [--tree] [--dot] [--adornments] [--eval] <file|->
//
//     --p1          print the bottom-up adorned program P1 instead of P'
//     --tree        print the query tree (the Figure 1 artifact)
//     --dot         print the query tree as Graphviz dot
//     --adornments  print the adorned predicates and their triplets
//     --eval        if the unit contains facts, evaluate both programs and
//                   report answers + work counters

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/cq/ic_check.h"
#include "src/eval/evaluator.h"
#include "src/parser/parser.h"
#include "src/sqo/optimizer.h"

namespace {

std::string ReadAll(const char* path) {
  std::ostringstream buffer;
  if (std::strcmp(path, "-") == 0) {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      std::exit(2);
    }
    buffer << in.rdbuf();
  }
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqod;

  bool show_p1 = false, show_tree = false, show_dot = false,
       show_adornments = false, do_eval = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--p1") == 0) {
      show_p1 = true;
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      show_tree = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      show_dot = true;
    } else if (std::strcmp(argv[i], "--adornments") == 0) {
      show_adornments = true;
    } else if (std::strcmp(argv[i], "--eval") == 0) {
      do_eval = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--p1] [--tree] [--dot] [--adornments] [--eval] "
                 "<file|->\n",
                 argv[0]);
    return 2;
  }

  Result<ParsedUnit> parsed = ParseUnit(ReadAll(path));
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  ParsedUnit& unit = parsed.value();

  Result<SqoReport> optimized =
      OptimizeProgram(unit.program, unit.constraints);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimizer error: %s\n",
                 optimized.status().message().c_str());
    return 2;
  }
  const SqoReport& report = optimized.value();

  if (show_adornments) {
    std::printf("%% adorned predicates\n%s\n",
                report.adornment_dump.c_str());
  }
  if (show_tree) {
    std::printf("%% query tree\n%s\n", report.tree_dump.c_str());
  }
  if (show_dot) {
    std::printf("%s", report.tree_dot.c_str());
    return 0;
  }
  std::printf("%s", show_p1 ? report.adorned.ToString().c_str()
                            : report.rewritten.ToString().c_str());
  if (!report.query_satisfiable) {
    std::printf("%% note: the query is unsatisfiable w.r.t. the ICs\n");
  }

  if (do_eval && !unit.facts.empty()) {
    Database edb;
    for (const Atom& fact : unit.facts) edb.InsertAtom(fact);
    if (!SatisfiesAll(edb, unit.constraints)) {
      std::fprintf(stderr,
                   "warning: the facts violate the integrity constraints; "
                   "equivalence is not guaranteed\n");
    }
    EvalStats original_stats, rewritten_stats;
    auto original =
        EvaluateQuery(unit.program, edb, {}, &original_stats).take();
    auto rewritten =
        EvaluateQuery(report.rewritten, edb, {}, &rewritten_stats).take();
    std::printf("%% answers: %zu (match: %s)\n", original.size(),
                original == rewritten ? "yes" : "NO");
    std::printf("%% original:  %s\n%% rewritten: %s\n",
                original_stats.ToString().c_str(),
                rewritten_stats.ToString().c_str());
    return original == rewritten ? 0 : 1;
  }
  return 0;
}
