// sqo_cli — the optimizer as a command-line filter.
//
// Reads a datalog unit (rules, ICs, optional facts, a `?- q.` query
// declaration) from a file or stdin, opens it as an engine session, runs
// the semantic query optimization pass pipeline, and prints the rewritten
// program. Options expose the intermediate artifacts, the pass manager,
// and the observability layer.
//
//   usage: sqo_cli [--p1] [--tree] [--dot] [--adornments] [--eval]
//                  [--eval-mode=interpret|compile] [--eval-threads=N]
//                  [--profile] [--passes]
//                  [--explain] [--analyze[=FILE]]
//                  [--facts=FILE] [--apply-delta=FILE]
//                  [--disable-pass=NAME ...] [--reprepare] [--trace=FILE]
//                  [--stats-json=FILE] <file|->
//          sqo_cli --serve-batch [--threads=N] [--requests=R]
//                  [--eval-threads=N] [--deadline-ms=D] [--max-queue=Q]
//                  [--slow-ms=S] [--metrics-snapshot-ms=M] [--trace=FILE]
//                  [--stats-json=FILE] <file|->
//          sqo_cli --list-passes
//          sqo_cli --check-json=FILE
//
//     --p1          print the bottom-up adorned program P1 instead of P'
//     --tree        print the query tree (the Figure 1 artifact)
//     --dot         print the query tree as Graphviz dot
//     --adornments  print the adorned predicates and their triplets
//     --eval        if the unit contains facts, evaluate both programs and
//                   report answers + work counters
//     --eval-mode=MODE  plan execution strategy: `compile` (default) lowers
//                   each rule plan to register bytecode with specialized
//                   join kernels at Prepare time; `interpret` walks the
//                   PlanStep tree directly (the pre-bytecode evaluator,
//                   kept as a runtime fallback). Applies to --eval,
//                   --analyze, and --serve-batch evaluations
//     --eval-threads=N  intra-query parallelism: hash-partition each
//                   semi-naive iteration N ways and run the partition
//                   tasks concurrently (docs/evaluator.md, "Parallel
//                   evaluation"). Answers and work counters are identical
//                   to serial by contract; with --analyze the EXPLAIN
//                   report gains a "== parallel ==" section. Default 1
//                   (serial). Applies to --eval, --analyze, and (as the
//                   service default) --serve-batch
//     --profile     per-rule profile tables (with --eval, for both the
//                   original and rewritten program) and a span-tree summary
//     --passes      print the per-pass report (ran/disabled/skipped, wall
//                   time, rules after) for this run
//     --explain     EXPLAIN: the per-pass delta table (rules, literals,
//                   negations, comparisons) and the plan summary (adorned
//                   sizes, goal classes, residue and interning work)
//     --analyze[=FILE]  EXPLAIN ANALYZE: --explain joined with what the
//                   rewritten program actually did — implies --eval when
//                   the unit has facts; adds per-rule runtime rows
//                   (firings, derivations, wall time against the rule
//                   text). With =FILE, also writes the report as JSON
//     --facts=FILE  merge additional ground facts (plain `p(1, 2).` lines)
//                   into the unit's EDB before anything runs; applies to
//                   every mode, so a large base EDB can live next to a
//                   small rules file
//     --apply-delta=FILE  materialize the unit's query as an incremental
//                   view, then replay a change stream against it. The file
//                   holds batches of fact changes:
//                       batch            # starts the next batch
//                       +edge(5, 6).     # insert
//                       -edge(1, 2).     # delete
//                   After every batch the maintained answers are checked
//                   against a from-scratch recompute of the same EDB, and
//                   the maintain-vs-recompute wall times are printed per
//                   batch (nonzero exit on any mismatch). With --analyze,
//                   the maintenance totals join the EXPLAIN report
//     --list-passes print the pipeline's pass names, in order, and exit
//     --disable-pass=NAME  switch off one pass (repeatable); NAME is any
//                   entry of --list-passes
//     --reprepare   prepare the same program a second time to demonstrate
//                   the session's prepared-program cache (hit counters land
//                   in --stats-json under engine/prepare_cache_*)
//     --trace=FILE  write a Chrome trace-event JSON file covering the
//                   optimizer phases and (with --eval) both evaluations;
//                   load it in chrome://tracing or Perfetto
//     --stats-json=FILE  write all collected metrics as JSON
//     --check-json=FILE  validate FILE with the built-in minimal JSON
//                   parser and exit (0 = valid); used by the smoke test
//     --serve-batch run the unit through an in-process sqo_server on a
//                   loopback port, driven over the wire protocol by the
//                   client library (pipelined on one connection):
//                   submit --requests=R copies (default 8) onto
//                   --threads=N workers (default 4) with an admission
//                   queue of --max-queue=Q (default 256) and a per-request
//                   deadline of --deadline-ms=D (default none), then print
//                   the outcome counts and latency percentiles. Identical
//                   requests share one session, so the optimizer pipeline
//                   runs exactly once (engine/pipeline_runs in
//                   --stats-json). With --slow-ms=S, requests slower than
//                   S ms end-to-end land in the slow-query log (printed
//                   after the batch, trace ids included); with
//                   --metrics-snapshot-ms=M a background thread appends
//                   periodic metric-delta events; with --trace=FILE every
//                   request is traced and the per-request span trees are
//                   merged into one Chrome trace, one lane per request,
//                   cross-referencable to the slow-query log by trace id.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/cq/ic_check.h"
#include "src/engine/engine.h"
#include "src/engine/explain.h"
#include "src/engine/view.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/parser/parser.h"
#include "src/obs/event_log.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/query_service.h"
#include "src/sqo/pass_manager.h"

namespace {

std::string ReadAll(const char* path) {
  std::ostringstream buffer;
  if (std::strcmp(path, "-") == 0) {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      std::exit(2);
    }
    buffer << in.rdbuf();
  }
  return buffer.str();
}

bool WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

// Parses an --apply-delta file: `batch` lines separate batches, `+fact.`
// inserts, `-fact.` deletes, `#` starts a comment. Returns false (with a
// message naming the line) on malformed input.
bool ParseDeltaFile(const std::string& text, const std::string& name,
                    std::vector<sqod::FactDelta>* out) {
  std::istringstream in(text);
  std::string line;
  sqod::FactDelta current;
  int lineno = 0;
  auto flush = [&] {
    if (!current.empty()) {
      out->push_back(std::move(current));
      current = sqod::FactDelta();
    }
  };
  while (std::getline(in, line)) {
    ++lineno;
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r");
    std::string trimmed = line.substr(begin, end - begin + 1);
    if (trimmed[0] == '#') continue;
    if (trimmed == "batch") {
      flush();
      continue;
    }
    if (trimmed[0] != '+' && trimmed[0] != '-') {
      std::fprintf(stderr,
                   "%s:%d: expected 'batch', '+fact.', or '-fact.'\n",
                   name.c_str(), lineno);
      return false;
    }
    sqod::Result<sqod::Atom> atom =
        sqod::ParseAtomText(std::string_view(trimmed).substr(1));
    if (!atom.ok()) {
      std::fprintf(stderr, "%s:%d: %s\n", name.c_str(), lineno,
                   atom.status().message().c_str());
      return false;
    }
    if (trimmed[0] == '+') {
      current.inserts.push_back(atom.take());
    } else {
      current.deletes.push_back(atom.take());
    }
  }
  flush();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqod;

  bool show_p1 = false, show_tree = false, show_dot = false,
       show_adornments = false, do_eval = false, do_profile = false,
       show_passes = false, reprepare = false, serve_batch = false,
       do_explain = false, do_analyze = false;
  EvalMode eval_mode = EvalMode::kCompile;
  int eval_threads = 1;
  int threads = 4, requests = 8;
  long long deadline_ms = -1, max_queue = 256, slow_ms = -1,
            metrics_snapshot_ms = -1;
  std::string trace_path, stats_json_path, analyze_path, facts_path,
      delta_path;
  std::vector<std::string> disabled_passes;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--p1") == 0) {
      show_p1 = true;
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      show_tree = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      show_dot = true;
    } else if (std::strcmp(argv[i], "--adornments") == 0) {
      show_adornments = true;
    } else if (std::strcmp(argv[i], "--eval") == 0) {
      do_eval = true;
    } else if (std::strncmp(argv[i], "--eval-mode=", 12) == 0) {
      const char* mode = argv[i] + 12;
      if (std::strcmp(mode, "interpret") == 0) {
        eval_mode = EvalMode::kInterpret;
      } else if (std::strcmp(mode, "compile") == 0) {
        eval_mode = EvalMode::kCompile;
      } else {
        std::fprintf(stderr,
                     "unknown --eval-mode=%s (expected interpret|compile)\n",
                     mode);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--eval-threads=", 15) == 0) {
      eval_threads = std::atoi(argv[i] + 15);
      if (eval_threads < 1) {
        std::fprintf(stderr, "--eval-threads must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      do_profile = true;
    } else if (std::strcmp(argv[i], "--passes") == 0) {
      show_passes = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      do_explain = true;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      do_analyze = true;
    } else if (std::strncmp(argv[i], "--analyze=", 10) == 0) {
      do_analyze = true;
      analyze_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--facts=", 8) == 0) {
      facts_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--apply-delta=", 14) == 0) {
      delta_path = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--list-passes") == 0) {
      for (const std::string& name : PassManager::PassNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (std::strncmp(argv[i], "--disable-pass=", 15) == 0) {
      disabled_passes.push_back(argv[i] + 15);
    } else if (std::strcmp(argv[i], "--reprepare") == 0) {
      reprepare = true;
    } else if (std::strcmp(argv[i], "--serve-batch") == 0) {
      serve_batch = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadline_ms = std::atoll(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--max-queue=", 12) == 0) {
      max_queue = std::atoll(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--slow-ms=", 10) == 0) {
      slow_ms = std::atoll(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--metrics-snapshot-ms=", 22) == 0) {
      metrics_snapshot_ms = std::atoll(argv[i] + 22);
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
      stats_json_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--check-json=", 13) == 0) {
      std::string text = ReadAll(argv[i] + 13);
      Status s = ValidateJson(text);
      if (!s.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i] + 13, s.message().c_str());
        return 1;
      }
      return 0;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--p1] [--tree] [--dot] [--adornments] [--eval] "
                 "[--eval-mode=interpret|compile] [--eval-threads=N] "
                 "[--profile] [--passes] [--disable-pass=NAME ...] "
                 "[--reprepare] [--trace=FILE] [--stats-json=FILE] <file|->\n"
                 "       %s --list-passes\n"
                 "       %s --check-json=FILE\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  // The full unit: the named source plus any --facts side file (plain
  // ground facts appended before the parse, so they go through the same
  // validation as inline facts).
  std::string source = ReadAll(path);
  if (!facts_path.empty()) {
    source += "\n";
    source += ReadAll(facts_path.c_str());
  }

  std::vector<FactDelta> delta_batches;
  if (!delta_path.empty() &&
      !ParseDeltaFile(ReadAll(delta_path.c_str()), delta_path,
                      &delta_batches)) {
    return 2;
  }

  if (serve_batch) {
    // Serve-batch mode: stand up an in-process sqo_server on a loopback
    // ephemeral port and drive it through the client library, so the batch
    // exercises the real wire protocol end to end. Every request shares
    // one parsed session and one optimizer pipeline run (single-flight)
    // server-side, and evaluates against the session's shared frozen EDB
    // snapshot. Requests are pipelined on one connection; the server
    // answers in completion order.
    MetricsRegistry metrics;
    ServerOptions server_options;
    server_options.host = "127.0.0.1";
    server_options.port = 0;
    server_options.service.threads = threads;
    server_options.service.eval_threads = eval_threads;
    server_options.service.max_queue = static_cast<size_t>(max_queue);
    server_options.service.metrics = &metrics;
    server_options.service.slow_query_ms = slow_ms;
    server_options.service.metrics_snapshot_ms = metrics_snapshot_ms;
    Server server(std::move(server_options));
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.message().c_str());
      return 2;
    }

    ClientOptions client_options;
    client_options.port = server.port();
    Result<Client> connected = Client::Connect(client_options);
    if (!connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.status().message().c_str());
      return 2;
    }
    Client& client = connected.value();

    QueryParams params;
    params.source = source;
    params.deadline_ms = deadline_ms;
    params.eval_mode =
        eval_mode == EvalMode::kInterpret ? "interpret" : "compile";
    params.disabled_passes = disabled_passes;
    // With --trace, every request collects its own span tree; the trees
    // merge below into one Chrome trace, one lane per request.
    params.trace = !trace_path.empty();

    std::vector<uint64_t> ids;
    ids.reserve(static_cast<size_t>(requests));
    for (int i = 0; i < requests; ++i) {
      Result<uint64_t> sent = client.SendQuery(params);
      if (!sent.ok()) {
        std::fprintf(stderr, "send failed: %s\n",
                     sent.status().message().c_str());
        return 2;
      }
      ids.push_back(sent.value());
    }

    int ok = 0, rejected = 0, cancelled = 0, deadline_exceeded = 0,
        failed = 0;
    size_t answers = 0;
    bool all_match = true, have_answers = false;
    std::vector<Tuple> first_answers;
    std::vector<RequestTrace> traces;
    for (uint64_t id : ids) {
      Result<ServerMessage> reply = client.WaitFor(id);
      if (!reply.ok()) {
        std::fprintf(stderr, "connection failed: %s\n",
                     reply.status().message().c_str());
        return 2;
      }
      Response response = std::move(reply.value().query);
      if (!response.spans.empty()) {
        RequestTrace trace;
        trace.trace_id = response.trace_id;
        trace.spans = std::move(response.spans);
        traces.push_back(std::move(trace));
      }
      switch (response.status.code()) {
        case StatusCode::kOk:
          ++ok;
          if (!have_answers) {
            first_answers = response.answers;
            answers = first_answers.size();
            have_answers = true;
          } else if (response.answers != first_answers) {
            all_match = false;
          }
          break;
        case StatusCode::kResourceExhausted:
          ++rejected;
          break;
        case StatusCode::kCancelled:
          ++cancelled;
          break;
        case StatusCode::kDeadlineExceeded:
          ++deadline_exceeded;
          break;
        default:
          ++failed;
          std::fprintf(stderr, "request failed [%s]: %s\n",
                       StatusCodeName(response.status.code()),
                       response.status.message().c_str());
          break;
      }
    }
    client.Close();
    server.Stop();

    std::printf("%% serve-batch: threads=%d max_queue=%lld requests=%d "
                "deadline_ms=%lld\n",
                threads, max_queue, requests, deadline_ms);
    std::printf("%% serve-batch: ok=%d rejected=%d cancelled=%d "
                "deadline_exceeded=%d failed=%d\n",
                ok, rejected, cancelled, deadline_exceeded, failed);
    if (have_answers) {
      std::printf("%% serve-batch: answers=%zu (all match: %s)\n", answers,
                  all_match ? "yes" : "NO");
    }
    HistogramSnapshot queue_wait =
        metrics.GetHistogram("service/queue_wait_ns")->Snapshot();
    HistogramSnapshot execute =
        metrics.GetHistogram("service/execute_ns")->Snapshot();
    std::printf("%% serve-batch: queue_wait p50=%s p95=%s p99=%s max=%s\n",
                FormatDurationNs(queue_wait.p50()).c_str(),
                FormatDurationNs(queue_wait.p95()).c_str(),
                FormatDurationNs(queue_wait.p99()).c_str(),
                FormatDurationNs(queue_wait.max).c_str());
    std::printf("%% serve-batch: execute    p50=%s p95=%s p99=%s max=%s\n",
                FormatDurationNs(execute.p50()).c_str(),
                FormatDurationNs(execute.p95()).c_str(),
                FormatDurationNs(execute.p99()).c_str(),
                FormatDurationNs(execute.max).c_str());

    // The structured event log: slow queries (with their trace ids and
    // EXPLAIN summaries), errors, rejections, metric snapshots.
    std::vector<LogEvent> events = server.service().event_log().Events();
    if (!events.empty()) {
      std::printf(
          "%% serve-batch: %zu event(s), slow_queries=%zu\n", events.size(),
          server.service().event_log().EventsOfKind("slow_query").size());
      for (const LogEvent& event : events) {
        std::printf("%% event: %s\n", RenderLogEvent(event).c_str());
      }
    }

    if (!trace_path.empty() &&
        !WriteAll(trace_path, ExportChromeTrace(traces))) {
      return 2;
    }
    if (!stats_json_path.empty() &&
        !WriteAll(stats_json_path, ExportMetricsJson(metrics))) {
      return 2;
    }
    return ok == requests && all_match ? 0 : 1;
  }

  // The observability layer: spans when tracing or profiling was requested,
  // metrics whenever any report needs them. Both are handed to the engine,
  // so engine counters (cache hits, executions) land in the same export.
  Tracer tracer(!trace_path.empty() || do_profile);
  MetricsRegistry metrics;
  EngineOptions engine_options;
  engine_options.tracer = &tracer;
  engine_options.metrics = &metrics;
  Engine engine(engine_options);

  Result<Session> opened = engine.Open(source);
  if (!opened.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 opened.status().message().c_str());
    return 2;
  }
  Session& session = opened.value();

  SqoOptions sqo_options;
  sqo_options.disabled_passes = disabled_passes;
  // The dump flags ask for the rendered diagnostics, which the pipeline
  // only materializes on request.
  sqo_options.capture_dumps = show_adornments || show_tree || show_dot;

  Result<const PreparedProgram*> prepared = session.Prepare(sqo_options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "optimizer error [%s]: %s\n",
                 StatusCodeName(prepared.status().code()),
                 prepared.status().message().c_str());
    return 2;
  }
  if (reprepare) {
    // Same program, ICs, and options: served from the session cache with
    // zero re-optimization (see engine/prepare_cache_hits in --stats-json).
    prepared = session.Prepare(sqo_options);
  }
  const SqoReport& report = prepared.value()->report;

  if (show_adornments) {
    std::printf("%% adorned predicates\n%s\n",
                report.adornment_dump.c_str());
  }
  if (show_tree) {
    std::printf("%% query tree\n%s\n", report.tree_dump.c_str());
  }
  if (show_dot) {
    std::printf("%s", report.tree_dot.c_str());
    return 0;
  }
  if (show_passes) {
    std::printf("%% pass pipeline\n");
    for (const PassRunInfo& info : report.pass_runs) {
      std::printf("%%   %-14s %-8s %8lld ns  rules=%d\n", info.name.c_str(),
                  info.disabled ? "disabled"
                                : (info.skipped ? "skipped" : "ran"),
                  static_cast<long long>(info.wall_ns), info.rules_after);
    }
  }
  std::printf("%s", show_p1 ? report.adorned.ToString().c_str()
                            : report.rewritten.ToString().c_str());
  if (!report.query_satisfiable) {
    std::printf("%% note: the query is unsatisfiable w.r.t. the ICs\n");
  }

  // EXPLAIN starts from the plan side of the optimizer report; ANALYZE
  // joins in the rewritten program's runtime below, when --eval runs it.
  ExplainReport explain =
      BuildExplainReport(report, prepared.value()->compiled.get());
  if (do_analyze) do_eval = true;  // ANALYZE means "and actually run it"

  int exit_code = 0;
  if (do_eval && !session.facts().empty()) {
    Database edb = session.MakeEdb();
    if (!SatisfiesAll(edb, session.ics())) {
      std::fprintf(stderr,
                   "warning: the facts violate the integrity constraints; "
                   "equivalence is not guaranteed\n");
    }
    EvalStats original_stats, rewritten_stats;
    std::vector<RuleProfile> original_profiles, rewritten_profiles;
    EvalOptions eval_options;
    eval_options.mode = eval_mode;
    eval_options.threads = eval_threads;
    eval_options.profile_rules = do_profile || do_analyze;
    ParallelEvalStats parallel_stats;
    eval_options.parallel_stats = &parallel_stats;

    eval_options.metrics_prefix = "eval/original";
    auto original = session
                        .ExecuteOriginal(edb, eval_options, &original_stats,
                                         &original_profiles)
                        .take();
    eval_options.metrics_prefix = "eval/rewritten";
    const int64_t exec_start_ns = NowNs();
    auto rewritten = session
                         .Execute(*prepared.value(), edb, eval_options,
                                  &rewritten_stats, &rewritten_profiles)
                         .take();
    const int64_t execute_ns = NowNs() - exec_start_ns;
    AttachRuntime(report, rewritten_stats, rewritten_profiles,
                  static_cast<int64_t>(rewritten.size()), execute_ns,
                  &explain);
    AttachParallel(parallel_stats, &explain);
    std::printf("%% answers: %zu (match: %s)\n", original.size(),
                original == rewritten ? "yes" : "NO");
    std::printf("%% original:  %s\n%% rewritten: %s\n",
                original_stats.ToString().c_str(),
                rewritten_stats.ToString().c_str());
    metrics.GetGauge("cli/answers")
        ->Set(static_cast<int64_t>(original.size()));
    metrics.GetGauge("cli/answers_match")->Set(original == rewritten ? 1 : 0);
    if (do_profile) {
      std::printf("%% per-rule profile, original program P:\n%s",
                  RenderRuleProfileTable(original_profiles).c_str());
      std::printf("%% per-rule profile, rewritten program P':\n%s",
                  RenderRuleProfileTable(rewritten_profiles).c_str());
    }
    exit_code = original == rewritten ? 0 : 1;
  }

  if (!delta_batches.empty()) {
    // Incremental-view replay: pin the prepared program to a materialized
    // view, apply each batch, and referee the maintained answers against a
    // from-scratch recompute of the same EDB.
    MaterializeOptions materialize;
    materialize.eval.mode = eval_mode;
    Result<MaterializedView*> made =
        session.Materialize(*prepared.value(), materialize);
    if (!made.ok()) {
      std::fprintf(stderr, "materialize error [%s]: %s\n",
                   StatusCodeName(made.status().code()),
                   made.status().message().c_str());
      return 2;
    }
    MaterializedView* view = made.value();
    EvalOptions eval_options;
    eval_options.mode = eval_mode;
    int64_t maintain_total_ns = 0, recompute_total_ns = 0;
    bool all_match = true;
    int batch_no = 0;
    for (const FactDelta& delta : delta_batches) {
      ++batch_no;
      const int64_t t0 = NowNs();
      Result<MaintainStats> stats = view->ApplyDelta(delta);
      const int64_t maintain_ns = NowNs() - t0;
      if (!stats.ok()) {
        std::fprintf(stderr, "delta batch %d rejected [%s]: %s\n", batch_no,
                     StatusCodeName(stats.status().code()),
                     stats.status().message().c_str());
        return 1;
      }
      maintain_total_ns += maintain_ns;
      Database changed = view->SnapshotEdb();
      const int64_t r0 = NowNs();
      Result<std::vector<Tuple>> fresh =
          session.Execute(*prepared.value(), changed, eval_options);
      const int64_t recompute_ns = NowNs() - r0;
      if (!fresh.ok()) {
        std::fprintf(stderr, "recompute failed on batch %d: %s\n", batch_no,
                     fresh.status().message().c_str());
        return 2;
      }
      recompute_total_ns += recompute_ns;
      std::vector<Tuple> answers = view->Answers();
      const bool match = answers == fresh.value();
      all_match = all_match && match;
      std::printf("%% delta batch %d: maintain %s recompute %s answers=%zu "
                  "(match: %s) | %s\n",
                  batch_no, FormatDurationNs(maintain_ns).c_str(),
                  FormatDurationNs(recompute_ns).c_str(), answers.size(),
                  match ? "yes" : "NO", stats.value().Summary().c_str());
    }
    const double speedup =
        maintain_total_ns > 0
            ? static_cast<double>(recompute_total_ns) /
                  static_cast<double>(maintain_total_ns)
            : 0.0;
    std::printf("%% apply-delta: %d batch(es) to v%lld, maintain %s, "
                "recompute %s (%.1fx), match: %s\n",
                batch_no, static_cast<long long>(view->version()),
                FormatDurationNs(maintain_total_ns).c_str(),
                FormatDurationNs(recompute_total_ns).c_str(), speedup,
                all_match ? "yes" : "NO");
    metrics.GetGauge("cli/delta_batches")->Set(batch_no);
    metrics.GetGauge("cli/delta_match")->Set(all_match ? 1 : 0);
    AttachMaintenance(view->totals(), view->last_batch(),
                      view->batches_applied(), &explain);
    if (!all_match) exit_code = 1;
  }

  if (do_explain || do_analyze) {
    std::printf("%% explain%s\n%s", explain.analyzed ? " analyze" : "",
                explain.ToText().c_str());
    if (!analyze_path.empty() && !WriteAll(analyze_path, explain.ToJson())) {
      return 2;
    }
  }

  if (do_profile) {
    std::printf("%% span tree:\n%s", RenderSpanTree(tracer.spans()).c_str());
    std::string table = RenderHistogramTable(metrics.Snapshot());
    if (!table.empty()) {
      std::printf("%% latency histograms:\n%s", table.c_str());
    }
  }
  if (!trace_path.empty() &&
      !WriteAll(trace_path, ExportChromeTrace(tracer.spans()))) {
    return 2;
  }
  if (!stats_json_path.empty() &&
      !WriteAll(stats_json_path, ExportMetricsJson(metrics))) {
    return 2;
  }
  return exit_code;
}
