// sqo_server — the network front-end as a standalone daemon.
//
// Binds a TCP port and serves the length-prefixed JSON wire protocol
// (docs/protocol.md) over the concurrent QueryService: multi-tenant
// sessions, per-tenant admission quotas, named long-lived sessions with
// incremental view maintenance, and per-tenant metrics.
//
//   usage: sqo_server [--host=H] [--port=N] [--threads=N]
//                     [--eval-threads=N] [--max-queue=Q]
//                     [--token=NAME:TOKEN[:QUOTA] ...] [--slow-ms=S]
//                     [--metrics-snapshot-ms=M] [--max-frame-bytes=B]
//                     [--drain-log=FILE]
//
//     --host=H      bind address (default 127.0.0.1)
//     --port=N      TCP port; 0 (the default) picks an ephemeral port.
//                   The resolved port is announced on stdout as
//                   "listening on port N" once the server is accepting
//     --threads=N   request worker threads (default 4)
//     --eval-threads=N  intra-query parallelism: each request's semi-naive
//                   iterations run as N hash partitions on the engine's
//                   shared eval pool (default 1 = serial). Distinct from
//                   --threads, which sizes the request workers
//     --max-queue=Q admission queue bound (default 256)
//     --token=NAME:TOKEN[:QUOTA]  register a tenant (repeatable): clients
//                   presenting TOKEN in their hello run in namespace NAME
//                   with at most QUOTA requests in flight (0 or omitted =
//                   unlimited). With no --token flags the server is open:
//                   every client lands in tenant "default"
//     --slow-ms=S   slow-query log threshold (default off)
//     --metrics-snapshot-ms=M  periodic metric-delta events (default off)
//     --max-frame-bytes=B  per-frame payload ceiling (default 4 MiB)
//     --drain-log=FILE  where a graceful drain writes the retained event
//                   log, one JSON object per line (default stderr)
//
// SIGTERM and SIGINT begin a graceful drain: stop accepting, finish every
// in-flight request, flush the replies and the event log, then exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "src/net/server.h"

namespace {

sqod::Server* g_server = nullptr;

// Async-signal-safe: RequestDrain is one write(2) to the wake pipe.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

// Parses NAME:TOKEN[:QUOTA]; false on malformed input.
bool ParseTenantFlag(const char* spec, sqod::TenantConfig* out) {
  const char* colon1 = std::strchr(spec, ':');
  if (colon1 == nullptr || colon1 == spec) return false;
  out->name.assign(spec, colon1);
  const char* token = colon1 + 1;
  const char* colon2 = std::strchr(token, ':');
  if (colon2 == nullptr) {
    out->token = token;
    out->max_inflight = 0;
    return !out->token.empty();
  }
  if (colon2 == token) return false;
  out->token.assign(token, colon2);
  char* end = nullptr;
  long quota = std::strtol(colon2 + 1, &end, 10);
  if (end == colon2 + 1 || *end != '\0' || quota < 0) return false;
  out->max_inflight = static_cast<int>(quota);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqod;

  ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--host=", 7) == 0) {
      options.host = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      options.service.threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--eval-threads=", 15) == 0) {
      options.service.eval_threads = std::atoi(argv[i] + 15);
      if (options.service.eval_threads < 1) {
        std::fprintf(stderr, "--eval-threads must be >= 1\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--max-queue=", 12) == 0) {
      options.service.max_queue =
          static_cast<size_t>(std::atoll(argv[i] + 12));
    } else if (std::strncmp(argv[i], "--token=", 8) == 0) {
      TenantConfig tenant;
      if (!ParseTenantFlag(argv[i] + 8, &tenant)) {
        std::fprintf(stderr,
                     "malformed %s (expected --token=NAME:TOKEN[:QUOTA])\n",
                     argv[i]);
        return 2;
      }
      options.tenants.push_back(std::move(tenant));
    } else if (std::strncmp(argv[i], "--slow-ms=", 10) == 0) {
      options.service.slow_query_ms = std::atoll(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--metrics-snapshot-ms=", 22) == 0) {
      options.service.metrics_snapshot_ms = std::atoll(argv[i] + 22);
    } else if (std::strncmp(argv[i], "--max-frame-bytes=", 18) == 0) {
      options.max_frame_bytes =
          static_cast<size_t>(std::atoll(argv[i] + 18));
    } else if (std::strncmp(argv[i], "--drain-log=", 12) == 0) {
      options.drain_log_path = argv[i] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host=H] [--port=N] [--threads=N] "
                   "[--eval-threads=N] "
                   "[--max-queue=Q] [--token=NAME:TOKEN[:QUOTA] ...] "
                   "[--slow-ms=S] [--metrics-snapshot-ms=M] "
                   "[--max-frame-bytes=B] [--drain-log=FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  Server server(std::move(options));
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed [%s]: %s\n",
                 StatusCodeName(started.code()),
                 started.message().c_str());
    return 1;
  }

  g_server = &server;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  // The announce line is the readiness signal: tests and scripts parse it
  // for the resolved ephemeral port.
  std::printf("listening on port %u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  server.Wait();
  g_server = nullptr;
  return 0;
}
