#!/usr/bin/env bash
# Runs the Google-Benchmark suite and collects the JSON reports into a
# single dated file, BENCH_<date>.json, shaped as one object keyed by
# benchmark binary name (each value is that binary's native
# --benchmark_format=json output, context + benchmarks array).
#
# The E11 serving benchmarks attach latency-tail counters to each entry
# (lat_p50_ns / lat_p95_ns / lat_p99_ns / lat_max_ns, from the
# service/execute_ns histogram), so the report carries the latency
# distribution under contention, not just the mean wall time.
#
#   usage: scripts/bench_report.sh [build-dir] [benchmark-filter]
#
#     build-dir          where the bench_* binaries live (default: build)
#     benchmark-filter   forwarded as --benchmark_filter=... (default: all)
#
# Extra knobs via environment:
#     OUT=path.json      override the output file name
#     BENCH_ARGS="..."   extra flags for every binary (e.g. repetitions)
set -euo pipefail

build_dir="${1:-build}"
filter="${2:-}"
out="${OUT:-BENCH_$(date +%Y%m%d).json}"

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found; build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 2
fi

benches=()
for bin in "${build_dir}"/bench/bench_*; do
  [[ -x "${bin}" && ! -d "${bin}" ]] && benches+=("${bin}")
done
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries under ${build_dir}/bench" >&2
  exit 2
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

args=(--benchmark_format=json)
[[ -n "${filter}" ]] && args+=("--benchmark_filter=${filter}")
# shellcheck disable=SC2206
[[ -n "${BENCH_ARGS:-}" ]] && args+=(${BENCH_ARGS})

{
  printf '{\n'
  first=1
  for bin in "${benches[@]}"; do
    name="$(basename "${bin}")"
    echo "running ${name}..." >&2
    # bench_e3_fig1 prints reproduced figures on stdout before the JSON;
    # benchmark JSON goes to --benchmark_out so prose never pollutes it.
    if ! "${bin}" "${args[@]}" "--benchmark_out=${tmp_dir}/${name}.json" \
        --benchmark_out_format=json > "${tmp_dir}/${name}.stdout" 2>&1; then
      echo "warning: ${name} failed, skipping" >&2
      continue
    fi
    # A filter matching nothing leaves an empty report; skip it.
    if [[ ! -s "${tmp_dir}/${name}.json" ]]; then
      echo "note: ${name} produced no report (filter matched nothing?)" >&2
      continue
    fi
    [[ ${first} -eq 0 ]] && printf ',\n'
    first=0
    printf '"%s": ' "${name}"
    cat "${tmp_dir}/${name}.json"
  done
  printf '\n}\n'
} > "${out}"

echo "wrote ${out}" >&2
