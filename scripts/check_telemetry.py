#!/usr/bin/env python3
"""End-to-end validation of the sqo_cli telemetry surface.

Drives two runs of the CLI against an example program and cross-checks the
artifacts they emit:

 1. A single run with --eval --profile --analyze --trace --stats-json:
    * the Chrome trace is well-formed (complete "X" events, numeric
      ts/dur, the expected optimizer/evaluator span names),
    * the EXPLAIN/ANALYZE JSON has the full pass pipeline with a
      consistent before/after shape chain, the plan counters, and the
      runtime section joined per rewritten rule,
    * every metric in the stats dump lives in a known namespace and each
      histogram carries the tail quartet (p50/p95/p99/max).

 2. A serve-batch run with --slow-ms=0 --trace: every slow-query-log line
    printed by the service names a trace id, and each of those ids appears
    in the merged per-request Chrome trace (its own tid lane) — the
    log-to-trace join the observability story promises.

Exits 0 when everything holds; prints the first failure and exits 1
otherwise. Stdlib only, so it runs anywhere CMake found a python3.

usage: check_telemetry.py --cli <sqo_cli> --input <program.dl> --work-dir <dir>
"""

import argparse
import json
import re
import subprocess
import sys

# Every metric name the engine may emit lives under one of these roots;
# a new namespace is a deliberate API change, so the check fails loudly.
METRIC_NAMESPACES = ("cli", "engine", "eval", "net", "obs", "service",
                     "sqo", "tenant")

# The 8-pass Levy–Sagiv pipeline, in order.
EXPECTED_PASSES = [
    "validate", "normalize", "fd_rewrite", "local_rewrite",
    "adorn", "tree", "residues", "prune",
]

HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")

SLOW_EVENT_RE = re.compile(r"\[slow_query\] trace=([0-9a-f]{16})")


def fail(message):
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(args):
    proc = subprocess.run(args, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(args)} exited {proc.returncode}:\n"
             f"{proc.stdout}\n{proc.stderr}")
    return proc.stdout


def load_json(path, what):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{what} at {path} is unreadable or invalid JSON: {error}")


def check_chrome_trace(path, required_names, what):
    """Returns the parsed event list after structural validation."""
    doc = load_json(path, what)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{what}: traceEvents missing or empty")
    for event in events:
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"{what}: event missing '{key}': {event}")
        if event["ph"] != "X":
            fail(f"{what}: expected complete events (ph=X), got {event['ph']}")
        for key in ("ts", "dur"):
            if not isinstance(event[key], (int, float)) or event[key] < 0:
                fail(f"{what}: non-numeric or negative {key}: {event}")
    names = {event["name"] for event in events}
    missing = set(required_names) - names
    if missing:
        fail(f"{what}: missing span names {sorted(missing)}; have "
             f"{sorted(names)}")
    return events


def check_explain(path):
    doc = load_json(path, "explain JSON")
    passes = doc.get("passes")
    if not isinstance(passes, list):
        fail("explain: 'passes' missing")
    if [p.get("name") for p in passes] != EXPECTED_PASSES:
        fail(f"explain: pass list mismatch: {[p.get('name') for p in passes]}")
    for field in ("rules", "literals", "negations", "comparisons"):
        for prev, curr in zip(passes, passes[1:]):
            if prev[f"{field}_after"] != curr[f"{field}_before"]:
                fail(f"explain: {field} shape chain broken between "
                     f"{prev['name']} and {curr['name']}")
    plan = doc.get("plan")
    if not isinstance(plan, dict):
        fail("explain: 'plan' missing")
    for key in ("optimize_ns", "satisfiable", "adorned_predicates",
                "residue_rules_deleted", "intern_hits", "memo_hits"):
        if key not in plan:
            fail(f"explain: plan missing '{key}'")
    runtime = doc.get("runtime")
    if not isinstance(runtime, dict):
        fail("explain: 'runtime' missing (did --analyze evaluate?)")
    rules = runtime.get("rules")
    if not isinstance(rules, list) or not rules:
        fail("explain: runtime.rules missing or empty")
    for row in rules:
        for key in ("rule_index", "rule", "firings", "derived", "time_ns"):
            if key not in row:
                fail(f"explain: rule row missing '{key}': {row}")
    # The per-rule join must cover the aggregate, not sample it.
    firings = sum(row["firings"] for row in rules)
    if firings != runtime.get("rule_firings"):
        fail(f"explain: per-rule firings {firings} != aggregate "
             f"{runtime.get('rule_firings')}")


def check_stats(path):
    doc = load_json(path, "stats JSON")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"stats: '{section}' missing")
        for name in doc[section]:
            root = name.split("/", 1)[0]
            if root not in METRIC_NAMESPACES:
                fail(f"stats: metric '{name}' outside the known namespaces "
                     f"{METRIC_NAMESPACES}")
    for name, hist in doc["histograms"].items():
        for field in HISTOGRAM_FIELDS:
            if field not in hist:
                fail(f"stats: histogram '{name}' missing '{field}'")
        if not (hist["min"] <= hist["p50"] <= hist["p95"]
                <= hist["p99"] <= hist["max"]):
            fail(f"stats: histogram '{name}' tails not monotone: {hist}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", required=True)
    parser.add_argument("--input", required=True)
    parser.add_argument("--work-dir", required=True)
    opts = parser.parse_args()
    work = opts.work_dir.rstrip("/")

    # ---- single run: trace + EXPLAIN/ANALYZE + stats -------------------
    trace = f"{work}/telemetry_trace.json"
    explain = f"{work}/telemetry_explain.json"
    stats = f"{work}/telemetry_stats.json"
    stdout = run_cli([
        opts.cli, "--eval", "--profile", f"--trace={trace}",
        f"--analyze={explain}", f"--stats-json={stats}", opts.input,
    ])
    if "== pass pipeline ==" not in stdout or "== runtime ==" not in stdout:
        fail("single run: --analyze text report missing sections")
    check_chrome_trace(
        trace,
        ["sqo.optimize", "sqo.adorn", "sqo.residues", "eval.iteration"],
        "single-run trace")
    check_explain(explain)
    check_stats(stats)

    # ---- serve-batch: slow-query log joins the merged trace ------------
    serve_trace = f"{work}/telemetry_serve_trace.json"
    serve_stats = f"{work}/telemetry_serve_stats.json"
    requests = 6
    stdout = run_cli([
        opts.cli, "--serve-batch", "--threads=4", f"--requests={requests}",
        "--slow-ms=0", f"--trace={serve_trace}",
        f"--stats-json={serve_stats}", opts.input,
    ])
    slow_ids = SLOW_EVENT_RE.findall(stdout)
    if len(slow_ids) != requests:
        fail(f"serve-batch: expected {requests} slow-query log lines, "
             f"got {len(slow_ids)}:\n{stdout}")
    if len(set(slow_ids)) != requests:
        fail(f"serve-batch: slow-query trace ids not distinct: {slow_ids}")
    if "sat=yes" not in stdout:
        fail("serve-batch: slow-query entries lack the explain summary")

    events = check_chrome_trace(
        serve_trace,
        ["request", "request.admission", "request.queue",
         "request.prepare", "request.execute"],
        "serve-batch trace")
    traced = set()
    for event in events:
        trace_id = event.get("args", {}).get("trace_id")
        if not isinstance(trace_id, str) or not re.fullmatch(
                r"[0-9a-f]{16}", trace_id):
            fail(f"serve-batch trace: event lacks a hex args.trace_id: "
                 f"{event}")
        traced.add(trace_id)
    missing = set(slow_ids) - traced
    if missing:
        fail(f"serve-batch: slow-query ids {sorted(missing)} absent from "
             f"the merged trace (has {sorted(traced)})")
    lanes = {event["tid"] for event in events}
    if len(lanes) != requests:
        fail(f"serve-batch trace: expected {requests} tid lanes, "
             f"got {sorted(lanes)}")
    check_stats(serve_stats)

    print(f"check_telemetry: OK ({requests} traces joined to the slow-query "
          f"log; explain chain and metric namespaces verified)")


if __name__ == "__main__":
    main()
