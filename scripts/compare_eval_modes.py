#!/usr/bin/env python3
"""Compare interpret-mode vs compile-mode benchmark reports.

Takes two Google-Benchmark JSON reports produced from the same binary and
filter — one run with SQOD_EVAL_MODE=interpret, one with
SQOD_EVAL_MODE=compile (see bench/bench_common.h) — matches entries by
benchmark name, and fails if the compiled engine is slower than the
interpreter by more than the allowed regression on any benchmark.

The point is not that compiled must win everywhere (tiny fixpoints are
dominated by setup), but that it must never meaningfully lose: the compiled
bytecode path is the default, and the interpreter is the fallback.

  usage: compare_eval_modes.py interpret.json compile.json
             [--max-regress 0.10] [--out comparison.json]

Exit codes: 0 = within bounds, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys

# Google Benchmark time units, normalized to nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {name: real_time_ns} for the report's aggregate-free runs.

    With --benchmark_repetitions the same name appears once per repetition;
    we keep the minimum — machine noise is one-sided additive, so min-of-N
    is the stable estimator for a regression gate.
    """
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write("error: cannot read %s: %s\n" % (path, e))
        sys.exit(2)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is None or real_time is None:
            continue
        ns = real_time * _UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        if name not in times or ns < times[name]:
            times[name] = ns
    return times


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("interpret_json")
    parser.add_argument("compile_json")
    parser.add_argument("--max-regress", type=float, default=0.10,
                        help="allowed compile-vs-interpret slowdown "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--out", help="write the comparison table as JSON")
    args = parser.parse_args()

    interpret = load_benchmarks(args.interpret_json)
    compiled = load_benchmarks(args.compile_json)
    common = sorted(set(interpret) & set(compiled))
    if not common:
        sys.stderr.write("error: no common benchmarks between reports\n")
        sys.exit(2)

    rows = []
    regressions = []
    for name in common:
        interp_ns = interpret[name]
        compile_ns = compiled[name]
        # speedup > 1 means compiled is faster.
        speedup = interp_ns / compile_ns if compile_ns > 0 else float("inf")
        regressed = compile_ns > interp_ns * (1.0 + args.max_regress)
        rows.append({
            "name": name,
            "interpret_ns": interp_ns,
            "compile_ns": compile_ns,
            "speedup": round(speedup, 3),
            "regressed": regressed,
        })
        if regressed:
            regressions.append(name)

    width = max(len(r["name"]) for r in rows)
    print("%-*s  %14s  %14s  %8s" % (width, "benchmark", "interpret",
                                     "compile", "speedup"))
    for r in rows:
        print("%-*s  %12.0fns  %12.0fns  %7.2fx%s"
              % (width, r["name"], r["interpret_ns"], r["compile_ns"],
                 r["speedup"], "  REGRESSED" if r["regressed"] else ""))

    if args.out:
        with open(args.out, "w") as f:
            json.dump({"max_regress": args.max_regress,
                       "benchmarks": rows,
                       "regressions": regressions}, f, indent=2)
            f.write("\n")

    if regressions:
        sys.stderr.write(
            "error: compiled mode regressed >%.0f%% on %d benchmark(s): %s\n"
            % (args.max_regress * 100, len(regressions),
               ", ".join(regressions)))
        sys.exit(1)
    print("ok: compiled within %.0f%% of interpret on all %d benchmarks"
          % (args.max_regress * 100, len(rows)))


if __name__ == "__main__":
    main()
