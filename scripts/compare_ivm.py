#!/usr/bin/env python3
"""Gate incremental view maintenance against the recompute baseline.

Takes one Google-Benchmark JSON report from bench/bench_e12_ivm (which
contains paired BM_E12_Maintain* / BM_E12_Recompute* entries driven by
identical workloads and delta sequences), matches each Maintain entry with
its Recompute twin, and fails unless maintenance is at least --min-speedup
times faster on every gated point.

Gated points are the low-churn rows (churn per-mille <= --churn-le, default
10 = 1%) at the largest database size present for each family: that is the
E12 claim — at small churn on a big database, maintaining the materialized
view must beat recomputing it by >= 5x. High-churn rows are reported but
not gated; past the crossover the engine falls back to recompute anyway
(ApplyDeltaOptions::recompute_fraction), so losing there is expected.

  usage: compare_ivm.py e12.json [--min-speedup 5.0] [--churn-le 10]
             [--all-sizes] [--out comparison.json]

Exit codes: 0 = all gated points pass, 1 = speedup shortfall, 2 = bad input.
"""

import argparse
import json
import re
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# BM_E12_MaintainJoin2/4096/10 -> family Join2, size 4096, churn 10.
_NAME_RE = re.compile(r"^BM_E12_(Maintain|Recompute)(\w+)/(\d+)/(\d+)$")


def load_benchmarks(path):
    """Returns {name: real_time_ns}, min over repetitions (see
    compare_eval_modes.py for why min-of-N)."""
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write("error: cannot read %s: %s\n" % (path, e))
        sys.exit(2)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is None or real_time is None:
            continue
        ns = real_time * _UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        if name not in times or ns < times[name]:
            times[name] = ns
    return times


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report_json")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required maintain-vs-recompute speedup on "
                             "gated points (default 5.0)")
    parser.add_argument("--churn-le", type=int, default=10,
                        help="gate only rows with churn per-mille <= this "
                             "(default 10 = 1%%)")
    parser.add_argument("--all-sizes", action="store_true",
                        help="gate every size, not just the largest per family")
    parser.add_argument("--out", help="write the comparison table as JSON")
    args = parser.parse_args()

    times = load_benchmarks(args.report_json)
    rows = []
    for name, maintain_ns in sorted(times.items()):
        m = _NAME_RE.match(name)
        if not m or m.group(1) != "Maintain":
            continue
        twin = name.replace("Maintain", "Recompute", 1)
        if twin not in times:
            sys.stderr.write("error: %s has no %s twin\n" % (name, twin))
            sys.exit(2)
        recompute_ns = times[twin]
        rows.append({
            "family": m.group(2),
            "size": int(m.group(3)),
            "churn_per_mille": int(m.group(4)),
            "maintain_ns": maintain_ns,
            "recompute_ns": recompute_ns,
            "speedup": round(recompute_ns / maintain_ns, 3)
            if maintain_ns > 0 else float("inf"),
        })
    if not rows:
        sys.stderr.write("error: no BM_E12_Maintain*/Recompute* pairs in %s\n"
                         % args.report_json)
        sys.exit(2)

    largest = {}
    for r in rows:
        largest[r["family"]] = max(largest.get(r["family"], 0), r["size"])
    failures = []
    for r in rows:
        r["gated"] = (r["churn_per_mille"] <= args.churn_le and
                      (args.all_sizes or r["size"] == largest[r["family"]]))
        if r["gated"] and r["speedup"] < args.min_speedup:
            failures.append(r)

    print("%-10s %8s %7s  %12s  %12s  %8s  %s"
          % ("family", "size", "churn", "maintain", "recompute", "speedup",
             "gate"))
    for r in rows:
        print("%-10s %8d %6.1f%%  %10.0fns  %10.0fns  %7.2fx  %s"
              % (r["family"], r["size"], r["churn_per_mille"] / 10.0,
                 r["maintain_ns"], r["recompute_ns"], r["speedup"],
                 ("FAIL" if r["speedup"] < args.min_speedup else "pass")
                 if r["gated"] else "-"))

    if args.out:
        with open(args.out, "w") as f:
            json.dump({"min_speedup": args.min_speedup,
                       "churn_le_per_mille": args.churn_le,
                       "rows": rows,
                       "failures": [r["family"] for r in failures]},
                      f, indent=2)
            f.write("\n")

    if failures:
        sys.stderr.write(
            "error: maintenance under %.1fx recompute on %d gated point(s)\n"
            % (args.min_speedup, len(failures)))
        sys.exit(1)
    gated = sum(1 for r in rows if r["gated"])
    print("ok: maintenance >= %.1fx recompute on all %d gated points"
          % (args.min_speedup, gated))


if __name__ == "__main__":
    main()
