#include "src/ast/atom.h"

#include <algorithm>

namespace sqod {

bool Atom::is_ground() const {
  return std::none_of(args_.begin(), args_.end(),
                      [](const Term& t) { return t.is_var(); });
}

void Atom::CollectVars(std::vector<VarId>* out) const {
  for (const Term& t : args_) {
    if (!t.is_var()) continue;
    if (std::find(out->begin(), out->end(), t.var()) == out->end()) {
      out->push_back(t.var());
    }
  }
}

bool Atom::operator==(const Atom& other) const {
  return pred_ == other.pred_ && args_ == other.args_;
}

size_t Atom::Hash() const {
  size_t h = std::hash<int32_t>()(pred_);
  for (const Term& t : args_) h = h * 1000003 + t.Hash();
  return h;
}

std::string Atom::ToString() const {
  std::string s = PredName(pred_);
  if (args_.empty()) return s;
  s += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) s += ", ";
    s += args_[i].ToString();
  }
  s += ")";
  return s;
}

std::string Literal::ToString() const {
  return negated ? "!" + atom.ToString() : atom.ToString();
}

}  // namespace sqod
