#ifndef SQOD_AST_ATOM_H_
#define SQOD_AST_ATOM_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/ast/term.h"

namespace sqod {

// Identifier of a predicate (interned name).
using PredId = SymbolId;

inline PredId InternPred(std::string_view name) {
  return GlobalStrings().Intern(name);
}
inline const std::string& PredName(PredId id) {
  return GlobalStrings().Name(id);
}

// A predicate atom p(t1, ..., tn).
class Atom {
 public:
  Atom() : pred_(-1) {}
  Atom(PredId pred, std::vector<Term> args)
      : pred_(pred), args_(std::move(args)) {}
  Atom(std::string_view pred, std::vector<Term> args)
      : pred_(InternPred(pred)), args_(std::move(args)) {}

  PredId pred() const { return pred_; }
  int arity() const { return static_cast<int>(args_.size()); }
  const std::vector<Term>& args() const { return args_; }
  const Term& arg(int i) const { return args_[i]; }
  Term* mutable_arg(int i) { return &args_[i]; }

  bool is_ground() const;
  // Appends the distinct variables of this atom, in order of first
  // occurrence, to `out` (skipping ones already present).
  void CollectVars(std::vector<VarId>* out) const;

  bool operator==(const Atom& other) const;
  bool operator!=(const Atom& other) const { return !(*this == other); }

  size_t Hash() const;
  std::string ToString() const;

 private:
  PredId pred_;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

// A positive or negated predicate atom. Negation is restricted to EDB
// predicates (checked by Program::Validate).
struct Literal {
  Atom atom;
  bool negated = false;

  Literal() = default;
  Literal(Atom a, bool neg) : atom(std::move(a)), negated(neg) {}
  static Literal Pos(Atom a) { return Literal(std::move(a), false); }
  static Literal Neg(Atom a) { return Literal(std::move(a), true); }

  bool operator==(const Literal& other) const {
    return negated == other.negated && atom == other.atom;
  }

  std::string ToString() const;
};

}  // namespace sqod

#endif  // SQOD_AST_ATOM_H_
