#include "src/ast/comparison.h"

#include <algorithm>

#include "src/base/check.h"

namespace sqod {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
  }
  SQOD_CHECK(false);
  return "?";
}

CmpOp NegateOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
  }
  SQOD_CHECK(false);
  return CmpOp::kEq;
}

CmpOp FlipOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    case CmpOp::kEq: return CmpOp::kEq;
    case CmpOp::kNe: return CmpOp::kNe;
  }
  SQOD_CHECK(false);
  return CmpOp::kEq;
}

bool EvalCmp(const Value& a, CmpOp op, const Value& b) {
  int c = a.Compare(b);
  switch (op) {
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
  }
  SQOD_CHECK(false);
  return false;
}

Comparison Comparison::Canonical() const {
  Comparison c = *this;
  if (c.op == CmpOp::kGt || c.op == CmpOp::kGe) c = c.Flipped();
  // For the symmetric operators, order the arguments canonically.
  if ((c.op == CmpOp::kEq || c.op == CmpOp::kNe) && !(c.lhs < c.rhs) &&
      c.lhs != c.rhs) {
    std::swap(c.lhs, c.rhs);
  }
  return c;
}

void Comparison::CollectVars(std::vector<VarId>* out) const {
  for (const Term* t : {&lhs, &rhs}) {
    if (!t->is_var()) continue;
    if (std::find(out->begin(), out->end(), t->var()) == out->end()) {
      out->push_back(t->var());
    }
  }
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + CmpOpName(op) + " " + rhs.ToString();
}

}  // namespace sqod
