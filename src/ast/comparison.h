#ifndef SQOD_AST_COMPARISON_H_
#define SQOD_AST_COMPARISON_H_

#include <string>
#include <vector>

#include "src/ast/term.h"

namespace sqod {

// The comparison predicates of order atoms (Section 2 of the paper).
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

// Returns the textual form ("<", "<=", ...).
const char* CmpOpName(CmpOp op);
// Negation over a dense total order: !(X < Y) == X >= Y, etc.
CmpOp NegateOp(CmpOp op);
// Argument swap: X < Y == Y > X, etc.
CmpOp FlipOp(CmpOp op);
// Evaluates `a op b` over the total order on values.
bool EvalCmp(const Value& a, CmpOp op, const Value& b);

// An order atom gamma theta delta where gamma, delta are variables or
// constants.
struct Comparison {
  Term lhs;
  CmpOp op = CmpOp::kEq;
  Term rhs;

  Comparison() = default;
  Comparison(Term l, CmpOp o, Term r)
      : lhs(std::move(l)), op(o), rhs(std::move(r)) {}

  // The logical negation over a dense order (always exists: the comparison
  // predicates are closed under negation).
  Comparison Negated() const { return Comparison(lhs, NegateOp(op), rhs); }
  // The same constraint with the arguments swapped.
  Comparison Flipped() const { return Comparison(rhs, FlipOp(op), lhs); }
  // A canonical orientation (lhs <= rhs by term order; kGt/kGe flipped away),
  // so syntactically different spellings of the same atom compare equal.
  Comparison Canonical() const;

  void CollectVars(std::vector<VarId>* out) const;

  bool operator==(const Comparison& other) const {
    return op == other.op && lhs == other.lhs && rhs == other.rhs;
  }

  std::string ToString() const;
};

}  // namespace sqod

#endif  // SQOD_AST_COMPARISON_H_
