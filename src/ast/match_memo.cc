#include "src/ast/match_memo.h"

namespace sqod {

MatchDelta ComputeMatchDelta(const Atom& pattern, const Atom& target) {
  MatchDelta delta;
  if (pattern.pred() != target.pred() ||
      pattern.arity() != target.arity()) {
    return delta;  // ok == false
  }
  for (int i = 0; i < pattern.arity(); ++i) {
    const Term& p = pattern.arg(i);
    const Term& t = target.arg(i);
    if (p.is_const()) {
      if (p != t) return MatchDelta();
      continue;
    }
    // Pattern variable: must bind consistently across positions.
    bool found = false;
    for (const auto& [var, term] : delta.bindings) {
      if (var == p.var()) {
        if (term != t) return MatchDelta();
        found = true;
        break;
      }
    }
    if (!found) delta.bindings.emplace_back(p.var(), t);
  }
  delta.ok = true;
  return delta;
}

bool ApplyMatchDelta(const MatchDelta& delta, Substitution* subst) {
  if (!delta.ok) return false;
  for (const auto& [var, term] : delta.bindings) {
    const Term* bound = subst->Lookup(var);
    if (bound != nullptr) {
      if (!(*bound == term)) return false;
    } else {
      subst->Bind(var, term);
    }
  }
  return true;
}

AtomId AtomMatchMemo::Intern(const Atom& a) {
  auto [it, inserted] = ids_.emplace(a, static_cast<AtomId>(atoms_.size()));
  if (inserted) {
    atoms_.push_back(a);
    ++intern_misses_;
  } else {
    ++intern_hits_;
  }
  return it->second;
}

const MatchDelta& AtomMatchMemo::Match(AtomId pattern, AtomId target) {
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(pattern)) << 32) |
      static_cast<uint32_t>(target);
  auto it = match_memo_.find(key);
  if (it != match_memo_.end()) {
    ++memo_hits_;
    return it->second;
  }
  ++memo_misses_;
  return match_memo_.emplace(key, ComputeMatchDelta(atoms_[pattern],
                                                    atoms_[target]))
      .first->second;
}

}  // namespace sqod
