#ifndef SQOD_AST_MATCH_MEMO_H_
#define SQOD_AST_MATCH_MEMO_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ast/atom.h"
#include "src/ast/substitution.h"

namespace sqod {

// Dense id of an atom hash-consed by an AtomMatchMemo.
using AtomId = int32_t;

// The one-way match of a pattern atom into a target atom, precomputed once:
// either no match exists, or the (deduplicated, first-occurrence-ordered)
// variable bindings that make subst(pattern) == target. Target variables
// are frozen, exactly like MatchInto.
struct MatchDelta {
  bool ok = false;
  std::vector<std::pair<VarId, Term>> bindings;
};

// Hash-consing interner for atoms plus a memo table for pairwise one-way
// matches. The partial-homomorphism searches (residue enumeration, CQ
// containment, EDB base triplets) call MatchInto on the same (pattern,
// target) pair once per enumeration *path* — exponentially often. Interning
// both atoms to dense ids and memoizing the pair's match delta makes every
// repeat a hash lookup, and turns the per-path work into a cheap
// compatibility check of the delta against the current bindings.
class AtomMatchMemo {
 public:
  AtomMatchMemo() = default;
  AtomMatchMemo(const AtomMatchMemo&) = delete;
  AtomMatchMemo& operator=(const AtomMatchMemo&) = delete;

  // Returns the dense id for `a`, interning on first use.
  AtomId Intern(const Atom& a);

  // The atom for a previously interned id (stable reference).
  const Atom& atom(AtomId id) const { return atoms_[id]; }

  // The memoized match of pattern into target (both previously interned).
  // The reference is stable until the memo is cleared.
  const MatchDelta& Match(AtomId pattern, AtomId target);

  // Number of distinct interned atoms.
  int size() const { return static_cast<int>(atoms_.size()); }

  int64_t intern_hits() const { return intern_hits_; }
  int64_t intern_misses() const { return intern_misses_; }
  int64_t memo_hits() const { return memo_hits_; }
  int64_t memo_misses() const { return memo_misses_; }

 private:
  std::unordered_map<Atom, AtomId, AtomHash> ids_;
  std::deque<Atom> atoms_;  // deque: stable references across interning
  std::unordered_map<uint64_t, MatchDelta> match_memo_;
  int64_t intern_hits_ = 0;
  int64_t intern_misses_ = 0;
  int64_t memo_hits_ = 0;
  int64_t memo_misses_ = 0;
};

// Computes the match delta of `pattern` into `target` from scratch (no
// memo): the single source of truth AtomMatchMemo::Match caches.
MatchDelta ComputeMatchDelta(const Atom& pattern, const Atom& target);

// Extends `subst` by the delta's bindings; false when the delta is a
// non-match or conflicts with an existing binding. On failure `subst` may be
// left partially extended — callers work on copies. Composing
// ComputeMatchDelta with ApplyMatchDelta is equivalent to MatchInto.
bool ApplyMatchDelta(const MatchDelta& delta, Substitution* subst);

}  // namespace sqod

#endif  // SQOD_AST_MATCH_MEMO_H_
