#include "src/ast/pattern.h"

#include <string>

namespace sqod {

EqualityPattern::EqualityPattern(const Atom& a) : pred_(a.pred()) {
  slots_.reserve(a.args().size());
  for (int i = 0; i < a.arity(); ++i) {
    const Term& t = a.arg(i);
    Slot slot;
    if (t.is_const()) {
      slot.first_occurrence = -1;
      slot.constant = t.value();
    } else {
      slot.first_occurrence = i;
      for (int j = 0; j < i; ++j) {
        if (a.arg(j) == t) {
          slot.first_occurrence = j;
          break;
        }
      }
    }
    slots_.push_back(slot);
  }
}

size_t EqualityPattern::Hash() const {
  size_t h = std::hash<int32_t>()(pred_);
  for (const Slot& s : slots_) {
    h = h * 1000003 + static_cast<size_t>(s.first_occurrence + 1);
    if (s.first_occurrence == -1) h = h * 31 + s.constant.Hash();
  }
  return h;
}

std::string EqualityPattern::ToString() const {
  return CanonicalAtom().ToString();
}

Atom EqualityPattern::CanonicalAtom() const {
  std::vector<Term> args;
  args.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.first_occurrence == -1) {
      args.push_back(Term::Const(s.constant));
    } else {
      args.push_back(Term::Var("V" + std::to_string(s.first_occurrence)));
    }
  }
  return Atom(pred_, std::move(args));
}

bool AtomsIsomorphic(const Atom& a, const Atom& b) {
  if (a.pred() != b.pred() || a.arity() != b.arity()) return false;
  return EqualityPattern(a) == EqualityPattern(b);
}

}  // namespace sqod
