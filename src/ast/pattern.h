#ifndef SQOD_AST_PATTERN_H_
#define SQOD_AST_PATTERN_H_

#include <string>
#include <vector>

#include "src/ast/atom.h"

namespace sqod {

// The *equality pattern* of an atom: which argument positions hold the same
// variable, and which hold which constant. Two atoms are isomorphic (same
// pattern) iff one can be obtained from the other by a variable renaming.
// Section 4.1 of the paper treats each EDB predicate as a collection of
// predicates, one per pattern; the query-tree equivalence relation also
// requires isomorphic atoms.
class EqualityPattern {
 public:
  // Computes the pattern of `a`: for each position, either the index of the
  // first position holding the same variable, or the constant.
  explicit EqualityPattern(const Atom& a);

  bool operator==(const EqualityPattern& other) const {
    return pred_ == other.pred_ && slots_ == other.slots_;
  }

  size_t Hash() const;
  std::string ToString() const;

  // A canonical atom with this pattern, using variables V0, V1, ...
  Atom CanonicalAtom() const;

 private:
  struct Slot {
    // >= 0: index of first position with the same variable; -1: constant.
    int first_occurrence;
    Value constant;  // meaningful iff first_occurrence == -1

    bool operator==(const Slot& other) const {
      if (first_occurrence != other.first_occurrence) return false;
      if (first_occurrence >= 0) return true;
      return constant == other.constant;
    }
  };
  PredId pred_;
  std::vector<Slot> slots_;
};

struct EqualityPatternHash {
  size_t operator()(const EqualityPattern& p) const { return p.Hash(); }
};

// True iff `a` and `b` have the same equality pattern.
bool AtomsIsomorphic(const Atom& a, const Atom& b);

}  // namespace sqod

#endif  // SQOD_AST_PATTERN_H_
