#include "src/ast/program.h"

#include <algorithm>

namespace sqod {

bool Program::IsIdb(PredId p) const {
  return std::any_of(rules_.begin(), rules_.end(),
                     [p](const Rule& r) { return r.head.pred() == p; });
}

bool Program::IsEdb(PredId p) const {
  if (IsIdb(p)) return false;
  for (const Rule& r : rules_) {
    for (const Literal& l : r.body) {
      if (l.atom.pred() == p) return true;
    }
  }
  return false;
}

std::set<PredId> Program::IdbPreds() const {
  std::set<PredId> out;
  for (const Rule& r : rules_) out.insert(r.head.pred());
  return out;
}

std::set<PredId> Program::EdbPreds() const {
  std::set<PredId> idb = IdbPreds();
  std::set<PredId> out;
  for (const Rule& r : rules_) {
    for (const Literal& l : r.body) {
      if (idb.count(l.atom.pred()) == 0) out.insert(l.atom.pred());
    }
  }
  return out;
}

int Program::Arity(PredId p) const {
  for (const Rule& r : rules_) {
    if (r.head.pred() == p) return r.head.arity();
    for (const Literal& l : r.body) {
      if (l.atom.pred() == p) return l.atom.arity();
    }
  }
  return -1;
}

std::vector<int> Program::RulesFor(PredId p) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(rules_.size()); ++i) {
    if (rules_[i].head.pred() == p) out.push_back(i);
  }
  return out;
}

std::vector<int> Program::InitializationRules() const {
  std::set<PredId> idb = IdbPreds();
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(rules_.size()); ++i) {
    bool has_idb = false;
    for (const Literal& l : rules_[i].body) {
      if (idb.count(l.atom.pred()) > 0) has_idb = true;
    }
    if (!has_idb) out.push_back(i);
  }
  return out;
}

namespace {

// Checks that all variables of `vars` appear in a positive, non-negated body
// literal of `body`.
Status CheckSafety(const std::vector<Literal>& body,
                   const std::vector<VarId>& must_be_bound,
                   const std::string& what) {
  std::vector<VarId> positive_vars;
  for (const Literal& l : body) {
    if (!l.negated) l.atom.CollectVars(&positive_vars);
  }
  for (VarId v : must_be_bound) {
    if (std::find(positive_vars.begin(), positive_vars.end(), v) ==
        positive_vars.end()) {
      return Status::InvalidArgument("unsafe " + what + ": variable " +
                           GlobalStrings().Name(v) +
                           " does not occur in a positive body literal");
    }
  }
  return Status::Ok();
}

Status CheckArities(const std::vector<Literal>& body, const Atom* head,
                    std::unordered_map<PredId, int>* arities) {
  auto check = [&](const Atom& a) -> Status {
    auto [it, inserted] = arities->emplace(a.pred(), a.arity());
    if (!inserted && it->second != a.arity()) {
      return Status::InvalidArgument("predicate " + PredName(a.pred()) +
                           " used with arities " + std::to_string(it->second) +
                           " and " + std::to_string(a.arity()));
    }
    return Status::Ok();
  };
  if (head != nullptr) {
    Status s = check(*head);
    if (!s.ok()) return s;
  }
  for (const Literal& l : body) {
    Status s = check(l.atom);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

Status Program::Validate() const {
  std::unordered_map<PredId, int> arities;
  std::set<PredId> idb = IdbPreds();
  for (const Rule& r : rules_) {
    Status s = CheckArities(r.body, &r.head, &arities);
    if (!s.ok()) return s.WithContext("in rule " + r.ToString());

    // Safety of head variables, negated literals and comparisons.
    std::vector<VarId> need;
    r.head.CollectVars(&need);
    for (const Literal& l : r.body) {
      if (l.negated) l.atom.CollectVars(&need);
    }
    for (const Comparison& c : r.comparisons) c.CollectVars(&need);
    s = CheckSafety(r.body, need, "rule");
    if (!s.ok()) return s.WithContext("in rule " + r.ToString());

  }
  if (query_ != -1 && idb.count(query_) == 0) {
    return Status::InvalidArgument("query predicate " + PredName(query_) +
                         " is not an IDB predicate");
  }
  // Negation on IDB predicates must be stratified.
  Result<std::map<PredId, int>> strata = Stratify();
  if (!strata.ok()) return strata.status();
  return Status::Ok();
}

bool Program::NegationOnEdbOnly() const {
  std::set<PredId> idb = IdbPreds();
  for (const Rule& r : rules_) {
    for (const Literal& l : r.body) {
      if (l.negated && idb.count(l.atom.pred()) > 0) return false;
    }
  }
  return true;
}

Result<std::map<PredId, int>> Program::Stratify() const {
  std::set<PredId> idb = IdbPreds();
  std::map<PredId, int> stratum;
  for (PredId p : idb) stratum[p] = 0;

  // Fixpoint over the constraints: for a rule h :- ..., b, ...
  //   positive IDB b: stratum(h) >= stratum(b)
  //   negated  IDB b: stratum(h) >= stratum(b) + 1
  // A program is stratified iff this converges; a stratum exceeding the
  // number of IDB predicates witnesses a negative cycle.
  const int limit = static_cast<int>(idb.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : rules_) {
      int& h = stratum[r.head.pred()];
      for (const Literal& l : r.body) {
        if (idb.count(l.atom.pred()) == 0) continue;
        int need = stratum[l.atom.pred()] + (l.negated ? 1 : 0);
        if (h < need) {
          h = need;
          changed = true;
          if (h > limit) {
            return Status::InvalidArgument(
                "program is not stratified: negation through the recursive "
                "cycle of " + PredName(r.head.pred()));
          }
        }
      }
    }
  }
  return stratum;
}

Status Program::ValidateConstraint(const Constraint& ic) const {
  std::set<PredId> idb = IdbPreds();
  for (const Literal& l : ic.body) {
    if (idb.count(l.atom.pred()) > 0) {
      return Status::InvalidArgument("IDB predicate " + PredName(l.atom.pred()) +
                           " in integrity constraint " + ic.ToString());
    }
  }
  std::vector<VarId> need;
  for (const Literal& l : ic.body) {
    if (l.negated) l.atom.CollectVars(&need);
  }
  for (const Comparison& c : ic.comparisons) c.CollectVars(&need);
  Status s = CheckSafety(ic.body, need, "integrity constraint");
  if (!s.ok()) return s.WithContext("in " + ic.ToString());
  return Status::Ok();
}

std::string Program::ToString() const {
  std::string s;
  for (const Rule& r : rules_) {
    s += r.ToString();
    s += "\n";
  }
  if (query_ != -1) {
    s += "?- " + PredName(query_) + ".\n";
  }
  return s;
}

}  // namespace sqod
