#ifndef SQOD_AST_PROGRAM_H_
#define SQOD_AST_PROGRAM_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/rule.h"
#include "src/base/status.h"

namespace sqod {

// A datalog program: a set of rules plus a designated query predicate.
// EDB predicates appear only in rule bodies; IDB predicates appear in heads.
class Program {
 public:
  Program() = default;

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  void SetQuery(PredId pred) { query_ = pred; }
  void SetQuery(std::string_view name) { query_ = InternPred(name); }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>* mutable_rules() { return &rules_; }
  PredId query() const { return query_; }

  // Predicate classification, derived from the rules.
  bool IsIdb(PredId p) const;
  bool IsEdb(PredId p) const;
  std::set<PredId> IdbPreds() const;
  std::set<PredId> EdbPreds() const;

  // Arity of `p` as used in this program, or -1 if `p` does not occur.
  int Arity(PredId p) const;

  // Rules whose head predicate is `p` (indices into rules()).
  std::vector<int> RulesFor(PredId p) const;

  // Initialization rules: rules with no IDB predicate in the body
  // (Proposition 5.2 of the paper).
  std::vector<int> InitializationRules() const;

  // Checks well-formedness:
  //  * consistent arities per predicate,
  //  * negation is stratified (negation on EDB predicates is always fine;
  //    negation on IDB predicates must not cross a recursive cycle),
  //  * safety: every head / negated / comparison variable occurs in a
  //    positive body literal,
  //  * the query predicate (if set) is an IDB predicate.
  //
  // Note: the SQO pipeline (OptimizeProgram) additionally requires negation
  // to be on EDB predicates only, the paper's Section 2 setting; stratified
  // IDB negation is an evaluator-level extension.
  Status Validate() const;

  // Assigns a stratum to every IDB predicate such that positive
  // dependencies stay within or below the stratum and negative dependencies
  // point strictly below. Returns an error for non-stratified programs.
  Result<std::map<PredId, int>> Stratify() const;

  // True if all negated body literals use EDB predicates (the paper's
  // setting).
  bool NegationOnEdbOnly() const;

  // Same checks for an IC against this program's predicates: body has no IDB
  // predicate; safety of negation and comparisons.
  Status ValidateConstraint(const Constraint& ic) const;

  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
  PredId query_ = -1;
};

}  // namespace sqod

#endif  // SQOD_AST_PROGRAM_H_
