#include "src/ast/rule.h"

namespace sqod {

namespace {

std::vector<const Atom*> FilterAtoms(const std::vector<Literal>& lits,
                                     bool negated) {
  std::vector<const Atom*> out;
  for (const Literal& l : lits) {
    if (l.negated == negated) out.push_back(&l.atom);
  }
  return out;
}

std::string BodyToString(const std::vector<Literal>& body,
                         const std::vector<Comparison>& comparisons) {
  std::string s;
  bool first = true;
  for (const Literal& l : body) {
    if (!first) s += ", ";
    first = false;
    s += l.ToString();
  }
  for (const Comparison& c : comparisons) {
    if (!first) s += ", ";
    first = false;
    s += c.ToString();
  }
  return s;
}

}  // namespace

std::vector<const Atom*> Rule::PositiveAtoms() const {
  return FilterAtoms(body, /*negated=*/false);
}

std::vector<const Atom*> Rule::NegatedAtoms() const {
  return FilterAtoms(body, /*negated=*/true);
}

std::vector<VarId> Rule::Vars() const {
  std::vector<VarId> vars;
  head.CollectVars(&vars);
  for (const Literal& l : body) l.atom.CollectVars(&vars);
  for (const Comparison& c : comparisons) c.CollectVars(&vars);
  return vars;
}

std::vector<VarId> Rule::BodyVars() const {
  std::vector<VarId> vars;
  for (const Literal& l : body) l.atom.CollectVars(&vars);
  for (const Comparison& c : comparisons) c.CollectVars(&vars);
  return vars;
}

std::string Rule::ToString() const {
  if (body.empty() && comparisons.empty()) return head.ToString() + ".";
  return head.ToString() + " :- " + BodyToString(body, comparisons) + ".";
}

std::vector<const Atom*> Constraint::PositiveAtoms() const {
  return FilterAtoms(body, /*negated=*/false);
}

std::vector<const Atom*> Constraint::NegatedAtoms() const {
  return FilterAtoms(body, /*negated=*/true);
}

std::vector<VarId> Constraint::Vars() const {
  std::vector<VarId> vars;
  for (const Literal& l : body) l.atom.CollectVars(&vars);
  for (const Comparison& c : comparisons) c.CollectVars(&vars);
  return vars;
}

bool Constraint::IsPlain() const {
  if (!comparisons.empty()) return false;
  for (const Literal& l : body) {
    if (l.negated) return false;
  }
  return true;
}

std::string Constraint::ToString() const {
  return ":- " + BodyToString(body, comparisons) + ".";
}

}  // namespace sqod
