#ifndef SQOD_AST_RULE_H_
#define SQOD_AST_RULE_H_

#include <string>
#include <vector>

#include "src/ast/atom.h"
#include "src/ast/comparison.h"

namespace sqod {

// A function-free Horn rule with optional order atoms and safely negated EDB
// subgoals in the body:
//   head :- l1, ..., ln, c1, ..., ck.
struct Rule {
  Atom head;
  std::vector<Literal> body;          // predicate literals, in written order
  std::vector<Comparison> comparisons;

  Rule() = default;
  Rule(Atom h, std::vector<Literal> b, std::vector<Comparison> c = {})
      : head(std::move(h)), body(std::move(b)), comparisons(std::move(c)) {}

  // All positive body literals.
  std::vector<const Atom*> PositiveAtoms() const;
  // All negated body literals.
  std::vector<const Atom*> NegatedAtoms() const;

  // Distinct variables of the whole rule, in order of first occurrence
  // (head first, then body, then comparisons).
  std::vector<VarId> Vars() const;
  // Distinct variables of the body only.
  std::vector<VarId> BodyVars() const;

  bool operator==(const Rule& other) const {
    return head == other.head && body == other.body &&
           comparisons == other.comparisons;
  }

  std::string ToString() const;
};

// An integrity constraint: a rule with an empty head. The body may contain
// only EDB predicates (positively or, in the {not}-variants, negatively) plus
// order atoms (in the {theta}-variants).
struct Constraint {
  std::vector<Literal> body;
  std::vector<Comparison> comparisons;

  Constraint() = default;
  Constraint(std::vector<Literal> b, std::vector<Comparison> c = {})
      : body(std::move(b)), comparisons(std::move(c)) {}

  std::vector<const Atom*> PositiveAtoms() const;
  std::vector<const Atom*> NegatedAtoms() const;
  std::vector<VarId> Vars() const;

  // True if the constraint has neither order atoms nor negated literals
  // (a plain "ic" in the paper's notation).
  bool IsPlain() const;

  bool operator==(const Constraint& other) const {
    return body == other.body && comparisons == other.comparisons;
  }

  std::string ToString() const;
};

}  // namespace sqod

#endif  // SQOD_AST_RULE_H_
