#include "src/ast/substitution.h"

namespace sqod {

Term Substitution::Walk(const Term& t) const {
  Term cur = t;
  // Cycle-free by construction (unification never binds a variable to a
  // chain leading back to itself), but guard with a step bound anyway.
  for (int steps = 0; steps <= size(); ++steps) {
    if (!cur.is_var()) return cur;
    const Term* next = Lookup(cur.var());
    if (next == nullptr) return cur;
    cur = *next;
  }
  return cur;
}

Term Substitution::Apply(const Term& t) const {
  if (!t.is_var()) return t;
  const Term* bound = Lookup(t.var());
  return bound == nullptr ? t : *bound;
}

Atom Substitution::Apply(const Atom& a) const {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(Apply(t));
  return Atom(a.pred(), std::move(args));
}

Literal Substitution::Apply(const Literal& l) const {
  return Literal(Apply(l.atom), l.negated);
}

Comparison Substitution::Apply(const Comparison& c) const {
  return Comparison(Apply(c.lhs), c.op, Apply(c.rhs));
}

Rule Substitution::Apply(const Rule& r) const {
  Rule out;
  out.head = Apply(r.head);
  out.body.reserve(r.body.size());
  for (const Literal& l : r.body) out.body.push_back(Apply(l));
  out.comparisons.reserve(r.comparisons.size());
  for (const Comparison& c : r.comparisons) out.comparisons.push_back(Apply(c));
  return out;
}

Constraint Substitution::Apply(const Constraint& ic) const {
  Constraint out;
  out.body.reserve(ic.body.size());
  for (const Literal& l : ic.body) out.body.push_back(Apply(l));
  out.comparisons.reserve(ic.comparisons.size());
  for (const Comparison& c : ic.comparisons) out.comparisons.push_back(Apply(c));
  return out;
}

void Substitution::ResolveChains() {
  for (auto& [var, term] : map_) {
    term = Walk(term);
  }
}

std::string Substitution::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const auto& [var, term] : map_) {
    if (!first) s += ", ";
    first = false;
    s += GlobalStrings().Name(var) + " -> " + term.ToString();
  }
  s += "}";
  return s;
}

}  // namespace sqod
