#ifndef SQOD_AST_SUBSTITUTION_H_
#define SQOD_AST_SUBSTITUTION_H_

#include <string>
#include <unordered_map>

#include "src/ast/rule.h"

namespace sqod {

// A mapping from variables to terms, applied simultaneously (no chasing of
// chains at application time; Compose resolves chains when building).
class Substitution {
 public:
  Substitution() = default;

  bool empty() const { return map_.empty(); }
  int size() const { return static_cast<int>(map_.size()); }

  // Binds `var` to `term`, overwriting any previous binding.
  void Bind(VarId var, Term term) { map_[var] = std::move(term); }

  // Returns the binding of `var`, or nullptr if unbound.
  const Term* Lookup(VarId var) const {
    auto it = map_.find(var);
    return it == map_.end() ? nullptr : &it->second;
  }

  // Walks variable->variable chains starting at `t` until a non-variable or
  // unbound variable is reached. Used during unification.
  Term Walk(const Term& t) const;

  Term Apply(const Term& t) const;
  Atom Apply(const Atom& a) const;
  Literal Apply(const Literal& l) const;
  Comparison Apply(const Comparison& c) const;
  Rule Apply(const Rule& r) const;
  Constraint Apply(const Constraint& ic) const;

  // Resolves every right-hand side through the substitution itself, so that
  // subsequent Apply calls need a single pass. Call after unification.
  void ResolveChains();

  const std::unordered_map<VarId, Term>& map() const { return map_; }

  std::string ToString() const;

 private:
  std::unordered_map<VarId, Term> map_;
};

}  // namespace sqod

#endif  // SQOD_AST_SUBSTITUTION_H_
