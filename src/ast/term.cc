#include "src/ast/term.h"

#include <string>
#include <unordered_map>

namespace sqod {

bool Term::operator==(const Term& other) const {
  if (is_var_ != other.is_var_) return false;
  if (is_var_) return var_ == other.var_;
  return value_ == other.value_;
}

bool Term::operator<(const Term& other) const {
  if (is_var_ != other.is_var_) return is_var_;  // variables first
  if (is_var_) return var_ < other.var_;
  return value_ < other.value_;
}

size_t Term::Hash() const {
  if (is_var_) return std::hash<int32_t>()(var_) * 4 + 2;
  return value_.Hash() * 4;
}

std::string Term::ToString() const {
  if (is_var_) return GlobalStrings().Name(var_);
  return value_.ToString();
}

Term FreshVarGen::Next() { return NextLike("_G"); }

Term FreshVarGen::NextLike(std::string_view base) {
  // A name is fresh iff it has never been interned (the global interner
  // remembers every name ever seen). Suffixes resume from a process-wide
  // per-base high-water mark: every suffix below it is already interned, so
  // probing from 0 would re-scan them all — cost that grows with each
  // optimizer run in the process. The Find check still skips suffixes the
  // input itself happens to use. Leaked, like GlobalStrings(), to dodge
  // static destruction order.
  static std::unordered_map<std::string, int>* next_suffix =
      new std::unordered_map<std::string, int>();
  int& counter = (*next_suffix)[std::string(base)];
  for (;;) {
    std::string name = std::string(base) + "#" + std::to_string(counter++);
    bool inserted = false;
    SymbolId id = GlobalStrings().Intern(name, &inserted);
    // Inserted means no one had ever used this name: it is fresh. A hit
    // means the input uses the name; advance and retry.
    if (inserted) return Term::VarFromId(id);
  }
}

}  // namespace sqod
