#include "src/ast/term.h"

#include <string>

namespace sqod {

bool Term::operator==(const Term& other) const {
  if (is_var_ != other.is_var_) return false;
  if (is_var_) return var_ == other.var_;
  return value_ == other.value_;
}

bool Term::operator<(const Term& other) const {
  if (is_var_ != other.is_var_) return is_var_;  // variables first
  if (is_var_) return var_ < other.var_;
  return value_ < other.value_;
}

size_t Term::Hash() const {
  if (is_var_) return std::hash<int32_t>()(var_) * 4 + 2;
  return value_.Hash() * 4;
}

std::string Term::ToString() const {
  if (is_var_) return GlobalStrings().Name(var_);
  return value_.ToString();
}

Term FreshVarGen::Next() { return NextLike("_G"); }

Term FreshVarGen::NextLike(std::string_view base) {
  // Loop until the generated name is genuinely unused as a variable name in
  // this process (the global interner remembers every name ever seen, so a
  // name is fresh iff it has never been interned).
  for (;;) {
    std::string name = std::string(base) + "#" + std::to_string(counter_++);
    if (GlobalStrings().Find(name) == -1) return Term::Var(name);
  }
}

}  // namespace sqod
