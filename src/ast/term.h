#ifndef SQOD_AST_TERM_H_
#define SQOD_AST_TERM_H_

#include <string>
#include <string_view>

#include "src/base/value.h"

namespace sqod {

// Identifier of a logical variable. Variables are identified by their
// interned name; rules are standardized apart by renaming when needed.
using VarId = SymbolId;

// A term is a variable or a constant (Datalog is function-free).
class Term {
 public:
  Term() : is_var_(false), value_() {}

  static Term Var(std::string_view name) {
    Term t;
    t.is_var_ = true;
    t.var_ = GlobalStrings().Intern(name);
    return t;
  }
  static Term VarFromId(VarId id) {
    Term t;
    t.is_var_ = true;
    t.var_ = id;
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.is_var_ = false;
    t.value_ = v;
    return t;
  }
  static Term Int(int64_t v) { return Const(Value::Int(v)); }
  static Term Symbol(std::string_view s) { return Const(Value::Symbol(s)); }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  VarId var() const { return var_; }
  const Value& value() const { return value_; }

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }
  // Arbitrary-but-total order, for canonical sorting.
  bool operator<(const Term& other) const;

  size_t Hash() const;
  std::string ToString() const;

 private:
  bool is_var_;
  VarId var_ = -1;
  Value value_;
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

// Generates globally fresh variables. Suffix counters are process-wide and
// per base name, so generation stays O(1) no matter how many fresh names
// the process has already made (single-threaded, like the rest of the
// library).
class FreshVarGen {
 public:
  // Returns a fresh variable named "_G#<n>".
  Term Next();
  // Returns a fresh variable whose name hints at `base` ("<base>#<n>").
  Term NextLike(std::string_view base);
};

}  // namespace sqod

#endif  // SQOD_AST_TERM_H_
