#include "src/ast/unify.h"

namespace sqod {

bool UnifyTermsInto(const Term& a, const Term& b, Substitution* subst) {
  Term x = subst->Walk(a);
  Term y = subst->Walk(b);
  if (x == y) return true;
  if (x.is_var()) {
    subst->Bind(x.var(), y);
    return true;
  }
  if (y.is_var()) {
    subst->Bind(y.var(), x);
    return true;
  }
  return false;  // two distinct constants
}

bool UnifyInto(const Atom& a, const Atom& b, Substitution* subst) {
  if (a.pred() != b.pred() || a.arity() != b.arity()) return false;
  for (int i = 0; i < a.arity(); ++i) {
    if (!UnifyTermsInto(a.arg(i), b.arg(i), subst)) return false;
  }
  return true;
}

std::optional<Substitution> Unify(const Atom& a, const Atom& b) {
  Substitution subst;
  if (!UnifyInto(a, b, &subst)) return std::nullopt;
  subst.ResolveChains();
  return subst;
}

namespace {

Substitution FreshRenaming(const std::vector<VarId>& vars, FreshVarGen* gen) {
  Substitution s;
  for (VarId v : vars) {
    s.Bind(v, gen->NextLike(GlobalStrings().Name(v)));
  }
  return s;
}

}  // namespace

Rule RenameApart(const Rule& r, FreshVarGen* gen) {
  return FreshRenaming(r.Vars(), gen).Apply(r);
}

Constraint RenameApart(const Constraint& ic, FreshVarGen* gen) {
  return FreshRenaming(ic.Vars(), gen).Apply(ic);
}

bool MatchTermInto(const Term& pattern, const Term& target,
                   Substitution* subst) {
  if (pattern.is_var()) {
    const Term* bound = subst->Lookup(pattern.var());
    if (bound != nullptr) return *bound == target;
    subst->Bind(pattern.var(), target);
    return true;
  }
  return pattern == target;
}

bool MatchInto(const Atom& pattern, const Atom& target, Substitution* subst) {
  if (pattern.pred() != target.pred() || pattern.arity() != target.arity()) {
    return false;
  }
  for (int i = 0; i < pattern.arity(); ++i) {
    if (!MatchTermInto(pattern.arg(i), target.arg(i), subst)) return false;
  }
  return true;
}

}  // namespace sqod
