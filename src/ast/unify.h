#ifndef SQOD_AST_UNIFY_H_
#define SQOD_AST_UNIFY_H_

#include <optional>

#include "src/ast/rule.h"
#include "src/ast/substitution.h"

namespace sqod {

// Most general unifier of two atoms (function-free, so unification is just
// consistent variable binding). Returns nullopt if the atoms do not unify.
// The returned substitution has resolved chains (single-pass application).
std::optional<Substitution> Unify(const Atom& a, const Atom& b);

// Extends `subst` so that Apply(a) == Apply(b); returns false (leaving
// `subst` in an unspecified but valid state) if impossible.
bool UnifyInto(const Atom& a, const Atom& b, Substitution* subst);
bool UnifyTermsInto(const Term& a, const Term& b, Substitution* subst);

// Returns a copy of `r` with all variables replaced by fresh ones.
Rule RenameApart(const Rule& r, FreshVarGen* gen);
Constraint RenameApart(const Constraint& ic, FreshVarGen* gen);

// Matching (one-way unification): extends `subst` over variables of `pattern`
// only, so that subst(pattern) == target. `target` is treated as fixed (its
// variables act as constants). Returns false if there is no match.
bool MatchInto(const Atom& pattern, const Atom& target, Substitution* subst);
bool MatchTermInto(const Term& pattern, const Term& target,
                   Substitution* subst);

}  // namespace sqod

#endif  // SQOD_AST_UNIFY_H_
