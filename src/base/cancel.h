#ifndef SQOD_BASE_CANCEL_H_
#define SQOD_BASE_CANCEL_H_

#include <atomic>

namespace sqod {

// A one-way cancellation flag shared between a request's submitter and the
// worker executing it. Cancel() may be called from any thread, any number
// of times; cancelled() is a cheap acquire load safe to poll from hot
// loops. Cancellation is cooperative: the evaluator checks the token at
// iteration boundaries and unwinds with StatusCode::kCancelled.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace sqod

#endif  // SQOD_BASE_CANCEL_H_
