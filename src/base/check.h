#ifndef SQOD_BASE_CHECK_H_
#define SQOD_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checks. These are *not* error handling for user input
// (the parser and solvers return Status/Result for that); a failed check
// indicates a bug in the library itself, so we abort with a location.

#define SQOD_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SQOD_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SQOD_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SQOD_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, (msg));                        \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // SQOD_BASE_CHECK_H_
