#include "src/base/interner.h"

#include "src/base/check.h"

namespace sqod {

SymbolId StringInterner::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId StringInterner::Find(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? -1 : it->second;
}

const std::string& StringInterner::Name(SymbolId id) const {
  SQOD_CHECK(id >= 0 && id < static_cast<SymbolId>(names_.size()));
  return names_[id];
}

StringInterner& GlobalStrings() {
  static StringInterner* interner = new StringInterner;
  return *interner;
}

}  // namespace sqod
