#include "src/base/interner.h"

#include <mutex>

#include "src/base/check.h"

namespace sqod {

SymbolId StringInterner::Intern(std::string_view s, bool* inserted) {
  std::string key(s);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(key);
  if (it != ids_.end()) {
    if (inserted != nullptr) *inserted = false;
    return it->second;
  }
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.push_back(key);
  ids_.emplace(std::move(key), id);
  if (inserted != nullptr) *inserted = true;
  return id;
}

SymbolId StringInterner::Find(std::string_view s) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? -1 : it->second;
}

const std::string& StringInterner::Name(SymbolId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SQOD_CHECK(id >= 0 && id < static_cast<SymbolId>(names_.size()));
  return names_[id];
}

int StringInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(names_.size());
}

StringInterner& GlobalStrings() {
  static StringInterner* interner = new StringInterner;
  return *interner;
}

}  // namespace sqod
