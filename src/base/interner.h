#ifndef SQOD_BASE_INTERNER_H_
#define SQOD_BASE_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sqod {

// Dense integer id for an interned string.
using SymbolId = int32_t;

// Bidirectional string <-> dense-id table. Not thread-safe; the library is
// single-threaded by design (the evaluator parallelism knob, if ever added,
// would shard databases, not symbols).
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Returns the id for `s`, interning it on first use.
  SymbolId Intern(std::string_view s);

  // Returns the id for `s` or -1 if it was never interned.
  SymbolId Find(std::string_view s) const;

  // Returns the string for a previously interned id.
  const std::string& Name(SymbolId id) const;

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

// Process-wide interner used for symbolic constants, predicate names and
// variable names. Function-local static pointer per the style guide's
// static-storage rules (never destroyed).
StringInterner& GlobalStrings();

}  // namespace sqod

#endif  // SQOD_BASE_INTERNER_H_
