#ifndef SQOD_BASE_INTERNER_H_
#define SQOD_BASE_INTERNER_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sqod {

// Dense integer id for an interned string.
using SymbolId = int32_t;

// Bidirectional string <-> dense-id table. Thread-safe: Intern takes an
// exclusive lock, Find/Name/size take shared locks, so concurrent sessions
// may parse/optimize (which interns new adorned predicate names) while
// worker threads evaluate (which reads names). Names live in a deque, so
// the reference returned by Name stays valid across later Interns.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Returns the id for `s`, interning it on first use. When `inserted` is
  // non-null it is set to whether this call created the entry — callers
  // generating fresh names use it to detect collisions in one table probe
  // instead of a Find followed by an Intern.
  SymbolId Intern(std::string_view s, bool* inserted = nullptr);

  // Returns the id for `s` or -1 if it was never interned.
  SymbolId Find(std::string_view s) const;

  // Returns the string for a previously interned id. The reference is
  // stable for the interner's lifetime.
  const std::string& Name(SymbolId id) const;

  int size() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, SymbolId> ids_;
  std::deque<std::string> names_;
};

// Process-wide interner used for symbolic constants, predicate names and
// variable names. Function-local static pointer per the style guide's
// static-storage rules (never destroyed).
StringInterner& GlobalStrings();

}  // namespace sqod

#endif  // SQOD_BASE_INTERNER_H_
