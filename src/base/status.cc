#include "src/base/status.h"

namespace sqod {

// Status is header-only today; this translation unit anchors the library.

}  // namespace sqod
