#include "src/base/status.h"

namespace sqod {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnknown:
      return "UNKNOWN";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

}  // namespace sqod
