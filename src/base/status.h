#ifndef SQOD_BASE_STATUS_H_
#define SQOD_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/base/check.h"

namespace sqod {

// Lightweight error type used instead of exceptions across the public API.
// A Status is either OK or carries a human-readable error message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

  // Returns a copy of this status with `context` prepended to the message.
  Status WithContext(const std::string& context) const {
    if (ok_) return *this;
    return Error(context + ": " + message_);
  }

 private:
  bool ok_ = true;
  std::string message_;
};

// A value-or-error result. Use `ok()` before accessing `value()`.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites readable:
  //   Result<int> F() { return 42; }
  //   Result<int> G() { return Status::Error("boom"); }
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SQOD_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const {
    SQOD_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() {
    SQOD_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& take() {
    SQOD_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace sqod

#endif  // SQOD_BASE_STATUS_H_
