#ifndef SQOD_BASE_STATUS_H_
#define SQOD_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/base/check.h"

namespace sqod {

// Machine-checkable error classes. Clients (the engine layer, the CLI, and
// servers built on top) branch on the code; the message stays human-facing
// and is never a stable API.
enum class StatusCode {
  kOk = 0,
  // The input itself is malformed: parse errors, arity mismatches, unsafe
  // rules, ICs that do not validate against the program.
  kInvalidArgument = 1,
  // The input is well-formed but outside the theory this library implements
  // (e.g. IDB negation in the SQO pipeline, non-local negated IC atoms —
  // the undecidable territory of Theorems 5.3-5.5).
  kUnsupported = 2,
  // A safety valve triggered: adornment/tree/rewriting growth limits,
  // max_derived, chase step budgets.
  kResourceExhausted = 3,
  // A precondition on the call sequence or configuration was violated
  // (e.g. a query predicate is required but not set).
  kFailedPrecondition = 4,
  // An invariant the library promised to maintain does not hold; indicates
  // a bug in the library rather than in the input.
  kInternal = 5,
  // Errors created before codes existed or with no better class.
  kUnknown = 6,
  // A per-request deadline expired before the work completed (serving
  // layer; checked cooperatively at evaluator iteration boundaries).
  kDeadlineExceeded = 7,
  // The caller cancelled the request via a CancelToken before completion.
  kCancelled = 8,
};

// Short stable name for a code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// Lightweight error type used instead of exceptions across the public API.
// A Status is either OK or carries an error code plus a human-readable
// message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }
  // Legacy constructor: an error of unknown class. Prefer the named
  // constructors below so callers can branch on code().
  static Status Error(std::string message) {
    return Error(StatusCode::kUnknown, std::move(message));
  }

  static Status InvalidArgument(std::string message) {
    return Error(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status Unsupported(std::string message) {
    return Error(StatusCode::kUnsupported, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Error(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Error(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Error(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Error(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Error(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns a copy of this status with `context` prepended to the message;
  // the code is preserved.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Error(code_, context + ": " + message_);
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value-or-error result. Use `ok()` before accessing `value()`.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites readable:
  //   Result<int> F() { return 42; }
  //   Result<int> G() { return Status::Error("boom"); }
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SQOD_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Accessors are ref-qualified so a temporary Result moves its value out
  // instead of copying: `ParseUnit(src).value()` is as cheap as `.take()`.
  const T& value() const& {
    SQOD_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    SQOD_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    SQOD_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }
  T&& take() {
    SQOD_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates errors without the repetitive `if (!x.ok()) return x.status()`
// block. Works on anything with ok() + status() (Result<T>) and on Status
// itself (via an overloaded extractor).
//
//   SQOD_RETURN_IF_ERROR(program.Validate());
//   SQOD_ASSIGN_OR_RETURN(Program p, ParseProgram(src));
//
// SQOD_ASSIGN_OR_RETURN moves the value out of the intermediate Result, so
// `lhs` may be a declaration or any assignable expression.
namespace status_internal {
inline const Status& GetStatus(const Status& s) { return s; }
template <typename T>
const Status& GetStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace status_internal

#define SQOD_STATUS_CONCAT_INNER_(a, b) a##b
#define SQOD_STATUS_CONCAT_(a, b) SQOD_STATUS_CONCAT_INNER_(a, b)

#define SQOD_RETURN_IF_ERROR(expr)                                     \
  do {                                                                 \
    auto&& sqod_status_or_ = (expr);                                   \
    if (!sqod_status_or_.ok()) {                                       \
      return ::sqod::status_internal::GetStatus(sqod_status_or_);      \
    }                                                                  \
  } while (0)

#define SQOD_ASSIGN_OR_RETURN(lhs, expr)                               \
  SQOD_ASSIGN_OR_RETURN_IMPL_(                                         \
      SQOD_STATUS_CONCAT_(sqod_result_, __LINE__), lhs, expr)

#define SQOD_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr)                 \
  auto result = (expr);                                                \
  if (!result.ok()) return result.status();                            \
  lhs = std::move(result).value()

}  // namespace sqod

#endif  // SQOD_BASE_STATUS_H_
