#include "src/base/value.h"

#include <string>

namespace sqod {

int Value::Compare(const Value& other) const {
  if (kind_ != other.kind_) return kind_ == Kind::kInt ? -1 : 1;
  if (kind_ == Kind::kInt) {
    if (int_ < other.int_) return -1;
    return int_ == other.int_ ? 0 : 1;
  }
  if (sym_ == other.sym_) return 0;
  return symbol_name().compare(other.symbol_name()) < 0 ? -1 : 1;
}

size_t Value::Hash() const {
  // Symbols hash by id (stable within a process); integers by value. The two
  // kinds are separated with a salt so Int(0) and the first symbol differ.
  if (kind_ == Kind::kInt) {
    return std::hash<int64_t>()(int_) * 2;
  }
  return std::hash<int32_t>()(sym_) * 2 + 1;
}

std::string Value::ToString() const {
  if (kind_ == Kind::kInt) return std::to_string(int_);
  return symbol_name();
}

}  // namespace sqod
