#ifndef SQOD_BASE_VALUE_H_
#define SQOD_BASE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/base/interner.h"

namespace sqod {

// A database constant: either a 64-bit integer or an interned symbol.
// Values carry the dense total order used by order atoms: integers compare
// numerically, symbols compare lexicographically, and every integer precedes
// every symbol. The *theory* of order atoms is a dense order (Section 2 of
// the paper); stored values are just sample points of that order.
class Value {
 public:
  Value() : kind_(Kind::kInt), int_(0) {}

  static Value Int(int64_t v) {
    Value x;
    x.kind_ = Kind::kInt;
    x.int_ = v;
    return x;
  }
  static Value Symbol(std::string_view name) {
    Value x;
    x.kind_ = Kind::kSymbol;
    x.sym_ = GlobalStrings().Intern(name);
    return x;
  }
  static Value SymbolFromId(SymbolId id) {
    Value x;
    x.kind_ = Kind::kSymbol;
    x.sym_ = id;
    return x;
  }

  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }

  int64_t as_int() const { return int_; }
  SymbolId symbol_id() const { return sym_; }
  const std::string& symbol_name() const { return GlobalStrings().Name(sym_); }

  // Total order over all values; see class comment.
  int Compare(const Value& other) const;

  // Interning makes symbol equality an id comparison; only the *order* of
  // two symbols needs their names (Compare).
  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    return kind_ == Kind::kInt ? int_ == other.int_ : sym_ == other.sym_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  size_t Hash() const;
  std::string ToString() const;

 private:
  enum class Kind : uint8_t { kInt, kSymbol };
  Kind kind_;
  union {
    int64_t int_;
    SymbolId sym_;
  };
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace sqod

#endif  // SQOD_BASE_VALUE_H_
