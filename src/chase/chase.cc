#include "src/chase/chase.h"

#include <algorithm>

#include "src/ast/substitution.h"
#include "src/eval/evaluator.h"

namespace sqod {

namespace {

// The chase detects violations by evaluating, per IC
//     :- p1, ..., pm, !a1, ..., !ak, c1, ..., cn
// the probe rule
//     __chase_i(vars of a1..ak) :- p1, ..., pm, !a1, ..., !ak, c1, ..., cn
// over the current fact set with the (indexed, semi-naive) join engine.
// Every answer tuple is a violation; its repairs are the instantiated
// negated atoms. Denials (k = 0) get a 0-ary head. This is dramatically
// faster than per-fact homomorphism search and lets unit repairs be applied
// in batches.
struct ProbeProgram {
  Program program;
  // Per IC: probe head predicate, ordered head variables, negated atoms.
  struct Entry {
    PredId head = -1;
    std::vector<VarId> head_vars;
    std::vector<Atom> negated;  // the repair templates
    bool is_denial = false;
  };
  std::vector<Entry> entries;
};

ProbeProgram BuildProbes(const std::vector<Constraint>& ics) {
  ProbeProgram probes;
  for (int i = 0; i < static_cast<int>(ics.size()); ++i) {
    const Constraint& ic = ics[i];
    ProbeProgram::Entry entry;
    for (const Literal& l : ic.body) {
      if (l.negated) {
        entry.negated.push_back(l.atom);
        l.atom.CollectVars(&entry.head_vars);
      }
    }
    entry.is_denial = entry.negated.empty();
    entry.head = InternPred("__chase" + std::to_string(i));

    Rule rule;
    std::vector<Term> head_args;
    head_args.reserve(entry.head_vars.size());
    for (VarId v : entry.head_vars) head_args.push_back(Term::VarFromId(v));
    rule.head = Atom(entry.head, std::move(head_args));
    rule.body = ic.body;
    rule.comparisons = ic.comparisons;
    probes.program.AddRule(std::move(rule));
    probes.entries.push_back(std::move(entry));
  }
  return probes;
}

struct SearchState {
  const ProbeProgram* probes;
  ChaseOptions options;
  int64_t steps = 0;
  int64_t branches = 0;
  bool out_of_budget = false;
};

// One round of violation detection. Returns false on evaluation trouble
// (cannot happen for valid ICs; treated as budget exhaustion).
enum class RoundOutcome { kModel, kDenial, kProgress, kBranch, kBudget };

RoundOutcome RunRound(Database* db, SearchState* state,
                      std::pair<int, Tuple>* branch_violation) {
  Evaluator evaluator(state->probes->program);
  Result<Database> probed = evaluator.Evaluate(*db);
  if (!probed.ok()) return RoundOutcome::kBudget;

  bool progress = false;
  const std::pair<int, Tuple>* pending_branch = nullptr;
  std::pair<int, Tuple> first_branch;

  for (int i = 0; i < static_cast<int>(state->probes->entries.size()); ++i) {
    const ProbeProgram::Entry& entry = state->probes->entries[i];
    const Relation* rel = probed.value().Find(entry.head);
    if (rel == nullptr || rel->empty()) continue;
    if (entry.is_denial) return RoundOutcome::kDenial;
    if (entry.negated.size() == 1) {
      // Unit repairs are forced; apply the whole batch.
      for (TupleRef row : rel->rows()) {
        Substitution bind;
        for (size_t v = 0; v < entry.head_vars.size(); ++v) {
          bind.Bind(entry.head_vars[v], Term::Const(row[v]));
        }
        Atom repair = bind.Apply(entry.negated[0]);
        if (db->InsertAtom(repair)) {
          ++state->steps;
          progress = true;
          if (state->steps > state->options.max_steps) {
            state->out_of_budget = true;
            return RoundOutcome::kBudget;
          }
        }
      }
    } else if (pending_branch == nullptr) {
      first_branch = {i, rel->row(0).Materialize()};
      pending_branch = &first_branch;
    }
  }
  if (progress) return RoundOutcome::kProgress;
  if (pending_branch != nullptr) {
    *branch_violation = first_branch;
    return RoundOutcome::kBranch;
  }
  return RoundOutcome::kModel;
}

bool Search(Database* db, SearchState* state) {
  for (;;) {
    std::pair<int, Tuple> violation;
    switch (RunRound(db, state, &violation)) {
      case RoundOutcome::kModel:
        return true;
      case RoundOutcome::kDenial:
        return false;
      case RoundOutcome::kBudget:
        state->out_of_budget = true;
        return false;
      case RoundOutcome::kProgress:
        continue;
      case RoundOutcome::kBranch: {
        const ProbeProgram::Entry& entry =
            state->probes->entries[violation.first];
        ++state->branches;
        Substitution bind;
        for (size_t v = 0; v < entry.head_vars.size(); ++v) {
          bind.Bind(entry.head_vars[v], Term::Const(violation.second[v]));
        }
        for (const Atom& tmpl : entry.negated) {
          Database copy = *db;
          ++state->steps;
          if (state->steps > state->options.max_steps) {
            state->out_of_budget = true;
            return false;
          }
          copy.InsertAtom(bind.Apply(tmpl));
          if (Search(&copy, state)) {
            *db = std::move(copy);
            return true;
          }
          if (state->out_of_budget) return false;
        }
        return false;
      }
    }
  }
}

}  // namespace

ChaseOutcome ChaseSatisfiable(const Database& initial,
                              const std::vector<Constraint>& ics,
                              const ChaseOptions& options) {
  ProbeProgram probes = BuildProbes(ics);
  SearchState state;
  state.probes = &probes;
  state.options = options;

  ChaseOutcome outcome;
  Database db = initial;
  bool sat = Search(&db, &state);
  outcome.steps = state.steps;
  outcome.branches = state.branches;
  if (state.out_of_budget) {
    outcome.result = ChaseResult::kResourceLimit;
  } else if (sat) {
    outcome.result = ChaseResult::kSatisfiable;
    outcome.model = std::move(db);
  } else {
    outcome.result = ChaseResult::kUnsatisfiable;
  }
  return outcome;
}

Result<ChaseOutcome> CqSatisfiableWithChase(const Rule& cq,
                                            const std::vector<Constraint>& ics,
                                            const ChaseOptions& options) {
  if (!cq.comparisons.empty()) {
    return Status::Unsupported(
        "CqSatisfiableWithChase: comparisons are not supported (the chase "
        "decides {not}-IC satisfiability; see Theorem 5.2(2))");
  }
  Database frozen;
  Substitution freeze;
  for (const Literal& l : cq.body) {
    if (l.negated) {
      return Status::Unsupported(
          "CqSatisfiableWithChase: the query body must be positive");
    }
    std::vector<VarId> vars;
    l.atom.CollectVars(&vars);
    for (VarId v : vars) {
      if (freeze.Lookup(v) == nullptr) {
        freeze.Bind(v, Term::Symbol("__frozen_" + GlobalStrings().Name(v)));
      }
    }
    frozen.InsertAtom(freeze.Apply(l.atom));
  }
  return ChaseSatisfiable(frozen, ics, options);
}

}  // namespace sqod
