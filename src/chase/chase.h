#ifndef SQOD_CHASE_CHASE_H_
#define SQOD_CHASE_CHASE_H_

#include <cstdint>
#include <vector>

#include "src/ast/rule.h"
#include "src/base/status.h"
#include "src/eval/database.h"

namespace sqod {

// Satisfiability of a fact set with respect to {not}-ICs, via a branching
// chase. A {not}-IC
//     :- p1, ..., pm, !a1, ..., !ak.
// read as a repair rule says: whenever p1..pm hold, at least one of a1..ak
// must hold. With k = 0 it is a denial; with k >= 1 it is a (disjunctive)
// *full* tuple-generating dependency — negation safety guarantees the ai
// introduce no new constants, so the chase terminates on every branch.
//
// This is the engine behind the Theorem 5.4 reduction demo: the appendix
// IC set (dom/eq/neq closure rules, configuration checks) is exactly such a
// repair system.

struct ChaseOptions {
  // Upper bound on chase steps (fact additions) across all branches.
  int64_t max_steps = 1000000;
};

enum class ChaseResult {
  kSatisfiable,    // a model extending the initial facts exists
  kUnsatisfiable,  // every branch hits a violated denial
  kResourceLimit,  // gave up (treat as unknown)
};

struct ChaseOutcome {
  ChaseResult result = ChaseResult::kResourceLimit;
  // A model (the initial facts plus chase additions) when satisfiable.
  Database model;
  int64_t steps = 0;     // facts added
  int64_t branches = 0;  // disjunctive choice points explored
};

// Chases `initial` with `ics`. Order atoms inside ICs are evaluated over the
// concrete order on the stored values (sound for ground inputs; the paper's
// Theorem 5.4 construction uses {not}-ICs without order atoms).
ChaseOutcome ChaseSatisfiable(const Database& initial,
                              const std::vector<Constraint>& ics,
                              const ChaseOptions& options = {});

// Satisfiability of a conjunctive-query body w.r.t. {not}-ICs: freezes the
// body (each variable becomes a fresh symbolic constant) and chases. The
// body must be positive and comparison-free (returns an error otherwise).
Result<ChaseOutcome> CqSatisfiableWithChase(
    const Rule& cq, const std::vector<Constraint>& ics,
    const ChaseOptions& options = {});

}  // namespace sqod

#endif  // SQOD_CHASE_CHASE_H_
