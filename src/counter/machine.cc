#include "src/counter/machine.h"

#include <tuple>

namespace sqod {

Status TwoCounterMachine::AddTransition(int state, bool c1_zero, bool c2_zero,
                                        Transition t) {
  if (state < 0 || state >= num_states_ || t.next_state < 0 ||
      t.next_state >= num_states_) {
    return Status::InvalidArgument("transition references an unknown state");
  }
  if (state == halt_state_) {
    return Status::InvalidArgument("the halt state has no outgoing transitions");
  }
  if (t.op1 == CounterOp::kDec && c1_zero) {
    return Status::InvalidArgument("cannot decrement counter 1 when it is zero");
  }
  if (t.op2 == CounterOp::kDec && c2_zero) {
    return Status::InvalidArgument("cannot decrement counter 2 when it is zero");
  }
  transitions_[{state, c1_zero, c2_zero}] = t;
  return Status::Ok();
}

std::optional<TwoCounterMachine::Transition> TwoCounterMachine::Lookup(
    int state, bool c1_zero, bool c2_zero) const {
  auto it = transitions_.find({state, c1_zero, c2_zero});
  if (it == transitions_.end()) return std::nullopt;
  return it->second;
}

namespace {

int64_t ApplyOp(int64_t value, TwoCounterMachine::CounterOp op) {
  switch (op) {
    case TwoCounterMachine::CounterOp::kNoop: return value;
    case TwoCounterMachine::CounterOp::kInc: return value + 1;
    case TwoCounterMachine::CounterOp::kDec: return value - 1;
  }
  return value;
}

}  // namespace

std::optional<int> TwoCounterMachine::RunsToHalt(int max_steps) const {
  Configuration c;
  for (int step = 0; step <= max_steps; ++step) {
    if (c.state == halt_state_) return step;
    auto t = Lookup(c.state, c.c1 == 0, c.c2 == 0);
    if (!t.has_value()) return std::nullopt;  // stuck = diverges
    c.state = t->next_state;
    c.c1 = ApplyOp(c.c1, t->op1);
    c.c2 = ApplyOp(c.c2, t->op2);
  }
  return std::nullopt;
}

std::vector<TwoCounterMachine::Configuration> TwoCounterMachine::Trace(
    int max_steps) const {
  std::vector<Configuration> out;
  Configuration c;
  out.push_back(c);
  for (int step = 0; step < max_steps; ++step) {
    if (c.state == halt_state_) break;
    auto t = Lookup(c.state, c.c1 == 0, c.c2 == 0);
    if (!t.has_value()) break;
    c.state = t->next_state;
    c.c1 = ApplyOp(c.c1, t->op1);
    c.c2 = ApplyOp(c.c2, t->op2);
    out.push_back(c);
  }
  return out;
}

TwoCounterMachine MakeBumpMachine(int n) {
  // States: 0 = up phase, 1 = down phase, 2 = halt. Counter 1 counts up to
  // n (tracked by counter 2 staying untouched; we instead count down from n
  // by encoding the bound in the state graph). To keep the machine small we
  // use counter 1 as the bump and rely on counter 2 == 0 throughout:
  //   up:   while c1 < n: inc c1   (n encoded by chaining n "up" states)
  //   down: while c1 > 0: dec c1
  // States: 0..n-1 are the up-chain, n is the down state, n+1 is halt.
  TwoCounterMachine m(n + 2, /*halt_state=*/n + 1);
  using Op = TwoCounterMachine::CounterOp;
  for (int i = 0; i < n; ++i) {
    for (bool z1 : {false, true}) {
      // c2 is always zero in reachable configurations; define both anyway.
      for (bool z2 : {false, true}) {
        m.AddTransition(i, z1, z2,
                        {i + 1 == n ? n : i + 1, Op::kInc, Op::kNoop});
      }
    }
  }
  // Down phase: decrement until zero, then halt.
  for (bool z2 : {false, true}) {
    m.AddTransition(n, /*c1_zero=*/false, z2, {n, Op::kDec, Op::kNoop});
    m.AddTransition(n, /*c1_zero=*/true, z2, {n + 1, Op::kNoop, Op::kNoop});
  }
  return m;
}

TwoCounterMachine MakeLoopMachine() {
  // Two states; moves one token back and forth forever. Never reaches the
  // halt state (state 2).
  TwoCounterMachine m(3, /*halt_state=*/2);
  using Op = TwoCounterMachine::CounterOp;
  // State 0: put a token on counter 1, go to state 1.
  m.AddTransition(0, true, true, {1, Op::kInc, Op::kNoop});
  m.AddTransition(0, false, true, {1, Op::kNoop, Op::kNoop});
  m.AddTransition(0, true, false, {1, Op::kInc, Op::kNoop});
  m.AddTransition(0, false, false, {1, Op::kNoop, Op::kNoop});
  // State 1: take the token off, go back to state 0.
  m.AddTransition(1, false, true, {0, Op::kDec, Op::kNoop});
  m.AddTransition(1, false, false, {0, Op::kDec, Op::kNoop});
  m.AddTransition(1, true, true, {0, Op::kNoop, Op::kNoop});
  m.AddTransition(1, true, false, {0, Op::kNoop, Op::kNoop});
  return m;
}

}  // namespace sqod
