#ifndef SQOD_COUNTER_MACHINE_H_
#define SQOD_COUNTER_MACHINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace sqod {

// A deterministic 2-counter (Minsky) machine, the undecidability engine
// behind Theorems 5.3-5.5. States are 0..num_states-1; state `halt_state`
// halts. A transition is selected by the current state and the zero-tests
// of both counters.
class TwoCounterMachine {
 public:
  enum class CounterOp { kNoop, kInc, kDec };

  struct Transition {
    int next_state = 0;
    CounterOp op1 = CounterOp::kNoop;
    CounterOp op2 = CounterOp::kNoop;
  };

  struct Configuration {
    int state = 0;
    int64_t c1 = 0;
    int64_t c2 = 0;
  };

  TwoCounterMachine(int num_states, int halt_state)
      : num_states_(num_states), halt_state_(halt_state) {}

  int num_states() const { return num_states_; }
  int halt_state() const { return halt_state_; }

  // Defines delta(state, c1 == 0 ?, c2 == 0 ?) = t. A kDec op with the
  // corresponding zero test true is rejected (cannot decrement zero).
  Status AddTransition(int state, bool c1_zero, bool c2_zero, Transition t);

  std::optional<Transition> Lookup(int state, bool c1_zero,
                                   bool c2_zero) const;

  const std::map<std::tuple<int, bool, bool>, Transition>& transitions()
      const {
    return transitions_;
  }

  // Runs from (state 0, counters 0) for at most `max_steps` steps.
  // Returns the number of steps to reach the halt state, or nullopt if the
  // machine is still running (or stuck on an undefined transition counts as
  // running forever — the paper's machines are total).
  std::optional<int> RunsToHalt(int max_steps) const;

  // The trace of configurations from the initial one, truncated at
  // max_steps or at the halt state (inclusive).
  std::vector<Configuration> Trace(int max_steps) const;

 private:
  int num_states_;
  int halt_state_;
  std::map<std::tuple<int, bool, bool>, Transition> transitions_;
};

// Ready-made machines for tests and benches.

// Halts after bumping counter 1 up `n` times and back down to zero:
// 2n + 1 steps.
TwoCounterMachine MakeBumpMachine(int n);

// Ping-pongs value between the two counters forever (never halts).
TwoCounterMachine MakeLoopMachine();

}  // namespace sqod

#endif  // SQOD_COUNTER_MACHINE_H_
