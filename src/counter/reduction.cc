#include "src/counter/reduction.h"

#include <algorithm>
#include <string>

namespace sqod {

namespace {

using Op = TwoCounterMachine::CounterOp;

Term V(const std::string& name) { return Term::Var(name); }

Atom Succ(Term a, Term b) { return Atom("succ", {a, b}); }
Atom Zero(Term a) { return Atom("zero", {a}); }
Atom Dom(Term a) { return Atom("dom", {a}); }
Atom Eq(Term a, Term b) { return Atom("eq", {a, b}); }
Atom Neq(Term a, Term b) { return Atom("neq", {a, b}); }
Atom Cnfg(Term t, Term c1, Term c2, Term s) {
  return Atom("cnfg", {t, c1, c2, s});
}

// Appends the "S = j" shorthand of the paper to `body`: a zero/succ chain
// of length j ending in `s`. Variables are prefixed to stay distinct across
// several chains inside one constraint.
void AppendStateChain(int j, const Term& s, const std::string& prefix,
                      std::vector<Literal>* body) {
  if (j == 0) {
    body->push_back(Literal::Pos(Zero(s)));
    return;
  }
  Term prev = V(prefix + "z");
  body->push_back(Literal::Pos(Zero(prev)));
  for (int step = 1; step <= j; ++step) {
    Term next = step == j ? s : V(prefix + "v" + std::to_string(step));
    body->push_back(Literal::Pos(Succ(prev, next)));
    prev = next;
  }
}

// The shared prefix of every transition constraint: two configurations at
// consecutive times whose first one matches (state j, zero-tests z1/z2).
std::vector<Literal> TransitionPrefix(int j, bool z1, bool z2) {
  std::vector<Literal> body;
  body.push_back(Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))));
  body.push_back(
      Literal::Pos(Cnfg(V("Tp"), V("C1p"), V("C2p"), V("Sp"))));
  body.push_back(Literal::Pos(Succ(V("T"), V("Tp"))));
  AppendStateChain(j, V("S"), "st_", &body);
  body.push_back(z1 ? Literal::Pos(Zero(V("C1")))
                    : Literal::Neg(Zero(V("C1"))));
  body.push_back(z2 ? Literal::Pos(Zero(V("C2")))
                    : Literal::Neg(Zero(V("C2"))));
  return body;
}

// Appends `base` to `out` twice, once per orientation of the difference
// check neq(a, b) / neq(b, a). neq is a strict order (one direction per
// distinct pair), so testing "a differs from b" takes both ICs.
void EmitWithDifference(Constraint base, const Term& a, const Term& b,
                        std::vector<Constraint>* out) {
  Constraint forward = base;
  forward.body.push_back(Literal::Pos(Neq(a, b)));
  out->push_back(std::move(forward));
  base.body.push_back(Literal::Pos(Neq(b, a)));
  out->push_back(std::move(base));
}

// Constraints: the next configuration's counter (`before` -> `after`) is
// not the result of applying `op`.
void WrongCounter(int j, bool z1, bool z2, const Term& before,
                  const Term& after, Op op, std::vector<Constraint>* out) {
  Constraint ic;
  ic.body = TransitionPrefix(j, z1, z2);
  switch (op) {
    case Op::kNoop:
      EmitWithDifference(std::move(ic), after, before, out);
      return;
    case Op::kInc:
      ic.body.push_back(Literal::Pos(Succ(before, V("X"))));
      EmitWithDifference(std::move(ic), after, V("X"), out);
      return;
    case Op::kDec:
      ic.body.push_back(Literal::Pos(Succ(V("X"), before)));
      EmitWithDifference(std::move(ic), after, V("X"), out);
      return;
  }
}

}  // namespace

ReductionOutput BuildReduction(const TwoCounterMachine& m) {
  ReductionOutput out;
  std::vector<Constraint>& ics = out.ics;

  auto ic = [&](std::vector<Literal> body) {
    ics.push_back(Constraint(std::move(body)));
  };

  // Domain coverage.
  ic({Literal::Pos(Succ(V("X"), V("Y"))), Literal::Neg(Dom(V("X")))});
  ic({Literal::Pos(Succ(V("X"), V("Y"))), Literal::Neg(Dom(V("Y")))});
  ic({Literal::Pos(Zero(V("X"))), Literal::Neg(Dom(V("X")))});
  for (int i = 0; i < 4; ++i) {
    std::vector<Term> args{V("T"), V("C1"), V("C2"), V("S")};
    ic({Literal::Pos(Atom("cnfg", args)),
        Literal::Neg(Dom(args[i]))});
  }

  // eq: reflexive on dom, symmetric, transitively closed.
  ic({Literal::Pos(Dom(V("X"))), Literal::Neg(Eq(V("X"), V("X")))});
  ic({Literal::Pos(Eq(V("X"), V("Y"))), Literal::Neg(Eq(V("Y"), V("X")))});
  ic({Literal::Pos(Eq(V("X"), V("Z"))), Literal::Pos(Eq(V("Z"), V("Y"))),
      Literal::Neg(Eq(V("X"), V("Y")))});

  // Zeros are equal; a zero is not equal to a non-zero.
  ic({Literal::Pos(Zero(V("X"))), Literal::Pos(Zero(V("Y"))),
      Literal::Neg(Eq(V("X"), V("Y")))});
  ic({Literal::Pos(Eq(V("X"), V("Y"))), Literal::Pos(Zero(V("X"))),
      Literal::Neg(Zero(V("Y")))});

  // neq contains succ (modulo eq) and is transitively closed (modulo eq).
  ic({Literal::Pos(Eq(V("X"), V("Xp"))), Literal::Pos(Succ(V("Xp"), V("Yp"))),
      Literal::Pos(Eq(V("Yp"), V("Y"))), Literal::Neg(Neq(V("X"), V("Y")))});
  ic({Literal::Pos(Eq(V("X"), V("Xp"))), Literal::Pos(Neq(V("Xp"), V("Z"))),
      Literal::Pos(Eq(V("Z"), V("Zp"))), Literal::Pos(Neq(V("Zp"), V("Yp"))),
      Literal::Pos(Eq(V("Yp"), V("Y"))), Literal::Neg(Neq(V("X"), V("Y")))});

  // Successors and predecessors of equal elements are equal.
  EmitWithDifference(
      Constraint({Literal::Pos(Succ(V("X"), V("Y"))),
                  Literal::Pos(Succ(V("Xp"), V("Z"))),
                  Literal::Pos(Eq(V("X"), V("Xp")))}),
      V("Y"), V("Z"), &ics);
  EmitWithDifference(
      Constraint({Literal::Pos(Succ(V("Y"), V("X"))),
                  Literal::Pos(Succ(V("Z"), V("Xp"))),
                  Literal::Pos(Eq(V("X"), V("Xp")))}),
      V("Y"), V("Z"), &ics);

  // A zero has no predecessor.
  ic({Literal::Pos(Succ(V("X"), V("Y"))), Literal::Pos(Zero(V("Y")))});

  // Configurations at time zero start with zeroed counters and state.
  for (const char* arg : {"C1", "C2", "S"}) {
    ic({Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))),
        Literal::Pos(Zero(V("T"))), Literal::Neg(Zero(V(arg)))});
  }

  // cnfg is closed under equality.
  ic({Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))),
      Literal::Pos(Eq(V("T"), V("Tp"))), Literal::Pos(Eq(V("C1"), V("C1p"))),
      Literal::Pos(Eq(V("C2"), V("C2p"))), Literal::Pos(Eq(V("S"), V("Sp"))),
      Literal::Neg(Cnfg(V("Tp"), V("C1p"), V("C2p"), V("Sp")))});

  // Transition checks: wrong next state / wrong counter updates violate.
  for (const auto& [key, t] : m.transitions()) {
    const auto& [state, z1, z2] = key;
    // Wrong state.
    Constraint wrong_state;
    wrong_state.body = TransitionPrefix(state, z1, z2);
    AppendStateChain(t.next_state, V("Sgood"), "ns_", &wrong_state.body);
    EmitWithDifference(std::move(wrong_state), V("Sp"), V("Sgood"), &ics);
    // Wrong counters.
    WrongCounter(state, z1, z2, V("C1"), V("C1p"), t.op1, &ics);
    WrongCounter(state, z1, z2, V("C2"), V("C2p"), t.op2, &ics);
  }

  // eq-or-neq totality last (the only disjunctive-repair IC), with the
  // `neq` repairs listed first: unrelated pairs usually end up distinct, so
  // the chase backtracks less this way.
  //
  // Deviation from the extended abstract: the paper writes
  //     :- dom(X), dom(Y), !eq(X, Y), !neq(X, Y).
  // but together with the neq-transitivity IC that constraint set is
  // unsatisfiable on any domain with a succ edge (neq(a,b) and neq(b,a)
  // compose to the forbidden neq(a,a)). The proof treats neq as a strict
  // order containing the succ paths, so the intended totality is "equal or
  // related in one direction", which we encode with both orientations:
  ic({Literal::Pos(Dom(V("X"))), Literal::Pos(Dom(V("Y"))),
      Literal::Neg(Neq(V("X"), V("Y"))), Literal::Neg(Neq(V("Y"), V("X"))),
      Literal::Neg(Eq(V("X"), V("Y")))});
  // eq and neq are disjoint.
  ic({Literal::Pos(Eq(V("X"), V("Y"))), Literal::Pos(Neq(V("X"), V("Y")))});

  // The program.
  Program& p = out.program;
  {
    Rule r;
    r.head = Atom("reach", {V("T")});
    r.body.push_back(Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))));
    r.body.push_back(Literal::Pos(Zero(V("T"))));
    p.AddRule(std::move(r));
  }
  {
    Rule r;
    r.head = Atom("reach", {V("Tp")});
    r.body.push_back(Literal::Pos(Atom("reach", {V("T")})));
    r.body.push_back(Literal::Pos(Succ(V("T"), V("Tp"))));
    r.body.push_back(Literal::Pos(Cnfg(V("Tp"), V("C1"), V("C2"), V("S"))));
    p.AddRule(std::move(r));
  }
  {
    Rule r;
    r.head = Atom("halt", {});
    r.body.push_back(Literal::Pos(Atom("reach", {V("T")})));
    r.body.push_back(Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))));
    AppendStateChain(m.halt_state(), V("S"), "h_", &r.body);
    p.AddRule(std::move(r));
  }
  p.SetQuery("halt");
  return out;
}

Database CanonicalRunDatabase(const TwoCounterMachine& m, int steps) {
  std::vector<TwoCounterMachine::Configuration> trace = m.Trace(steps);
  int64_t max_value = m.num_states() - 1;
  max_value = std::max<int64_t>(max_value, static_cast<int64_t>(trace.size()));
  for (const auto& c : trace) {
    max_value = std::max({max_value, c.c1, c.c2});
  }

  Database db;
  for (int64_t i = 0; i <= max_value; ++i) {
    db.Insert(InternPred("dom"), {Value::Int(i)});
    db.Insert(InternPred("eq"), {Value::Int(i), Value::Int(i)});
    if (i > 0) {
      db.Insert(InternPred("succ"), {Value::Int(i - 1), Value::Int(i)});
    }
    // neq is a *strict order* containing the succ paths (see the totality
    // IC in BuildReduction): relate each pair in one direction only.
    for (int64_t j = i + 1; j <= max_value; ++j) {
      db.Insert(InternPred("neq"), {Value::Int(i), Value::Int(j)});
    }
  }
  db.Insert(InternPred("zero"), {Value::Int(0)});
  for (size_t t = 0; t < trace.size(); ++t) {
    db.Insert(InternPred("cnfg"),
              {Value::Int(static_cast<int64_t>(t)), Value::Int(trace[t].c1),
               Value::Int(trace[t].c2), Value::Int(trace[t].state)});
  }
  return db;
}

namespace {

Comparison Neq2(Term a, Term b) { return Comparison(a, CmpOp::kNe, b); }

// The reach/halt program shared by both reductions.
Program ReductionProgram(const TwoCounterMachine& m) {
  Program p;
  {
    Rule r;
    r.head = Atom("reach", {V("T")});
    r.body.push_back(Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))));
    r.body.push_back(Literal::Pos(Zero(V("T"))));
    p.AddRule(std::move(r));
  }
  {
    Rule r;
    r.head = Atom("reach", {V("Tp")});
    r.body.push_back(Literal::Pos(Atom("reach", {V("T")})));
    r.body.push_back(Literal::Pos(Succ(V("T"), V("Tp"))));
    r.body.push_back(Literal::Pos(Cnfg(V("Tp"), V("C1"), V("C2"), V("S"))));
    p.AddRule(std::move(r));
  }
  {
    Rule r;
    r.head = Atom("halt", {});
    r.body.push_back(Literal::Pos(Atom("reach", {V("T")})));
    r.body.push_back(Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))));
    AppendStateChain(m.halt_state(), V("S"), "h_", &r.body);
    p.AddRule(std::move(r));
  }
  p.SetQuery("halt");
  return p;
}

}  // namespace

ReductionOutput BuildOrderReduction(const TwoCounterMachine& m) {
  ReductionOutput out;
  std::vector<Constraint>& ics = out.ics;

  // succ is a partial injection and zero is unique, expressed with real
  // (dis)equality instead of the axiomatized eq/neq of Theorem 5.4.
  ics.push_back(Constraint({Literal::Pos(Succ(V("X"), V("Y"))),
                            Literal::Pos(Succ(V("X"), V("Z")))},
                           {Neq2(V("Y"), V("Z"))}));
  ics.push_back(Constraint({Literal::Pos(Succ(V("Y"), V("X"))),
                            Literal::Pos(Succ(V("Z"), V("X")))},
                           {Neq2(V("Y"), V("Z"))}));
  ics.push_back(Constraint(
      {Literal::Pos(Succ(V("X"), V("Y"))), Literal::Pos(Zero(V("Y")))}));
  ics.push_back(Constraint(
      {Literal::Pos(Succ(V("X"), V("X")))}));
  ics.push_back(Constraint({Literal::Pos(Zero(V("X"))),
                            Literal::Pos(Zero(V("Y")))},
                           {Neq2(V("X"), V("Y"))}));

  // Configurations are functional in the time argument.
  for (int pos = 1; pos <= 3; ++pos) {
    std::vector<Term> a{V("T"), V("A1"), V("A2"), V("A3")};
    std::vector<Term> b{V("T"), V("B1"), V("B2"), V("B3")};
    Constraint ic;
    ic.body.push_back(Literal::Pos(Atom("cnfg", a)));
    ic.body.push_back(Literal::Pos(Atom("cnfg", b)));
    ic.comparisons.push_back(
        Neq2(a[pos], b[pos]));
    ics.push_back(std::move(ic));
  }

  // Configurations at time zero have zeroed counters and state.
  for (const char* arg : {"C1", "C2", "S"}) {
    Constraint ic;
    ic.body.push_back(Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))));
    ic.body.push_back(Literal::Pos(Zero(V("T"))));
    ic.body.push_back(Literal::Pos(Zero(V("ZZ"))));
    ic.comparisons.push_back(Neq2(V(arg), V("ZZ")));
    ics.push_back(std::move(ic));
  }

  // Transition checks. The zero-test of a counter is "equals the zero
  // element" (same variable) / "differs from the zero element" (!=).
  for (const auto& [key, t] : m.transitions()) {
    const auto& [state, z1, z2] = key;
    auto prefix = [&, s = state, zz1 = z1, zz2 = z2]() {
      Constraint ic;
      ic.body.push_back(Literal::Pos(Cnfg(V("T"), V("C1"), V("C2"), V("S"))));
      ic.body.push_back(
          Literal::Pos(Cnfg(V("Tp"), V("C1p"), V("C2p"), V("Sp"))));
      ic.body.push_back(Literal::Pos(Succ(V("T"), V("Tp"))));
      AppendStateChain(s, V("S"), "st_", &ic.body);
      ic.body.push_back(Literal::Pos(Zero(V("ZZ"))));
      if (zz1) {
        ic.comparisons.push_back(Comparison(V("C1"), CmpOp::kEq, V("ZZ")));
      } else {
        ic.comparisons.push_back(Neq2(V("C1"), V("ZZ")));
      }
      if (zz2) {
        ic.comparisons.push_back(Comparison(V("C2"), CmpOp::kEq, V("ZZ")));
      } else {
        ic.comparisons.push_back(Neq2(V("C2"), V("ZZ")));
      }
      return ic;
    };
    // Wrong next state.
    {
      Constraint ic = prefix();
      AppendStateChain(t.next_state, V("Sgood"), "ns_", &ic.body);
      ic.comparisons.push_back(Neq2(V("Sp"), V("Sgood")));
      ics.push_back(std::move(ic));
    }
    // Wrong counter updates.
    auto wrong_counter = [&](const Term& before, const Term& after, Op op) {
      Constraint ic = prefix();
      switch (op) {
        case Op::kNoop:
          ic.comparisons.push_back(Neq2(after, before));
          break;
        case Op::kInc:
          ic.body.push_back(Literal::Pos(Succ(before, V("X"))));
          ic.comparisons.push_back(Neq2(after, V("X")));
          break;
        case Op::kDec:
          ic.body.push_back(Literal::Pos(Succ(V("X"), before)));
          ic.comparisons.push_back(Neq2(after, V("X")));
          break;
      }
      ics.push_back(std::move(ic));
    };
    wrong_counter(V("C1"), V("C1p"), t.op1);
    wrong_counter(V("C2"), V("C2p"), t.op2);
  }

  out.program = ReductionProgram(m);
  return out;
}

Database CanonicalOrderRunDatabase(const TwoCounterMachine& m, int steps) {
  std::vector<TwoCounterMachine::Configuration> trace = m.Trace(steps);
  int64_t max_value = m.num_states() - 1;
  max_value = std::max<int64_t>(max_value, static_cast<int64_t>(trace.size()));
  for (const auto& c : trace) {
    max_value = std::max({max_value, c.c1, c.c2});
  }
  Database db;
  for (int64_t i = 1; i <= max_value; ++i) {
    db.Insert(InternPred("succ"), {Value::Int(i - 1), Value::Int(i)});
  }
  db.Insert(InternPred("zero"), {Value::Int(0)});
  for (size_t t = 0; t < trace.size(); ++t) {
    db.Insert(InternPred("cnfg"),
              {Value::Int(static_cast<int64_t>(t)), Value::Int(trace[t].c1),
               Value::Int(trace[t].c2), Value::Int(trace[t].state)});
  }
  return db;
}

Rule UnrolledHaltQuery(const TwoCounterMachine& m, int k) {
  Rule q;
  q.head = Atom("haltWitness", {});
  auto t_var = [](int i) { return V("T" + std::to_string(i)); };
  q.body.push_back(Literal::Pos(Zero(t_var(0))));
  for (int i = 0; i <= k; ++i) {
    std::string s = std::to_string(i);
    if (i > 0) {
      q.body.push_back(Literal::Pos(Succ(t_var(i - 1), t_var(i))));
    }
    q.body.push_back(Literal::Pos(
        Cnfg(t_var(i), V("A" + s), V("B" + s), V("S" + s))));
  }
  AppendStateChain(m.halt_state(), V("S" + std::to_string(k)), "hw_",
                   &q.body);
  return q;
}

}  // namespace sqod
