#ifndef SQOD_COUNTER_REDUCTION_H_
#define SQOD_COUNTER_REDUCTION_H_

#include <vector>

#include "src/ast/program.h"
#include "src/counter/machine.h"
#include "src/eval/database.h"

namespace sqod {

// The Theorem 5.4 construction (appendix of the paper): a datalog program
// and a set of {not}-ICs such that the query predicate `halt` is
// satisfiable w.r.t. the ICs iff the 2-counter machine reaches its halting
// state. Only negated EDB atoms are used in the ICs — no order atoms —
// which is exactly what makes satisfiability undecidable in that fragment.
//
// EDB predicates: succ/2, zero/1, cnfg/4 (time, counter1, counter2, state),
// dom/1, eq/2, neq/2. IDB: reach/1 and the 0-ary query predicate halt.

struct ReductionOutput {
  Program program;
  std::vector<Constraint> ics;
};

// Emits the program and the full IC set for `m`. The ICs appear in chase-
// friendly order: forcing (single-repair) constraints first, the
// disjunctive eq-or-neq totality constraint last, with its `neq` repair
// listed before `eq`.
ReductionOutput BuildReduction(const TwoCounterMachine& m);

// The canonical database encoding the machine's run for `steps` steps over
// the integers: dom = 0..max, succ, zero(0), the trace's cnfg facts,
// identity eq and all-distinct neq. Satisfies the reduction's ICs and makes
// `halt` derivable iff the trace reaches the halt state within `steps`.
Database CanonicalRunDatabase(const TwoCounterMachine& m, int steps);

// The depth-k unrolled satisfiability query: a positive rule body asserting
// a chain of k+1 configurations from time zero whose last state is the halt
// state. Checking it with CqSatisfiableWithChase against the reduction's
// ICs is the bounded witness search for the (undecidable) halting question:
// satisfiable iff the machine halts in exactly k steps.
Rule UnrolledHaltQuery(const TwoCounterMachine& m, int k);

// The Theorem 5.3 variant: the same program, but ICs that use the order
// atom != instead of the EDB predicates dom/eq/neq — real equality replaces
// the axiomatized eq, so the construction needs only succ, zero and cnfg.
// All != atoms are non-local (they relate the two configuration atoms),
// which is exactly why Theorem 5.3 places satisfiability with {!=}-ICs
// beyond decidability. Bounded unrollings are decided by
// RuleBodySatisfiable (the {theta}-IC clause machinery).
ReductionOutput BuildOrderReduction(const TwoCounterMachine& m);

// Canonical database for the order variant: just succ/zero/cnfg over the
// integers (no dom/eq/neq).
Database CanonicalOrderRunDatabase(const TwoCounterMachine& m, int steps);

}  // namespace sqod

#endif  // SQOD_COUNTER_REDUCTION_H_
