#include "src/cq/containment.h"

#include <algorithm>
#include <set>

#include "src/ast/match_memo.h"
#include "src/ast/unify.h"
#include "src/cq/homomorphism.h"
#include "src/cq/linearize.h"
#include "src/order/solver.h"

namespace sqod {

namespace {

Status CheckSupported(const ConjunctiveQuery& q) {
  for (const Literal& l : q.body) {
    if (l.negated) {
      return Status::Unsupported(
          "negated atoms are not supported by CQ containment; use "
          "sqo::DatalogContainedInUcq for programs with negation");
    }
  }
  return Status::Ok();
}

std::vector<Atom> PositiveBody(const ConjunctiveQuery& q) {
  std::vector<Atom> atoms;
  for (const Literal& l : q.body) {
    if (!l.negated) atoms.push_back(l.atom);
  }
  return atoms;
}

// All distinct terms (variables and constants) appearing in q.
std::vector<Term> AllTerms(const ConjunctiveQuery& q) {
  std::vector<Term> terms;
  auto add = [&](const Term& t) {
    if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
      terms.push_back(t);
    }
  };
  for (const Term& t : q.head.args()) add(t);
  for (const Literal& l : q.body) {
    for (const Term& t : l.atom.args()) add(t);
  }
  for (const Comparison& c : q.comparisons) {
    add(c.lhs);
    add(c.rhs);
  }
  return terms;
}

// Is there a head-preserving homomorphism h from `q2` into `q1` such that
// `world` entails h(c) for each comparison c of q2? `world` is a conjunction
// over q1's terms (either q1's own comparisons for the homomorphism-only
// fast path, or a full linearization for Klug's test).
bool CoveredBy(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
               const std::vector<Comparison>& world, AtomMatchMemo* memo) {
  if (q2.head.pred() != q1.head.pred() ||
      q2.head.arity() != q1.head.arity()) {
    return false;
  }
  Substitution head_map;
  for (int i = 0; i < q2.head.arity(); ++i) {
    if (!MatchTermInto(q2.head.arg(i), q1.head.arg(i), &head_map)) {
      return false;
    }
  }
  OrderSolver solver(world);
  return ForEachHomomorphism(
      PositiveBody(q2), PositiveBody(q1), head_map,
      [&](const Substitution& h) {
        for (const Comparison& c : q2.comparisons) {
          if (!solver.Entails(h.Apply(c))) return false;
        }
        return true;
      },
      memo);
}

Result<bool> ContainedInUnionImpl(const ConjunctiveQuery& q,
                                  const UnionOfCqs& ucq) {
  Status s = CheckSupported(q);
  if (!s.ok()) return s;
  for (const ConjunctiveQuery& q2 : ucq) {
    s = CheckSupported(q2);
    if (!s.ok()) return s;
  }
  // A q with an unsatisfiable body is contained in anything.
  if (!ComparisonsConsistent(q.comparisons)) return true;

  // Klug's test below re-matches the same (q2 atom, q1 atom) pairs once per
  // linearization; a per-call match memo makes each repeat a hash lookup.
  AtomMatchMemo memo;

  bool has_order =
      !q.comparisons.empty() ||
      std::any_of(ucq.begin(), ucq.end(),
                  [](const ConjunctiveQuery& x) {
                    return !x.comparisons.empty();
                  });
  if (!has_order) {
    // Classic test: one containment mapping from some disjunct suffices
    // (Sagiv & Yannakakis 1981).
    for (const ConjunctiveQuery& q2 : ucq) {
      if (CoveredBy(q, q2, /*world=*/{}, &memo)) return true;
    }
    return false;
  }

  // Fast sufficient check: a single disjunct whose comparisons are entailed
  // by q's own comparisons under some homomorphism.
  for (const ConjunctiveQuery& q2 : ucq) {
    if (CoveredBy(q, q2, q.comparisons, &memo)) return true;
  }

  // Klug's test, lifted to unions: every linearization of q's terms that is
  // consistent with q's comparisons must be covered by some disjunct.
  bool found_uncovered = ForEachLinearization(
      AllTerms(q), q.comparisons, [&](const Linearization& lin) {
        std::vector<Comparison> world = LinearizationConstraints(lin);
        for (const ConjunctiveQuery& q2 : ucq) {
          if (CoveredBy(q, q2, world, &memo)) {
            return false;  // covered, keep going
          }
        }
        return true;  // found a witness linearization; stop
      });
  return !found_uncovered;
}

}  // namespace

Result<bool> CqContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2) {
  return ContainedInUnionImpl(q1, {q2});
}

Result<bool> CqContainedInUnion(const ConjunctiveQuery& q,
                                const UnionOfCqs& ucq) {
  return ContainedInUnionImpl(q, ucq);
}

Result<bool> UcqContained(const UnionOfCqs& u1, const UnionOfCqs& u2) {
  for (const ConjunctiveQuery& q : u1) {
    Result<bool> r = ContainedInUnionImpl(q, u2);
    if (!r.ok()) return r;
    if (!r.value()) return false;
  }
  return true;
}

Result<bool> CqEquivalent(const ConjunctiveQuery& q1,
                          const ConjunctiveQuery& q2) {
  Result<bool> a = CqContained(q1, q2);
  if (!a.ok()) return a;
  if (!a.value()) return false;
  return CqContained(q2, q1);
}

}  // namespace sqod
