#ifndef SQOD_CQ_CONTAINMENT_H_
#define SQOD_CQ_CONTAINMENT_H_

#include <vector>

#include "src/ast/rule.h"
#include "src/base/status.h"

namespace sqod {

// A conjunctive query is a single rule; a union of conjunctive queries (UCQ)
// is a set of rules with the same head predicate and arity.
using ConjunctiveQuery = Rule;
using UnionOfCqs = std::vector<Rule>;

// Decides q1 subseteq q2.
//
// Without order atoms this is the classic containment-mapping test (freeze
// q1, find a head-preserving homomorphism from q2 into the frozen body).
// With order atoms it is Klug's test: for *every* linearization of q1's
// terms consistent with q1's comparisons there must be a homomorphism h from
// q2 with h(q2's comparisons) entailed by the linearization.
//
// Negated atoms are not supported here (Result carries an error); the
// containment of recursive programs in UCQs, including negation, lives in
// src/sqo/containment.h on top of the query-tree machinery.
Result<bool> CqContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2);

// Decides q subseteq (q2_1 union q2_2 union ...). With order atoms the
// disjunction matters per linearization (a different disjunct may cover each
// linearization), which this implements.
Result<bool> CqContainedInUnion(const ConjunctiveQuery& q,
                                const UnionOfCqs& ucq);

// Decides union subseteq union (each disjunct of the left side must be
// contained in the right-hand union).
Result<bool> UcqContained(const UnionOfCqs& u1, const UnionOfCqs& u2);

// True iff q1 and q2 are equivalent.
Result<bool> CqEquivalent(const ConjunctiveQuery& q1,
                          const ConjunctiveQuery& q2);

}  // namespace sqod

#endif  // SQOD_CQ_CONTAINMENT_H_
