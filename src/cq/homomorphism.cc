#include "src/cq/homomorphism.h"

#include <algorithm>
#include <unordered_map>

#include "src/ast/unify.h"

namespace sqod {

namespace {

// Per source atom (in search order): the match deltas against its candidate
// targets, precomputed once per ForEachHomomorphism call — or recalled from
// the shared memo, where repeated containment checks against the same atom
// pairs hit across calls.
bool Search(const std::vector<std::vector<const MatchDelta*>>& deltas,
            size_t next, Substitution* subst,
            const std::function<bool(const Substitution&)>& visit) {
  if (next == deltas.size()) return visit(*subst);
  for (const MatchDelta* delta : deltas[next]) {
    Substitution attempt = *subst;  // copy; pattern sizes are small
    if (!ApplyMatchDelta(*delta, &attempt)) continue;
    if (Search(deltas, next + 1, &attempt, visit)) return true;
  }
  return false;
}

}  // namespace

bool ForEachHomomorphism(
    const std::vector<Atom>& from, const std::vector<Atom>& to,
    const Substitution& base,
    const std::function<bool(const Substitution&)>& visit,
    AtomMatchMemo* memo) {
  std::unordered_map<PredId, std::vector<const Atom*>> index;
  for (const Atom& a : to) index[a.pred()].push_back(&a);

  // Order the source atoms so that atoms sharing variables with earlier ones
  // come sooner (cheap join-ordering heuristic): here we simply sort by
  // (fewest candidate targets first), which bounds the branching early.
  std::vector<Atom> ordered = from;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const Atom& a, const Atom& b) {
                     size_t ca = index.count(a.pred()) ? index[a.pred()].size() : 0;
                     size_t cb = index.count(b.pred()) ? index[b.pred()].size() : 0;
                     return ca < cb;
                   });

  std::vector<std::vector<const MatchDelta*>> deltas(ordered.size());
  std::vector<MatchDelta> local_deltas;  // plain-mode storage, stable
  if (memo == nullptr) {
    size_t pairs = 0;
    for (const Atom& a : ordered) {
      auto it = index.find(a.pred());
      if (it != index.end()) pairs += it->second.size();
    }
    local_deltas.reserve(pairs);
  }
  for (size_t i = 0; i < ordered.size(); ++i) {
    auto it = index.find(ordered[i].pred());
    if (it == index.end()) return false;  // no candidate target at all
    AtomId pattern = memo != nullptr ? memo->Intern(ordered[i]) : -1;
    for (const Atom* target : it->second) {
      if (memo != nullptr) {
        deltas[i].push_back(&memo->Match(pattern, memo->Intern(*target)));
      } else {
        local_deltas.push_back(ComputeMatchDelta(ordered[i], *target));
        deltas[i].push_back(&local_deltas.back());
      }
    }
  }

  Substitution subst = base;
  return Search(deltas, 0, &subst, visit);
}

bool HomomorphismExists(const std::vector<Atom>& from,
                        const std::vector<Atom>& to,
                        const Substitution& base, AtomMatchMemo* memo) {
  return ForEachHomomorphism(
      from, to, base, [](const Substitution&) { return true; }, memo);
}

}  // namespace sqod
