#include "src/cq/homomorphism.h"

#include <algorithm>
#include <unordered_map>

#include "src/ast/unify.h"

namespace sqod {

namespace {

bool Search(const std::vector<Atom>& from,
            const std::unordered_map<PredId, std::vector<const Atom*>>& index,
            size_t next, Substitution* subst,
            const std::function<bool(const Substitution&)>& visit) {
  if (next == from.size()) return visit(*subst);
  const Atom& pattern = from[next];
  auto it = index.find(pattern.pred());
  if (it == index.end()) return false;
  for (const Atom* target : it->second) {
    Substitution attempt = *subst;  // copy; pattern sizes are small
    if (!MatchInto(pattern, *target, &attempt)) continue;
    if (Search(from, index, next + 1, &attempt, visit)) return true;
  }
  return false;
}

}  // namespace

bool ForEachHomomorphism(
    const std::vector<Atom>& from, const std::vector<Atom>& to,
    const Substitution& base,
    const std::function<bool(const Substitution&)>& visit) {
  std::unordered_map<PredId, std::vector<const Atom*>> index;
  for (const Atom& a : to) index[a.pred()].push_back(&a);

  // Order the source atoms so that atoms sharing variables with earlier ones
  // come sooner (cheap join-ordering heuristic): here we simply sort by
  // (fewest candidate targets first), which bounds the branching early.
  std::vector<Atom> ordered = from;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const Atom& a, const Atom& b) {
                     size_t ca = index.count(a.pred()) ? index[a.pred()].size() : 0;
                     size_t cb = index.count(b.pred()) ? index[b.pred()].size() : 0;
                     return ca < cb;
                   });

  Substitution subst = base;
  return Search(ordered, index, 0, &subst, visit);
}

bool HomomorphismExists(const std::vector<Atom>& from,
                        const std::vector<Atom>& to,
                        const Substitution& base) {
  return ForEachHomomorphism(from, to, base,
                             [](const Substitution&) { return true; });
}

}  // namespace sqod
