#ifndef SQOD_CQ_HOMOMORPHISM_H_
#define SQOD_CQ_HOMOMORPHISM_H_

#include <functional>
#include <vector>

#include "src/ast/match_memo.h"
#include "src/ast/substitution.h"

namespace sqod {

// Enumerates homomorphisms from the atom set `from` into the atom set `to`:
// substitutions h over the variables of `from` such that h(a) is
// syntactically equal to some atom of `to`, for every a in `from`.
// Variables of `to` are treated as frozen constants (they are never bound).
//
// `visit` is called for each homomorphism found (extending `base`); if it
// returns true the search stops and ForEachHomomorphism returns true.
// Returns false when the enumeration completes without `visit` accepting.
//
// When `memo` is non-null, the pairwise atom matches driving the search are
// answered from (and recorded in) its match memo; repeated checks against
// the same atoms — the shape of CQ containment and residue pruning loops —
// become hash lookups.
bool ForEachHomomorphism(
    const std::vector<Atom>& from, const std::vector<Atom>& to,
    const Substitution& base,
    const std::function<bool(const Substitution&)>& visit,
    AtomMatchMemo* memo = nullptr);

// Convenience: is there any homomorphism from `from` into `to` extending
// `base`?
bool HomomorphismExists(const std::vector<Atom>& from,
                        const std::vector<Atom>& to,
                        const Substitution& base = Substitution(),
                        AtomMatchMemo* memo = nullptr);

}  // namespace sqod

#endif  // SQOD_CQ_HOMOMORPHISM_H_
