#include "src/cq/ic_check.h"

#include "src/ast/program.h"
#include "src/eval/evaluator.h"

namespace sqod {

bool Violates(const Database& db, const Constraint& ic) {
  // Reuse the join engine: evaluate the rule  __violation :- <ic body>.
  // The 0-ary head derives a fact iff the body has a satisfying assignment,
  // with negation and order atoms handled exactly as in rule bodies.
  Program probe;
  Rule rule;
  rule.head = Atom("__violation", {});
  rule.body = ic.body;
  rule.comparisons = ic.comparisons;
  probe.AddRule(std::move(rule));

  Evaluator evaluator(probe);
  Result<Database> idb = evaluator.Evaluate(db);
  // The probe program cannot diverge (single non-recursive rule).
  return idb.ok() && idb.value().Find(InternPred("__violation")) != nullptr &&
         !idb.value().Find(InternPred("__violation"))->empty();
}

bool SatisfiesAll(const Database& db, const std::vector<Constraint>& ics) {
  return !FirstViolated(db, ics).has_value();
}

std::optional<int> FirstViolated(const Database& db,
                                 const std::vector<Constraint>& ics) {
  for (int i = 0; i < static_cast<int>(ics.size()); ++i) {
    if (Violates(db, ics[i])) return i;
  }
  return std::nullopt;
}

}  // namespace sqod
