#ifndef SQOD_CQ_IC_CHECK_H_
#define SQOD_CQ_IC_CHECK_H_

#include <optional>
#include <vector>

#include "src/ast/rule.h"
#include "src/eval/database.h"

namespace sqod {

// True iff `db` violates `ic`: there is an assignment of constants to the
// variables of `ic` under which every positive atom is a fact of `db`, no
// negated atom is a fact of `db`, and all order atoms hold.
bool Violates(const Database& db, const Constraint& ic);

// True iff `db` satisfies every constraint in `ics` (a *consistent*
// database in the paper's terminology).
bool SatisfiesAll(const Database& db, const std::vector<Constraint>& ics);

// Returns the index of the first violated constraint, if any.
std::optional<int> FirstViolated(const Database& db,
                                 const std::vector<Constraint>& ics);

}  // namespace sqod

#endif  // SQOD_CQ_IC_CHECK_H_
