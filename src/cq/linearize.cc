#include "src/cq/linearize.h"

#include "src/order/solver.h"

namespace sqod {

std::vector<Comparison> LinearizationConstraints(const Linearization& lin) {
  std::vector<Comparison> out;
  for (size_t b = 0; b < lin.size(); ++b) {
    for (size_t i = 1; i < lin[b].size(); ++i) {
      out.push_back(Comparison(lin[b][0], CmpOp::kEq, lin[b][i]));
    }
    if (b + 1 < lin.size()) {
      out.push_back(Comparison(lin[b][0], CmpOp::kLt, lin[b + 1][0]));
    }
  }
  return out;
}

namespace {

bool Extend(const std::vector<Term>& terms, size_t next,
            const std::vector<Comparison>& given, Linearization* lin,
            const std::function<bool(const Linearization&)>& visit) {
  if (next == terms.size()) {
    // Final consistency check: the linearization plus the given conjunction
    // must be satisfiable (this also enforces the true order on constants,
    // which OrderSolver knows about).
    std::vector<Comparison> all = LinearizationConstraints(*lin);
    all.insert(all.end(), given.begin(), given.end());
    if (!ComparisonsConsistent(all)) return false;
    return visit(*lin);
  }
  const Term& t = terms[next];

  // Prune: check consistency of the partial placement plus `given` before
  // recursing further. (The check at the leaf is still needed because
  // pruning here uses the same test; this keeps the code simple and the
  // enumeration correct.)
  auto consistent_so_far = [&]() {
    std::vector<Comparison> all = LinearizationConstraints(*lin);
    all.insert(all.end(), given.begin(), given.end());
    return ComparisonsConsistent(all);
  };

  // Insert into an existing block.
  for (size_t b = 0; b < lin->size(); ++b) {
    (*lin)[b].push_back(t);
    if (consistent_so_far() && Extend(terms, next + 1, given, lin, visit)) {
      (*lin)[b].pop_back();
      return true;
    }
    (*lin)[b].pop_back();
  }
  // Insert as a new singleton block at each gap.
  for (size_t gap = 0; gap <= lin->size(); ++gap) {
    lin->insert(lin->begin() + gap, {t});
    if (consistent_so_far() && Extend(terms, next + 1, given, lin, visit)) {
      lin->erase(lin->begin() + gap);
      return true;
    }
    lin->erase(lin->begin() + gap);
  }
  return false;
}

}  // namespace

bool ForEachLinearization(
    const std::vector<Term>& terms, const std::vector<Comparison>& given,
    const std::function<bool(const Linearization&)>& visit) {
  Linearization lin;
  return Extend(terms, 0, given, &lin, visit);
}

}  // namespace sqod
