#ifndef SQOD_CQ_LINEARIZE_H_
#define SQOD_CQ_LINEARIZE_H_

#include <functional>
#include <vector>

#include "src/ast/comparison.h"

namespace sqod {

// A linearization (total preorder) over a set of terms: an ordered sequence
// of blocks; terms within a block are equal, terms in earlier blocks are
// strictly smaller.
using Linearization = std::vector<std::vector<Term>>;

// Expands a linearization into the explicit conjunction of order atoms it
// stands for (equalities within blocks, strict inequalities between
// consecutive block representatives).
std::vector<Comparison> LinearizationConstraints(const Linearization& lin);

// Enumerates every total preorder over `terms` that (a) is consistent with
// the conjunction `given` and (b) orders constants by their true order.
// Calls `visit` per linearization; stops early (returning true) when `visit`
// returns true. The number of weak orders grows like the ordered Bell
// numbers, so this is intended for the small term sets of single queries
// (Klug's containment test is Pi2P-complete; no polynomial algorithm is
// expected).
bool ForEachLinearization(
    const std::vector<Term>& terms, const std::vector<Comparison>& given,
    const std::function<bool(const Linearization&)>& visit);

}  // namespace sqod

#endif  // SQOD_CQ_LINEARIZE_H_
