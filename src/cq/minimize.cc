#include "src/cq/minimize.h"

namespace sqod {

Result<ConjunctiveQuery> MinimizeCq(const ConjunctiveQuery& q) {
  for (const Literal& l : q.body) {
    if (l.negated) {
      return Status::Unsupported("MinimizeCq supports positive bodies only");
    }
  }
  if (!q.comparisons.empty()) {
    return Status::Unsupported("MinimizeCq does not support order atoms");
  }
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.body.size(); ++i) {
      ConjunctiveQuery candidate = current;
      candidate.body.erase(candidate.body.begin() + i);
      // Dropping an atom can only enlarge the result; equivalence holds iff
      // candidate is contained in current.
      Result<bool> contained = CqContained(candidate, current);
      if (!contained.ok()) return contained.status();
      if (contained.value()) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

Result<UnionOfCqs> MinimizeUcq(const UnionOfCqs& ucq) {
  // Drop disjuncts covered by the union of the remaining ones. Processing
  // in order with re-checks yields an irredundant union.
  std::vector<bool> keep(ucq.size(), true);
  for (size_t i = 0; i < ucq.size(); ++i) {
    UnionOfCqs others;
    for (size_t j = 0; j < ucq.size(); ++j) {
      if (j != i && keep[j]) others.push_back(ucq[j]);
    }
    if (others.empty()) continue;
    Result<bool> covered = CqContainedInUnion(ucq[i], others);
    if (!covered.ok()) return covered.status();
    if (covered.value()) keep[i] = false;
  }
  UnionOfCqs out;
  for (size_t i = 0; i < ucq.size(); ++i) {
    if (!keep[i]) continue;
    // Minimize plain survivors; leave disjuncts with comparisons as-is
    // (core minimization under order atoms is out of scope).
    bool plain = ucq[i].comparisons.empty();
    for (const Literal& l : ucq[i].body) {
      if (l.negated) plain = false;
    }
    if (plain) {
      Result<ConjunctiveQuery> m = MinimizeCq(ucq[i]);
      if (!m.ok()) return m.status();
      out.push_back(m.take());
    } else {
      out.push_back(ucq[i]);
    }
  }
  return out;
}

}  // namespace sqod
