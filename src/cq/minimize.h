#ifndef SQOD_CQ_MINIMIZE_H_
#define SQOD_CQ_MINIMIZE_H_

#include "src/cq/containment.h"

namespace sqod {

// Minimizes a plain conjunctive query (no comparisons, no negation) by
// repeatedly dropping body atoms whose removal keeps the query equivalent
// (via the classic self-homomorphism test). The result is the unique core
// up to isomorphism.
Result<ConjunctiveQuery> MinimizeCq(const ConjunctiveQuery& q);

// Minimizes a union of conjunctive queries: drops disjuncts contained in
// the union of the others (Sagiv-Yannakakis) and minimizes each survivor.
// Comparisons are allowed (containment uses Klug's test); negation is not.
Result<UnionOfCqs> MinimizeUcq(const UnionOfCqs& ucq);

}  // namespace sqod

#endif  // SQOD_CQ_MINIMIZE_H_
