#include "src/engine/engine.h"

#include <algorithm>
#include <thread>

#include "src/eval/executor.h"

namespace sqod {

Engine::Engine(EngineOptions options) : options_(options) {}

Engine::~Engine() = default;

EvalExecutor& Engine::eval_executor(int workers_hint) {
  std::lock_guard<std::mutex> lock(eval_executor_mu_);
  if (eval_executor_ == nullptr) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int workers = std::max({workers_hint, hw - 1, 0});
    eval_executor_ = std::make_unique<EvalExecutor>(workers);
    metrics().GetGauge("engine/eval_executor_workers")->Set(workers);
  }
  return *eval_executor_;
}

Result<Session> Engine::Open(std::string_view source) {
  SQOD_ASSIGN_OR_RETURN(ParsedUnit unit, ParseUnit(source));
  return Open(std::move(unit));
}

Result<Session> Engine::Open(ParsedUnit unit) {
  metrics().GetCounter("engine/sessions_opened")->Increment();
  return Session(this, std::move(unit));
}

Result<Session> Engine::Open(Program program, std::vector<Constraint> ics,
                             std::vector<Atom> facts) {
  ParsedUnit unit;
  unit.program = std::move(program);
  unit.constraints = std::move(ics);
  unit.facts = std::move(facts);
  return Open(std::move(unit));
}

}  // namespace sqod
