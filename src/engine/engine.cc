#include "src/engine/engine.h"

namespace sqod {

Engine::Engine(EngineOptions options) : options_(options) {}

Result<Session> Engine::Open(std::string_view source) {
  SQOD_ASSIGN_OR_RETURN(ParsedUnit unit, ParseUnit(source));
  return Open(std::move(unit));
}

Result<Session> Engine::Open(ParsedUnit unit) {
  metrics().GetCounter("engine/sessions_opened")->Increment();
  return Session(this, std::move(unit));
}

Result<Session> Engine::Open(Program program, std::vector<Constraint> ics,
                             std::vector<Atom> facts) {
  ParsedUnit unit;
  unit.program = std::move(program);
  unit.constraints = std::move(ics);
  unit.facts = std::move(facts);
  return Open(std::move(unit));
}

}  // namespace sqod
