#ifndef SQOD_ENGINE_ENGINE_H_
#define SQOD_ENGINE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/engine/session.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parser/parser.h"

namespace sqod {

class EvalExecutor;

// The single reusable entry point over parser -> pass manager -> evaluator.
// An Engine holds the process-wide plumbing (metrics registry, tracer);
// Engine::Open parses/adopts one datalog unit into a Session, which
// prepares (optimizes) and executes queries against it. The intended shape
// for a server: one Engine per process, one Session per loaded program,
// many Prepare/Execute calls per session — repeated Prepare calls with the
// same program/ICs/options hit the session's prepared-program cache and
// never re-run the optimizer.
//
// Lifetime: an Engine must outlive every Session it opened.

struct EngineOptions {
  // External observability sinks. When null the engine owns private ones;
  // pass the CLI's/server's instances to fold engine counters (cache
  // hits/misses, executions) into one export.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();  // out of line: EvalExecutor is incomplete here

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Parses `source` (rules, ICs, facts, query declaration) into a session.
  // Parse/validation errors surface with StatusCode::kInvalidArgument.
  Result<Session> Open(std::string_view source);

  // Adopts an already-parsed unit.
  Result<Session> Open(ParsedUnit unit);

  // Convenience for programmatically-built workloads (benches, tests).
  Result<Session> Open(Program program, std::vector<Constraint> ics,
                       std::vector<Atom> facts = {});

  // The engine's metrics registry: the external one when provided,
  // otherwise the engine-owned instance. Counters published here:
  //   engine/sessions_opened     sessions created by Open
  //   engine/prepare_cache_hits  Prepare calls served from the cache
  //   engine/prepare_cache_misses  Prepare calls that ran the pipeline
  //   engine/pipeline_runs       actual pass-pipeline executions
  //   engine/executions          Execute calls
  MetricsRegistry& metrics() {
    return options_.metrics != nullptr ? *options_.metrics : owned_metrics_;
  }

  // The engine's tracer, or nullptr when none was provided (the engine
  // does not own a tracer: tracing is opt-in by the embedder).
  Tracer* tracer() { return options_.tracer; }

  // The engine's shared intra-query evaluation executor, created on first
  // use. All parallel evaluations (EvalOptions::threads > 1) opened through
  // this engine's sessions run their partition tasks here, so concurrent
  // requests share one worker set instead of oversubscribing the host.
  // This pool is deliberately distinct from the serving layer's request
  // ThreadPool: evaluations hold request-pool threads while they run, so
  // running their subtasks on that same pool could deadlock once every
  // request thread waits on subtasks that have no thread left to run on.
  // EvalExecutor callers drain tasks themselves, so even a 0-worker
  // executor makes progress.
  //
  // Sized at first call: max(workers_hint, hardware_concurrency - 1),
  // min 0. Later calls return the same executor regardless of hint.
  EvalExecutor& eval_executor(int workers_hint);

 private:
  EngineOptions options_;
  MetricsRegistry owned_metrics_;
  std::mutex eval_executor_mu_;
  std::unique_ptr<EvalExecutor> eval_executor_;
};

}  // namespace sqod

#endif  // SQOD_ENGINE_ENGINE_H_
