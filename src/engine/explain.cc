#include "src/engine/explain.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/export.h"
#include "src/obs/json.h"

namespace sqod {

namespace {

// "after (+delta)" / "after (-delta)" / plain "after" when unchanged.
std::string DeltaCell(int after, int delta) {
  std::string out = std::to_string(after);
  if (delta != 0) {
    out += " (";
    if (delta > 0) out += '+';
    out += std::to_string(delta);
    out += ')';
  }
  return out;
}

void PadTo(size_t width, std::string* line) {
  if (line->size() < width) line->append(width - line->size(), ' ');
}

}  // namespace

ExplainReport BuildExplainReport(const SqoReport& report,
                                 const CompiledProgram* compiled) {
  ExplainReport out;
  if (compiled != nullptr) {
    out.compiled = true;
    out.compile_ns = compiled->compile_ns;
    out.total_ops = compiled->total_ops;
    out.kernels.reserve(compiled->plans.size());
    for (const CompiledProgram::PlanInfo& plan : compiled->plans) {
      ExplainKernelRow row;
      row.rule_index = plan.rule_index;
      row.delta_subgoal = plan.delta_subgoal;
      row.kernel = KernelName(plan.kernel);
      row.op_count = plan.op_count;
      out.kernels.push_back(std::move(row));
    }
  }
  for (const PassRunInfo& info : report.pass_runs) {
    ExplainPassRow row;
    row.name = info.name;
    row.ran = info.ran();
    row.disabled = info.disabled;
    row.wall_ns = info.wall_ns;
    row.rules_before = info.rules_before;
    row.rules_after = info.rules_after;
    row.literals_before = info.literals_before;
    row.literals_after = info.literals_after;
    row.negations_before = info.negations_before;
    row.negations_after = info.negations_after;
    row.comparisons_before = info.comparisons_before;
    row.comparisons_after = info.comparisons_after;
    out.optimize_ns += info.wall_ns;
    out.passes.push_back(std::move(row));
  }
  out.adorned_predicates = report.adorned_predicates;
  out.adorned_rules = report.adorned_rules;
  out.tree_classes = report.tree_classes;
  out.surviving_classes = report.surviving_classes;
  out.query_satisfiable = report.query_satisfiable;
  out.residue_rules_deleted = report.residue_rules_deleted;
  out.residue_comparisons_added = report.residue_comparisons_added;
  out.residue_negations_added = report.residue_negations_added;
  out.intern_hits = report.intern_hits;
  out.intern_misses = report.intern_misses;
  out.memo_hits = report.memo_hits;
  out.store_size = report.store_size;
  return out;
}

void AttachRuntime(const SqoReport& sqo, const EvalStats& stats,
                   const std::vector<RuleProfile>& profiles, int64_t answers,
                   int64_t execute_ns, ExplainReport* report) {
  report->analyzed = true;
  report->stats = stats;
  report->answers = answers;
  report->execute_ns = execute_ns;
  report->ops_executed = 0;
  for (const RuleProfile& profile : profiles) {
    report->ops_executed += profile.ops;
  }
  report->rules.clear();
  const std::vector<Rule>& rules = sqo.rewritten.rules();
  report->rules.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    ExplainRuleRow row;
    row.rule_index = static_cast<int>(i);
    row.rule_text = rules[i].ToString();
    report->rules.push_back(std::move(row));
  }
  // Profiles come back in rule order, but join by index so a subset (or a
  // differently-sourced profile vector) still lands on the right rule.
  for (const RuleProfile& profile : profiles) {
    if (profile.rule_index < 0 ||
        profile.rule_index >= static_cast<int>(report->rules.size())) {
      continue;
    }
    ExplainRuleRow& row = report->rules[profile.rule_index];
    row.profile = profile;
    row.executed = true;
  }
}

void AttachParallel(const ParallelEvalStats& stats, ExplainReport* report) {
  if (stats.partition_tasks == 0) return;  // serial run: no section
  report->parallel = true;
  report->parallel_stats = stats;
}

void AttachMaintenance(const MaintainStats& totals,
                       const MaintainStats& last_batch, int64_t batches,
                       ExplainReport* report) {
  report->maintained = true;
  report->batches = batches;
  report->maintain = totals;
  report->last_batch = last_batch;
}

namespace {

// The shared field list for both maintenance stanzas (totals / last batch).
std::string MaintainJson(const MaintainStats& s) {
  std::string out = "{";
  out += "\"version\":" + std::to_string(s.version);
  out += ",\"recomputed\":";
  out += s.recomputed ? "true" : "false";
  out += ",\"edb_inserted\":" + std::to_string(s.edb_inserted);
  out += ",\"edb_deleted\":" + std::to_string(s.edb_deleted);
  out += ",\"idb_inserted\":" + std::to_string(s.idb_inserted);
  out += ",\"idb_deleted\":" + std::to_string(s.idb_deleted);
  out += ",\"over_deleted\":" + std::to_string(s.over_deleted);
  out += ",\"rederived\":" + std::to_string(s.rederived);
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.4f", s.over_deletion_ratio());
  out += ",\"over_deletion_ratio\":" + std::string(ratio);
  out += ",\"count_updates\":" + std::to_string(s.count_updates);
  out += ",\"strata_incremental\":" + std::to_string(s.strata_incremental);
  out += ",\"strata_recomputed\":" + std::to_string(s.strata_recomputed);
  out += ",\"strata_skipped\":" + std::to_string(s.strata_skipped);
  out += ",\"maintain_ns\":" + std::to_string(s.maintain_ns);
  out += '}';
  return out;
}

}  // namespace

std::string ExplainReport::ToText() const {
  std::string out = "== pass pipeline ==\n";
  const size_t kName = 14, kTime = 12, kCol = 12;
  {
    std::string h = "pass";
    PadTo(kName, &h);
    h += "time";
    PadTo(kName + kTime, &h);
    for (const char* col : {"rules", "literals", "negations", "comparisons"}) {
      size_t target = h.size();
      h += col;
      PadTo(target + kCol, &h);
    }
    while (!h.empty() && h.back() == ' ') h.pop_back();
    out += h;
    out += '\n';
  }
  for (const ExplainPassRow& row : passes) {
    std::string line = row.name;
    PadTo(kName, &line);
    if (!row.ran) {
      line += row.disabled ? "disabled" : "skipped";
      while (!line.empty() && line.back() == ' ') line.pop_back();
      out += line;
      out += '\n';
      continue;
    }
    line += FormatDurationNs(row.wall_ns);
    PadTo(kName + kTime, &line);
    const std::string cells[] = {
        DeltaCell(row.rules_after, row.rules_delta()),
        DeltaCell(row.literals_after, row.literals_delta()),
        DeltaCell(row.negations_after, row.negations_delta()),
        DeltaCell(row.comparisons_after, row.comparisons_delta())};
    for (const std::string& cell : cells) {
      size_t target = line.size();
      line += cell;
      PadTo(target + kCol, &line);
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line;
    out += '\n';
  }

  out += "\n== plan ==\n";
  out += "optimize time:     " + FormatDurationNs(optimize_ns) + "\n";
  out += "satisfiable:       ";
  out += query_satisfiable ? "yes" : "no (query provably empty)";
  out += '\n';
  out += "adorned:           " + std::to_string(adorned_predicates) +
         " predicates, " + std::to_string(adorned_rules) + " rules\n";
  out += "goal classes:      " + std::to_string(surviving_classes) + "/" +
         std::to_string(tree_classes) + " surviving\n";
  out += "residues:          " + std::to_string(residue_rules_deleted) +
         " rules deleted, " + std::to_string(residue_comparisons_added) +
         " comparisons added, " + std::to_string(residue_negations_added) +
         " negations added\n";
  out += "interning:         " + std::to_string(intern_hits) + " hits, " +
         std::to_string(intern_misses) + " misses, " +
         std::to_string(memo_hits) + " memo hits, " +
         std::to_string(store_size) + " triplets\n";

  if (compiled) {
    out += "\n== kernels ==\n";
    out += "compile time:      " + FormatDurationNs(compile_ns) + "\n";
    out += "plans:             " + std::to_string(kernels.size()) + " (" +
           std::to_string(total_ops) + " ops)\n";
    out += "rule      delta   ops     kernel\n";
    for (const ExplainKernelRow& row : kernels) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "#%-8d %-7s %-7d ", row.rule_index,
                    row.delta_subgoal < 0
                        ? "-"
                        : std::to_string(row.delta_subgoal).c_str(),
                    row.op_count);
      out += buf;
      out += row.kernel;
      out += '\n';
    }
  }

  if (parallel) {
    out += "\n== parallel ==\n";
    out += "threads:           " + std::to_string(parallel_stats.threads) +
           "\n";
    out += "parallel iters:    " +
           std::to_string(parallel_stats.parallel_iterations) + "\n";
    out += "partition tasks:   " +
           std::to_string(parallel_stats.partition_tasks) + "\n";
    out += "skew max:          " +
           FormatDurationNs(parallel_stats.skew_max_ns) + "\n";
    out += "partition derived:";
    for (size_t i = 0; i < parallel_stats.partition_derived.size(); ++i) {
      out += " p" + std::to_string(i) + "=" +
             std::to_string(parallel_stats.partition_derived[i]);
    }
    out += '\n';
  }

  if (maintained) {
    out += "\n== maintenance ==\n";
    out += "batches:           " + std::to_string(batches) + "\n";
    out += "maintain time:     " + FormatDurationNs(maintain.maintain_ns) +
           "\n";
    out += "edb delta:         +" + std::to_string(maintain.edb_inserted) +
           " / -" + std::to_string(maintain.edb_deleted) + "\n";
    out += "idb delta:         +" + std::to_string(maintain.idb_inserted) +
           " / -" + std::to_string(maintain.idb_deleted) + "\n";
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f",
                  maintain.over_deletion_ratio());
    out += "over-deletion:     " + std::to_string(maintain.over_deleted) +
           " tentative, " + std::to_string(maintain.rederived) +
           " rederived (ratio " + ratio + ")\n";
    out += "count updates:     " + std::to_string(maintain.count_updates) +
           "\n";
    out += "strata:            " +
           std::to_string(maintain.strata_incremental) + " incremental, " +
           std::to_string(maintain.strata_recomputed) + " recomputed, " +
           std::to_string(maintain.strata_skipped) + " skipped\n";
    out += "last batch:        " + last_batch.Summary() + "\n";
  }

  if (analyzed) {
    out += "\n== runtime ==\n";
    out += "execute time:      " + FormatDurationNs(execute_ns) + "\n";
    out += "answers:           " + std::to_string(answers) + "\n";
    out += "iterations:        " + std::to_string(stats.iterations) + "\n";
    out += "rule firings:      " + std::to_string(stats.rule_firings) + "\n";
    out += "tuples derived:    " + std::to_string(stats.tuples_derived) +
           " (+" + std::to_string(stats.duplicate_derivations) +
           " duplicates)\n";
    out += "join probes:       " + std::to_string(stats.join_probes) + "\n";
    out += "comparison checks: " + std::to_string(stats.comparison_checks) +
           "\n";
    if (ops_executed > 0) {
      out += "bytecode ops:      " + std::to_string(ops_executed) + "\n";
    }
    // Per-rule rows, busiest first; rules that never fired sink below.
    std::vector<const ExplainRuleRow*> ordered;
    ordered.reserve(rules.size());
    for (const ExplainRuleRow& row : rules) ordered.push_back(&row);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const ExplainRuleRow* a, const ExplainRuleRow* b) {
                       if (a->profile.time_ns != b->profile.time_ns) {
                         return a->profile.time_ns > b->profile.time_ns;
                       }
                       return a->profile.firings > b->profile.firings;
                     });
    out += "\nrule      time        firings   derived   dups      rule\n";
    for (const ExplainRuleRow* row : ordered) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "#%-8d %-11s %-9lld %-9lld %-9lld ",
                    row->rule_index,
                    FormatDurationNs(row->profile.time_ns).c_str(),
                    static_cast<long long>(row->profile.firings),
                    static_cast<long long>(row->profile.derived),
                    static_cast<long long>(row->profile.duplicates));
      out += buf;
      out += row->rule_text;
      out += '\n';
    }
  }
  return out;
}

std::string ExplainReport::ToJson() const {
  std::string out = "{\"passes\":[";
  bool first = true;
  for (const ExplainPassRow& row : passes) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(row.name) + "\"";
    out += ",\"ran\":";
    out += row.ran ? "true" : "false";
    out += ",\"disabled\":";
    out += row.disabled ? "true" : "false";
    out += ",\"wall_ns\":" + std::to_string(row.wall_ns);
    out += ",\"rules_before\":" + std::to_string(row.rules_before);
    out += ",\"rules_after\":" + std::to_string(row.rules_after);
    out += ",\"literals_before\":" + std::to_string(row.literals_before);
    out += ",\"literals_after\":" + std::to_string(row.literals_after);
    out += ",\"negations_before\":" + std::to_string(row.negations_before);
    out += ",\"negations_after\":" + std::to_string(row.negations_after);
    out += ",\"comparisons_before\":" + std::to_string(row.comparisons_before);
    out += ",\"comparisons_after\":" + std::to_string(row.comparisons_after);
    out += '}';
  }
  out += "],\"plan\":{";
  out += "\"optimize_ns\":" + std::to_string(optimize_ns);
  out += ",\"satisfiable\":";
  out += query_satisfiable ? "true" : "false";
  out += ",\"adorned_predicates\":" + std::to_string(adorned_predicates);
  out += ",\"adorned_rules\":" + std::to_string(adorned_rules);
  out += ",\"tree_classes\":" + std::to_string(tree_classes);
  out += ",\"surviving_classes\":" + std::to_string(surviving_classes);
  out += ",\"residue_rules_deleted\":" + std::to_string(residue_rules_deleted);
  out += ",\"residue_comparisons_added\":" +
         std::to_string(residue_comparisons_added);
  out += ",\"residue_negations_added\":" +
         std::to_string(residue_negations_added);
  out += ",\"intern_hits\":" + std::to_string(intern_hits);
  out += ",\"intern_misses\":" + std::to_string(intern_misses);
  out += ",\"memo_hits\":" + std::to_string(memo_hits);
  out += ",\"store_size\":" + std::to_string(store_size);
  out += '}';
  if (compiled) {
    out += ",\"kernels\":{";
    out += "\"compile_ns\":" + std::to_string(compile_ns);
    out += ",\"total_ops\":" + std::to_string(total_ops);
    out += ",\"plans\":[";
    first = true;
    for (const ExplainKernelRow& row : kernels) {
      if (!first) out += ',';
      first = false;
      out += "{\"rule_index\":" + std::to_string(row.rule_index);
      out += ",\"delta_subgoal\":" + std::to_string(row.delta_subgoal);
      out += ",\"kernel\":\"" + JsonEscape(row.kernel) + "\"";
      out += ",\"op_count\":" + std::to_string(row.op_count);
      out += '}';
    }
    out += "]}";
  }
  if (parallel) {
    out += ",\"parallel\":{";
    out += "\"threads\":" + std::to_string(parallel_stats.threads);
    out += ",\"parallel_iterations\":" +
           std::to_string(parallel_stats.parallel_iterations);
    out += ",\"partition_tasks\":" +
           std::to_string(parallel_stats.partition_tasks);
    out += ",\"skew_max_ns\":" + std::to_string(parallel_stats.skew_max_ns);
    out += ",\"partition_derived\":[";
    first = true;
    for (int64_t derived : parallel_stats.partition_derived) {
      if (!first) out += ',';
      first = false;
      out += std::to_string(derived);
    }
    out += "]}";
  }
  if (maintained) {
    out += ",\"maintenance\":{";
    out += "\"batches\":" + std::to_string(batches);
    out += ",\"totals\":" + MaintainJson(maintain);
    out += ",\"last_batch\":" + MaintainJson(last_batch);
    out += '}';
  }
  if (analyzed) {
    out += ",\"runtime\":{";
    out += "\"execute_ns\":" + std::to_string(execute_ns);
    out += ",\"answers\":" + std::to_string(answers);
    out += ",\"iterations\":" + std::to_string(stats.iterations);
    out += ",\"rule_firings\":" + std::to_string(stats.rule_firings);
    out += ",\"tuples_derived\":" + std::to_string(stats.tuples_derived);
    out += ",\"duplicate_derivations\":" +
           std::to_string(stats.duplicate_derivations);
    out += ",\"join_probes\":" + std::to_string(stats.join_probes);
    out += ",\"comparison_checks\":" + std::to_string(stats.comparison_checks);
    out += ",\"ops_executed\":" + std::to_string(ops_executed);
    out += ",\"rules\":[";
    first = true;
    for (const ExplainRuleRow& row : rules) {
      if (!first) out += ',';
      first = false;
      out += "{\"rule_index\":" + std::to_string(row.rule_index);
      out += ",\"rule\":\"" + JsonEscape(row.rule_text) + "\"";
      out += ",\"head\":\"" + JsonEscape(row.profile.head) + "\"";
      out += ",\"firings\":" + std::to_string(row.profile.firings);
      out += ",\"derived\":" + std::to_string(row.profile.derived);
      out += ",\"duplicates\":" + std::to_string(row.profile.duplicates);
      out += ",\"probes\":" + std::to_string(row.profile.probes);
      out += ",\"cmp_checks\":" + std::to_string(row.profile.cmp_checks);
      out += ",\"ops\":" + std::to_string(row.profile.ops);
      out += ",\"time_ns\":" + std::to_string(row.profile.time_ns);
      out += '}';
    }
    out += "]}";
  }
  out += '}';
  return out;
}

std::string ExplainReport::Summary() const {
  int rules_in = passes.empty() ? 0 : passes.front().rules_before;
  int rules_out = passes.empty() ? 0 : passes.back().rules_after;
  std::string out = "sat=";
  out += query_satisfiable ? "yes" : "no";
  out += " rules=" + std::to_string(rules_in) + "->" +
         std::to_string(rules_out);
  out += " residues(del=" + std::to_string(residue_rules_deleted) +
         " cmp=" + std::to_string(residue_comparisons_added) +
         " neg=" + std::to_string(residue_negations_added) + ")";
  out += " optimize=" + FormatDurationNs(optimize_ns);
  if (maintained) {
    out += " batches=" + std::to_string(batches);
    out += " v" + std::to_string(maintain.version);
    out += " overdel=" + std::to_string(maintain.over_deleted) + "/" +
           std::to_string(maintain.rederived);
  }
  if (parallel) {
    out += " par(threads=" + std::to_string(parallel_stats.threads) +
           " tasks=" + std::to_string(parallel_stats.partition_tasks) + ")";
  }
  if (analyzed) {
    out += " iters=" + std::to_string(stats.iterations);
    out += " firings=" + std::to_string(stats.rule_firings);
    out += " answers=" + std::to_string(answers);
    out += " execute=" + FormatDurationNs(execute_ns);
  }
  return out;
}

}  // namespace sqod
