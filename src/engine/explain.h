#ifndef SQOD_ENGINE_EXPLAIN_H_
#define SQOD_ENGINE_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/eval/bytecode.h"
#include "src/eval/evaluator.h"
#include "src/eval/maintain.h"
#include "src/sqo/optimizer.h"

namespace sqod {

// EXPLAIN / EXPLAIN ANALYZE over one optimized (and optionally executed)
// query. BuildExplainReport turns a SqoReport's per-pass bookkeeping into
// delta rows ("what did each pass do to the program"); AttachRuntime joins
// in what actually happened when the rewriting ran — per-rule firings,
// derivations, and wall time against the rule text each profile refers to.
// `sqo_cli --explain` prints ToText(); `--analyze=FILE` writes ToJson().

// One pipeline pass: the shape it saw, the shape it left, and the deltas.
struct ExplainPassRow {
  std::string name;
  bool ran = false;
  bool disabled = false;  // vs structurally skipped
  int64_t wall_ns = 0;

  int rules_before = 0, rules_after = 0;
  int literals_before = 0, literals_after = 0;
  int negations_before = 0, negations_after = 0;
  int comparisons_before = 0, comparisons_after = 0;

  int rules_delta() const { return rules_after - rules_before; }
  int literals_delta() const { return literals_after - literals_before; }
  int negations_delta() const { return negations_after - negations_before; }
  int comparisons_delta() const {
    return comparisons_after - comparisons_before;
  }
};

// One rewritten rule joined with its runtime profile. `profile` fields are
// zero until AttachRuntime matches an executed RuleProfile to the rule.
struct ExplainRuleRow {
  int rule_index = -1;
  std::string rule_text;  // the rewritten rule, as parsed/printed
  RuleProfile profile;    // zeros unless the query was executed
  bool executed = false;
};

// One compiled (rule, delta-subgoal) plan: which kernel the compiler
// selected and how many bytecode ops the lowering produced. Present when
// BuildExplainReport was given the prepared program's CompiledProgram.
struct ExplainKernelRow {
  int rule_index = -1;
  int delta_subgoal = -1;  // -1 = full plan, >= 0 = semi-naive delta plan
  std::string kernel;      // KernelName() of the selection
  int op_count = 0;        // static bytecode length of this plan
};

struct ExplainReport {
  // --- plan side (always present) ---
  std::vector<ExplainPassRow> passes;
  int adorned_predicates = 0;
  int adorned_rules = 0;
  int tree_classes = 0;
  int surviving_classes = 0;
  bool query_satisfiable = true;
  int residue_rules_deleted = 0;
  int residue_comparisons_added = 0;
  int residue_negations_added = 0;
  int64_t intern_hits = 0;
  int64_t intern_misses = 0;
  int64_t memo_hits = 0;
  int64_t store_size = 0;
  int64_t optimize_ns = 0;  // sum of pass wall times

  // --- compiled-plan side (when a CompiledProgram was provided) ---
  bool compiled = false;
  int64_t compile_ns = 0;  // plan-lowering wall time
  int64_t total_ops = 0;   // static op count over all plans
  std::vector<ExplainKernelRow> kernels;  // one per compiled plan

  // --- maintenance side (after AttachMaintenance; views only) ---
  bool maintained = false;
  int64_t batches = 0;          // effective ApplyDelta batches so far
  MaintainStats maintain;       // totals across those batches
  MaintainStats last_batch;     // the most recent batch alone

  // --- parallel side (after AttachParallel; partitioned runs only) ---
  bool parallel = false;
  ParallelEvalStats parallel_stats;

  // --- runtime side (after AttachRuntime) ---
  bool analyzed = false;
  EvalStats stats;
  std::vector<ExplainRuleRow> rules;  // one per rewritten rule
  int64_t answers = 0;
  int64_t execute_ns = 0;
  int64_t ops_executed = 0;  // executed bytecode ops, summed over rules

  // Multi-section human-readable rendering (pass table, plan summary, and
  // — when analyzed — the per-rule runtime table).
  std::string ToText() const;

  // Machine-readable rendering: {"passes":[...],"plan":{...},
  // "runtime":{...}} ("runtime" only when analyzed). Parses with ParseJson.
  std::string ToJson() const;

  // One line for the slow-query log: satisfiability, rule count in/out,
  // residue work, and (when analyzed) iterations/firings/answers.
  std::string Summary() const;
};

// Builds the plan side from an optimizer report. With `compiled` (the
// artifact cached in PreparedProgram), the report also carries per-plan
// kernel selections and bytecode op counts.
ExplainReport BuildExplainReport(const SqoReport& report,
                                 const CompiledProgram* compiled = nullptr);

// Joins execution results into `report`: per-rule profiles are matched to
// the rewritten program's rules by rule index. `answers` is the query
// relation's cardinality; `execute_ns` the end-to-end evaluation time.
void AttachRuntime(const SqoReport& sqo, const EvalStats& stats,
                   const std::vector<RuleProfile>& profiles, int64_t answers,
                   int64_t execute_ns, ExplainReport* report);

// Joins a parallel evaluation's partition accounting into `report`: thread
// count, partitioned iterations and tasks, worst-case partition skew, and
// the per-partition derivation counts. A serial run's stats (zero partition
// tasks) leave the report unchanged, so callers may attach unconditionally.
void AttachParallel(const ParallelEvalStats& stats, ExplainReport* report);

// Joins a materialized view's maintenance history into `report`: per-batch
// tuples deleted / re-derived, the over-deletion ratio, and how many strata
// were maintained incrementally vs recomputed (both the totals across
// `batches` and the last batch alone).
void AttachMaintenance(const MaintainStats& totals,
                       const MaintainStats& last_batch, int64_t batches,
                       ExplainReport* report);

}  // namespace sqod

#endif  // SQOD_ENGINE_EXPLAIN_H_
