#include "src/engine/session.h"

#include <algorithm>
#include <utility>

#include "src/engine/engine.h"
#include "src/engine/view.h"
#include "src/sqo/pass_manager.h"

namespace sqod {

// Lazily built shared state: the frozen base-EDB snapshot and the
// materialized views, both single-flight under one mutex (materialization
// is rare and expensive; serializing it is fine and keeps the slot simple).
struct Session::ViewCache {
  std::mutex mu;
  std::unique_ptr<Database> shared_edb;
  std::unordered_map<uint64_t, std::unique_ptr<MaterializedView>> views;
};

namespace {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Session::Session(Engine* engine, ParsedUnit unit)
    : engine_(engine),
      unit_(std::move(unit)),
      cache_(std::make_unique<PrepareCache>()),
      views_(std::make_unique<ViewCache>()) {}

Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

Database Session::MakeEdb() const {
  Database edb;
  for (const Atom& fact : unit_.facts) edb.InsertAtom(fact);
  return edb;
}

const Database& Session::SharedEdb() {
  std::lock_guard<std::mutex> lock(views_->mu);
  if (views_->shared_edb == nullptr) {
    views_->shared_edb = std::make_unique<Database>(MakeEdb());
    views_->shared_edb->Freeze();
  }
  return *views_->shared_edb;
}

Result<MaterializedView*> Session::Materialize(
    const PreparedProgram& prepared, const MaterializeOptions& options) {
  std::lock_guard<std::mutex> lock(views_->mu);
  auto it = views_->views.find(prepared.cache_key);
  if (it != views_->views.end()) return it->second.get();

  engine_->metrics().GetCounter("engine/views_materialized")->Increment();
  Result<std::unique_ptr<MaterializedView>> view =
      MaterializedView::Create(prepared, MakeEdb(), options);
  if (!view.ok()) return view.status();
  MaterializedView* result = view.value().get();
  views_->views.emplace(prepared.cache_key, std::move(view).value());
  engine_->metrics().GetGauge("engine/materialized_views")
      ->Set(static_cast<int64_t>(views_->views.size()));
  return result;
}

std::string Session::Fingerprint(const SqoOptions& options) const {
  // Canonical, semantically complete rendering of (program, ICs, options).
  // Observability pointers are deliberately excluded: they change where
  // diagnostics go, never what plan comes out.
  std::string fp = unit_.program.ToString();
  fp += "\n--ics--\n";
  for (const Constraint& ic : unit_.constraints) {
    fp += ic.ToString();
    fp += '\n';
  }
  fp += "--options--\n";
  fp += "tree=" + std::to_string(options.build_query_tree) + ";";
  fp += "residues=" + std::to_string(options.attach_residues) + ";";
  fp += "fd=" + std::to_string(options.apply_fd_rewriting) + ";";
  fp += "max_apreds=" + std::to_string(options.adorn.max_adorned_preds) + ";";
  fp += "max_arules=" + std::to_string(options.adorn.max_adorned_rules) + ";";
  fp += "max_classes=" + std::to_string(options.tree.max_classes) + ";";
  fp += "max_local=" + std::to_string(options.max_local_rewrite_rules) + ";";
  // Not semantics, but it changes what the cached report carries.
  fp += "dumps=" + std::to_string(options.capture_dumps) + ";";
  std::vector<std::string> disabled = options.disabled_passes;
  std::sort(disabled.begin(), disabled.end());
  disabled.erase(std::unique(disabled.begin(), disabled.end()),
                 disabled.end());
  fp += "disabled=";
  for (const std::string& name : disabled) {
    fp += name;
    fp += ',';
  }
  return fp;
}

Result<const PreparedProgram*> Session::Prepare(const SqoOptions& options) {
  bool cache_hit = false;
  return Prepare(options, &cache_hit);
}

Result<const PreparedProgram*> Session::Prepare(const SqoOptions& options,
                                                bool* cache_hit) {
  *cache_hit = false;
  MetricsRegistry& metrics = engine_->metrics();
  std::string fp = Fingerprint(options);

  // Claim or join the cache slot for this fingerprint. Exactly one caller
  // (the one that created the slot) runs the pipeline; everyone else either
  // returns the published plan immediately or blocks on the in-flight run.
  std::shared_ptr<CacheEntry> entry;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(cache_->mu);
    std::shared_ptr<CacheEntry>& slot = cache_->entries[fp];
    if (slot == nullptr) {
      slot = std::make_shared<CacheEntry>();
      owner = true;
    }
    entry = slot;
    if (!owner) {
      if (!entry->done) {
        metrics.GetCounter("engine/prepare_single_flight_waits")->Increment();
        cache_->cv.wait(lock, [&] { return entry->done; });
      }
      if (entry->prepared != nullptr) {
        metrics.GetCounter("engine/prepare_cache_hits")->Increment();
        *cache_hit = true;
        return const_cast<const PreparedProgram*>(entry->prepared.get());
      }
      // The in-flight run failed; its slot has been removed, so a later
      // Prepare retries from scratch.
      return entry->status;
    }
  }

  metrics.GetCounter("engine/prepare_cache_misses")->Increment();
  metrics.GetCounter("engine/pipeline_runs")->Increment();

  SqoOptions run_options = options;
  if (run_options.tracer == nullptr) run_options.tracer = engine_->tracer();
  if (run_options.metrics == nullptr) run_options.metrics = &metrics;
  PassManager manager(run_options);
  Result<SqoReport> report = manager.Run(unit_.program, unit_.constraints);

  // Lower the rewritten program to bytecode while no lock is held; the
  // artifact rides in the cache entry so warm executions never re-lower.
  // Compilation failure (unstratifiable program) is not a Prepare error:
  // the evaluator reports it with full context at Execute time.
  std::shared_ptr<const CompiledProgram> compiled;
  if (report.ok()) {
    Result<CompiledProgram> lowered =
        CompileProgram(report.value().rewritten);
    if (lowered.ok()) {
      auto owned =
          std::make_shared<CompiledProgram>(std::move(lowered).value());
      metrics.GetGauge("sqo/phase/plan_compile_ns")->Set(owned->compile_ns);
      metrics.GetCounter("eval/compile_ns")->Add(owned->compile_ns);
      compiled = std::move(owned);
    }
  }

  std::lock_guard<std::mutex> lock(cache_->mu);
  if (!report.ok()) {
    entry->done = true;
    entry->status = report.status();
    cache_->entries.erase(fp);
    cache_->cv.notify_all();
    return report.status();
  }

  auto prepared = std::make_unique<PreparedProgram>();
  prepared->cache_key = Fnv1a64(fp);
  prepared->options = options;
  prepared->options.tracer = nullptr;
  prepared->options.metrics = nullptr;
  prepared->options.adorn.tracer = nullptr;
  prepared->report = std::move(report).value();
  prepared->compiled = std::move(compiled);
  const PreparedProgram* result = prepared.get();
  entry->prepared = std::move(prepared);
  entry->done = true;
  cache_->cv.notify_all();
  metrics.GetGauge("engine/prepared_programs")
      ->Set(static_cast<int64_t>(cache_->entries.size()));
  return result;
}

size_t Session::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->entries.size();
}

void Session::ClearCache() {
  {
    // Views pin PreparedPrograms, so they go first.
    std::lock_guard<std::mutex> lock(views_->mu);
    views_->views.clear();
  }
  std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->entries.clear();
}

Result<std::vector<Tuple>> Session::Run(const Program& program,
                                        const Database& edb,
                                        EvalOptions options, EvalStats* stats,
                                        std::vector<RuleProfile>* profiles) {
  if (options.tracer == nullptr) options.tracer = engine_->tracer();
  if (options.metrics == nullptr) options.metrics = &engine_->metrics();
  if (options.threads > 1 && options.executor == nullptr) {
    // Parallel evaluations share the engine's eval pool (never the serving
    // layer's request pool — see Engine::eval_executor for why).
    options.executor = &engine_->eval_executor(options.threads - 1);
  }
  engine_->metrics().GetCounter("engine/executions")->Increment();
  return EvaluateQuery(program, edb, options, stats, profiles);
}

Result<std::vector<Tuple>> Session::Execute(
    const PreparedProgram& prepared, const Database& edb, EvalOptions options,
    EvalStats* stats, std::vector<RuleProfile>* profiles) {
  // Thread the Prepare-time compiled artifact into the evaluation (unless
  // the caller pinned its own), so warm executions skip plan lowering.
  if (options.mode == EvalMode::kCompile && options.compiled == nullptr) {
    options.compiled = prepared.compiled.get();
  }
  return Run(prepared.program(), edb, std::move(options), stats, profiles);
}

Result<std::vector<Tuple>> Session::ExecuteOriginal(
    const Database& edb, EvalOptions options, EvalStats* stats,
    std::vector<RuleProfile>* profiles) {
  return Run(unit_.program, edb, std::move(options), stats, profiles);
}

}  // namespace sqod
