#ifndef SQOD_ENGINE_SESSION_H_
#define SQOD_ENGINE_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/eval/bytecode.h"
#include "src/eval/evaluator.h"
#include "src/parser/parser.h"
#include "src/sqo/optimizer.h"

namespace sqod {

class Engine;

// An optimized program, ready for repeated execution. Owned by the session
// that prepared it; pointers returned by Session::Prepare stay valid for
// the session's lifetime (or until ClearCache). Immutable once published,
// so any number of threads may Execute against it concurrently.
struct PreparedProgram {
  // FNV-1a hash of the canonical fingerprint (program text + ICs + the
  // semantically relevant SqoOptions fields); the cache key.
  uint64_t cache_key = 0;
  // The options the program was prepared under (observability pointers
  // cleared — they are per-run, not part of the plan).
  SqoOptions options;
  // The full optimizer report, including the rewritten program.
  SqoReport report;
  // The rewritten program lowered to register bytecode with per-rule
  // kernels, built once at Prepare and reused by every Execute (the service
  // warm path never re-lowers). Null when the program does not stratify —
  // Execute then lets the evaluator surface the error. Shared and
  // immutable, so concurrent Executes read it without synchronization.
  std::shared_ptr<const CompiledProgram> compiled;

  // The drop-in replacement program P' to execute.
  const Program& program() const { return report.rewritten; }
};

// One loaded datalog unit (program + ICs + optional facts) with a cache of
// prepared (optimized) programs. Sessions are movable but not copyable,
// and must not outlive the Engine that opened them.
//
// Thread-safety contract (the serving layer depends on it):
//  * Prepare is safe to call from any number of threads and is
//    single-flight per fingerprint: N concurrent calls with the same
//    (program, ICs, options) fingerprint run the pass pipeline exactly
//    once — one caller optimizes while the rest block on the in-flight
//    entry and then share the published PreparedProgram (observable as
//    engine/pipeline_runs == 1). Failed runs are not cached; a later
//    Prepare retries.
//  * Execute / ExecuteOriginal / MakeEdb are safe concurrently, provided
//    each thread evaluates against its own Database (Relation builds join
//    indexes lazily, so sharing one mutable Database across evaluating
//    threads is a data race — give every request its own MakeEdb()).
//  * ClearCache invalidates the pointers Prepare returned and must not
//    run concurrently with Prepare or with threads still holding them.
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  const Program& program() const { return unit_.program; }
  const std::vector<Constraint>& ics() const { return unit_.constraints; }
  const std::vector<Atom>& facts() const { return unit_.facts; }

  // Materializes the unit's facts as an EDB.
  Database MakeEdb() const;

  // Runs the optimizer pipeline once per distinct (program, ICs, options)
  // fingerprint and caches the result: preparing the same query twice is a
  // cache hit that performs zero re-optimization. Hit/miss counts land in
  // the engine's MetricsRegistry ("engine/prepare_cache_{hits,misses}");
  // callers that blocked on another thread's in-flight run also count as
  // hits, plus "engine/prepare_single_flight_waits". The returned pointer
  // is owned by the session.
  Result<const PreparedProgram*> Prepare(const SqoOptions& options = {});

  // Same, and reports whether this call was served from the cache (a hit
  // or a wait on another thread's in-flight run) rather than running the
  // pipeline itself. The serving layer surfaces this per request.
  Result<const PreparedProgram*> Prepare(const SqoOptions& options,
                                         bool* cache_hit);

  // Evaluates the prepared (rewritten) program against `edb` and returns
  // the query predicate's tuples, sorted. The engine's tracer/metrics are
  // threaded into the evaluation unless `options` already carries its own.
  Result<std::vector<Tuple>> Execute(
      const PreparedProgram& prepared, const Database& edb,
      EvalOptions options = {}, EvalStats* stats = nullptr,
      std::vector<RuleProfile>* profiles = nullptr);

  // Same, but evaluates the session's original (unoptimized) program —
  // the baseline side of every "does the rewriting pay off" comparison.
  Result<std::vector<Tuple>> ExecuteOriginal(
      const Database& edb, EvalOptions options = {},
      EvalStats* stats = nullptr,
      std::vector<RuleProfile>* profiles = nullptr);

  // Number of distinct prepared programs cached (in-flight ones included).
  size_t cache_size() const;

  // Drops all cached prepared programs (invalidates Prepare pointers).
  void ClearCache();

 private:
  friend class Engine;
  Session(Engine* engine, ParsedUnit unit);

  // One cache slot. `done` flips exactly once, under the cache mutex; on
  // success `prepared` is set, on failure `status` carries the error and
  // the slot is removed from the map (waiters still hold the shared_ptr).
  struct CacheEntry {
    bool done = false;
    Status status;
    std::unique_ptr<PreparedProgram> prepared;
  };

  // The mutex/cv live behind a unique_ptr so the Session stays movable.
  struct PrepareCache {
    std::mutex mu;
    std::condition_variable cv;
    // Keyed by the full fingerprint (not its hash), so colliding hashes
    // can never alias two plans.
    std::unordered_map<std::string, std::shared_ptr<CacheEntry>> entries;
  };

  // The canonical fingerprint string hashed into the cache key.
  std::string Fingerprint(const SqoOptions& options) const;

  Result<std::vector<Tuple>> Run(const Program& program, const Database& edb,
                                 EvalOptions options, EvalStats* stats,
                                 std::vector<RuleProfile>* profiles);

  Engine* engine_;
  ParsedUnit unit_;
  std::unique_ptr<PrepareCache> cache_;
};

}  // namespace sqod

#endif  // SQOD_ENGINE_SESSION_H_
