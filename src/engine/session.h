#ifndef SQOD_ENGINE_SESSION_H_
#define SQOD_ENGINE_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/eval/bytecode.h"
#include "src/eval/evaluator.h"
#include "src/parser/parser.h"
#include "src/sqo/optimizer.h"

namespace sqod {

class Engine;
class MaterializedView;

// How Session::Materialize builds and maintains a view (see
// src/engine/view.h and docs/ivm.md).
struct MaterializeOptions {
  // Evaluation options for the initial fixpoint and the recompute
  // fallback. The incremental path never runs the evaluator.
  EvalOptions eval;
  // Fall back to a full recompute when a batch's net change exceeds this
  // fraction of the live EDB.
  double recompute_fraction = 0.25;
  // Always recompute (benchmark baseline / escape hatch).
  bool force_recompute = false;
};

// An optimized program, ready for repeated execution. Owned by the session
// that prepared it; pointers returned by Session::Prepare stay valid for
// the session's lifetime (or until ClearCache). Immutable once published,
// so any number of threads may Execute against it concurrently.
struct PreparedProgram {
  // FNV-1a hash of the canonical fingerprint (program text + ICs + the
  // semantically relevant SqoOptions fields); the cache key.
  uint64_t cache_key = 0;
  // The options the program was prepared under (observability pointers
  // cleared — they are per-run, not part of the plan).
  SqoOptions options;
  // The full optimizer report, including the rewritten program.
  SqoReport report;
  // The rewritten program lowered to register bytecode with per-rule
  // kernels, built once at Prepare and reused by every Execute (the service
  // warm path never re-lowers). Null when the program does not stratify —
  // Execute then lets the evaluator surface the error. Shared and
  // immutable, so concurrent Executes read it without synchronization.
  std::shared_ptr<const CompiledProgram> compiled;

  // The drop-in replacement program P' to execute.
  const Program& program() const { return report.rewritten; }
};

// One loaded datalog unit (program + ICs + optional facts) with a cache of
// prepared (optimized) programs. Sessions are movable but not copyable,
// and must not outlive the Engine that opened them.
//
// Thread-safety contract (the serving layer depends on it):
//  * Prepare is safe to call from any number of threads and is
//    single-flight per fingerprint: N concurrent calls with the same
//    (program, ICs, options) fingerprint run the pass pipeline exactly
//    once — one caller optimizes while the rest block on the in-flight
//    entry and then share the published PreparedProgram (observable as
//    engine/pipeline_runs == 1). Failed runs are not cached; a later
//    Prepare retries.
//  * Execute / ExecuteOriginal / MakeEdb are safe concurrently, provided
//    each thread evaluates against its own Database or the session's
//    frozen SharedEdb() snapshot. A mutable Database must not be shared
//    across evaluating threads (Relation builds join indexes lazily — a
//    data race); the shared snapshot is frozen, so its lazy index builds
//    serialize internally and any number of threads may probe it.
//  * Materialize is single-flight per prepared program: concurrent calls
//    serialize and share one MaterializedView. The view has its own
//    reader/maintainer contract (see view.h).
//  * ClearCache invalidates the pointers Prepare and Materialize returned
//    (views pin their PreparedProgram) and must not run concurrently with
//    Prepare/Materialize or with threads still holding them.
class Session {
 public:
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  ~Session();

  const Program& program() const { return unit_.program; }
  const std::vector<Constraint>& ics() const { return unit_.constraints; }
  const std::vector<Atom>& facts() const { return unit_.facts; }

  // Materializes the unit's facts as an EDB (a fresh mutable copy).
  Database MakeEdb() const;

  // The unit's facts as one immutable frozen snapshot, built lazily on
  // first use and shared by every caller after: the serving layer's warm
  // path reads it concurrently instead of copying the EDB per request.
  const Database& SharedEdb();

  // Runs the optimizer pipeline once per distinct (program, ICs, options)
  // fingerprint and caches the result: preparing the same query twice is a
  // cache hit that performs zero re-optimization. Hit/miss counts land in
  // the engine's MetricsRegistry ("engine/prepare_cache_{hits,misses}");
  // callers that blocked on another thread's in-flight run also count as
  // hits, plus "engine/prepare_single_flight_waits". The returned pointer
  // is owned by the session.
  Result<const PreparedProgram*> Prepare(const SqoOptions& options = {});

  // Same, and reports whether this call was served from the cache (a hit
  // or a wait on another thread's in-flight run) rather than running the
  // pipeline itself. The serving layer surfaces this per request.
  Result<const PreparedProgram*> Prepare(const SqoOptions& options,
                                         bool* cache_hit);

  // Evaluates the prepared (rewritten) program against `edb` and returns
  // the query predicate's tuples, sorted. The engine's tracer/metrics are
  // threaded into the evaluation unless `options` already carries its own.
  Result<std::vector<Tuple>> Execute(
      const PreparedProgram& prepared, const Database& edb,
      EvalOptions options = {}, EvalStats* stats = nullptr,
      std::vector<RuleProfile>* profiles = nullptr);

  // Same, but evaluates the session's original (unoptimized) program —
  // the baseline side of every "does the rewriting pay off" comparison.
  Result<std::vector<Tuple>> ExecuteOriginal(
      const Database& edb, EvalOptions options = {},
      EvalStats* stats = nullptr,
      std::vector<RuleProfile>* profiles = nullptr);

  // The materialized view for `prepared`, building it on first use (one
  // view per prepared program, keyed by its cache key; `options` only
  // matter for the call that builds the view). The view is owned by the
  // session and stays valid until ClearCache. Building runs the initial
  // fixpoint, so the first call pays an Execute-sized cost; later calls
  // return the warm view immediately.
  Result<MaterializedView*> Materialize(const PreparedProgram& prepared,
                                        const MaterializeOptions& options);
  Result<MaterializedView*> Materialize(const PreparedProgram& prepared) {
    return Materialize(prepared, MaterializeOptions());
  }

  // Number of distinct prepared programs cached (in-flight ones included).
  size_t cache_size() const;

  // Drops all cached prepared programs (invalidates Prepare pointers).
  void ClearCache();

 private:
  friend class Engine;
  Session(Engine* engine, ParsedUnit unit);

  // One cache slot. `done` flips exactly once, under the cache mutex; on
  // success `prepared` is set, on failure `status` carries the error and
  // the slot is removed from the map (waiters still hold the shared_ptr).
  struct CacheEntry {
    bool done = false;
    Status status;
    std::unique_ptr<PreparedProgram> prepared;
  };

  // The mutex/cv live behind a unique_ptr so the Session stays movable.
  struct PrepareCache {
    std::mutex mu;
    std::condition_variable cv;
    // Keyed by the full fingerprint (not its hash), so colliding hashes
    // can never alias two plans.
    std::unordered_map<std::string, std::shared_ptr<CacheEntry>> entries;
  };

  // Shared-EDB snapshot + materialized views; defined in session.cc so
  // this header needs neither view.h nor a complete MaterializedView.
  struct ViewCache;

  // The canonical fingerprint string hashed into the cache key.
  std::string Fingerprint(const SqoOptions& options) const;

  Result<std::vector<Tuple>> Run(const Program& program, const Database& edb,
                                 EvalOptions options, EvalStats* stats,
                                 std::vector<RuleProfile>* profiles);

  Engine* engine_;
  ParsedUnit unit_;
  std::unique_ptr<PrepareCache> cache_;
  std::unique_ptr<ViewCache> views_;
};

}  // namespace sqod

#endif  // SQOD_ENGINE_SESSION_H_
