#ifndef SQOD_ENGINE_SESSION_H_
#define SQOD_ENGINE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/eval/evaluator.h"
#include "src/parser/parser.h"
#include "src/sqo/optimizer.h"

namespace sqod {

class Engine;

// An optimized program, ready for repeated execution. Owned by the session
// that prepared it; pointers returned by Session::Prepare stay valid for
// the session's lifetime (or until ClearCache).
struct PreparedProgram {
  // FNV-1a hash of the canonical fingerprint (program text + ICs + the
  // semantically relevant SqoOptions fields); the cache key.
  uint64_t cache_key = 0;
  // The options the program was prepared under (observability pointers
  // cleared — they are per-run, not part of the plan).
  SqoOptions options;
  // The full optimizer report, including the rewritten program.
  SqoReport report;

  // The drop-in replacement program P' to execute.
  const Program& program() const { return report.rewritten; }
};

// One loaded datalog unit (program + ICs + optional facts) with a cache of
// prepared (optimized) programs. Sessions are movable but not copyable,
// and must not outlive the Engine that opened them.
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  const Program& program() const { return unit_.program; }
  const std::vector<Constraint>& ics() const { return unit_.constraints; }
  const std::vector<Atom>& facts() const { return unit_.facts; }

  // Materializes the unit's facts as an EDB.
  Database MakeEdb() const;

  // Runs the optimizer pipeline once per distinct (program, ICs, options)
  // fingerprint and caches the result: preparing the same query twice is a
  // cache hit that performs zero re-optimization. Hit/miss counts land in
  // the engine's MetricsRegistry ("engine/prepare_cache_{hits,misses}").
  // The returned pointer is owned by the session.
  Result<const PreparedProgram*> Prepare(const SqoOptions& options = {});

  // Evaluates the prepared (rewritten) program against `edb` and returns
  // the query predicate's tuples, sorted. The engine's tracer/metrics are
  // threaded into the evaluation unless `options` already carries its own.
  Result<std::vector<Tuple>> Execute(
      const PreparedProgram& prepared, const Database& edb,
      EvalOptions options = {}, EvalStats* stats = nullptr,
      std::vector<RuleProfile>* profiles = nullptr);

  // Same, but evaluates the session's original (unoptimized) program —
  // the baseline side of every "does the rewriting pay off" comparison.
  Result<std::vector<Tuple>> ExecuteOriginal(
      const Database& edb, EvalOptions options = {},
      EvalStats* stats = nullptr,
      std::vector<RuleProfile>* profiles = nullptr);

  // Number of distinct prepared programs cached.
  size_t cache_size() const { return cache_.size(); }

  // Drops all cached prepared programs (invalidates Prepare pointers).
  void ClearCache() { cache_.clear(); }

 private:
  friend class Engine;
  Session(Engine* engine, ParsedUnit unit);

  // The canonical fingerprint string hashed into the cache key.
  std::string Fingerprint(const SqoOptions& options) const;

  Result<std::vector<Tuple>> Run(const Program& program, const Database& edb,
                                 EvalOptions options, EvalStats* stats,
                                 std::vector<RuleProfile>* profiles);

  Engine* engine_;
  ParsedUnit unit_;
  // Keyed by the full fingerprint (not its hash), so colliding hashes can
  // never alias two plans.
  std::unordered_map<std::string, std::unique_ptr<PreparedProgram>> cache_;
};

}  // namespace sqod

#endif  // SQOD_ENGINE_SESSION_H_
