#include "src/engine/view.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace sqod {

namespace {

void SortTuples(std::vector<Tuple>* out) {
  std::sort(out->begin(), out->end(), [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
}

Database CopyLive(const Database& db) {
  Database out;
  for (const auto& [pred, rel] : db.relations()) {
    Relation* dst = out.FindOrCreate(pred, rel.arity());
    for (TupleRef t : rel.rows()) dst->Insert(t);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<MaterializedView>> MaterializedView::Create(
    const PreparedProgram& prepared, const Database& base,
    const MaterializeOptions& options) {
  Result<MaintenancePlan> plan = BuildMaintenancePlan(prepared.program());
  if (!plan.ok()) return plan.status();

  auto view = std::unique_ptr<MaterializedView>(new MaterializedView());
  view->prepared_ = &prepared;
  view->options_ = options;
  view->plan_ = std::move(plan).value();

  view->state_.edb = base;  // the view owns and mutates its EDB
  view->state_.edb.EnableVersioning(0);
  view->state_.version = 0;

  EvalOptions eval = options.eval;
  if (eval.mode == EvalMode::kCompile && eval.compiled == nullptr) {
    eval.compiled = prepared.compiled.get();
  }
  Evaluator evaluator(prepared.program(), eval);
  Result<Database> idb = evaluator.Evaluate(view->state_.edb);
  if (!idb.ok()) return idb.status();
  view->state_.idb = std::move(idb).value();
  view->state_.idb.EnableVersioning(0);

  InitializeDerivationCounts(prepared.program(), view->plan_, &view->state_);
  return view;
}

int64_t MaterializedView::version() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return state_.version;
}

std::vector<Tuple> MaterializedView::Answers(int64_t* version) const {
  std::vector<Tuple> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (version != nullptr) *version = state_.version;
    const PredId query = program().query();
    const Relation* rel = state_.idb.Find(query);
    if (rel == nullptr) rel = state_.edb.Find(query);  // EDB-only query
    if (rel != nullptr) {
      out.reserve(rel->live_size());
      for (TupleRef t : rel->rows()) out.push_back(t.Materialize());
    }
  }
  SortTuples(&out);
  return out;
}

Result<MaintainStats> MaterializedView::ApplyDelta(const FactDelta& delta) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ApplyDeltaOptions options;
  options.eval = options_.eval;
  if (options.eval.mode == EvalMode::kCompile &&
      options.eval.compiled == nullptr) {
    options.eval.compiled = prepared_->compiled.get();
  }
  options.recompute_fraction = options_.recompute_fraction;
  options.force_recompute = options_.force_recompute;
  Result<MaintainStats> stats =
      ApplyDeltaToState(program(), plan_, delta, options, &state_);
  if (stats.ok()) {
    last_ = stats.value();
    totals_.Accumulate(last_);
    ++batches_;
  }
  return stats;
}

MaintainStats MaterializedView::last_batch() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return last_;
}

MaintainStats MaterializedView::totals() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return totals_;
}

int64_t MaterializedView::batches_applied() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return batches_;
}

Database MaterializedView::SnapshotIdb() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return CopyLive(state_.idb);
}

Database MaterializedView::SnapshotEdb() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return CopyLive(state_.edb);
}

}  // namespace sqod
