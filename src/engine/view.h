#ifndef SQOD_ENGINE_VIEW_H_
#define SQOD_ENGINE_VIEW_H_

#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "src/engine/session.h"
#include "src/eval/maintain.h"

namespace sqod {

// A materialized view: one PreparedProgram pinned together with its warm,
// versioned IDB, kept at the fixpoint across EDB deltas (docs/ivm.md).
// Obtained from Session::Materialize — one view per prepared-program
// fingerprint, owned by the session, valid until ClearCache/destruction.
//
// Thread-safety contract (the serving layer depends on it):
//  * Answers / version / SnapshotIdb / totals are safe from any number of
//    reader threads concurrently (shared lock).
//  * ApplyDelta takes the exclusive lock: batches serialize with each other
//    and with readers. Readers never observe a half-applied batch — they
//    see snapshot V or V+1, nothing in between.
//  * A reader holds the lock only while copying answers out; returned
//    tuples are snapshots, safe to use lock-free afterwards.
class MaterializedView {
 public:
  MaterializedView(const MaterializedView&) = delete;
  MaterializedView& operator=(const MaterializedView&) = delete;

  // The rewritten program this view materializes.
  const Program& program() const { return prepared_->program(); }
  const PreparedProgram& prepared() const { return *prepared_; }
  const MaintenancePlan& plan() const { return plan_; }

  // The snapshot version currently served (0 = the initial
  // materialization; each effective ApplyDelta batch advances it by one).
  int64_t version() const;

  // The query predicate's live tuples, sorted — byte-identical to what
  // Session::Execute would return for the same EDB state, without running
  // the evaluator. `version` (optional) receives the snapshot served.
  std::vector<Tuple> Answers(int64_t* version = nullptr) const;

  // Applies one batch of EDB changes and brings the IDB back to the
  // fixpoint (incrementally, or via the recompute fallback — see
  // ApplyDeltaToState). Returns the batch's maintenance stats. Errors
  // (non-ground atoms, arity mismatches, IDB predicates in the delta)
  // leave the view unchanged.
  Result<MaintainStats> ApplyDelta(const FactDelta& delta);

  // Stats of the last effective batch, and totals across all batches.
  MaintainStats last_batch() const;
  MaintainStats totals() const;
  int64_t batches_applied() const;

  // Deep copies of the live tuples (plain, unversioned databases) — the
  // oracle side of equivalence tests and the CLI's recompute comparison.
  Database SnapshotIdb() const;
  Database SnapshotEdb() const;

 private:
  friend class Session;
  MaterializedView() = default;

  // Builds the view: copies `base` as the versioned EDB, evaluates the
  // prepared program to the initial IDB, and initializes derivation
  // counts. Called by Session::Materialize with the session's facts.
  static Result<std::unique_ptr<MaterializedView>> Create(
      const PreparedProgram& prepared, const Database& base,
      const MaterializeOptions& options);

  const PreparedProgram* prepared_ = nullptr;
  MaterializeOptions options_;
  MaintenancePlan plan_;
  MaterializedState state_;
  MaintainStats last_;
  MaintainStats totals_;
  int64_t batches_ = 0;
  mutable std::shared_mutex mu_;
};

}  // namespace sqod

#endif  // SQOD_ENGINE_VIEW_H_
