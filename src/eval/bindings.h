#ifndef SQOD_EVAL_BINDINGS_H_
#define SQOD_EVAL_BINDINGS_H_

#include <cstdint>
#include <vector>

#include "src/base/value.h"
#include "src/eval/plan.h"

namespace sqod {

// Variable bindings as a dense slot array indexed by rule-local variable id
// (rules renumber their variables 0..num_vars-1 at plan-compile time), with
// a trail for cheap backtracking. Bind/Get/IsBound never hash or allocate.
// Shared by the PlanStep interpreter (evaluator.cc) and the maintenance
// executor (maintain.cc); the bytecode executor precomputes boundness and
// needs neither the flags nor the trail.
class Bindings {
 public:
  void Reset(int num_vars) {
    slots_.assign(num_vars, Value());
    bound_.assign(num_vars, 0);
    trail_.clear();
  }

  size_t Mark() const { return trail_.size(); }

  void Restore(size_t mark) {
    while (trail_.size() > mark) {
      bound_[trail_.back()] = 0;
      trail_.pop_back();
    }
  }

  // Binds or checks; returns false on mismatch with an existing binding.
  bool Bind(int32_t var, const Value& value) {
    if (bound_[var]) return slots_[var] == value;
    bound_[var] = 1;
    slots_[var] = value;
    trail_.push_back(var);
    return true;
  }

  bool IsBound(int32_t var) const { return bound_[var] != 0; }
  const Value& Get(int32_t var) const { return slots_[var]; }

 private:
  std::vector<Value> slots_;
  std::vector<uint8_t> bound_;
  std::vector<int32_t> trail_;
};

inline const Value& ArgValue(const ArgRef& a, const Bindings& b) {
  return a.var < 0 ? a.const_val : b.Get(a.var);
}

}  // namespace sqod

#endif  // SQOD_EVAL_BINDINGS_H_
