#include "src/eval/bytecode.h"

#include <algorithm>
#include <cstdio>

#include "src/base/check.h"
#include "src/eval/evaluator.h"
#include "src/eval/kernel.h"
#include "src/eval/relation.h"
#include "src/obs/trace.h"

namespace sqod {

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kScanFull: return "SCAN_FULL";
    case OpCode::kScanDelta: return "SCAN_DELTA";
    case OpCode::kProbeIndex: return "PROBE_INDEX";
    case OpCode::kLoadCol: return "LOAD_COL";
    case OpCode::kCheckCol: return "CHECK_COL";
    case OpCode::kCheckConst: return "CHECK_CONST";
    case OpCode::kJump: return "JUMP";
    case OpCode::kFilterCmp: return "FILTER_CMP";
    case OpCode::kCheckNeg: return "CHECK_NEG";
    case OpCode::kEmitHead: return "EMIT_HEAD";
  }
  return "?";
}

const char* KernelName(KernelId k) {
  switch (k) {
    case KernelId::kGeneric: return "generic";
    case KernelId::kScanFilterEmit: return "scan_filter_emit";
    case KernelId::kScanProbeEmit: return "scan_probe_emit";
  }
  return "?";
}

std::string CompiledRule::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "rule %d delta=%d regs=%d kernel=%s ops=%d\n", rule_index,
                delta_subgoal, num_regs, KernelName(kernel), op_count());
  out += line;
  for (size_t ip = 0; ip < code.size(); ++ip) {
    const Instr& in = code[ip];
    switch (in.op) {
      case OpCode::kScanFull:
      case OpCode::kScanDelta:
      case OpCode::kProbeIndex: {
        const LevelInfo& lvl = levels[in.b];
        std::snprintf(line, sizeof(line),
                      "%3zu  %-11s level=%d pred=%s mask=%llx keys=%d\n", ip,
                      OpCodeName(in.op), in.b, PredName(lvl.pred).c_str(),
                      static_cast<unsigned long long>(lvl.mask), lvl.key_len);
        break;
      }
      case OpCode::kLoadCol:
        std::snprintf(line, sizeof(line), "%3zu  %-11s col=%d -> r%d\n", ip,
                      OpCodeName(in.op), in.a, in.b);
        break;
      case OpCode::kCheckCol:
        std::snprintf(line, sizeof(line), "%3zu  %-11s col=%d == r%d\n", ip,
                      OpCodeName(in.op), in.a, in.b);
        break;
      case OpCode::kCheckConst:
        std::snprintf(line, sizeof(line), "%3zu  %-11s col=%d == c%d\n", ip,
                      OpCodeName(in.op), in.a, in.b);
        break;
      case OpCode::kJump:
        std::snprintf(line, sizeof(line), "%3zu  %-11s -> %d\n", ip,
                      OpCodeName(in.op), in.b);
        break;
      case OpCode::kFilterCmp:
        std::snprintf(line, sizeof(line), "%3zu  %-11s %s %s %s\n", ip,
                      OpCodeName(in.op),
                      in.b >= 0 ? ("r" + std::to_string(in.b)).c_str()
                                : ("c" + std::to_string(ConstIdx(in.b))).c_str(),
                      CmpOpName(static_cast<CmpOp>(in.a)),
                      in.c >= 0 ? ("r" + std::to_string(in.c)).c_str()
                                : ("c" + std::to_string(ConstIdx(in.c))).c_str());
        break;
      case OpCode::kCheckNeg: {
        const NegInfo& neg = negs[in.b];
        std::snprintf(line, sizeof(line), "%3zu  %-11s pred=%s args=%d\n", ip,
                      OpCodeName(in.op), PredName(neg.pred).c_str(),
                      neg.args_len);
        break;
      }
      case OpCode::kEmitHead:
        std::snprintf(line, sizeof(line), "%3zu  %-11s pred=%s arity=%d\n", ip,
                      OpCodeName(in.op), PredName(head_pred).c_str(),
                      head_arity);
        break;
    }
    out += line;
  }
  return out;
}

namespace {

// Interns a constant into the rule's pool, deduplicating by equality (pools
// are tiny — a handful of constants per rule at most).
int32_t InternConst(CompiledRule* out, const Value& v) {
  for (size_t i = 0; i < out->consts.size(); ++i) {
    if (out->consts[i] == v) return static_cast<int32_t>(i);
  }
  out->consts.push_back(v);
  return static_cast<int32_t>(out->consts.size() - 1);
}

ArgSrc LowerArg(CompiledRule* out, const ArgRef& a) {
  return a.var < 0 ? ConstSrc(InternConst(out, a.const_val)) : RegSrc(a.var);
}

}  // namespace

CompiledRule CompileRulePlan(const RulePlan& plan,
                             const std::set<PredId>& idb_preds) {
  CompiledRule out;
  out.rule_index = plan.rule_index;
  out.delta_subgoal = plan.delta_subgoal;
  out.num_regs = plan.num_vars;
  out.head_pred = plan.head_pred;
  out.head_arity = static_cast<int>(plan.head.size());

  // Sized up front: two action ranges (≤ 2 instrs per atom column each)
  // plus opener/jump per level, one instr per filter/negation, one emit.
  size_t code_guess = 1, args_guess = plan.head.size();
  for (const PlanStep& step : plan.steps) {
    code_guess += 2 * step.args.size() + 2;
    args_guess += step.args.size();
  }
  out.code.reserve(code_guess);
  out.args_pool.reserve(args_guess);

  // Registers hold the rule's variables under the plan's dense renumbering.
  // A register is bound (holds a live value) from the first join level that
  // loads it — a static property of the plan order, tracked here at compile
  // time so the executor never tests boundness. Fixed-size buffers: arity
  // is capped at Relation::kMaxArity and plans are compiled in bulk at
  // Prepare, so per-level heap churn would dominate the lowering cost.
  std::vector<uint8_t> reg_bound(plan.num_vars, 0);

  for (const PlanStep& step : plan.steps) {
    switch (step.kind) {
      case PlanStep::Kind::kComparison: {
        Instr in;
        in.op = OpCode::kFilterCmp;
        in.a = static_cast<uint8_t>(step.op);
        in.b = LowerArg(&out, step.lhs);
        in.c = LowerArg(&out, step.rhs);
        out.code.push_back(in);
        break;
      }
      case PlanStep::Kind::kNegation: {
        NegInfo neg;
        neg.pred = step.pred;
        neg.source = idb_preds.count(step.pred) > 0 ? RelSource::kIdbTotal
                                                    : RelSource::kEdb;
        neg.arity = static_cast<int>(step.args.size());
        neg.args_off = static_cast<uint32_t>(out.args_pool.size());
        neg.args_len = static_cast<uint16_t>(step.args.size());
        for (const ArgRef& a : step.args) {
          out.args_pool.push_back(LowerArg(&out, a));
        }
        Instr in;
        in.op = OpCode::kCheckNeg;
        in.b = static_cast<int32_t>(out.negs.size());
        out.negs.push_back(neg);
        out.code.push_back(in);
        break;
      }
      case PlanStep::Kind::kJoin: {
        LevelInfo lvl;
        lvl.pred = step.pred;
        lvl.body_index = step.index;
        if (idb_preds.count(step.pred) == 0) {
          lvl.source = RelSource::kEdb;
        } else if (step.index == plan.delta_subgoal) {
          lvl.source = RelSource::kIdbDelta;
        } else {
          lvl.source = RelSource::kIdbTotal;
        }
        lvl.arity = static_cast<int>(step.args.size());

        // The probe mask: constants plus registers bound by EARLIER levels.
        // This is exactly the mask the interpreter gathers dynamically —
        // boundness at a plan position does not depend on the data, and a
        // variable first bound by this atom is unbound for masking purposes
        // even when it repeats within the atom (the repeat becomes an
        // unmasked register compare against the freshly loaded column).
        uint64_t first_load = 0;
        int32_t atom_loads[Relation::kMaxArity];
        int num_atom_loads = 0;
        for (int i = 0; i < lvl.arity; ++i) {
          const ArgRef& a = step.args[i];
          if (a.var < 0 || reg_bound[a.var]) {
            lvl.mask |= uint64_t{1} << i;
          } else if (std::find(atom_loads, atom_loads + num_atom_loads,
                               a.var) == atom_loads + num_atom_loads) {
            first_load |= uint64_t{1} << i;
            atom_loads[num_atom_loads++] = a.var;
          }
        }
        for (int k = 0; k < num_atom_loads; ++k) reg_bound[atom_loads[k]] = 1;

        // Key sources, in mask-column order (what Relation::Probe expects).
        lvl.key_off = static_cast<uint32_t>(out.args_pool.size());
        for (int i = 0; i < lvl.arity; ++i) {
          if ((lvl.mask >> i) & 1) {
            out.args_pool.push_back(LowerArg(&out, step.args[i]));
            ++lvl.key_len;
          }
        }

        const int32_t level_idx = static_cast<int32_t>(out.levels.size());
        Instr open;
        open.op = lvl.mask != 0 ? OpCode::kProbeIndex
                  : lvl.source == RelSource::kIdbDelta ? OpCode::kScanDelta
                                                       : OpCode::kScanFull;
        open.b = level_idx;
        lvl.open_ip = static_cast<uint32_t>(out.code.size());
        out.code.push_back(open);

        // Probe-action range: rows from an index probe already match every
        // masked column, so only unmasked columns need work — loads for
        // first occurrences, register compares for in-atom repeats.
        lvl.probe_ip = static_cast<uint32_t>(out.code.size());
        for (int i = 0; i < lvl.arity; ++i) {
          if ((lvl.mask >> i) & 1) continue;
          Instr in;
          in.a = static_cast<uint8_t>(i);
          in.b = step.args[i].var;
          in.op = (first_load >> i) & 1 ? OpCode::kLoadCol : OpCode::kCheckCol;
          out.code.push_back(in);
        }
        // Skip the scan-action range below.
        Instr jmp;
        jmp.op = OpCode::kJump;
        const size_t jmp_ip = out.code.size();
        out.code.push_back(jmp);

        // Scan-action range: rows from a full scan (no index, or indexes
        // disabled at runtime) must check every column.
        lvl.scan_ip = static_cast<uint32_t>(out.code.size());
        for (int i = 0; i < lvl.arity; ++i) {
          Instr in;
          in.a = static_cast<uint8_t>(i);
          const ArgRef& a = step.args[i];
          if (a.var < 0) {
            in.op = OpCode::kCheckConst;
            in.b = InternConst(&out, a.const_val);
          } else if ((first_load >> i) & 1) {
            in.op = OpCode::kLoadCol;
            in.b = a.var;
          } else {
            in.op = OpCode::kCheckCol;
            in.b = a.var;
          }
          out.code.push_back(in);
        }
        lvl.post_ip = static_cast<uint32_t>(out.code.size());
        out.code[jmp_ip].b = static_cast<int32_t>(lvl.post_ip);
        out.levels.push_back(lvl);
        break;
      }
    }
  }

  out.head_off = static_cast<uint32_t>(out.args_pool.size());
  for (const ArgRef& a : plan.head) out.args_pool.push_back(LowerArg(&out, a));
  Instr emit;
  emit.op = OpCode::kEmitHead;
  out.code.push_back(emit);

  out.kernel = SelectKernel(out);
  return out;
}

Result<CompiledProgram> CompileProgram(const Program& program) {
  const int64_t t0 = NowNs();
  Result<std::map<PredId, int>> strata = program.Stratify();
  if (!strata.ok()) return strata.status();
  int max_stratum = 0;
  for (const auto& [pred, s] : strata.value()) {
    max_stratum = std::max(max_stratum, s);
  }

  CompiledProgram out;
  out.idb_preds = program.IdbPreds();
  const std::vector<Rule>& rules = program.rules();
  out.num_rules = static_cast<int>(rules.size());
  out.strata.resize(max_stratum + 1);

  PlanScratch scratch;
  auto lower = [&](const Rule& rule, int rule_index, int first) {
    RulePlan plan = BuildPlan(rule, rule_index, first, &scratch);
    CompiledRule cr = CompileRulePlan(plan, out.idb_preds);
    out.max_regs = std::max(out.max_regs, cr.num_regs);
    out.max_levels = std::max(out.max_levels, static_cast<int>(cr.levels.size()));
    out.total_ops += cr.op_count();
    out.plans.push_back({cr.rule_index, cr.delta_subgoal, cr.kernel,
                         cr.op_count()});
    return cr;
  };

  for (int stratum = 0; stratum <= max_stratum; ++stratum) {
    CompiledProgram::Stratum& st = out.strata[stratum];
    for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
      if (strata.value().at(rules[r].head.pred()) == stratum) {
        st.rule_indices.push_back(r);
      }
    }
    // Same-stratum positive IDB subgoal body indices, per rule — the rules
    // they belong to iterate from deltas; the rest seed iteration 0.
    std::map<int, std::vector<int>> recursive_subgoals;
    for (int r : st.rule_indices) {
      for (size_t i = 0; i < rules[r].body.size(); ++i) {
        const Literal& l = rules[r].body[i];
        if (!l.negated && out.idb_preds.count(l.atom.pred()) > 0 &&
            strata.value().at(l.atom.pred()) == stratum) {
          recursive_subgoals[r].push_back(static_cast<int>(i));
        }
      }
    }
    for (size_t i = 0; i < st.rule_indices.size(); ++i) {
      const int r = st.rule_indices[i];
      st.full.push_back(lower(rules[r], r, -1));
      if (recursive_subgoals.count(r) == 0) {
        st.nonrecursive.push_back(static_cast<int>(i));
      }
    }
    for (const auto& [r, occurrences] : recursive_subgoals) {
      for (int occurrence : occurrences) {
        st.delta.push_back(lower(rules[r], r, occurrence));
      }
    }
  }
  out.compile_ns = NowNs() - t0;
  return out;
}

namespace {

inline const Database* SourceDb(RelSource source, const VmContext& ctx) {
  switch (source) {
    case RelSource::kEdb: return ctx.edb;
    case RelSource::kIdbTotal: return ctx.idb_total;
    case RelSource::kIdbDelta: return ctx.idb_delta;
  }
  return nullptr;
}

// One open join level in the generic executor.
struct Cursor {
  const Relation* rel = nullptr;
  const Value* row_data = nullptr;  // current row
  // Index-probe chain state (is_scan == false):
  int32_t probe_row = -1;
  const int32_t* next = nullptr;
  // Scan state (is_scan == true):
  int64_t scan_row = 0;
  int64_t scan_end = 0;
  bool is_scan = false;
  uint32_t actions_ip = 0;  // probe_ip or scan_ip, chosen when opened
  int32_t level = -1;
};

}  // namespace

bool ResolveRelations(const CompiledRule& rule, VmContext* ctx) {
  // Pointers into Database's unordered_map are invalidated by rehash on
  // insert of a *new* predicate, so relations are re-resolved per rule
  // activation and never cached across iterations.
  ctx->level_rels->clear();
  for (const LevelInfo& lvl : rule.levels) {
    const Database* db = SourceDb(lvl.source, *ctx);
    ctx->level_rels->push_back(db == nullptr ? nullptr : db->Find(lvl.pred));
  }
  ctx->neg_rels->clear();
  for (const NegInfo& neg : rule.negs) {
    const Database* db = SourceDb(neg.source, *ctx);
    ctx->neg_rels->push_back(db == nullptr ? nullptr : db->Find(neg.pred));
  }
  // A missing/empty relation at the FIRST level means zero work — exactly
  // the interpreter's early return before any counter moves. Deeper levels
  // must still run (outer probes are observable), so only level 0 prunes.
  if (!rule.levels.empty()) {
    const Relation* r0 = (*ctx->level_rels)[0];
    if (r0 == nullptr || r0->empty()) return false;
  }
  return true;
}

void RunBytecode(const CompiledRule& rule, VmContext* ctx) {
  const Instr* code = rule.code.data();
  const Value* consts = rule.consts.data();
  const ArgSrc* args_pool = rule.args_pool.data();
  Value* regs = ctx->regs->data();
  const std::vector<const Relation*>& level_rels = *ctx->level_rels;
  const std::vector<const Relation*>& neg_rels = *ctx->neg_rels;
  RuleProfile* prof = ctx->profile;

  // Local accumulators, flushed once on exit: the dispatch loop touches no
  // profile memory per instruction.
  int64_t ops = 0, probes = 0, cmps = 0;
  int64_t firings = 0, dups = 0, derived = 0;

  // The cursor stack: one entry per open join level, innermost on top.
  // Realistic rules have a handful of levels; the heap path covers the rest.
  constexpr int kInlineLevels = 16;
  Cursor inline_stack[kInlineLevels];
  std::vector<Cursor> heap_stack;
  Cursor* stack = inline_stack;
  if (rule.levels.size() > kInlineLevels) {
    heap_stack.resize(rule.levels.size());
    stack = heap_stack.data();
  }
  int depth = 0;

  // Hash-partition filter for the first join level (parallel evaluation).
  // Hoisted: the unpartitioned path pays one register test per row.
  const uint64_t part_count = static_cast<uint64_t>(ctx->part_count);
  const uint64_t part_index = static_cast<uint64_t>(ctx->part_index);
  const bool partitioned = part_count > 1;

  Value key[Relation::kMaxArity];

  auto src_value = [&](ArgSrc s) -> const Value& {
    return IsConstSrc(s) ? consts[ConstIdx(s)] : regs[s];
  };

  uint32_t ip = 0;
  bool done = false;
  while (!done) {
    const Instr& in = code[ip];
    ++ops;
    switch (in.op) {
      case OpCode::kScanFull:
      case OpCode::kScanDelta:
      case OpCode::kProbeIndex: {
        const LevelInfo& lvl = rule.levels[in.b];
        const Relation* rel = level_rels[in.b];
        Cursor& cur = stack[depth];
        cur.rel = rel;
        cur.level = in.b;
        cur.row_data = nullptr;
        if (rel == nullptr || rel->empty()) {
          // Level cannot match: backtrack (fall through to advance below).
          cur.is_scan = true;
          cur.scan_row = 0;
          cur.scan_end = 0;
        } else if (in.op == OpCode::kProbeIndex && ctx->use_indexes) {
          for (int k = 0; k < lvl.key_len; ++k) {
            key[k] = src_value(args_pool[lvl.key_off + k]);
          }
          Relation::Matches m = rel->Probe(lvl.mask, key);
          cur.is_scan = false;
          cur.probe_row = m.row;
          cur.next = m.next;
          cur.actions_ip = lvl.probe_ip;
        } else {
          cur.is_scan = true;
          cur.scan_row = 0;
          cur.scan_end = rel->size();
          cur.actions_ip = lvl.scan_ip;
        }
        ++depth;
        // Fetch the first row (or backtrack if none) via the shared
        // advance path below.
        break;
      }
      case OpCode::kLoadCol: {
        regs[in.b] = stack[depth - 1].row_data[in.a];
        ++ip;
        continue;
      }
      case OpCode::kCheckCol: {
        if (stack[depth - 1].row_data[in.a] == regs[in.b]) {
          ++ip;
          continue;
        }
        break;  // row rejected: advance
      }
      case OpCode::kCheckConst: {
        if (stack[depth - 1].row_data[in.a] == consts[in.b]) {
          ++ip;
          continue;
        }
        break;
      }
      case OpCode::kJump: {
        ip = static_cast<uint32_t>(in.b);
        continue;
      }
      case OpCode::kFilterCmp: {
        ++cmps;
        if (EvalCmp(src_value(in.b), static_cast<CmpOp>(in.a), src_value(in.c))) {
          ++ip;
          continue;
        }
        break;
      }
      case OpCode::kCheckNeg: {
        const NegInfo& neg = rule.negs[in.b];
        const Relation* rel = neg_rels[in.b];
        bool present = false;
        if (rel != nullptr) {
          for (int k = 0; k < neg.args_len; ++k) {
            key[k] = src_value(args_pool[neg.args_off + k]);
          }
          present = rel->Contains(key, neg.args_len);
        }
        if (!present) {
          ++ip;
          continue;
        }
        break;
      }
      case OpCode::kEmitHead: {
        ++firings;
        Value head[Relation::kMaxArity];
        for (int i = 0; i < rule.head_arity; ++i) {
          head[i] = src_value(args_pool[rule.head_off + i]);
        }
        if (ctx->idb_total->Contains(rule.head_pred, head, rule.head_arity) ||
            ctx->out_new->Contains(rule.head_pred, head, rule.head_arity)) {
          ++dups;
        } else {
          ctx->out_new->Insert(rule.head_pred, head, rule.head_arity);
          ++derived;
          ++*ctx->derived_count;
          if (ctx->max_derived >= 0 &&
              *ctx->derived_count > ctx->max_derived) {
            *ctx->overflow = true;
            done = true;
            break;
          }
        }
        break;  // complete match consumed: advance the innermost cursor
      }
    }
    if (done) break;

    // Advance: fetch the next row of the innermost cursor; pop exhausted
    // cursors; an empty stack means the activation is complete.
    for (;;) {
      if (depth == 0) {
        done = true;
        break;
      }
      Cursor& cur = stack[depth - 1];
      bool have_row = false;
      // Tombstoned rows — and, at a partitioned level 0, rows of other
      // partitions — are skipped before the probe counter, matching the
      // interpreter and the specialized kernels.
      const bool filter_part = partitioned && cur.level == 0;
      if (cur.is_scan) {
        while (cur.scan_row < cur.scan_end &&
               (!cur.rel->live(cur.scan_row) ||
                (filter_part &&
                 cur.rel->row_hash(cur.scan_row) % part_count != part_index))) {
          ++cur.scan_row;
        }
        if (cur.scan_row < cur.scan_end) {
          cur.row_data = cur.rel->row(cur.scan_row).data();
          ++cur.scan_row;
          have_row = true;
        }
      } else {
        while (cur.probe_row >= 0 &&
               (!cur.rel->live(cur.probe_row) ||
                (filter_part &&
                 cur.rel->row_hash(cur.probe_row) % part_count != part_index))) {
          cur.probe_row = cur.next[cur.probe_row];
        }
        if (cur.probe_row >= 0) {
          cur.row_data = cur.rel->row(cur.probe_row).data();
          cur.probe_row = cur.next[cur.probe_row];
          have_row = true;
        }
      }
      if (have_row) {
        ++probes;  // one candidate row examined, like the interpreter
        ip = cur.actions_ip;
        break;
      }
      --depth;  // exhausted: backtrack to the enclosing level
    }
  }

  prof->probes += probes;
  prof->cmp_checks += cmps;
  prof->firings += firings;
  prof->duplicates += dups;
  prof->derived += derived;
  prof->ops += ops;
}

}  // namespace sqod
