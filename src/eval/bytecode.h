#ifndef SQOD_EVAL_BYTECODE_H_
#define SQOD_EVAL_BYTECODE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"
#include "src/eval/database.h"
#include "src/eval/plan.h"

namespace sqod {

// Flat register bytecode for rule plans (docs/evaluator.md, "Compiled
// bytecode"). At Prepare time each RulePlan is lowered into a dense
// instruction array over rule-local value registers: join levels open as
// SCAN_FULL / SCAN_DELTA / PROBE_INDEX ops with statically-resolved
// relation sources and probe masks (boundness is a compile-time fact of the
// plan order), per-row column ops load or check registers, filters compare
// pre-resolved sources, and EMIT_HEAD materializes the head. The executor
// is a tight dispatch loop with an explicit cursor stack — no per-tuple
// Kind switches over plan objects, no dynamic boundness tests, no binding
// trail. Specialized kernels (src/eval/kernel.h) bypass even the dispatch
// loop for the dominant shapes.

enum class OpCode : uint8_t {
  // Join-level openers; `b` indexes CompiledRule::levels. The opcode
  // mirrors the level's statically-resolved row source: PROBE_INDEX when
  // the level has bound columns (mask != 0), SCAN_DELTA when it reads the
  // semi-naive delta, SCAN_FULL otherwise. A PROBE_INDEX level falls back
  // to its scan actions when indexes are disabled at runtime.
  kScanFull,
  kScanDelta,
  kProbeIndex,
  // Per-row column ops against the current level's row:
  kLoadCol,     // regs[b] = row[a]
  kCheckCol,    // row[a] == regs[b] else next row
  kCheckConst,  // row[a] == consts[b] else next row
  // Control:
  kJump,  // ip = b (skips the scan-action range after probe actions)
  // Filters:
  kFilterCmp,  // EvalCmp(src b, CmpOp a, src c) else next row
  kCheckNeg,   // negs[b] absent else next row
  // Head:
  kEmitHead,  // materialize head, dedup, stage; then next row
};

const char* OpCodeName(OpCode op);

// An argument source: a register id when >= 0, otherwise a constant-pool
// index encoded as ~idx.
using ArgSrc = int32_t;
inline constexpr ArgSrc RegSrc(int32_t reg) { return reg; }
inline constexpr ArgSrc ConstSrc(int32_t idx) { return ~idx; }
inline constexpr bool IsConstSrc(ArgSrc s) { return s < 0; }
inline constexpr int32_t ConstIdx(ArgSrc s) { return ~s; }

// Where a level (or negation check) reads its rows from. Resolved at
// compile time: predicate classification and the delta subgoal are both
// static properties of the plan, so the executor never tests them per row.
enum class RelSource : uint8_t { kEdb, kIdbTotal, kIdbDelta };

// One bytecode instruction. Fixed 12-byte layout; wide operands (probe
// masks, key/argument lists) live in the owning CompiledRule's side tables.
struct Instr {
  OpCode op;
  uint8_t a = 0;   // column index, or CmpOp for kFilterCmp
  int32_t b = 0;   // register / const / level / neg index / jump target
  int32_t c = 0;   // rhs ArgSrc for kFilterCmp
};

// Static description of one join level (one positive subgoal).
struct LevelInfo {
  PredId pred = -1;
  int body_index = -1;  // into rule.body, for display
  RelSource source = RelSource::kEdb;
  int arity = 0;
  uint64_t mask = 0;      // bound columns (compile-time constant)
  uint32_t key_off = 0;   // ArgSrc run in args_pool, mask-column order
  uint16_t key_len = 0;   // == popcount(mask)
  uint32_t open_ip = 0;   // the opener instruction
  uint32_t probe_ip = 0;  // row actions when rows come from an index probe
  uint32_t scan_ip = 0;   // row actions when rows come from a scan
  uint32_t post_ip = 0;   // first op after the row actions
};

// Static description of one negation check.
struct NegInfo {
  PredId pred = -1;
  RelSource source = RelSource::kEdb;  // kEdb or kIdbTotal
  int arity = 0;
  uint32_t args_off = 0;  // ArgSrc run in args_pool
  uint16_t args_len = 0;
};

// The kernel chosen for a compiled plan (see src/eval/kernel.h).
enum class KernelId : uint8_t {
  kGeneric = 0,        // bytecode dispatch loop
  kScanFilterEmit = 1, // single subgoal: scan/probe, filter, emit
  kScanProbeEmit = 2,  // binary join: scan x probe on a bound key, emit
};
constexpr int kNumKernels = 3;

const char* KernelName(KernelId k);

// One lowered (rule, delta-subgoal) plan.
struct CompiledRule {
  int rule_index = -1;
  int delta_subgoal = -1;  // body index reading the delta, or -1
  int num_regs = 0;
  PredId head_pred = -1;
  int head_arity = 0;
  uint32_t head_off = 0;  // ArgSrc run in args_pool
  KernelId kernel = KernelId::kGeneric;

  std::vector<Instr> code;
  std::vector<LevelInfo> levels;
  std::vector<NegInfo> negs;
  std::vector<Value> consts;
  std::vector<ArgSrc> args_pool;

  int op_count() const { return static_cast<int>(code.size()); }

  // Human-readable disassembly (one op per line), for tests and EXPLAIN
  // debugging.
  std::string ToString() const;
};

// A whole program lowered to bytecode: per-stratum plan sets plus the
// static evaluation facts (stratification, IDB classification) the
// evaluator would otherwise recompute per request. Immutable once built;
// safe to share across threads (PreparedProgram caches one).
struct CompiledProgram {
  struct Stratum {
    std::vector<int> rule_indices;      // program rule indices, this stratum
    // One full plan (delta_subgoal = -1) per stratum rule, in
    // rule_indices order. Naive iteration runs all of them.
    std::vector<CompiledRule> full;
    // Indices into `full` of the rules with no same-stratum positive IDB
    // subgoal: the semi-naive iteration-0 set.
    std::vector<int> nonrecursive;
    // One plan per (rule, same-stratum positive IDB occurrence).
    std::vector<CompiledRule> delta;
  };

  std::vector<Stratum> strata;
  std::set<PredId> idb_preds;
  int num_rules = 0;
  int max_regs = 0;    // max CompiledRule::num_regs, for scratch sizing
  int max_levels = 0;  // max level count, for the cursor stack
  int64_t compile_ns = 0;  // wall time spent lowering
  int64_t total_ops = 0;   // static op count over all plans

  // Per-plan summary for EXPLAIN/ANALYZE.
  struct PlanInfo {
    int rule_index = -1;
    int delta_subgoal = -1;
    KernelId kernel = KernelId::kGeneric;
    int op_count = 0;
  };
  std::vector<PlanInfo> plans;
};

// Lowers every (rule, delta-subgoal) plan of `program` to bytecode and
// selects kernels. Fails (like evaluation would) when the program does not
// stratify. The result depends only on the program, never on EvalOptions:
// one artifact serves naive and semi-naive iteration, probes and scans.
Result<CompiledProgram> CompileProgram(const Program& program);

// Lowers one plan. `strata`/`stratum` identify the rule's stratum so
// same-stratum IDB subgoals resolve to delta/total correctly.
CompiledRule CompileRulePlan(const RulePlan& plan,
                             const std::set<PredId>& idb_preds);

struct RuleProfile;

// Runtime context for one compiled-rule activation, shared by the generic
// executor and the specialized kernels.
struct VmContext {
  const Database* edb = nullptr;
  const Database* idb_total = nullptr;
  const Database* idb_delta = nullptr;  // null outside delta iterations
  Database* out_new = nullptr;
  bool use_indexes = true;
  int64_t max_derived = -1;  // -1 = unlimited
  RuleProfile* profile = nullptr;
  int64_t* derived_count = nullptr;
  bool* overflow = nullptr;

  // Hash partitioning of the FIRST join level (parallel evaluation): with
  // part_count = P > 1, only rows whose stored row hash lands in partition
  // part_index (hash % P) are sourced at level 0; deeper levels see every
  // row. Rows are filtered before the probe counter (like tombstones), so
  // work counters sum across partitions to the serial counts.
  int part_count = 1;
  int part_index = 0;

  // Reusable scratch, owned by the evaluator and sized once per Evaluate
  // (CompiledProgram::max_regs / max_levels).
  std::vector<Value>* regs = nullptr;
  std::vector<const Relation*>* level_rels = nullptr;
  std::vector<const Relation*>* neg_rels = nullptr;
};

// Resolves the relations a plan reads (per level and negation) into the
// context's scratch vectors. Returns false when a *positive* level resolves
// to a missing or empty relation — the plan cannot fire and need not run.
bool ResolveRelations(const CompiledRule& rule, VmContext* ctx);

// Executes one compiled rule with the generic bytecode dispatch loop.
// Counter semantics match the interpreter exactly (docs/evaluator.md).
// Callers must have run ResolveRelations first.
void RunBytecode(const CompiledRule& rule, VmContext* ctx);

}  // namespace sqod

#endif  // SQOD_EVAL_BYTECODE_H_
