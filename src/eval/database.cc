#include "src/eval/database.h"

#include <algorithm>

#include "src/base/check.h"

namespace sqod {

bool Database::Insert(PredId pred, const Value* vals, int arity) {
  return FindOrCreate(pred, arity)->Insert(vals, arity);
}

bool Database::InsertAtom(const Atom& fact) {
  SQOD_CHECK_MSG(fact.is_ground(), fact.ToString().c_str());
  Value vals[Relation::kMaxArity];
  int n = fact.arity();
  SQOD_CHECK_MSG(n <= Relation::kMaxArity, fact.ToString().c_str());
  for (int i = 0; i < n; ++i) vals[i] = fact.arg(i).value();
  return Insert(fact.pred(), vals, n);
}

bool Database::Erase(PredId pred, const Value* vals, int arity) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return false;
  SQOD_CHECK_MSG(it->second.arity() == arity, PredName(pred).c_str());
  return it->second.Erase(vals, arity);
}

bool Database::EraseAtom(const Atom& fact) {
  SQOD_CHECK_MSG(fact.is_ground(), fact.ToString().c_str());
  Value vals[Relation::kMaxArity];
  int n = fact.arity();
  SQOD_CHECK_MSG(n <= Relation::kMaxArity, fact.ToString().c_str());
  for (int i = 0; i < n; ++i) vals[i] = fact.arg(i).value();
  return Erase(fact.pred(), vals, n);
}

bool Database::Contains(PredId pred, const Value* vals, int arity) const {
  const Relation* rel = Find(pred);
  return rel != nullptr && rel->Contains(vals, arity);
}

const Relation* Database::Find(PredId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindOrCreate(PredId pred, int arity) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    SQOD_CHECK_MSG(!frozen_, "FindOrCreate on a frozen database");
    it = relations_.emplace(pred, Relation(arity)).first;
    if (versioned_) {
      it->second.EnableVersioning(version_);
      it->second.set_version(version_);
    }
  }
  SQOD_CHECK_MSG(it->second.arity() == arity, PredName(pred).c_str());
  return &it->second;
}

int64_t Database::TotalTuples() const {
  int64_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.live_size();
  return n;
}

void Database::EnableVersioning(int64_t base_version) {
  versioned_ = true;
  version_ = base_version;
  for (auto& [pred, rel] : relations_) {
    rel.EnableVersioning(base_version);
    rel.set_version(base_version);
  }
}

void Database::SetVersion(int64_t v) {
  version_ = v;
  for (auto& [pred, rel] : relations_) rel.set_version(v);
}

void Database::Freeze() {
  frozen_ = true;
  for (auto& [pred, rel] : relations_) rel.Freeze();
}

std::string Database::ToString() const {
  // Deterministic output: predicates sorted by name, tuples sorted.
  std::vector<PredId> preds;
  for (const auto& [pred, rel] : relations_) preds.push_back(pred);
  std::sort(preds.begin(), preds.end(), [](PredId a, PredId b) {
    return PredName(a) < PredName(b);
  });
  std::string out;
  for (PredId pred : preds) {
    const Relation& rel = *Find(pred);
    std::vector<Tuple> rows;
    rows.reserve(rel.size());
    for (TupleRef row : rel.rows()) rows.push_back(row.Materialize());
    std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    });
    for (const Tuple& row : rows) {
      out += PredName(pred) + "(";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ", ";
        out += row[i].ToString();
      }
      out += ").\n";
    }
  }
  return out;
}

}  // namespace sqod
