#ifndef SQOD_EVAL_DATABASE_H_
#define SQOD_EVAL_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/atom.h"
#include "src/base/status.h"
#include "src/eval/relation.h"

namespace sqod {

// A set of ground facts: predicate -> relation. Used both for the EDB and
// for computed IDB relations.
class Database {
 public:
  Database() = default;

  // Inserts a ground fact. Returns true if new. The span overload is the
  // allocation-free hot path; the others delegate to it.
  bool Insert(PredId pred, const Value* vals, int arity);
  bool Insert(PredId pred, const Tuple& t) {
    return Insert(pred, t.data(), static_cast<int>(t.size()));
  }
  bool Insert(PredId pred, TupleRef t) {
    return Insert(pred, t.data(), t.size());
  }
  // Inserts a ground atom; CHECK-fails if not ground.
  bool InsertAtom(const Atom& fact);

  bool Contains(PredId pred, const Value* vals, int arity) const;
  bool Contains(PredId pred, const Tuple& t) const {
    return Contains(pred, t.data(), static_cast<int>(t.size()));
  }

  // The relation for `pred` (empty dummy with arity -1 lookups return
  // nullptr instead).
  const Relation* Find(PredId pred) const;
  Relation* FindOrCreate(PredId pred, int arity);

  int64_t TotalTuples() const;
  const std::unordered_map<PredId, Relation>& relations() const {
    return relations_;
  }

  std::string ToString() const;

 private:
  std::unordered_map<PredId, Relation> relations_;
};

}  // namespace sqod

#endif  // SQOD_EVAL_DATABASE_H_
