#ifndef SQOD_EVAL_DATABASE_H_
#define SQOD_EVAL_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/atom.h"
#include "src/base/status.h"
#include "src/eval/relation.h"

namespace sqod {

// A set of ground facts: predicate -> relation. Used both for the EDB and
// for computed IDB relations.
class Database {
 public:
  Database() = default;

  // Inserts a ground fact. Returns true if new. The span overload is the
  // allocation-free hot path; the others delegate to it.
  bool Insert(PredId pred, const Value* vals, int arity);
  bool Insert(PredId pred, const Tuple& t) {
    return Insert(pred, t.data(), static_cast<int>(t.size()));
  }
  bool Insert(PredId pred, TupleRef t) {
    return Insert(pred, t.data(), t.size());
  }
  // Inserts a ground atom; CHECK-fails if not ground.
  bool InsertAtom(const Atom& fact);

  // Tombstones a fact at the relation's current version (see
  // Relation::Erase). Returns false when no live matching tuple exists.
  bool Erase(PredId pred, const Value* vals, int arity);
  bool Erase(PredId pred, const Tuple& t) {
    return Erase(pred, t.data(), static_cast<int>(t.size()));
  }
  bool EraseAtom(const Atom& fact);

  bool Contains(PredId pred, const Value* vals, int arity) const;
  bool Contains(PredId pred, const Tuple& t) const {
    return Contains(pred, t.data(), static_cast<int>(t.size()));
  }

  // The relation for `pred` (empty dummy with arity -1 lookups return
  // nullptr instead).
  const Relation* Find(PredId pred) const;
  Relation* FindOrCreate(PredId pred, int arity);

  // Live tuples across all relations (tombstones excluded).
  int64_t TotalTuples() const;
  const std::unordered_map<PredId, Relation>& relations() const {
    return relations_;
  }
  std::unordered_map<PredId, Relation>* mutable_relations() {
    return &relations_;
  }

  // --- snapshot/versioning (see relation.h and docs/ivm.md) -------------

  // Versions every relation (existing rows stamped at `base_version`) and
  // makes relations created later versioned from birth.
  void EnableVersioning(int64_t base_version);
  bool versioned() const { return versioned_; }
  // Sets the version that subsequent Insert/Erase stamps carry, on every
  // relation (current and future).
  void SetVersion(int64_t v);
  int64_t version() const { return version_; }

  // Freezes every relation: the database becomes an immutable snapshot
  // safe to share across threads (concurrent probes included). Relations
  // cannot be added after freezing — Find on an absent predicate already
  // returns nullptr, which evaluation treats as empty.
  void Freeze();
  bool frozen() const { return frozen_; }

  std::string ToString() const;

 private:
  std::unordered_map<PredId, Relation> relations_;
  bool versioned_ = false;
  bool frozen_ = false;
  int64_t version_ = 0;
};

}  // namespace sqod

#endif  // SQOD_EVAL_DATABASE_H_
