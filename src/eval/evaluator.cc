#include "src/eval/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "src/base/check.h"
#include "src/eval/bindings.h"
#include "src/eval/bytecode.h"
#include "src/eval/executor.h"
#include "src/eval/kernel.h"
#include "src/eval/plan.h"
#include "src/obs/export.h"

namespace sqod {

EvalStats EvalStats::FromProfiles(int64_t iterations,
                                  const std::vector<RuleProfile>& profiles) {
  EvalStats stats;
  stats.iterations = iterations;
  for (const RuleProfile& p : profiles) {
    stats.rule_firings += p.firings;
    stats.tuples_derived += p.derived;
    stats.duplicate_derivations += p.duplicates;
    stats.join_probes += p.probes;
    stats.comparison_checks += p.cmp_checks;
  }
  return stats;
}

std::string EvalStats::ToString() const {
  return "iterations=" + std::to_string(iterations) +
         " firings=" + std::to_string(rule_firings) +
         " derived=" + std::to_string(tuples_derived) +
         " duplicates=" + std::to_string(duplicate_derivations) +
         " probes=" + std::to_string(join_probes) +
         " cmp_checks=" + std::to_string(comparison_checks);
}

std::string RenderRuleProfileTable(const std::vector<RuleProfile>& profiles) {
  std::vector<const RuleProfile*> active;
  for (const RuleProfile& p : profiles) {
    if (p.firings > 0 || p.probes > 0 || p.cmp_checks > 0) {
      active.push_back(&p);
    }
  }
  std::sort(active.begin(), active.end(),
            [](const RuleProfile* a, const RuleProfile* b) {
              if (a->time_ns != b->time_ns) return a->time_ns > b->time_ns;
              if (a->firings != b->firings) return a->firings > b->firings;
              return a->rule_index < b->rule_index;
            });
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%5s  %-28s %10s %10s %8s %12s %10s\n",
                "rule", "head", "firings", "derived", "dup%", "probes",
                "time");
  out += line;
  for (const RuleProfile* p : active) {
    std::string head = p->head.size() > 28 ? p->head.substr(0, 25) + "..."
                                           : p->head;
    std::snprintf(line, sizeof(line),
                  "%5d  %-28s %10lld %10lld %7.1f%% %12lld %10s\n",
                  p->rule_index, head.c_str(),
                  static_cast<long long>(p->firings),
                  static_cast<long long>(p->derived),
                  100.0 * p->duplicate_rate(),
                  static_cast<long long>(p->probes),
                  p->time_ns > 0 ? FormatDurationNs(p->time_ns).c_str() : "-");
    out += line;
  }
  return out;
}

namespace {

// Runtime context shared by all rules during one evaluation.
struct Context {
  const Program* program;
  const Database* edb;
  Database* idb_total;        // all IDB tuples derived so far
  const Database* idb_delta;  // last iteration's new tuples (may be null)
  Database* out_new;          // staging area for this iteration's new tuples
  EvalOptions options;
  RuleProfile* rule_stats;    // profile slot of the rule being evaluated
  std::set<PredId> idb_preds;
  int64_t* derived_count;
  bool* overflow;
  // Hash partitioning of the plan's first join step (parallel evaluation);
  // mirrors VmContext::part_count / part_index.
  int part_count = 1;
  int part_index = 0;
};

const Relation* RelationFor(const Context& ctx, const RulePlan& plan,
                            int body_index, PredId pred) {
  if (ctx.idb_preds.count(pred) == 0) return ctx.edb->Find(pred);
  if (body_index == plan.delta_subgoal) {
    return ctx.idb_delta == nullptr ? nullptr : ctx.idb_delta->Find(pred);
  }
  return ctx.idb_total->Find(pred);
}

void DeriveHead(const RulePlan& plan, const Bindings& bindings, Context* ctx) {
  ++ctx->rule_stats->firings;
  Value head[Relation::kMaxArity];
  const int n = static_cast<int>(plan.head.size());
  for (int i = 0; i < n; ++i) head[i] = ArgValue(plan.head[i], bindings);
  PredId pred = plan.head_pred;
  if (ctx->idb_total->Contains(pred, head, n) ||
      ctx->out_new->Contains(pred, head, n)) {
    ++ctx->rule_stats->duplicates;
    return;
  }
  ctx->out_new->Insert(pred, head, n);
  ++ctx->rule_stats->derived;
  ++*ctx->derived_count;
  if (ctx->options.max_derived >= 0 &&
      *ctx->derived_count > ctx->options.max_derived) {
    *ctx->overflow = true;
  }
}

// Recursive join over the plan steps.
void RunSteps(const RulePlan& plan, size_t step_index, Bindings* bindings,
              Context* ctx) {
  if (*ctx->overflow) return;
  if (step_index == plan.steps.size()) {
    DeriveHead(plan, *bindings, ctx);
    return;
  }
  const PlanStep& step = plan.steps[step_index];
  switch (step.kind) {
    case PlanStep::Kind::kComparison: {
      ++ctx->rule_stats->cmp_checks;
      if (EvalCmp(ArgValue(step.lhs, *bindings), step.op,
                  ArgValue(step.rhs, *bindings))) {
        RunSteps(plan, step_index + 1, bindings, ctx);
      }
      return;
    }
    case PlanStep::Kind::kNegation: {
      Value key[Relation::kMaxArity];
      const int n = static_cast<int>(step.args.size());
      for (int i = 0; i < n; ++i) key[i] = ArgValue(step.args[i], *bindings);
      // Negated IDB predicates live in strictly lower strata, already
      // completed in idb_total; EDB predicates live in the input database.
      const Relation* rel = ctx->idb_preds.count(step.pred) > 0
                                ? ctx->idb_total->Find(step.pred)
                                : ctx->edb->Find(step.pred);
      if (rel == nullptr || !rel->Contains(key, n)) {
        RunSteps(plan, step_index + 1, bindings, ctx);
      }
      return;
    }
    case PlanStep::Kind::kJoin: {
      const Relation* rel = RelationFor(*ctx, plan, step.index, step.pred);
      if (rel == nullptr || rel->empty()) return;

      // Gather the probe key (bound positions) straight from the bindings.
      uint64_t mask = 0;
      Value key[Relation::kMaxArity];
      int klen = 0;
      const int n = static_cast<int>(step.args.size());
      for (int i = 0; i < n; ++i) {
        const ArgRef& a = step.args[i];
        if (a.var < 0) {
          mask |= uint64_t{1} << i;
          key[klen++] = a.const_val;
        } else if (bindings->IsBound(a.var)) {
          mask |= uint64_t{1} << i;
          key[klen++] = bindings->Get(a.var);
        }
      }

      auto try_row = [&](TupleRef row) {
        ++ctx->rule_stats->probes;
        size_t mark = bindings->Mark();
        bool ok = true;
        for (int i = 0; i < n && ok; ++i) {
          const ArgRef& a = step.args[i];
          ok = a.var < 0 ? a.const_val == row[i] : bindings->Bind(a.var, row[i]);
        }
        if (ok) RunSteps(plan, step_index + 1, bindings, ctx);
        bindings->Restore(mark);
      };

      // Tombstoned rows (versioned EDBs under incremental maintenance) are
      // skipped before the probe counter, so interpret/compile/kernel
      // executors stay counter-identical. A partitioned first step
      // (parallel evaluation; only plans whose step 0 is a join are
      // partitioned) additionally skips rows hashed to other partitions,
      // also before the counter.
      const uint64_t pc = static_cast<uint64_t>(ctx->part_count);
      const uint64_t pi = static_cast<uint64_t>(ctx->part_index);
      const bool partitioned = pc > 1 && step_index == 0;
      if (mask != 0 && ctx->options.use_indexes) {
        Relation::Matches m = rel->Probe(mask, key);
        for (int32_t r = m.row; r >= 0; r = m.next[r]) {
          if (!rel->live(r)) continue;
          if (partitioned && rel->row_hash(r) % pc != pi) continue;
          try_row(rel->row(r));
          if (*ctx->overflow) return;
        }
      } else {
        for (int64_t r = 0, rows = rel->size(); r < rows; ++r) {
          if (!rel->live(r)) continue;
          if (partitioned && rel->row_hash(r) % pc != pi) continue;
          try_row(rel->row(r));
          if (*ctx->overflow) return;
        }
      }
      return;
    }
  }
}

// Merges `src` into `dst`; returns the number of new tuples.
int64_t MergeInto(const Database& src, Database* dst) {
  int64_t added = 0;
  for (const auto& [pred, rel] : src.relations()) {
    for (TupleRef t : rel.rows()) {
      if (dst->Insert(pred, t)) ++added;
    }
  }
  return added;
}

}  // namespace

Evaluator::Evaluator(const Program& program, EvalOptions options)
    : program_(program), options_(options) {}

Result<Database> Evaluator::Evaluate(const Database& edb) {
  stats_ = EvalStats();
  const std::vector<Rule>& rules = program_.rules();
  profiles_.assign(rules.size(), RuleProfile());
  for (size_t r = 0; r < rules.size(); ++r) {
    profiles_[r].rule_index = static_cast<int>(r);
    profiles_[r].head = PredName(rules[r].head.pred());
  }
  int64_t iterations = 0;

  Tracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  // Counters are always kept (they redirect existing increments); only the
  // wall-clock reads are gated, so the disabled path stays branch-cheap.
  const bool timed =
      options_.profile_rules || tracing || options_.metrics != nullptr;

  auto start_span = [&](const char* name) {
    return tracing ? tracer->StartSpan(name) : Span();
  };

  // Compiled mode: use the caller-provided artifact (PreparedProgram's
  // cache) or lower on the fly. Either way the artifact carries the
  // stratification and IDB classification, so Stratify() runs at most once
  // per program, not once per evaluation.
  const bool compile = options_.mode == EvalMode::kCompile;
  const CompiledProgram* compiled = options_.compiled;
  CompiledProgram local_compiled;
  int64_t compile_ns = 0;
  if (compile && compiled == nullptr) {
    Result<CompiledProgram> c = CompileProgram(program_);
    if (!c.ok()) return c.status();
    local_compiled = std::move(c.value());
    compiled = &local_compiled;
    compile_ns = local_compiled.compile_ns;
  }

  // One bindings array (interpret) / register file (compiled) reused across
  // every rule activation; nothing below allocates per probe or per bind.
  Bindings bindings;
  std::vector<Value> regs;
  std::vector<const Relation*> level_rels;
  std::vector<const Relation*> neg_rels;
  if (compile) {
    regs.resize(compiled->max_regs);
    level_rels.reserve(compiled->max_levels);
  }
  // Per-kernel activation counts, published at finish.
  int64_t kernel_runs[kNumKernels] = {0, 0, 0};

  Database total;
  int64_t derived_count = 0;
  bool overflow = false;

  Context ctx;
  ctx.program = &program_;
  ctx.edb = &edb;
  ctx.idb_total = &total;
  ctx.idb_delta = nullptr;
  ctx.options = options_;
  ctx.rule_stats = nullptr;
  ctx.derived_count = &derived_count;
  ctx.overflow = &overflow;

  VmContext vm;
  vm.edb = &edb;
  vm.idb_total = &total;
  vm.out_new = nullptr;
  vm.use_indexes = options_.use_indexes;
  vm.max_derived = options_.max_derived;
  vm.derived_count = &derived_count;
  vm.overflow = &overflow;
  vm.regs = &regs;
  vm.level_rels = &level_rels;
  vm.neg_rels = &neg_rels;

  int num_strata = 0;
  std::map<PredId, int> strata_map;  // interpret mode only
  if (compile) {
    ctx.idb_preds = compiled->idb_preds;
    num_strata = static_cast<int>(compiled->strata.size());
  } else {
    Result<std::map<PredId, int>> strata = program_.Stratify();
    if (!strata.ok()) return strata.status();
    strata_map = std::move(strata.value());
    ctx.idb_preds = program_.IdbPreds();
    for (const auto& [pred, s] : strata_map) {
      num_strata = std::max(num_strata, s + 1);
    }
  }

  auto fail_if_overflow = [&]() -> Status {
    if (overflow) {
      return Status::ResourceExhausted("evaluation exceeded max_derived=" +
                           std::to_string(options_.max_derived));
    }
    return Status::Ok();
  };

  // Cooperative interruption, polled once per fixpoint iteration. The poll
  // is two loads (plus a clock read only when a deadline is armed), so the
  // serving layer can cancel or deadline long evaluations without the
  // un-interrupted path paying for it.
  auto interrupted = [&]() -> Status {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return Status::Cancelled("evaluation cancelled by caller");
    }
    if (options_.deadline_ns >= 0 && NowNs() >= options_.deadline_ns) {
      return Status::DeadlineExceeded("evaluation deadline exceeded");
    }
    return Status::Ok();
  };

  // ---- Parallel evaluation (docs/evaluator.md, "Parallel evaluation") ----
  // With threads = P > 1, each semi-naive iteration's plans run as
  // (plan, partition) tasks: a plan whose first instruction opens join
  // level 0 is hash-partitioned P ways over that level's rows; other plans
  // (ground comparisons precede their first join) run as one task so no
  // pre-join work is repeated per partition. Tasks derive into private
  // scratch databases; the coordinator merges them at the iteration
  // barrier, keeping every shared index single-writer. threads = 1 and
  // naive iteration take the serial paths below, untouched.
  const bool parallel_on = options_.semi_naive && options_.threads > 1;
  ParallelEvalStats pstats;
  pstats.threads = std::max(1, options_.threads);
  std::unique_ptr<EvalExecutor> owned_executor;
  EvalExecutor* executor = options_.executor;
  if (parallel_on) {
    pstats.partition_derived.assign(options_.threads, 0);
    if (executor == nullptr) {
      // No shared executor provided (standalone EvaluateQuery): a private
      // one for this evaluation. threads - 1 workers, because the
      // coordinating thread executes tasks too.
      owned_executor = std::make_unique<EvalExecutor>(options_.threads - 1);
      executor = owned_executor.get();
    }
  }

  // One (plan, partition) unit of parallel work, with task-private
  // derivation scratch and counters. Merged in deterministic (plan,
  // partition) order at the barrier.
  struct ParTask {
    int plan = 0;         // ordinal into the iteration's plan list
    int parts = 1;        // partition count of this plan (1 = unpartitioned)
    int part = 0;         // this task's partition index
    int rule_index = -1;
    Database scratch;     // head tuples derived by this task
    RuleProfile prof;     // this task's counters, merged at the barrier
    int64_t derived = 0;  // task-local derivation count (budget check)
    bool overflow = false;
    int kernel = -1;      // KernelId run, -1 = skipped (empty level 0)
    int64_t t0 = 0, t1 = 0;  // task wall clock (skew, spans)
  };

  // Runs one semi-naive iteration's plan set in parallel: warm indexes,
  // fire tasks, merge at the barrier. `crs` lists the compiled plans
  // (compiled mode) or `iplans` the interpreted ones. Returns the
  // iteration's interruption/overflow status.
  auto run_parallel_iteration =
      [&](const std::vector<const CompiledRule*>& crs,
          const std::vector<const RulePlan*>& iplans,
          const Database* delta_db, Database* fresh,
          int stratum) -> Status {
    const int64_t iter_t0 = NowNs();
    const int P = options_.threads;
    const size_t nplans = compile ? crs.size() : iplans.size();

    // Warm every (relation, mask) pair the tasks will probe. Index builds
    // are the one lazy mutation Probe performs; doing them here, on the
    // coordinator, keeps the parallel phase free of shared writes.
    if (options_.use_indexes) {
      auto db_for = [&](RelSource s) -> const Database* {
        switch (s) {
          case RelSource::kEdb: return &edb;
          case RelSource::kIdbTotal: return &total;
          case RelSource::kIdbDelta: return delta_db;
        }
        return nullptr;
      };
      if (compile) {
        for (const CompiledRule* cr : crs) {
          for (const LevelInfo& lvl : cr->levels) {
            if (lvl.mask == 0) continue;
            const Database* db = db_for(lvl.source);
            const Relation* rel = db == nullptr ? nullptr : db->Find(lvl.pred);
            if (rel != nullptr) rel->WarmIndex(lvl.mask);
          }
        }
      } else {
        // Interpret mode gathers masks at runtime, but boundness at a plan
        // position is static — re-derive each join's mask with the same
        // walk CompileRulePlan uses.
        for (const RulePlan* plan : iplans) {
          std::vector<uint8_t> bound(plan->num_vars, 0);
          for (const PlanStep& step : plan->steps) {
            if (step.kind != PlanStep::Kind::kJoin) continue;
            uint64_t mask = 0;
            for (size_t i = 0; i < step.args.size(); ++i) {
              const ArgRef& a = step.args[i];
              if (a.var < 0 || bound[a.var] != 0) mask |= uint64_t{1} << i;
            }
            for (const ArgRef& a : step.args) {
              if (a.var >= 0) bound[a.var] = 1;
            }
            if (mask == 0) continue;
            const Database* db;
            if (ctx.idb_preds.count(step.pred) == 0) {
              db = &edb;
            } else if (step.index == plan->delta_subgoal) {
              db = delta_db;
            } else {
              db = &total;
            }
            const Relation* rel = db == nullptr ? nullptr : db->Find(step.pred);
            if (rel != nullptr) rel->WarmIndex(mask);
          }
        }
      }
    }

    std::vector<ParTask> tasks;
    tasks.reserve(nplans * static_cast<size_t>(P));
    for (size_t j = 0; j < nplans; ++j) {
      bool partitionable;
      int rule_index;
      if (compile) {
        partitionable =
            !crs[j]->levels.empty() && crs[j]->levels[0].open_ip == 0;
        rule_index = crs[j]->rule_index;
      } else {
        partitionable = !iplans[j]->steps.empty() &&
                        iplans[j]->steps[0].kind == PlanStep::Kind::kJoin;
        rule_index = iplans[j]->rule_index;
      }
      const int parts = partitionable ? P : 1;
      for (int k = 0; k < parts; ++k) {
        ParTask t;
        t.plan = static_cast<int>(j);
        t.parts = parts;
        t.part = k;
        t.rule_index = rule_index;
        tasks.push_back(std::move(t));
      }
    }

    // Per-task derivation budget: the remaining global allowance. Task
    // sums may overshoot max_derived by up to a factor of P before the
    // barrier check catches it — the guard still fires, just later.
    const int64_t local_budget =
        options_.max_derived >= 0
            ? std::max<int64_t>(0, options_.max_derived - derived_count)
            : -1;

    std::atomic<bool> stop{false};
    auto run_task = [&](int ti) {
      ParTask& t = tasks[ti];
      // Partition-task boundary: the cancellation/deadline granularity of
      // parallel runs (the serving layer's admission contract).
      if (stop.load(std::memory_order_acquire)) return;
      if ((options_.cancel != nullptr && options_.cancel->cancelled()) ||
          (options_.deadline_ns >= 0 && NowNs() >= options_.deadline_ns)) {
        stop.store(true, std::memory_order_release);
        return;
      }
      t.t0 = NowNs();
      if (compile) {
        std::vector<Value> task_regs(compiled->max_regs);
        std::vector<const Relation*> task_level_rels;
        std::vector<const Relation*> task_neg_rels;
        VmContext tvm;
        tvm.edb = &edb;
        tvm.idb_total = &total;
        tvm.idb_delta = delta_db;
        tvm.out_new = &t.scratch;
        tvm.use_indexes = options_.use_indexes;
        tvm.max_derived = local_budget;
        tvm.profile = &t.prof;
        tvm.derived_count = &t.derived;
        tvm.overflow = &t.overflow;
        tvm.regs = &task_regs;
        tvm.level_rels = &task_level_rels;
        tvm.neg_rels = &task_neg_rels;
        tvm.part_count = t.parts;
        tvm.part_index = t.part;
        const CompiledRule& cr = *crs[t.plan];
        if (ResolveRelations(cr, &tvm)) {
          t.kernel =
              static_cast<int>(RunCompiled(cr, &tvm, options_.use_kernels));
        }
      } else {
        Context tctx;
        tctx.program = &program_;
        tctx.edb = &edb;
        tctx.idb_total = &total;
        tctx.idb_delta = delta_db;
        tctx.out_new = &t.scratch;
        tctx.options = options_;
        tctx.options.max_derived = local_budget;
        tctx.rule_stats = &t.prof;
        tctx.idb_preds = ctx.idb_preds;
        tctx.derived_count = &t.derived;
        tctx.overflow = &t.overflow;
        tctx.part_count = t.parts;
        tctx.part_index = t.part;
        const RulePlan& plan = *iplans[t.plan];
        Bindings task_bindings;
        task_bindings.Reset(plan.num_vars);
        RunSteps(plan, 0, &task_bindings, &tctx);
      }
      if (t.overflow) stop.store(true, std::memory_order_release);
      t.t1 = NowNs();
    };

    executor->Run(static_cast<int>(tasks.size()), run_task);

    // Iteration barrier: merge task scratch into the iteration's fresh set
    // in (plan, partition) order. A tuple derived by several tasks was
    // counted derived by each; the failed Insert here reclassifies every
    // loser as a duplicate, restoring the serial per-rule counters exactly
    // (serially, the loser would have found the tuple in out_new).
    int64_t min_task_ns = INT64_MAX, max_task_ns = -1;
    for (ParTask& t : tasks) {
      for (const auto& [pred, rel] : t.scratch.relations()) {
        for (TupleRef row : rel.rows()) {
          if (!fresh->Insert(pred, row)) {
            --t.prof.derived;
            ++t.prof.duplicates;
          }
        }
      }
      RuleProfile& prof = profiles_[t.rule_index];
      prof.firings += t.prof.firings;
      prof.derived += t.prof.derived;
      prof.duplicates += t.prof.duplicates;
      prof.probes += t.prof.probes;
      prof.cmp_checks += t.prof.cmp_checks;
      prof.ops += t.prof.ops;
      if (timed && t.t1 > 0) prof.time_ns += t.t1 - t.t0;
      derived_count += t.prof.derived;
      if (t.kernel >= 0) ++kernel_runs[t.kernel];
      if (t.overflow) overflow = true;
      if (t.parts > 1) {
        pstats.partition_derived[t.part] += t.prof.derived;
        if (t.t1 > 0) {
          min_task_ns = std::min(min_task_ns, t.t1 - t.t0);
          max_task_ns = std::max(max_task_ns, t.t1 - t.t0);
        }
      }
    }
    if (options_.max_derived >= 0 && derived_count > options_.max_derived) {
      overflow = true;
    }
    pstats.partition_tasks += static_cast<int64_t>(tasks.size());
    ++pstats.parallel_iterations;
    if (max_task_ns >= 0) {
      pstats.skew_max_ns =
          std::max(pstats.skew_max_ns, max_task_ns - min_task_ns);
    }
    if (options_.metrics != nullptr) {
      options_.metrics
          ->GetHistogram(options_.metrics_prefix + "/stratum/" +
                         std::to_string(stratum) + "/parallel_iteration_ns")
          ->Record(NowNs() - iter_t0);
    }

    // The Tracer is single-threaded by contract, so tasks never touch it;
    // the coordinator emits the per-partition spans post hoc with the
    // timestamps the tasks observed.
    if (tracing) {
      for (const ParTask& t : tasks) {
        if (t.t1 == 0) continue;  // stopped at the task boundary: no span
        Span span = tracer->StartSpanAt("eval.partition", t.t0);
        span.SetAttr("rule", t.rule_index);
        span.SetAttr("partition", t.part);
        span.SetAttr("partitions", t.parts);
        span.SetAttr("derived", t.prof.derived);
        span.SetAttr("probes", t.prof.probes);
        span.EndAt(t.t1);
      }
    }

    if (Status s = interrupted(); !s.ok()) return s;
    return fail_if_overflow();
  };

  // Publishes counters and (when attached) registry metrics before any
  // return path, so stats are valid even on overflow errors.
  auto finish = [&] {
    stats_ = EvalStats::FromProfiles(iterations, profiles_);
    if (options_.parallel_stats != nullptr) *options_.parallel_stats = pstats;
    if (options_.metrics == nullptr) return;
    MetricsRegistry* m = options_.metrics;
    const std::string& p = options_.metrics_prefix;
    if (pstats.partition_tasks > 0) {
      m->GetCounter(p + "/partitions")->Add(pstats.threads);
      m->GetCounter(p + "/partition_tasks")->Add(pstats.partition_tasks);
      m->GetCounter(p + "/parallel_iterations")
          ->Add(pstats.parallel_iterations);
      m->GetCounter(p + "/partition_skew_max_ns")->Add(pstats.skew_max_ns);
    }
    m->GetCounter(p + "/iterations")->Add(stats_.iterations);
    m->GetCounter(p + "/rule_firings")->Add(stats_.rule_firings);
    m->GetCounter(p + "/tuples_derived")->Add(stats_.tuples_derived);
    m->GetCounter(p + "/duplicate_derivations")
        ->Add(stats_.duplicate_derivations);
    m->GetCounter(p + "/join_probes")->Add(stats_.join_probes);
    m->GetCounter(p + "/comparison_checks")->Add(stats_.comparison_checks);
    if (compile) {
      int64_t ops = 0;
      for (const RuleProfile& profile : profiles_) ops += profile.ops;
      m->GetCounter(p + "/bytecode_ops")->Add(ops);
      m->GetCounter(p + "/kernel_generic")
          ->Add(kernel_runs[static_cast<int>(KernelId::kGeneric)]);
      m->GetCounter(p + "/kernel_scan_filter_emit")
          ->Add(kernel_runs[static_cast<int>(KernelId::kScanFilterEmit)]);
      m->GetCounter(p + "/kernel_scan_probe_emit")
          ->Add(kernel_runs[static_cast<int>(KernelId::kScanProbeEmit)]);
      if (compile_ns > 0) {
        m->GetCounter(p + "/compile_ns")->Add(compile_ns);
      }
    }
    for (const RuleProfile& profile : profiles_) {
      if (profile.firings == 0 && profile.probes == 0) continue;
      std::string base = p + "/rule/" +
                         std::to_string(profile.rule_index) + ":" +
                         profile.head;
      m->GetCounter(base + "/firings")->Add(profile.firings);
      m->GetCounter(base + "/derived")->Add(profile.derived);
      m->GetCounter(base + "/duplicates")->Add(profile.duplicates);
      m->GetCounter(base + "/probes")->Add(profile.probes);
      m->GetCounter(base + "/time_ns")->Add(profile.time_ns);
    }
  };

  // Runs one interpreted plan with per-rule time attribution and a span.
  auto run_plan = [&](const RulePlan& plan) {
    RuleProfile* profile = &profiles_[plan.rule_index];
    ctx.rule_stats = profile;
    Span span;
    if (tracing) {
      span = tracer->StartSpan("eval.rule");
      span.SetAttr("rule", plan.rule_index);
      if (plan.delta_subgoal >= 0) {
        span.SetAttr("delta_subgoal", plan.delta_subgoal);
      }
    }
    int64_t before_firings = profile->firings;
    int64_t before_derived = profile->derived;
    int64_t t0 = timed ? NowNs() : 0;
    bindings.Reset(plan.num_vars);
    RunSteps(plan, 0, &bindings, &ctx);
    if (timed) profile->time_ns += NowNs() - t0;
    if (tracing) {
      span.SetAttr("firings", profile->firings - before_firings);
      span.SetAttr("derived", profile->derived - before_derived);
    }
  };

  // Runs one compiled plan through its kernel, same attribution.
  auto run_compiled = [&](const CompiledRule& cr) {
    if (overflow) return;
    RuleProfile* profile = &profiles_[cr.rule_index];
    vm.profile = profile;
    Span span;
    if (tracing) {
      span = tracer->StartSpan("eval.rule");
      span.SetAttr("rule", cr.rule_index);
      span.SetAttr("kernel", static_cast<int64_t>(cr.kernel));
      if (cr.delta_subgoal >= 0) {
        span.SetAttr("delta_subgoal", cr.delta_subgoal);
      }
    }
    int64_t before_firings = profile->firings;
    int64_t before_derived = profile->derived;
    int64_t t0 = timed ? NowNs() : 0;
    if (ResolveRelations(cr, &vm)) {
      KernelId ran = RunCompiled(cr, &vm, options_.use_kernels);
      ++kernel_runs[static_cast<int>(ran)];
    }
    if (timed) profile->time_ns += NowNs() - t0;
    if (tracing) {
      span.SetAttr("firings", profile->firings - before_firings);
      span.SetAttr("derived", profile->derived - before_derived);
    }
  };

  Span eval_span = start_span("eval");
  PlanScratch scratch;  // reused by every interpreted BuildPlan below

  // Evaluate stratum by stratum: negated IDB subgoals point strictly below
  // and read the completed relations in `total`; positive IDB subgoals of
  // lower strata are static within this stratum and read `total` too; only
  // same-stratum positive IDB subgoals drive the semi-naive deltas.
  for (int stratum = 0; stratum < num_strata; ++stratum) {
    const CompiledProgram::Stratum* cst =
        compile ? &compiled->strata[stratum] : nullptr;
    std::vector<int> stratum_rules;
    if (compile) {
      stratum_rules = cst->rule_indices;
    } else {
      for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
        if (strata_map.at(rules[r].head.pred()) == stratum) {
          stratum_rules.push_back(r);
        }
      }
    }
    if (stratum_rules.empty()) continue;

    Span stratum_span = start_span("eval.stratum");
    stratum_span.SetAttr("stratum", stratum);
    stratum_span.SetAttr("rules", static_cast<int64_t>(stratum_rules.size()));

    Histogram* iteration_hist =
        options_.metrics == nullptr
            ? nullptr
            : options_.metrics->GetHistogram(options_.metrics_prefix +
                                             "/iteration_ns");
    auto observe_iteration = [&](Span* span, int64_t t0, int64_t added) {
      span->SetAttr("new_tuples", added);
      if (iteration_hist != nullptr) iteration_hist->Record(NowNs() - t0);
    };

    // Same-stratum positive IDB subgoal body indices, per rule (interpret
    // mode; the compiler resolved these into Stratum::nonrecursive/delta).
    std::map<int, std::vector<int>> recursive_subgoals;
    if (!compile) {
      for (int r : stratum_rules) {
        for (size_t i = 0; i < rules[r].body.size(); ++i) {
          const Literal& l = rules[r].body[i];
          if (!l.negated && ctx.idb_preds.count(l.atom.pred()) > 0 &&
              strata_map.at(l.atom.pred()) == stratum) {
            recursive_subgoals[r].push_back(static_cast<int>(i));
          }
        }
      }
    }

    if (!options_.semi_naive) {
      // Naive within the stratum: every rule, full relations, every round.
      std::vector<RulePlan> plans;
      if (!compile) {
        for (int r : stratum_rules) {
          plans.push_back(BuildPlan(rules[r], r, -1, &scratch));
        }
      }
      for (;;) {
        if (Status s = interrupted(); !s.ok()) {
          finish();
          return s;
        }
        ++iterations;
        Span iter_span = start_span("eval.iteration");
        iter_span.SetAttr("iteration", iterations);
        int64_t t0 = timed ? NowNs() : 0;
        Database fresh;
        ctx.out_new = &fresh;
        ctx.idb_delta = nullptr;
        vm.out_new = &fresh;
        vm.idb_delta = nullptr;
        if (compile) {
          for (const CompiledRule& cr : cst->full) run_compiled(cr);
        } else {
          for (const RulePlan& plan : plans) run_plan(plan);
        }
        Status s = fail_if_overflow();
        if (!s.ok()) {
          finish();
          return s;
        }
        int64_t added = MergeInto(fresh, &total);
        observe_iteration(&iter_span, t0, added);
        if (added == 0) break;
      }
      continue;
    }

    // Semi-naive. Iteration 0: rules with no same-stratum IDB subgoal.
    Database delta;
    {
      if (Status s = interrupted(); !s.ok()) {
        finish();
        return s;
      }
      ++iterations;
      Span iter_span = start_span("eval.iteration");
      iter_span.SetAttr("iteration", iterations);
      int64_t t0 = timed ? NowNs() : 0;
      Database fresh;
      ctx.out_new = &fresh;
      ctx.idb_delta = nullptr;
      vm.out_new = &fresh;
      vm.idb_delta = nullptr;
      // Interpret mode builds the iteration-0 plans up front so the
      // parallel runner can see the whole plan set; serial runs them
      // identically, just from the vector.
      std::vector<RulePlan> iter0_plans;
      if (!compile) {
        for (int r : stratum_rules) {
          if (recursive_subgoals.count(r) > 0) continue;
          iter0_plans.push_back(BuildPlan(rules[r], r, -1, &scratch));
        }
      }
      Status s;
      if (parallel_on) {
        std::vector<const CompiledRule*> crs;
        std::vector<const RulePlan*> iplans;
        if (compile) {
          for (int i : cst->nonrecursive) crs.push_back(&cst->full[i]);
        } else {
          for (const RulePlan& plan : iter0_plans) iplans.push_back(&plan);
        }
        s = run_parallel_iteration(crs, iplans, nullptr, &fresh, stratum);
      } else {
        if (compile) {
          for (int i : cst->nonrecursive) run_compiled(cst->full[i]);
        } else {
          for (const RulePlan& plan : iter0_plans) run_plan(plan);
        }
        s = fail_if_overflow();
      }
      if (!s.ok()) {
        finish();
        return s;
      }
      int64_t added = MergeInto(fresh, &total);
      observe_iteration(&iter_span, t0, added);
      delta = std::move(fresh);
    }

    // One plan per (rule, same-stratum delta-subgoal occurrence).
    std::vector<RulePlan> delta_plans;
    if (!compile) {
      for (const auto& [r, occurrences] : recursive_subgoals) {
        for (int occurrence : occurrences) {
          delta_plans.push_back(BuildPlan(rules[r], r, occurrence, &scratch));
        }
      }
    }
    // The delta plan set is iteration-invariant; collect it once for the
    // parallel runner.
    std::vector<const CompiledRule*> delta_crs;
    std::vector<const RulePlan*> delta_iplans;
    if (parallel_on) {
      if (compile) {
        for (const CompiledRule& cr : cst->delta) delta_crs.push_back(&cr);
      } else {
        for (const RulePlan& plan : delta_plans) delta_iplans.push_back(&plan);
      }
    }

    while (delta.TotalTuples() > 0) {
      if (Status s = interrupted(); !s.ok()) {
        finish();
        return s;
      }
      ++iterations;
      Span iter_span = start_span("eval.iteration");
      iter_span.SetAttr("iteration", iterations);
      int64_t t0 = timed ? NowNs() : 0;
      Database fresh;
      ctx.out_new = &fresh;
      ctx.idb_delta = &delta;
      vm.out_new = &fresh;
      vm.idb_delta = &delta;
      Status s;
      if (parallel_on) {
        s = run_parallel_iteration(delta_crs, delta_iplans, &delta, &fresh,
                                   stratum);
      } else {
        if (compile) {
          for (const CompiledRule& cr : cst->delta) run_compiled(cr);
        } else {
          for (const RulePlan& plan : delta_plans) run_plan(plan);
        }
        s = fail_if_overflow();
      }
      if (!s.ok()) {
        finish();
        return s;
      }
      int64_t added = MergeInto(fresh, &total);
      observe_iteration(&iter_span, t0, added);
      delta = std::move(fresh);
    }
  }
  finish();
  if (tracing) {
    eval_span.SetAttr("iterations", stats_.iterations);
    eval_span.SetAttr("tuples_derived", stats_.tuples_derived);
  }
  return total;
}

Result<std::vector<Tuple>> EvaluateQuery(const Program& program,
                                         const Database& edb,
                                         EvalOptions options,
                                         EvalStats* stats,
                                         std::vector<RuleProfile>* profiles) {
  SQOD_CHECK_MSG(program.query() != -1, "program has no query predicate");
  Evaluator evaluator(program, options);
  Result<Database> idb = evaluator.Evaluate(edb);
  if (stats != nullptr) *stats = evaluator.stats();
  if (profiles != nullptr) *profiles = evaluator.rule_profiles();
  if (!idb.ok()) return idb.status();
  std::vector<Tuple> out;
  const Relation* rel = idb.value().Find(program.query());
  if (rel != nullptr) {
    out.reserve(rel->size());
    for (TupleRef t : rel->rows()) out.push_back(t.Materialize());
  }
  std::sort(out.begin(), out.end(), [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return out;
}

}  // namespace sqod
