#include "src/eval/evaluator.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "src/base/check.h"
#include "src/obs/export.h"

namespace sqod {

EvalStats EvalStats::FromProfiles(int64_t iterations,
                                  const std::vector<RuleProfile>& profiles) {
  EvalStats stats;
  stats.iterations = iterations;
  for (const RuleProfile& p : profiles) {
    stats.rule_firings += p.firings;
    stats.tuples_derived += p.derived;
    stats.duplicate_derivations += p.duplicates;
    stats.join_probes += p.probes;
    stats.comparison_checks += p.cmp_checks;
  }
  return stats;
}

std::string EvalStats::ToString() const {
  return "iterations=" + std::to_string(iterations) +
         " firings=" + std::to_string(rule_firings) +
         " derived=" + std::to_string(tuples_derived) +
         " duplicates=" + std::to_string(duplicate_derivations) +
         " probes=" + std::to_string(join_probes) +
         " cmp_checks=" + std::to_string(comparison_checks);
}

std::string RenderRuleProfileTable(const std::vector<RuleProfile>& profiles) {
  std::vector<const RuleProfile*> active;
  for (const RuleProfile& p : profiles) {
    if (p.firings > 0 || p.probes > 0 || p.cmp_checks > 0) {
      active.push_back(&p);
    }
  }
  std::sort(active.begin(), active.end(),
            [](const RuleProfile* a, const RuleProfile* b) {
              if (a->time_ns != b->time_ns) return a->time_ns > b->time_ns;
              if (a->firings != b->firings) return a->firings > b->firings;
              return a->rule_index < b->rule_index;
            });
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%5s  %-28s %10s %10s %8s %12s %10s\n",
                "rule", "head", "firings", "derived", "dup%", "probes",
                "time");
  out += line;
  for (const RuleProfile* p : active) {
    std::string head = p->head.size() > 28 ? p->head.substr(0, 25) + "..."
                                           : p->head;
    std::snprintf(line, sizeof(line),
                  "%5d  %-28s %10lld %10lld %7.1f%% %12lld %10s\n",
                  p->rule_index, head.c_str(),
                  static_cast<long long>(p->firings),
                  static_cast<long long>(p->derived),
                  100.0 * p->duplicate_rate(),
                  static_cast<long long>(p->probes),
                  p->time_ns > 0 ? FormatDurationNs(p->time_ns).c_str() : "-");
    out += line;
  }
  return out;
}

namespace {

// Variable bindings with a trail for cheap backtracking.
class Bindings {
 public:
  size_t Mark() const { return trail_.size(); }

  void Restore(size_t mark) {
    while (trail_.size() > mark) {
      map_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  // Binds or checks; returns false on mismatch with an existing binding.
  bool Bind(VarId var, const Value& value) {
    auto [it, inserted] = map_.emplace(var, value);
    if (!inserted) return it->second == value;
    trail_.push_back(var);
    return true;
  }

  const Value* Lookup(VarId var) const {
    auto it = map_.find(var);
    return it == map_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<VarId, Value> map_;
  std::vector<VarId> trail_;
};

// One step of a rule-evaluation plan.
struct PlanStep {
  enum class Kind { kJoin, kNegation, kComparison };
  Kind kind;
  int index;  // into rule.body (kJoin / kNegation) or rule.comparisons
};

// The precompiled plan for one (rule, delta-subgoal) combination: the order
// in which body elements are evaluated. Comparisons and negations are placed
// at the earliest point where all their variables are bound.
struct RulePlan {
  int rule_index;
  // Index (into rule.body) of the positive subgoal that reads the delta
  // relation, or -1 for "all subgoals read their full relation".
  int delta_subgoal;
  std::vector<PlanStep> steps;
};

bool TermBound(const Term& t, const Bindings& b) {
  return t.is_const() || b.Lookup(t.var()) != nullptr;
}

Value TermValue(const Term& t, const Bindings& b) {
  if (t.is_const()) return t.value();
  const Value* v = b.Lookup(t.var());
  SQOD_CHECK(v != nullptr);
  return *v;
}

// Builds the evaluation order for a rule. `first` (if >= 0) is the body
// index of the positive subgoal to evaluate first (the delta subgoal).
RulePlan BuildPlan(const Rule& rule, int rule_index, int first) {
  RulePlan plan;
  plan.rule_index = rule_index;
  plan.delta_subgoal = first;

  std::set<VarId> bound;
  std::vector<bool> done_body(rule.body.size(), false);
  std::vector<bool> done_cmp(rule.comparisons.size(), false);

  auto vars_bound = [&](const std::vector<VarId>& vars) {
    return std::all_of(vars.begin(), vars.end(),
                       [&](VarId v) { return bound.count(v) > 0; });
  };

  auto emit_ready_filters = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < rule.comparisons.size(); ++i) {
        if (done_cmp[i]) continue;
        std::vector<VarId> vars;
        rule.comparisons[i].CollectVars(&vars);
        if (vars_bound(vars)) {
          plan.steps.push_back(
              {PlanStep::Kind::kComparison, static_cast<int>(i)});
          done_cmp[i] = true;
          progress = true;
        }
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done_body[i] || !rule.body[i].negated) continue;
        std::vector<VarId> vars;
        rule.body[i].atom.CollectVars(&vars);
        if (vars_bound(vars)) {
          plan.steps.push_back({PlanStep::Kind::kNegation, static_cast<int>(i)});
          done_body[i] = true;
          progress = true;
        }
      }
    }
  };

  auto emit_join = [&](int i) {
    plan.steps.push_back({PlanStep::Kind::kJoin, i});
    done_body[i] = true;
    std::vector<VarId> vars;
    rule.body[i].atom.CollectVars(&vars);
    bound.insert(vars.begin(), vars.end());
  };

  emit_ready_filters();  // ground comparisons, if any
  if (first >= 0) {
    SQOD_CHECK(!rule.body[first].negated);
    emit_join(first);
    emit_ready_filters();
  }
  for (;;) {
    // Pick the positive subgoal with the most bound argument positions.
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (done_body[i] || rule.body[i].negated) continue;
      const Atom& a = rule.body[i].atom;
      int score = 0;
      for (const Term& t : a.args()) {
        if (t.is_const() || bound.count(t.var()) > 0) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best == -1) break;
    emit_join(best);
    emit_ready_filters();
  }
  // Safety guarantees every negation and comparison was emitted.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    SQOD_CHECK_MSG(done_body[i] || !rule.body[i].negated,
                   rule.ToString().c_str());
    SQOD_CHECK_MSG(done_body[i], rule.ToString().c_str());
  }
  for (size_t i = 0; i < rule.comparisons.size(); ++i) {
    SQOD_CHECK_MSG(done_cmp[i], rule.ToString().c_str());
  }
  return plan;
}

// Runtime context shared by all rules during one evaluation.
struct Context {
  const Program* program;
  const Database* edb;
  Database* idb_total;        // all IDB tuples derived so far
  const Database* idb_delta;  // last iteration's new tuples (may be null)
  Database* out_new;          // staging area for this iteration's new tuples
  EvalOptions options;
  RuleProfile* rule_stats;    // profile slot of the rule being evaluated
  std::set<PredId> idb_preds;
  int64_t* derived_count;
  bool* overflow;
};

const Relation* RelationFor(const Context& ctx, const RulePlan& plan,
                            int body_index, PredId pred) {
  if (ctx.idb_preds.count(pred) == 0) return ctx.edb->Find(pred);
  if (body_index == plan.delta_subgoal) {
    return ctx.idb_delta == nullptr ? nullptr : ctx.idb_delta->Find(pred);
  }
  return ctx.idb_total->Find(pred);
}

void DeriveHead(const Rule& rule, const Bindings& bindings, Context* ctx) {
  ++ctx->rule_stats->firings;
  Tuple head;
  head.reserve(rule.head.args().size());
  for (const Term& t : rule.head.args()) {
    head.push_back(TermValue(t, bindings));
  }
  PredId pred = rule.head.pred();
  if (ctx->idb_total->Contains(pred, head) ||
      ctx->out_new->Contains(pred, head)) {
    ++ctx->rule_stats->duplicates;
    return;
  }
  ctx->out_new->Insert(pred, std::move(head));
  ++ctx->rule_stats->derived;
  ++*ctx->derived_count;
  if (ctx->options.max_derived >= 0 &&
      *ctx->derived_count > ctx->options.max_derived) {
    *ctx->overflow = true;
  }
}

// Recursive join over the plan steps.
void RunSteps(const Rule& rule, const RulePlan& plan, size_t step_index,
              Bindings* bindings, Context* ctx) {
  if (*ctx->overflow) return;
  if (step_index == plan.steps.size()) {
    DeriveHead(rule, *bindings, ctx);
    return;
  }
  const PlanStep& step = plan.steps[step_index];
  switch (step.kind) {
    case PlanStep::Kind::kComparison: {
      const Comparison& c = rule.comparisons[step.index];
      ++ctx->rule_stats->cmp_checks;
      if (EvalCmp(TermValue(c.lhs, *bindings), c.op,
                  TermValue(c.rhs, *bindings))) {
        RunSteps(rule, plan, step_index + 1, bindings, ctx);
      }
      return;
    }
    case PlanStep::Kind::kNegation: {
      const Atom& a = rule.body[step.index].atom;
      Tuple t;
      t.reserve(a.args().size());
      for (const Term& term : a.args()) t.push_back(TermValue(term, *bindings));
      // Negated IDB predicates live in strictly lower strata, already
      // completed in idb_total; EDB predicates live in the input database.
      const Relation* rel = ctx->idb_preds.count(a.pred()) > 0
                                ? ctx->idb_total->Find(a.pred())
                                : ctx->edb->Find(a.pred());
      if (rel == nullptr || !rel->Contains(t)) {
        RunSteps(rule, plan, step_index + 1, bindings, ctx);
      }
      return;
    }
    case PlanStep::Kind::kJoin: {
      const Atom& a = rule.body[step.index].atom;
      const Relation* rel = RelationFor(*ctx, plan, step.index, a.pred());
      if (rel == nullptr || rel->empty()) return;

      // Determine bound positions and the probe key.
      uint64_t mask = 0;
      Tuple key;
      for (int i = 0; i < a.arity(); ++i) {
        if (TermBound(a.arg(i), *bindings)) {
          mask |= uint64_t{1} << i;
          key.push_back(TermValue(a.arg(i), *bindings));
        }
      }

      auto try_row = [&](const Tuple& row) {
        ++ctx->rule_stats->probes;
        size_t mark = bindings->Mark();
        bool ok = true;
        for (int i = 0; i < a.arity() && ok; ++i) {
          const Term& t = a.arg(i);
          if (t.is_const()) {
            ok = t.value() == row[i];
          } else {
            ok = bindings->Bind(t.var(), row[i]);
          }
        }
        if (ok) RunSteps(rule, plan, step_index + 1, bindings, ctx);
        bindings->Restore(mark);
      };

      if (mask != 0 && ctx->options.use_indexes) {
        const std::vector<int>* rows = rel->Probe(mask, key);
        if (rows == nullptr) return;
        for (int r : *rows) {
          try_row(rel->rows()[r]);
          if (*ctx->overflow) return;
        }
      } else {
        for (const Tuple& row : rel->rows()) {
          try_row(row);
          if (*ctx->overflow) return;
        }
      }
      return;
    }
  }
}

// Merges `src` into `dst`; returns the number of new tuples.
int64_t MergeInto(const Database& src, Database* dst) {
  int64_t added = 0;
  for (const auto& [pred, rel] : src.relations()) {
    for (const Tuple& t : rel.rows()) {
      if (dst->Insert(pred, t)) ++added;
    }
  }
  return added;
}

}  // namespace

Evaluator::Evaluator(const Program& program, EvalOptions options)
    : program_(program), options_(options) {}

Result<Database> Evaluator::Evaluate(const Database& edb) {
  stats_ = EvalStats();
  const std::vector<Rule>& rules = program_.rules();
  profiles_.assign(rules.size(), RuleProfile());
  for (size_t r = 0; r < rules.size(); ++r) {
    profiles_[r].rule_index = static_cast<int>(r);
    profiles_[r].head = PredName(rules[r].head.pred());
  }
  int64_t iterations = 0;

  Tracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  // Counters are always kept (they redirect existing increments); only the
  // wall-clock reads are gated, so the disabled path stays branch-cheap.
  const bool timed =
      options_.profile_rules || tracing || options_.metrics != nullptr;

  auto start_span = [&](const char* name) {
    return tracing ? tracer->StartSpan(name) : Span();
  };

  // Runs one plan with per-rule time attribution and an optional span.
  auto run_plan = [&](const RulePlan& plan, Context* ctx) {
    RuleProfile* profile = &profiles_[plan.rule_index];
    ctx->rule_stats = profile;
    Span span;
    if (tracing) {
      span = tracer->StartSpan("eval.rule");
      span.SetAttr("rule", plan.rule_index);
      if (plan.delta_subgoal >= 0) {
        span.SetAttr("delta_subgoal", plan.delta_subgoal);
      }
    }
    int64_t before_firings = profile->firings;
    int64_t before_derived = profile->derived;
    int64_t t0 = timed ? NowNs() : 0;
    Bindings bindings;
    RunSteps(rules[plan.rule_index], plan, 0, &bindings, ctx);
    if (timed) profile->time_ns += NowNs() - t0;
    if (tracing) {
      span.SetAttr("firings", profile->firings - before_firings);
      span.SetAttr("derived", profile->derived - before_derived);
    }
  };

  Span eval_span = start_span("eval");

  Result<std::map<PredId, int>> strata = program_.Stratify();
  if (!strata.ok()) return strata.status();
  int max_stratum = 0;
  for (const auto& [pred, s] : strata.value()) {
    max_stratum = std::max(max_stratum, s);
  }

  Database total;
  int64_t derived_count = 0;
  bool overflow = false;

  Context ctx;
  ctx.program = &program_;
  ctx.edb = &edb;
  ctx.idb_total = &total;
  ctx.idb_delta = nullptr;
  ctx.options = options_;
  ctx.rule_stats = nullptr;
  ctx.idb_preds = program_.IdbPreds();
  ctx.derived_count = &derived_count;
  ctx.overflow = &overflow;

  auto fail_if_overflow = [&]() -> Status {
    if (overflow) {
      return Status::Error("evaluation exceeded max_derived=" +
                           std::to_string(options_.max_derived));
    }
    return Status::Ok();
  };

  // Publishes counters and (when attached) registry metrics before any
  // return path, so stats are valid even on overflow errors.
  auto finish = [&] {
    stats_ = EvalStats::FromProfiles(iterations, profiles_);
    if (options_.metrics == nullptr) return;
    MetricsRegistry* m = options_.metrics;
    const std::string& p = options_.metrics_prefix;
    m->GetCounter(p + "/iterations")->Add(stats_.iterations);
    m->GetCounter(p + "/rule_firings")->Add(stats_.rule_firings);
    m->GetCounter(p + "/tuples_derived")->Add(stats_.tuples_derived);
    m->GetCounter(p + "/duplicate_derivations")
        ->Add(stats_.duplicate_derivations);
    m->GetCounter(p + "/join_probes")->Add(stats_.join_probes);
    m->GetCounter(p + "/comparison_checks")->Add(stats_.comparison_checks);
    for (const RuleProfile& profile : profiles_) {
      if (profile.firings == 0 && profile.probes == 0) continue;
      std::string base = p + "/rule/" +
                         std::to_string(profile.rule_index) + ":" +
                         profile.head;
      m->GetCounter(base + "/firings")->Add(profile.firings);
      m->GetCounter(base + "/derived")->Add(profile.derived);
      m->GetCounter(base + "/duplicates")->Add(profile.duplicates);
      m->GetCounter(base + "/probes")->Add(profile.probes);
      m->GetCounter(base + "/time_ns")->Add(profile.time_ns);
    }
  };

  // Evaluate stratum by stratum: negated IDB subgoals point strictly below
  // and read the completed relations in `total`; positive IDB subgoals of
  // lower strata are static within this stratum and read `total` too; only
  // same-stratum positive IDB subgoals drive the semi-naive deltas.
  for (int stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<int> stratum_rules;
    for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
      if (strata.value().at(rules[r].head.pred()) == stratum) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    Span stratum_span = start_span("eval.stratum");
    stratum_span.SetAttr("stratum", stratum);
    stratum_span.SetAttr("rules", static_cast<int64_t>(stratum_rules.size()));

    Histogram* iteration_hist =
        options_.metrics == nullptr
            ? nullptr
            : options_.metrics->GetHistogram(options_.metrics_prefix +
                                             "/iteration_ns");
    auto observe_iteration = [&](Span* span, int64_t t0, int64_t added) {
      span->SetAttr("new_tuples", added);
      if (iteration_hist != nullptr) iteration_hist->Record(NowNs() - t0);
    };

    // Same-stratum positive IDB subgoal body indices, per rule.
    std::map<int, std::vector<int>> recursive_subgoals;
    for (int r : stratum_rules) {
      for (size_t i = 0; i < rules[r].body.size(); ++i) {
        const Literal& l = rules[r].body[i];
        if (!l.negated && ctx.idb_preds.count(l.atom.pred()) > 0 &&
            strata.value().at(l.atom.pred()) == stratum) {
          recursive_subgoals[r].push_back(static_cast<int>(i));
        }
      }
    }

    if (!options_.semi_naive) {
      // Naive within the stratum.
      std::vector<RulePlan> plans;
      for (int r : stratum_rules) plans.push_back(BuildPlan(rules[r], r, -1));
      for (;;) {
        ++iterations;
        Span iter_span = start_span("eval.iteration");
        iter_span.SetAttr("iteration", iterations);
        int64_t t0 = timed ? NowNs() : 0;
        Database fresh;
        ctx.out_new = &fresh;
        ctx.idb_delta = nullptr;
        for (const RulePlan& plan : plans) {
          run_plan(plan, &ctx);
        }
        Status s = fail_if_overflow();
        if (!s.ok()) {
          finish();
          return s;
        }
        int64_t added = MergeInto(fresh, &total);
        observe_iteration(&iter_span, t0, added);
        if (added == 0) break;
      }
      continue;
    }

    // Semi-naive. Iteration 0: rules with no same-stratum IDB subgoal.
    Database delta;
    {
      ++iterations;
      Span iter_span = start_span("eval.iteration");
      iter_span.SetAttr("iteration", iterations);
      int64_t t0 = timed ? NowNs() : 0;
      Database fresh;
      ctx.out_new = &fresh;
      ctx.idb_delta = nullptr;
      for (int r : stratum_rules) {
        if (recursive_subgoals.count(r) > 0) continue;
        RulePlan plan = BuildPlan(rules[r], r, -1);
        run_plan(plan, &ctx);
      }
      Status s = fail_if_overflow();
      if (!s.ok()) {
        finish();
        return s;
      }
      int64_t added = MergeInto(fresh, &total);
      observe_iteration(&iter_span, t0, added);
      delta = std::move(fresh);
    }

    // One plan per (rule, same-stratum delta-subgoal occurrence).
    std::vector<RulePlan> delta_plans;
    for (const auto& [r, occurrences] : recursive_subgoals) {
      for (int occurrence : occurrences) {
        delta_plans.push_back(BuildPlan(rules[r], r, occurrence));
      }
    }

    while (delta.TotalTuples() > 0) {
      ++iterations;
      Span iter_span = start_span("eval.iteration");
      iter_span.SetAttr("iteration", iterations);
      int64_t t0 = timed ? NowNs() : 0;
      Database fresh;
      ctx.out_new = &fresh;
      ctx.idb_delta = &delta;
      for (const RulePlan& plan : delta_plans) {
        run_plan(plan, &ctx);
      }
      Status s = fail_if_overflow();
      if (!s.ok()) {
        finish();
        return s;
      }
      int64_t added = MergeInto(fresh, &total);
      observe_iteration(&iter_span, t0, added);
      delta = std::move(fresh);
    }
  }
  finish();
  if (tracing) {
    eval_span.SetAttr("iterations", stats_.iterations);
    eval_span.SetAttr("tuples_derived", stats_.tuples_derived);
  }
  return total;
}

Result<std::vector<Tuple>> EvaluateQuery(const Program& program,
                                         const Database& edb,
                                         EvalOptions options,
                                         EvalStats* stats,
                                         std::vector<RuleProfile>* profiles) {
  SQOD_CHECK_MSG(program.query() != -1, "program has no query predicate");
  Evaluator evaluator(program, options);
  Result<Database> idb = evaluator.Evaluate(edb);
  if (stats != nullptr) *stats = evaluator.stats();
  if (profiles != nullptr) *profiles = evaluator.rule_profiles();
  if (!idb.ok()) return idb.status();
  std::vector<Tuple> out;
  const Relation* rel = idb.value().Find(program.query());
  if (rel != nullptr) out = rel->rows();
  std::sort(out.begin(), out.end(), [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return out;
}

}  // namespace sqod
