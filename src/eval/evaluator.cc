#include "src/eval/evaluator.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "src/base/check.h"
#include "src/obs/export.h"

namespace sqod {

EvalStats EvalStats::FromProfiles(int64_t iterations,
                                  const std::vector<RuleProfile>& profiles) {
  EvalStats stats;
  stats.iterations = iterations;
  for (const RuleProfile& p : profiles) {
    stats.rule_firings += p.firings;
    stats.tuples_derived += p.derived;
    stats.duplicate_derivations += p.duplicates;
    stats.join_probes += p.probes;
    stats.comparison_checks += p.cmp_checks;
  }
  return stats;
}

std::string EvalStats::ToString() const {
  return "iterations=" + std::to_string(iterations) +
         " firings=" + std::to_string(rule_firings) +
         " derived=" + std::to_string(tuples_derived) +
         " duplicates=" + std::to_string(duplicate_derivations) +
         " probes=" + std::to_string(join_probes) +
         " cmp_checks=" + std::to_string(comparison_checks);
}

std::string RenderRuleProfileTable(const std::vector<RuleProfile>& profiles) {
  std::vector<const RuleProfile*> active;
  for (const RuleProfile& p : profiles) {
    if (p.firings > 0 || p.probes > 0 || p.cmp_checks > 0) {
      active.push_back(&p);
    }
  }
  std::sort(active.begin(), active.end(),
            [](const RuleProfile* a, const RuleProfile* b) {
              if (a->time_ns != b->time_ns) return a->time_ns > b->time_ns;
              if (a->firings != b->firings) return a->firings > b->firings;
              return a->rule_index < b->rule_index;
            });
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%5s  %-28s %10s %10s %8s %12s %10s\n",
                "rule", "head", "firings", "derived", "dup%", "probes",
                "time");
  out += line;
  for (const RuleProfile* p : active) {
    std::string head = p->head.size() > 28 ? p->head.substr(0, 25) + "..."
                                           : p->head;
    std::snprintf(line, sizeof(line),
                  "%5d  %-28s %10lld %10lld %7.1f%% %12lld %10s\n",
                  p->rule_index, head.c_str(),
                  static_cast<long long>(p->firings),
                  static_cast<long long>(p->derived),
                  100.0 * p->duplicate_rate(),
                  static_cast<long long>(p->probes),
                  p->time_ns > 0 ? FormatDurationNs(p->time_ns).c_str() : "-");
    out += line;
  }
  return out;
}

namespace {

// Variable bindings as a dense slot array indexed by rule-local variable id
// (rules renumber their variables 0..num_vars-1 at plan-compile time), with
// a trail for cheap backtracking. Bind/Get/IsBound never hash or allocate.
class Bindings {
 public:
  void Reset(int num_vars) {
    slots_.assign(num_vars, Value());
    bound_.assign(num_vars, 0);
    trail_.clear();
  }

  size_t Mark() const { return trail_.size(); }

  void Restore(size_t mark) {
    while (trail_.size() > mark) {
      bound_[trail_.back()] = 0;
      trail_.pop_back();
    }
  }

  // Binds or checks; returns false on mismatch with an existing binding.
  bool Bind(int32_t var, const Value& value) {
    if (bound_[var]) return slots_[var] == value;
    bound_[var] = 1;
    slots_[var] = value;
    trail_.push_back(var);
    return true;
  }

  bool IsBound(int32_t var) const { return bound_[var] != 0; }
  const Value& Get(int32_t var) const { return slots_[var]; }

 private:
  std::vector<Value> slots_;
  std::vector<uint8_t> bound_;
  std::vector<int32_t> trail_;
};

// A compiled atom argument: either an inline constant (var < 0) or a
// rule-local variable slot.
struct ArgRef {
  Value const_val;
  int32_t var = -1;
};

inline const Value& ArgValue(const ArgRef& a, const Bindings& b) {
  return a.var < 0 ? a.const_val : b.Get(a.var);
}

// One compiled step of a rule-evaluation plan. Arguments are pre-resolved
// to ArgRefs so the join inner loop touches no AST nodes.
struct PlanStep {
  enum class Kind { kJoin, kNegation, kComparison };
  Kind kind;
  int index;  // into rule.body (kJoin / kNegation) or rule.comparisons
  PredId pred = -1;          // kJoin / kNegation
  std::vector<ArgRef> args;  // kJoin / kNegation
  ArgRef lhs, rhs;           // kComparison
  CmpOp op = CmpOp::kEq;     // kComparison
};

// The precompiled plan for one (rule, delta-subgoal) combination: the order
// in which body elements are evaluated. Comparisons and negations are placed
// at the earliest point where all their variables are bound.
struct RulePlan {
  int rule_index;
  // Index (into rule.body) of the positive subgoal that reads the delta
  // relation, or -1 for "all subgoals read their full relation".
  int delta_subgoal;
  int num_vars = 0;  // distinct variables of the rule, renumbered 0..n-1
  PredId head_pred = -1;
  std::vector<ArgRef> head;
  std::vector<PlanStep> steps;
};

// Builds the evaluation order for a rule. `first` (if >= 0) is the body
// index of the positive subgoal to evaluate first (the delta subgoal).
RulePlan BuildPlan(const Rule& rule, int rule_index, int first) {
  RulePlan plan;
  plan.rule_index = rule_index;
  plan.delta_subgoal = first;

  std::set<VarId> bound;
  std::vector<bool> done_body(rule.body.size(), false);
  std::vector<bool> done_cmp(rule.comparisons.size(), false);

  auto vars_bound = [&](const std::vector<VarId>& vars) {
    return std::all_of(vars.begin(), vars.end(),
                       [&](VarId v) { return bound.count(v) > 0; });
  };

  auto emit_ready_filters = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < rule.comparisons.size(); ++i) {
        if (done_cmp[i]) continue;
        std::vector<VarId> vars;
        rule.comparisons[i].CollectVars(&vars);
        if (vars_bound(vars)) {
          plan.steps.push_back(
              {PlanStep::Kind::kComparison, static_cast<int>(i)});
          done_cmp[i] = true;
          progress = true;
        }
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done_body[i] || !rule.body[i].negated) continue;
        std::vector<VarId> vars;
        rule.body[i].atom.CollectVars(&vars);
        if (vars_bound(vars)) {
          plan.steps.push_back({PlanStep::Kind::kNegation, static_cast<int>(i)});
          done_body[i] = true;
          progress = true;
        }
      }
    }
  };

  auto emit_join = [&](int i) {
    plan.steps.push_back({PlanStep::Kind::kJoin, i});
    done_body[i] = true;
    std::vector<VarId> vars;
    rule.body[i].atom.CollectVars(&vars);
    bound.insert(vars.begin(), vars.end());
  };

  emit_ready_filters();  // ground comparisons, if any
  if (first >= 0) {
    SQOD_CHECK(!rule.body[first].negated);
    emit_join(first);
    emit_ready_filters();
  }
  for (;;) {
    // Pick the positive subgoal with the most bound argument positions.
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (done_body[i] || rule.body[i].negated) continue;
      const Atom& a = rule.body[i].atom;
      int score = 0;
      for (const Term& t : a.args()) {
        if (t.is_const() || bound.count(t.var()) > 0) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best == -1) break;
    emit_join(best);
    emit_ready_filters();
  }
  // Safety guarantees every negation and comparison was emitted.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    SQOD_CHECK_MSG(done_body[i] || !rule.body[i].negated,
                   rule.ToString().c_str());
    SQOD_CHECK_MSG(done_body[i], rule.ToString().c_str());
  }
  for (size_t i = 0; i < rule.comparisons.size(); ++i) {
    SQOD_CHECK_MSG(done_cmp[i], rule.ToString().c_str());
  }

  // Compile: renumber the rule's variables densely (order of first
  // appearance along the plan) and pre-resolve every argument to an ArgRef,
  // so the join loops never walk AST terms or hash global VarIds.
  std::unordered_map<VarId, int32_t> local;
  auto compile_term = [&](const Term& t) {
    ArgRef a;
    if (t.is_const()) {
      a.const_val = t.value();
      return a;
    }
    auto [it, unused] =
        local.emplace(t.var(), static_cast<int32_t>(local.size()));
    a.var = it->second;
    return a;
  };
  for (PlanStep& step : plan.steps) {
    if (step.kind == PlanStep::Kind::kComparison) {
      const Comparison& c = rule.comparisons[step.index];
      step.lhs = compile_term(c.lhs);
      step.rhs = compile_term(c.rhs);
      step.op = c.op;
    } else {
      const Atom& a = rule.body[step.index].atom;
      SQOD_CHECK_MSG(a.arity() <= Relation::kMaxArity, a.ToString().c_str());
      step.pred = a.pred();
      step.args.reserve(a.args().size());
      for (const Term& t : a.args()) step.args.push_back(compile_term(t));
    }
  }
  const size_t body_vars = local.size();
  plan.head_pred = rule.head.pred();
  SQOD_CHECK_MSG(rule.head.arity() <= Relation::kMaxArity,
                 rule.head.ToString().c_str());
  plan.head.reserve(rule.head.args().size());
  for (const Term& t : rule.head.args()) plan.head.push_back(compile_term(t));
  // Safety: every head variable occurs in the body, so compiling the head
  // introduced no new slots (an unbound slot would leak garbage values).
  SQOD_CHECK_MSG(local.size() == body_vars, rule.ToString().c_str());
  plan.num_vars = static_cast<int>(local.size());
  return plan;
}

// Runtime context shared by all rules during one evaluation.
struct Context {
  const Program* program;
  const Database* edb;
  Database* idb_total;        // all IDB tuples derived so far
  const Database* idb_delta;  // last iteration's new tuples (may be null)
  Database* out_new;          // staging area for this iteration's new tuples
  EvalOptions options;
  RuleProfile* rule_stats;    // profile slot of the rule being evaluated
  std::set<PredId> idb_preds;
  int64_t* derived_count;
  bool* overflow;
};

const Relation* RelationFor(const Context& ctx, const RulePlan& plan,
                            int body_index, PredId pred) {
  if (ctx.idb_preds.count(pred) == 0) return ctx.edb->Find(pred);
  if (body_index == plan.delta_subgoal) {
    return ctx.idb_delta == nullptr ? nullptr : ctx.idb_delta->Find(pred);
  }
  return ctx.idb_total->Find(pred);
}

void DeriveHead(const RulePlan& plan, const Bindings& bindings, Context* ctx) {
  ++ctx->rule_stats->firings;
  Value head[Relation::kMaxArity];
  const int n = static_cast<int>(plan.head.size());
  for (int i = 0; i < n; ++i) head[i] = ArgValue(plan.head[i], bindings);
  PredId pred = plan.head_pred;
  if (ctx->idb_total->Contains(pred, head, n) ||
      ctx->out_new->Contains(pred, head, n)) {
    ++ctx->rule_stats->duplicates;
    return;
  }
  ctx->out_new->Insert(pred, head, n);
  ++ctx->rule_stats->derived;
  ++*ctx->derived_count;
  if (ctx->options.max_derived >= 0 &&
      *ctx->derived_count > ctx->options.max_derived) {
    *ctx->overflow = true;
  }
}

// Recursive join over the plan steps.
void RunSteps(const RulePlan& plan, size_t step_index, Bindings* bindings,
              Context* ctx) {
  if (*ctx->overflow) return;
  if (step_index == plan.steps.size()) {
    DeriveHead(plan, *bindings, ctx);
    return;
  }
  const PlanStep& step = plan.steps[step_index];
  switch (step.kind) {
    case PlanStep::Kind::kComparison: {
      ++ctx->rule_stats->cmp_checks;
      if (EvalCmp(ArgValue(step.lhs, *bindings), step.op,
                  ArgValue(step.rhs, *bindings))) {
        RunSteps(plan, step_index + 1, bindings, ctx);
      }
      return;
    }
    case PlanStep::Kind::kNegation: {
      Value key[Relation::kMaxArity];
      const int n = static_cast<int>(step.args.size());
      for (int i = 0; i < n; ++i) key[i] = ArgValue(step.args[i], *bindings);
      // Negated IDB predicates live in strictly lower strata, already
      // completed in idb_total; EDB predicates live in the input database.
      const Relation* rel = ctx->idb_preds.count(step.pred) > 0
                                ? ctx->idb_total->Find(step.pred)
                                : ctx->edb->Find(step.pred);
      if (rel == nullptr || !rel->Contains(key, n)) {
        RunSteps(plan, step_index + 1, bindings, ctx);
      }
      return;
    }
    case PlanStep::Kind::kJoin: {
      const Relation* rel = RelationFor(*ctx, plan, step.index, step.pred);
      if (rel == nullptr || rel->empty()) return;

      // Gather the probe key (bound positions) straight from the bindings.
      uint64_t mask = 0;
      Value key[Relation::kMaxArity];
      int klen = 0;
      const int n = static_cast<int>(step.args.size());
      for (int i = 0; i < n; ++i) {
        const ArgRef& a = step.args[i];
        if (a.var < 0) {
          mask |= uint64_t{1} << i;
          key[klen++] = a.const_val;
        } else if (bindings->IsBound(a.var)) {
          mask |= uint64_t{1} << i;
          key[klen++] = bindings->Get(a.var);
        }
      }

      auto try_row = [&](TupleRef row) {
        ++ctx->rule_stats->probes;
        size_t mark = bindings->Mark();
        bool ok = true;
        for (int i = 0; i < n && ok; ++i) {
          const ArgRef& a = step.args[i];
          ok = a.var < 0 ? a.const_val == row[i] : bindings->Bind(a.var, row[i]);
        }
        if (ok) RunSteps(plan, step_index + 1, bindings, ctx);
        bindings->Restore(mark);
      };

      if (mask != 0 && ctx->options.use_indexes) {
        Relation::Matches m = rel->Probe(mask, key);
        for (int32_t r = m.row; r >= 0; r = m.next[r]) {
          try_row(rel->row(r));
          if (*ctx->overflow) return;
        }
      } else {
        for (int64_t r = 0, rows = rel->size(); r < rows; ++r) {
          try_row(rel->row(r));
          if (*ctx->overflow) return;
        }
      }
      return;
    }
  }
}

// Merges `src` into `dst`; returns the number of new tuples.
int64_t MergeInto(const Database& src, Database* dst) {
  int64_t added = 0;
  for (const auto& [pred, rel] : src.relations()) {
    for (TupleRef t : rel.rows()) {
      if (dst->Insert(pred, t)) ++added;
    }
  }
  return added;
}

}  // namespace

Evaluator::Evaluator(const Program& program, EvalOptions options)
    : program_(program), options_(options) {}

Result<Database> Evaluator::Evaluate(const Database& edb) {
  stats_ = EvalStats();
  const std::vector<Rule>& rules = program_.rules();
  profiles_.assign(rules.size(), RuleProfile());
  for (size_t r = 0; r < rules.size(); ++r) {
    profiles_[r].rule_index = static_cast<int>(r);
    profiles_[r].head = PredName(rules[r].head.pred());
  }
  int64_t iterations = 0;

  Tracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  // Counters are always kept (they redirect existing increments); only the
  // wall-clock reads are gated, so the disabled path stays branch-cheap.
  const bool timed =
      options_.profile_rules || tracing || options_.metrics != nullptr;

  auto start_span = [&](const char* name) {
    return tracing ? tracer->StartSpan(name) : Span();
  };

  // One bindings array reused across every rule activation: Reset is a
  // cheap dense assign, and nothing below allocates per probe or per bind.
  Bindings bindings;

  // Runs one plan with per-rule time attribution and an optional span.
  auto run_plan = [&](const RulePlan& plan, Context* ctx) {
    RuleProfile* profile = &profiles_[plan.rule_index];
    ctx->rule_stats = profile;
    Span span;
    if (tracing) {
      span = tracer->StartSpan("eval.rule");
      span.SetAttr("rule", plan.rule_index);
      if (plan.delta_subgoal >= 0) {
        span.SetAttr("delta_subgoal", plan.delta_subgoal);
      }
    }
    int64_t before_firings = profile->firings;
    int64_t before_derived = profile->derived;
    int64_t t0 = timed ? NowNs() : 0;
    bindings.Reset(plan.num_vars);
    RunSteps(plan, 0, &bindings, ctx);
    if (timed) profile->time_ns += NowNs() - t0;
    if (tracing) {
      span.SetAttr("firings", profile->firings - before_firings);
      span.SetAttr("derived", profile->derived - before_derived);
    }
  };

  Span eval_span = start_span("eval");

  Result<std::map<PredId, int>> strata = program_.Stratify();
  if (!strata.ok()) return strata.status();
  int max_stratum = 0;
  for (const auto& [pred, s] : strata.value()) {
    max_stratum = std::max(max_stratum, s);
  }

  Database total;
  int64_t derived_count = 0;
  bool overflow = false;

  Context ctx;
  ctx.program = &program_;
  ctx.edb = &edb;
  ctx.idb_total = &total;
  ctx.idb_delta = nullptr;
  ctx.options = options_;
  ctx.rule_stats = nullptr;
  ctx.idb_preds = program_.IdbPreds();
  ctx.derived_count = &derived_count;
  ctx.overflow = &overflow;

  auto fail_if_overflow = [&]() -> Status {
    if (overflow) {
      return Status::ResourceExhausted("evaluation exceeded max_derived=" +
                           std::to_string(options_.max_derived));
    }
    return Status::Ok();
  };

  // Cooperative interruption, polled once per fixpoint iteration. The poll
  // is two loads (plus a clock read only when a deadline is armed), so the
  // serving layer can cancel or deadline long evaluations without the
  // un-interrupted path paying for it.
  auto interrupted = [&]() -> Status {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return Status::Cancelled("evaluation cancelled by caller");
    }
    if (options_.deadline_ns >= 0 && NowNs() >= options_.deadline_ns) {
      return Status::DeadlineExceeded("evaluation deadline exceeded");
    }
    return Status::Ok();
  };

  // Publishes counters and (when attached) registry metrics before any
  // return path, so stats are valid even on overflow errors.
  auto finish = [&] {
    stats_ = EvalStats::FromProfiles(iterations, profiles_);
    if (options_.metrics == nullptr) return;
    MetricsRegistry* m = options_.metrics;
    const std::string& p = options_.metrics_prefix;
    m->GetCounter(p + "/iterations")->Add(stats_.iterations);
    m->GetCounter(p + "/rule_firings")->Add(stats_.rule_firings);
    m->GetCounter(p + "/tuples_derived")->Add(stats_.tuples_derived);
    m->GetCounter(p + "/duplicate_derivations")
        ->Add(stats_.duplicate_derivations);
    m->GetCounter(p + "/join_probes")->Add(stats_.join_probes);
    m->GetCounter(p + "/comparison_checks")->Add(stats_.comparison_checks);
    for (const RuleProfile& profile : profiles_) {
      if (profile.firings == 0 && profile.probes == 0) continue;
      std::string base = p + "/rule/" +
                         std::to_string(profile.rule_index) + ":" +
                         profile.head;
      m->GetCounter(base + "/firings")->Add(profile.firings);
      m->GetCounter(base + "/derived")->Add(profile.derived);
      m->GetCounter(base + "/duplicates")->Add(profile.duplicates);
      m->GetCounter(base + "/probes")->Add(profile.probes);
      m->GetCounter(base + "/time_ns")->Add(profile.time_ns);
    }
  };

  // Evaluate stratum by stratum: negated IDB subgoals point strictly below
  // and read the completed relations in `total`; positive IDB subgoals of
  // lower strata are static within this stratum and read `total` too; only
  // same-stratum positive IDB subgoals drive the semi-naive deltas.
  for (int stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<int> stratum_rules;
    for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
      if (strata.value().at(rules[r].head.pred()) == stratum) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    Span stratum_span = start_span("eval.stratum");
    stratum_span.SetAttr("stratum", stratum);
    stratum_span.SetAttr("rules", static_cast<int64_t>(stratum_rules.size()));

    Histogram* iteration_hist =
        options_.metrics == nullptr
            ? nullptr
            : options_.metrics->GetHistogram(options_.metrics_prefix +
                                             "/iteration_ns");
    auto observe_iteration = [&](Span* span, int64_t t0, int64_t added) {
      span->SetAttr("new_tuples", added);
      if (iteration_hist != nullptr) iteration_hist->Record(NowNs() - t0);
    };

    // Same-stratum positive IDB subgoal body indices, per rule.
    std::map<int, std::vector<int>> recursive_subgoals;
    for (int r : stratum_rules) {
      for (size_t i = 0; i < rules[r].body.size(); ++i) {
        const Literal& l = rules[r].body[i];
        if (!l.negated && ctx.idb_preds.count(l.atom.pred()) > 0 &&
            strata.value().at(l.atom.pred()) == stratum) {
          recursive_subgoals[r].push_back(static_cast<int>(i));
        }
      }
    }

    if (!options_.semi_naive) {
      // Naive within the stratum.
      std::vector<RulePlan> plans;
      for (int r : stratum_rules) plans.push_back(BuildPlan(rules[r], r, -1));
      for (;;) {
        if (Status s = interrupted(); !s.ok()) {
          finish();
          return s;
        }
        ++iterations;
        Span iter_span = start_span("eval.iteration");
        iter_span.SetAttr("iteration", iterations);
        int64_t t0 = timed ? NowNs() : 0;
        Database fresh;
        ctx.out_new = &fresh;
        ctx.idb_delta = nullptr;
        for (const RulePlan& plan : plans) {
          run_plan(plan, &ctx);
        }
        Status s = fail_if_overflow();
        if (!s.ok()) {
          finish();
          return s;
        }
        int64_t added = MergeInto(fresh, &total);
        observe_iteration(&iter_span, t0, added);
        if (added == 0) break;
      }
      continue;
    }

    // Semi-naive. Iteration 0: rules with no same-stratum IDB subgoal.
    Database delta;
    {
      if (Status s = interrupted(); !s.ok()) {
        finish();
        return s;
      }
      ++iterations;
      Span iter_span = start_span("eval.iteration");
      iter_span.SetAttr("iteration", iterations);
      int64_t t0 = timed ? NowNs() : 0;
      Database fresh;
      ctx.out_new = &fresh;
      ctx.idb_delta = nullptr;
      for (int r : stratum_rules) {
        if (recursive_subgoals.count(r) > 0) continue;
        RulePlan plan = BuildPlan(rules[r], r, -1);
        run_plan(plan, &ctx);
      }
      Status s = fail_if_overflow();
      if (!s.ok()) {
        finish();
        return s;
      }
      int64_t added = MergeInto(fresh, &total);
      observe_iteration(&iter_span, t0, added);
      delta = std::move(fresh);
    }

    // One plan per (rule, same-stratum delta-subgoal occurrence).
    std::vector<RulePlan> delta_plans;
    for (const auto& [r, occurrences] : recursive_subgoals) {
      for (int occurrence : occurrences) {
        delta_plans.push_back(BuildPlan(rules[r], r, occurrence));
      }
    }

    while (delta.TotalTuples() > 0) {
      if (Status s = interrupted(); !s.ok()) {
        finish();
        return s;
      }
      ++iterations;
      Span iter_span = start_span("eval.iteration");
      iter_span.SetAttr("iteration", iterations);
      int64_t t0 = timed ? NowNs() : 0;
      Database fresh;
      ctx.out_new = &fresh;
      ctx.idb_delta = &delta;
      for (const RulePlan& plan : delta_plans) {
        run_plan(plan, &ctx);
      }
      Status s = fail_if_overflow();
      if (!s.ok()) {
        finish();
        return s;
      }
      int64_t added = MergeInto(fresh, &total);
      observe_iteration(&iter_span, t0, added);
      delta = std::move(fresh);
    }
  }
  finish();
  if (tracing) {
    eval_span.SetAttr("iterations", stats_.iterations);
    eval_span.SetAttr("tuples_derived", stats_.tuples_derived);
  }
  return total;
}

Result<std::vector<Tuple>> EvaluateQuery(const Program& program,
                                         const Database& edb,
                                         EvalOptions options,
                                         EvalStats* stats,
                                         std::vector<RuleProfile>* profiles) {
  SQOD_CHECK_MSG(program.query() != -1, "program has no query predicate");
  Evaluator evaluator(program, options);
  Result<Database> idb = evaluator.Evaluate(edb);
  if (stats != nullptr) *stats = evaluator.stats();
  if (profiles != nullptr) *profiles = evaluator.rule_profiles();
  if (!idb.ok()) return idb.status();
  std::vector<Tuple> out;
  const Relation* rel = idb.value().Find(program.query());
  if (rel != nullptr) {
    out.reserve(rel->size());
    for (TupleRef t : rel->rows()) out.push_back(t.Materialize());
  }
  std::sort(out.begin(), out.end(), [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return out;
}

}  // namespace sqod
