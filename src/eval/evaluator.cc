#include "src/eval/evaluator.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "src/base/check.h"

namespace sqod {

std::string EvalStats::ToString() const {
  return "iterations=" + std::to_string(iterations) +
         " firings=" + std::to_string(rule_firings) +
         " derived=" + std::to_string(tuples_derived) +
         " duplicates=" + std::to_string(duplicate_derivations) +
         " probes=" + std::to_string(join_probes) +
         " cmp_checks=" + std::to_string(comparison_checks);
}

namespace {

// Variable bindings with a trail for cheap backtracking.
class Bindings {
 public:
  size_t Mark() const { return trail_.size(); }

  void Restore(size_t mark) {
    while (trail_.size() > mark) {
      map_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  // Binds or checks; returns false on mismatch with an existing binding.
  bool Bind(VarId var, const Value& value) {
    auto [it, inserted] = map_.emplace(var, value);
    if (!inserted) return it->second == value;
    trail_.push_back(var);
    return true;
  }

  const Value* Lookup(VarId var) const {
    auto it = map_.find(var);
    return it == map_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<VarId, Value> map_;
  std::vector<VarId> trail_;
};

// One step of a rule-evaluation plan.
struct PlanStep {
  enum class Kind { kJoin, kNegation, kComparison };
  Kind kind;
  int index;  // into rule.body (kJoin / kNegation) or rule.comparisons
};

// The precompiled plan for one (rule, delta-subgoal) combination: the order
// in which body elements are evaluated. Comparisons and negations are placed
// at the earliest point where all their variables are bound.
struct RulePlan {
  int rule_index;
  // Index (into rule.body) of the positive subgoal that reads the delta
  // relation, or -1 for "all subgoals read their full relation".
  int delta_subgoal;
  std::vector<PlanStep> steps;
};

bool TermBound(const Term& t, const Bindings& b) {
  return t.is_const() || b.Lookup(t.var()) != nullptr;
}

Value TermValue(const Term& t, const Bindings& b) {
  if (t.is_const()) return t.value();
  const Value* v = b.Lookup(t.var());
  SQOD_CHECK(v != nullptr);
  return *v;
}

// Builds the evaluation order for a rule. `first` (if >= 0) is the body
// index of the positive subgoal to evaluate first (the delta subgoal).
RulePlan BuildPlan(const Rule& rule, int rule_index, int first) {
  RulePlan plan;
  plan.rule_index = rule_index;
  plan.delta_subgoal = first;

  std::set<VarId> bound;
  std::vector<bool> done_body(rule.body.size(), false);
  std::vector<bool> done_cmp(rule.comparisons.size(), false);

  auto vars_bound = [&](const std::vector<VarId>& vars) {
    return std::all_of(vars.begin(), vars.end(),
                       [&](VarId v) { return bound.count(v) > 0; });
  };

  auto emit_ready_filters = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < rule.comparisons.size(); ++i) {
        if (done_cmp[i]) continue;
        std::vector<VarId> vars;
        rule.comparisons[i].CollectVars(&vars);
        if (vars_bound(vars)) {
          plan.steps.push_back(
              {PlanStep::Kind::kComparison, static_cast<int>(i)});
          done_cmp[i] = true;
          progress = true;
        }
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done_body[i] || !rule.body[i].negated) continue;
        std::vector<VarId> vars;
        rule.body[i].atom.CollectVars(&vars);
        if (vars_bound(vars)) {
          plan.steps.push_back({PlanStep::Kind::kNegation, static_cast<int>(i)});
          done_body[i] = true;
          progress = true;
        }
      }
    }
  };

  auto emit_join = [&](int i) {
    plan.steps.push_back({PlanStep::Kind::kJoin, i});
    done_body[i] = true;
    std::vector<VarId> vars;
    rule.body[i].atom.CollectVars(&vars);
    bound.insert(vars.begin(), vars.end());
  };

  emit_ready_filters();  // ground comparisons, if any
  if (first >= 0) {
    SQOD_CHECK(!rule.body[first].negated);
    emit_join(first);
    emit_ready_filters();
  }
  for (;;) {
    // Pick the positive subgoal with the most bound argument positions.
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (done_body[i] || rule.body[i].negated) continue;
      const Atom& a = rule.body[i].atom;
      int score = 0;
      for (const Term& t : a.args()) {
        if (t.is_const() || bound.count(t.var()) > 0) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best == -1) break;
    emit_join(best);
    emit_ready_filters();
  }
  // Safety guarantees every negation and comparison was emitted.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    SQOD_CHECK_MSG(done_body[i] || !rule.body[i].negated,
                   rule.ToString().c_str());
    SQOD_CHECK_MSG(done_body[i], rule.ToString().c_str());
  }
  for (size_t i = 0; i < rule.comparisons.size(); ++i) {
    SQOD_CHECK_MSG(done_cmp[i], rule.ToString().c_str());
  }
  return plan;
}

// Runtime context shared by all rules during one evaluation.
struct Context {
  const Program* program;
  const Database* edb;
  Database* idb_total;        // all IDB tuples derived so far
  const Database* idb_delta;  // last iteration's new tuples (may be null)
  Database* out_new;          // staging area for this iteration's new tuples
  EvalOptions options;
  EvalStats* stats;
  std::set<PredId> idb_preds;
  int64_t* derived_count;
  bool* overflow;
};

const Relation* RelationFor(const Context& ctx, const RulePlan& plan,
                            int body_index, PredId pred) {
  if (ctx.idb_preds.count(pred) == 0) return ctx.edb->Find(pred);
  if (body_index == plan.delta_subgoal) {
    return ctx.idb_delta == nullptr ? nullptr : ctx.idb_delta->Find(pred);
  }
  return ctx.idb_total->Find(pred);
}

void DeriveHead(const Rule& rule, const Bindings& bindings, Context* ctx) {
  ++ctx->stats->rule_firings;
  Tuple head;
  head.reserve(rule.head.args().size());
  for (const Term& t : rule.head.args()) {
    head.push_back(TermValue(t, bindings));
  }
  PredId pred = rule.head.pred();
  if (ctx->idb_total->Contains(pred, head) ||
      ctx->out_new->Contains(pred, head)) {
    ++ctx->stats->duplicate_derivations;
    return;
  }
  ctx->out_new->Insert(pred, std::move(head));
  ++ctx->stats->tuples_derived;
  ++*ctx->derived_count;
  if (ctx->options.max_derived >= 0 &&
      *ctx->derived_count > ctx->options.max_derived) {
    *ctx->overflow = true;
  }
}

// Recursive join over the plan steps.
void RunSteps(const Rule& rule, const RulePlan& plan, size_t step_index,
              Bindings* bindings, Context* ctx) {
  if (*ctx->overflow) return;
  if (step_index == plan.steps.size()) {
    DeriveHead(rule, *bindings, ctx);
    return;
  }
  const PlanStep& step = plan.steps[step_index];
  switch (step.kind) {
    case PlanStep::Kind::kComparison: {
      const Comparison& c = rule.comparisons[step.index];
      ++ctx->stats->comparison_checks;
      if (EvalCmp(TermValue(c.lhs, *bindings), c.op,
                  TermValue(c.rhs, *bindings))) {
        RunSteps(rule, plan, step_index + 1, bindings, ctx);
      }
      return;
    }
    case PlanStep::Kind::kNegation: {
      const Atom& a = rule.body[step.index].atom;
      Tuple t;
      t.reserve(a.args().size());
      for (const Term& term : a.args()) t.push_back(TermValue(term, *bindings));
      // Negated IDB predicates live in strictly lower strata, already
      // completed in idb_total; EDB predicates live in the input database.
      const Relation* rel = ctx->idb_preds.count(a.pred()) > 0
                                ? ctx->idb_total->Find(a.pred())
                                : ctx->edb->Find(a.pred());
      if (rel == nullptr || !rel->Contains(t)) {
        RunSteps(rule, plan, step_index + 1, bindings, ctx);
      }
      return;
    }
    case PlanStep::Kind::kJoin: {
      const Atom& a = rule.body[step.index].atom;
      const Relation* rel = RelationFor(*ctx, plan, step.index, a.pred());
      if (rel == nullptr || rel->empty()) return;

      // Determine bound positions and the probe key.
      uint64_t mask = 0;
      Tuple key;
      for (int i = 0; i < a.arity(); ++i) {
        if (TermBound(a.arg(i), *bindings)) {
          mask |= uint64_t{1} << i;
          key.push_back(TermValue(a.arg(i), *bindings));
        }
      }

      auto try_row = [&](const Tuple& row) {
        ++ctx->stats->join_probes;
        size_t mark = bindings->Mark();
        bool ok = true;
        for (int i = 0; i < a.arity() && ok; ++i) {
          const Term& t = a.arg(i);
          if (t.is_const()) {
            ok = t.value() == row[i];
          } else {
            ok = bindings->Bind(t.var(), row[i]);
          }
        }
        if (ok) RunSteps(rule, plan, step_index + 1, bindings, ctx);
        bindings->Restore(mark);
      };

      if (mask != 0 && ctx->options.use_indexes) {
        const std::vector<int>* rows = rel->Probe(mask, key);
        if (rows == nullptr) return;
        for (int r : *rows) {
          try_row(rel->rows()[r]);
          if (*ctx->overflow) return;
        }
      } else {
        for (const Tuple& row : rel->rows()) {
          try_row(row);
          if (*ctx->overflow) return;
        }
      }
      return;
    }
  }
}

void RunPlan(const Rule& rule, const RulePlan& plan, Context* ctx) {
  Bindings bindings;
  RunSteps(rule, plan, 0, &bindings, ctx);
}

// Merges `src` into `dst`; returns the number of new tuples.
int64_t MergeInto(const Database& src, Database* dst) {
  int64_t added = 0;
  for (const auto& [pred, rel] : src.relations()) {
    for (const Tuple& t : rel.rows()) {
      if (dst->Insert(pred, t)) ++added;
    }
  }
  return added;
}

}  // namespace

Evaluator::Evaluator(const Program& program, EvalOptions options)
    : program_(program), options_(options) {}

Result<Database> Evaluator::Evaluate(const Database& edb) {
  stats_ = EvalStats();
  Result<std::map<PredId, int>> strata = program_.Stratify();
  if (!strata.ok()) return strata.status();
  int max_stratum = 0;
  for (const auto& [pred, s] : strata.value()) {
    max_stratum = std::max(max_stratum, s);
  }

  Database total;
  int64_t derived_count = 0;
  bool overflow = false;

  Context ctx;
  ctx.program = &program_;
  ctx.edb = &edb;
  ctx.idb_total = &total;
  ctx.idb_delta = nullptr;
  ctx.options = options_;
  ctx.stats = &stats_;
  ctx.idb_preds = program_.IdbPreds();
  ctx.derived_count = &derived_count;
  ctx.overflow = &overflow;

  const std::vector<Rule>& rules = program_.rules();

  auto fail_if_overflow = [&]() -> Status {
    if (overflow) {
      return Status::Error("evaluation exceeded max_derived=" +
                           std::to_string(options_.max_derived));
    }
    return Status::Ok();
  };

  // Evaluate stratum by stratum: negated IDB subgoals point strictly below
  // and read the completed relations in `total`; positive IDB subgoals of
  // lower strata are static within this stratum and read `total` too; only
  // same-stratum positive IDB subgoals drive the semi-naive deltas.
  for (int stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<int> stratum_rules;
    for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
      if (strata.value().at(rules[r].head.pred()) == stratum) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    // Same-stratum positive IDB subgoal body indices, per rule.
    std::map<int, std::vector<int>> recursive_subgoals;
    for (int r : stratum_rules) {
      for (size_t i = 0; i < rules[r].body.size(); ++i) {
        const Literal& l = rules[r].body[i];
        if (!l.negated && ctx.idb_preds.count(l.atom.pred()) > 0 &&
            strata.value().at(l.atom.pred()) == stratum) {
          recursive_subgoals[r].push_back(static_cast<int>(i));
        }
      }
    }

    if (!options_.semi_naive) {
      // Naive within the stratum.
      std::vector<RulePlan> plans;
      for (int r : stratum_rules) plans.push_back(BuildPlan(rules[r], r, -1));
      for (;;) {
        ++stats_.iterations;
        Database fresh;
        ctx.out_new = &fresh;
        ctx.idb_delta = nullptr;
        for (const RulePlan& plan : plans) {
          RunPlan(rules[plan.rule_index], plan, &ctx);
        }
        Status s = fail_if_overflow();
        if (!s.ok()) return s;
        if (MergeInto(fresh, &total) == 0) break;
      }
      continue;
    }

    // Semi-naive. Iteration 0: rules with no same-stratum IDB subgoal.
    Database delta;
    {
      ++stats_.iterations;
      Database fresh;
      ctx.out_new = &fresh;
      ctx.idb_delta = nullptr;
      for (int r : stratum_rules) {
        if (recursive_subgoals.count(r) > 0) continue;
        RulePlan plan = BuildPlan(rules[r], r, -1);
        RunPlan(rules[r], plan, &ctx);
      }
      Status s = fail_if_overflow();
      if (!s.ok()) return s;
      MergeInto(fresh, &total);
      delta = std::move(fresh);
    }

    // One plan per (rule, same-stratum delta-subgoal occurrence).
    std::vector<RulePlan> delta_plans;
    for (const auto& [r, occurrences] : recursive_subgoals) {
      for (int occurrence : occurrences) {
        delta_plans.push_back(BuildPlan(rules[r], r, occurrence));
      }
    }

    while (delta.TotalTuples() > 0) {
      ++stats_.iterations;
      Database fresh;
      ctx.out_new = &fresh;
      ctx.idb_delta = &delta;
      for (const RulePlan& plan : delta_plans) {
        RunPlan(rules[plan.rule_index], plan, &ctx);
      }
      Status s = fail_if_overflow();
      if (!s.ok()) return s;
      MergeInto(fresh, &total);
      delta = std::move(fresh);
    }
  }
  return total;
}

Result<std::vector<Tuple>> EvaluateQuery(const Program& program,
                                         const Database& edb,
                                         EvalOptions options,
                                         EvalStats* stats) {
  SQOD_CHECK_MSG(program.query() != -1, "program has no query predicate");
  Evaluator evaluator(program, options);
  Result<Database> idb = evaluator.Evaluate(edb);
  if (stats != nullptr) *stats = evaluator.stats();
  if (!idb.ok()) return idb.status();
  std::vector<Tuple> out;
  const Relation* rel = idb.value().Find(program.query());
  if (rel != nullptr) out = rel->rows();
  std::sort(out.begin(), out.end(), [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return out;
}

}  // namespace sqod
