#ifndef SQOD_EVAL_EVALUATOR_H_
#define SQOD_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"
#include "src/eval/database.h"

namespace sqod {

struct EvalOptions {
  // Semi-naive (delta-driven) iteration vs naive re-evaluation.
  bool semi_naive = true;
  // Use hash indexes for bound-column probes; otherwise scan.
  bool use_indexes = true;
  // Abort with an error when more than this many IDB tuples are derived
  // (guards against runaway programs in tests). -1 = unlimited.
  int64_t max_derived = -1;
};

// Work counters; the instrument behind every speedup benchmark.
struct EvalStats {
  int64_t iterations = 0;
  int64_t rule_firings = 0;          // complete body matches found
  int64_t tuples_derived = 0;        // new IDB tuples
  int64_t duplicate_derivations = 0; // matches deriving an existing tuple
  int64_t join_probes = 0;           // candidate rows examined during joins
  int64_t comparison_checks = 0;     // order-atom evaluations

  std::string ToString() const;
};

// Bottom-up evaluation of a datalog program with safe negation on EDB
// predicates and order atoms. Negation needs no stratification because only
// EDB predicates may be negated (Section 2 of the paper).
class Evaluator {
 public:
  explicit Evaluator(const Program& program, EvalOptions options = {});

  // Computes all IDB relations from `edb`. The returned database holds IDB
  // facts only.
  Result<Database> Evaluate(const Database& edb);

  const EvalStats& stats() const { return stats_; }

 private:
  const Program& program_;
  EvalOptions options_;
  EvalStats stats_;
};

// Convenience: evaluates and returns the query predicate's tuples, sorted.
Result<std::vector<Tuple>> EvaluateQuery(const Program& program,
                                         const Database& edb,
                                         EvalOptions options = {},
                                         EvalStats* stats = nullptr);

}  // namespace sqod

#endif  // SQOD_EVAL_EVALUATOR_H_
