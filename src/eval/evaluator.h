#ifndef SQOD_EVAL_EVALUATOR_H_
#define SQOD_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/cancel.h"
#include "src/base/status.h"
#include "src/eval/database.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sqod {

struct CompiledProgram;
class EvalExecutor;

// Work accounting for one parallel evaluation (EvalOptions::threads > 1),
// filled through EvalOptions::parallel_stats. Answers and the EvalStats /
// RuleProfile counters are thread-count-invariant by contract (the
// equivalence suite pins this); these fields describe the parallel
// machinery itself.
struct ParallelEvalStats {
  int threads = 1;                 // partitions per partitionable plan
  int64_t parallel_iterations = 0; // fixpoint iterations run partitioned
  int64_t partition_tasks = 0;     // (plan, partition) tasks fired
  // Max over iterations of (slowest - fastest) partition-task wall time:
  // the skew the hash partitioning failed to balance away.
  int64_t skew_max_ns = 0;
  // Tuples derived per partition index, summed across iterations and
  // plans (EXPLAIN's "== parallel ==" per-partition row counts).
  std::vector<int64_t> partition_derived;
};

// How rule bodies are executed (see docs/evaluator.md, "Compiled
// bytecode"): kCompile lowers each plan to flat register bytecode with
// specialized kernels once and runs the compiled form; kInterpret walks the
// PlanStep objects per tuple (the reference implementation, preserved as a
// runtime fallback and equivalence oracle).
enum class EvalMode { kInterpret, kCompile };

struct EvalOptions {
  // Semi-naive (delta-driven) iteration vs naive re-evaluation.
  bool semi_naive = true;
  // Use hash indexes for bound-column probes; otherwise scan.
  bool use_indexes = true;
  // Plan execution strategy. Both modes produce identical answers and
  // identical work counters; compiled is the fast path and the default.
  EvalMode mode = EvalMode::kCompile;
  // In compiled mode, use the per-rule specialized kernels; off = always
  // the generic bytecode dispatch loop (for debugging/benchmarks).
  bool use_kernels = true;
  // In compiled mode, a pre-compiled artifact to execute (as cached by
  // PreparedProgram). Must have been built by CompileProgram from the same
  // program being evaluated. Null = compile on the fly (the evaluator then
  // reports the lowering cost under eval/compile_ns).
  const CompiledProgram* compiled = nullptr;
  // Abort with an error when more than this many IDB tuples are derived
  // (guards against runaway programs in tests). -1 = unlimited.
  int64_t max_derived = -1;

  // Cooperative interruption, checked once per fixpoint iteration (the
  // serving layer's cancellation granularity) and, when threads > 1, at
  // every partition-task boundary. When `cancel` fires, evaluation unwinds
  // with kCancelled; when `deadline_ns` (an absolute NowNs() timestamp,
  // -1 = none) passes, with kDeadlineExceeded. Stats and profiles remain
  // valid for the work done up to the interruption.
  const CancelToken* cancel = nullptr;
  int64_t deadline_ns = -1;

  // Intra-query parallelism (docs/evaluator.md, "Parallel evaluation").
  // With threads = P > 1, semi-naive iterations hash-partition each plan's
  // first join level P ways and run the (plan, partition) tasks
  // concurrently, merging per-task scratch at the iteration barrier.
  // Answers and work counters are identical to threads = 1 by contract
  // (except RuleProfile::ops and the kernel-activation metrics, which
  // scale with the task count). threads = 1 takes the serial code path
  // untouched. Naive (semi_naive = false) evaluation is always serial.
  int threads = 1;
  // The executor partition tasks run on. Null with threads > 1 = the
  // evaluator spins up a private executor for this evaluation; the engine
  // normally passes its shared one (Engine::eval_executor) so concurrent
  // requests share workers instead of oversubscribing.
  EvalExecutor* executor = nullptr;
  // When set, receives the parallel-machinery accounting for this run.
  ParallelEvalStats* parallel_stats = nullptr;

  // Observability hooks, all optional and off by default.
  //
  // When `tracer` is set and enabled, the evaluator emits a span tree:
  // eval > eval.stratum > eval.iteration > eval.rule (see
  // docs/observability.md for the taxonomy). When `metrics` is set,
  // aggregate and per-rule counters plus an iteration-latency histogram are
  // published under `metrics_prefix`. `profile_rules` turns on per-rule
  // wall-clock timing even without a tracer (counters are always kept; only
  // the clock reads are gated).
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  bool profile_rules = false;
  std::string metrics_prefix = "eval";
};

// Per-rule work profile: the same counters as EvalStats, attributed to the
// rule that did the work. `time_ns` is only nonzero when timing is on
// (EvalOptions::profile_rules, or an enabled tracer, or a registry).
struct RuleProfile {
  int rule_index = -1;
  std::string head;  // head predicate name, for display
  int64_t firings = 0;
  int64_t derived = 0;
  int64_t duplicates = 0;
  int64_t probes = 0;
  int64_t cmp_checks = 0;
  // Executed bytecode ops (generic loop) or inner-loop steps (specialized
  // kernels); 0 in interpret mode. Surfaced by EXPLAIN ANALYZE.
  int64_t ops = 0;
  int64_t time_ns = 0;

  double duplicate_rate() const {
    return firings == 0 ? 0.0 : double(duplicates) / double(firings);
  }
};

// Aggregate work counters; the instrument behind every speedup benchmark.
// A thin facade: the evaluator accounts per rule (RuleProfile) and this is
// the sum over rules, so stats() and rule_profiles() always agree.
struct EvalStats {
  int64_t iterations = 0;
  int64_t rule_firings = 0;          // complete body matches found
  int64_t tuples_derived = 0;        // new IDB tuples
  int64_t duplicate_derivations = 0; // matches deriving an existing tuple
  int64_t join_probes = 0;           // candidate rows examined during joins
  int64_t comparison_checks = 0;     // order-atom evaluations

  // Sums `profiles` into the per-rule fields (iterations is left alone).
  static EvalStats FromProfiles(int64_t iterations,
                                const std::vector<RuleProfile>& profiles);

  std::string ToString() const;
};

// Bottom-up evaluation of a datalog program with safe negation on EDB
// predicates and order atoms. Negation needs no stratification because only
// EDB predicates may be negated (Section 2 of the paper).
class Evaluator {
 public:
  explicit Evaluator(const Program& program, EvalOptions options = {});

  // Computes all IDB relations from `edb`. The returned database holds IDB
  // facts only.
  Result<Database> Evaluate(const Database& edb);

  const EvalStats& stats() const { return stats_; }

  // One entry per program rule, in rule order, after Evaluate.
  const std::vector<RuleProfile>& rule_profiles() const { return profiles_; }

 private:
  const Program& program_;
  EvalOptions options_;
  EvalStats stats_;
  std::vector<RuleProfile> profiles_;
};

// Convenience: evaluates and returns the query predicate's tuples, sorted.
// `stats` and `profiles` (both optional) receive the evaluator's counters.
Result<std::vector<Tuple>> EvaluateQuery(
    const Program& program, const Database& edb, EvalOptions options = {},
    EvalStats* stats = nullptr, std::vector<RuleProfile>* profiles = nullptr);

// Renders per-rule profiles as an aligned text table (header + one row per
// rule that did any work, sorted by time then firings).
std::string RenderRuleProfileTable(const std::vector<RuleProfile>& profiles);

}  // namespace sqod

#endif  // SQOD_EVAL_EVALUATOR_H_
