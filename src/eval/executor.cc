#include "src/eval/executor.h"

namespace sqod {

EvalExecutor::EvalExecutor(int workers) {
  if (workers < 0) workers = 0;
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

EvalExecutor::~EvalExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void EvalExecutor::DrainBatch(Batch* b) {
  for (;;) {
    const int i = b->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b->num_tasks) return;
    (*b->fn)(i);
    if (b->done.fetch_add(1, std::memory_order_acq_rel) + 1 == b->num_tasks) {
      // The lock pairs with the caller's wait: without it the notify could
      // race between the caller's predicate check and its block.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void EvalExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    while (!stop_ && batches_.empty()) work_cv_.wait(lock);
    if (stop_) return;
    // Oldest batch with unclaimed tasks; fully-claimed batches are retired
    // here (their stragglers finish on whoever claimed them).
    std::shared_ptr<Batch> b = batches_.front();
    if (b->next.load(std::memory_order_relaxed) >= b->num_tasks) {
      batches_.pop_front();
      continue;
    }
    lock.unlock();
    DrainBatch(b.get());
    lock.lock();
  }
}

void EvalExecutor::Run(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (threads_.empty() || num_tasks == 1) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->num_tasks = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batches_.push_back(batch);
  }
  work_cv_.notify_all();
  // The caller works its own batch — the deadlock-freedom guarantee — then
  // blocks only for tasks still in flight on workers.
  DrainBatch(batch.get());
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->num_tasks;
  });
}

}  // namespace sqod
