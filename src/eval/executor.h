#ifndef SQOD_EVAL_EXECUTOR_H_
#define SQOD_EVAL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sqod {

// The intra-query task executor behind parallel evaluation
// (docs/evaluator.md, "Parallel evaluation"). Deliberately NOT the
// serving layer's ThreadPool: a request worker that parked its own
// partition tasks on the pool it runs on would deadlock once every worker
// is a waiting coordinator. This executor is work-sharing instead of
// work-queueing — Run() makes the calling thread claim and execute tasks
// from its own batch alongside the workers, so every batch completes even
// with zero workers, and any number of request threads can share one
// executor without a reservation protocol.
//
// Batches from concurrent Run() calls interleave freely: workers drain
// whichever batch has unclaimed tasks, oldest first. Run() returns only
// when every task of ITS batch has finished (a full barrier), which is
// exactly the iteration-boundary contract the evaluator's merge step
// needs. Tasks must not call Run() on the same executor recursively.
class EvalExecutor {
 public:
  // `workers` background threads (0 is valid: Run degenerates to inline
  // execution on the caller). A query partitioned P ways wants P-1 workers
  // to run fully parallel; fewer workers just cap the concurrency.
  explicit EvalExecutor(int workers);
  ~EvalExecutor();

  EvalExecutor(const EvalExecutor&) = delete;
  EvalExecutor& operator=(const EvalExecutor&) = delete;

  // Executes fn(0..num_tasks-1), each exactly once, on the caller plus any
  // free workers; returns when all of them have completed. Safe to call
  // from multiple threads concurrently (batches share the worker set).
  void Run(int num_tasks, const std::function<void(int)>& fn);

  int workers() const { return static_cast<int>(threads_.size()); }

 private:
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int num_tasks = 0;
    std::atomic<int> next{0};  // next unclaimed task index
    std::atomic<int> done{0};  // completed tasks
  };

  // Claims and runs tasks of `b` until none are left unclaimed.
  void DrainBatch(Batch* b);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "a batch has tasks"
  std::condition_variable done_cv_;  // callers: "my batch finished"
  std::deque<std::shared_ptr<Batch>> batches_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

}  // namespace sqod

#endif  // SQOD_EVAL_EXECUTOR_H_
