#include "src/eval/kernel.h"

#include "src/eval/evaluator.h"
#include "src/eval/relation.h"

namespace sqod {

namespace {

// True when every instruction in [begin, end) is kLoadCol — the level binds
// fresh registers only, with no in-atom repeats or constant checks.
bool LoadOnly(const CompiledRule& rule, uint32_t begin, uint32_t end) {
  for (uint32_t ip = begin; ip < end; ++ip) {
    if (rule.code[ip].op != OpCode::kLoadCol) return false;
  }
  return true;
}

bool HasFilters(const CompiledRule& rule) {
  for (const Instr& in : rule.code) {
    if (in.op == OpCode::kFilterCmp) return true;
  }
  return false;
}

}  // namespace

KernelId SelectKernel(const CompiledRule& rule) {
  // open_ip == 0 rules out ground comparisons planned before the level,
  // which the kernel's post-range loop would never execute.
  if (rule.levels.size() == 1 && rule.negs.empty() &&
      rule.levels[0].open_ip == 0) {
    return KernelId::kScanFilterEmit;
  }
  if (rule.levels.size() == 2 && rule.negs.empty() && !HasFilters(rule)) {
    const LevelInfo& outer = rule.levels[0];
    const LevelInfo& inner = rule.levels[1];
    if (outer.mask == 0 && inner.mask != 0 && inner.key_len >= 1 &&
        inner.key_len <= 4 &&
        LoadOnly(rule, outer.scan_ip, outer.post_ip) &&
        LoadOnly(rule, inner.probe_ip,
                 inner.scan_ip - 1 /* the kJump between the ranges */)) {
      return KernelId::kScanProbeEmit;
    }
  }
  return KernelId::kGeneric;
}

namespace {

// Shared emit: materialize the head from registers/constants, dedup against
// idb_total and the staging database, count. Returns false on overflow
// (callers stop the activation immediately, like the interpreter unwinds).
struct EmitCtx {
  const CompiledRule* rule;
  VmContext* ctx;
  const Value* consts;
  const ArgSrc* head_args;
  const Value* regs;
  int64_t firings = 0, dups = 0, derived = 0;
};

inline bool EmitHead(EmitCtx* e) {
  ++e->firings;
  Value head[Relation::kMaxArity];
  const int n = e->rule->head_arity;
  for (int i = 0; i < n; ++i) {
    ArgSrc s = e->head_args[i];
    head[i] = IsConstSrc(s) ? e->consts[ConstIdx(s)] : e->regs[s];
  }
  VmContext* ctx = e->ctx;
  if (ctx->idb_total->Contains(e->rule->head_pred, head, n) ||
      ctx->out_new->Contains(e->rule->head_pred, head, n)) {
    ++e->dups;
    return true;
  }
  ctx->out_new->Insert(e->rule->head_pred, head, n);
  ++e->derived;
  ++*ctx->derived_count;
  if (ctx->max_derived >= 0 && *ctx->derived_count > ctx->max_derived) {
    *ctx->overflow = true;
    return false;
  }
  return true;
}

// scan_filter_emit: one level, optional comparison filters, emit. Row
// sourcing (probe vs scan) is decided once, outside the loop.
void RunScanFilterEmit(const CompiledRule& rule, VmContext* ctx) {
  const LevelInfo& lvl = rule.levels[0];
  const Relation* rel = (*ctx->level_rels)[0];
  if (rel == nullptr || rel->empty()) return;

  const Instr* code = rule.code.data();
  const Value* consts = rule.consts.data();
  const ArgSrc* args_pool = rule.args_pool.data();
  Value* regs = ctx->regs->data();

  EmitCtx emit{&rule, ctx, consts, args_pool + rule.head_off, regs};
  int64_t probes = 0, cmps = 0, ops = 0;

  const bool probe = lvl.mask != 0 && ctx->use_indexes;
  const uint32_t actions_begin = probe ? lvl.probe_ip : lvl.scan_ip;
  const uint32_t actions_end = probe ? lvl.scan_ip - 1 /* kJump */
                                     : lvl.post_ip;
  // Post range: comparison filters between the level and the final emit.
  const uint32_t post_begin = lvl.post_ip;
  const uint32_t post_end = static_cast<uint32_t>(rule.code.size()) - 1;

  auto try_row = [&](const Value* row) -> bool {  // false = overflow
    ++probes;
    for (uint32_t ip = actions_begin; ip < actions_end; ++ip) {
      const Instr& in = code[ip];
      ++ops;
      switch (in.op) {
        case OpCode::kLoadCol:
          regs[in.b] = row[in.a];
          continue;
        case OpCode::kCheckCol:
          if (row[in.a] == regs[in.b]) continue;
          return true;
        case OpCode::kCheckConst:
          if (row[in.a] == consts[in.b]) continue;
          return true;
        default:
          continue;
      }
    }
    for (uint32_t ip = post_begin; ip < post_end; ++ip) {
      const Instr& in = code[ip];
      ++ops;
      ++cmps;
      if (!EvalCmp(IsConstSrc(in.b) ? consts[ConstIdx(in.b)] : regs[in.b],
                   static_cast<CmpOp>(in.a),
                   IsConstSrc(in.c) ? consts[ConstIdx(in.c)] : regs[in.c])) {
        return true;
      }
    }
    ++ops;
    return EmitHead(&emit);
  };

  // Partition filter for parallel evaluation: level 0 is this kernel's
  // only level, so it is always the partitioned one. Skips happen before
  // the probe counter, like tombstones.
  const uint64_t pc = static_cast<uint64_t>(ctx->part_count);
  const uint64_t pi = static_cast<uint64_t>(ctx->part_index);
  const bool partitioned = pc > 1;

  if (probe) {
    // A single-level probe key is necessarily constant (no register is
    // bound before the first level).
    Value key[Relation::kMaxArity];
    for (int k = 0; k < lvl.key_len; ++k) {
      ArgSrc s = args_pool[lvl.key_off + k];
      key[k] = IsConstSrc(s) ? consts[ConstIdx(s)] : regs[s];
    }
    Relation::Matches m = rel->Probe(lvl.mask, key);
    for (int32_t r = m.row; r >= 0; r = m.next[r]) {
      if (!rel->live(r)) continue;  // tombstones skip before the counter
      if (partitioned && rel->row_hash(r) % pc != pi) continue;
      if (!try_row(rel->row(r).data())) break;
    }
  } else {
    for (int64_t r = 0, rows = rel->size(); r < rows; ++r) {
      if (!rel->live(r)) continue;
      if (partitioned && rel->row_hash(r) % pc != pi) continue;
      if (!try_row(rel->row(r).data())) break;
    }
  }

  RuleProfile* prof = ctx->profile;
  prof->probes += probes;
  prof->cmp_checks += cmps;
  prof->firings += emit.firings;
  prof->duplicates += emit.dups;
  prof->derived += emit.derived;
  prof->ops += ops + 1;  // + the level opener
}

// scan_probe_emit: scan the outer level, probe the inner on a KLen-wide
// fully-bound key, emit per match. Both levels are load-only, so the inner
// loop is branch-minimal: load, probe, chain-walk, load, emit.
template <int KLen>
void RunScanProbeEmit(const CompiledRule& rule, VmContext* ctx) {
  const LevelInfo& outer = rule.levels[0];
  const LevelInfo& inner = rule.levels[1];
  const Relation* outer_rel = (*ctx->level_rels)[0];
  const Relation* inner_rel = (*ctx->level_rels)[1];
  if (outer_rel == nullptr || outer_rel->empty()) return;

  const Instr* code = rule.code.data();
  const Value* consts = rule.consts.data();
  const ArgSrc* args_pool = rule.args_pool.data();
  Value* regs = ctx->regs->data();

  EmitCtx emit{&rule, ctx, consts, args_pool + rule.head_off, regs};
  int64_t probes = 0, ops = 0;

  // Pre-resolved action/key descriptors, hoisted out of both loops.
  const Instr* outer_loads = code + outer.scan_ip;
  const int outer_nloads = static_cast<int>(outer.post_ip - outer.scan_ip);
  const Instr* inner_loads = code + inner.probe_ip;
  const int inner_nloads =
      static_cast<int>(inner.scan_ip - 1 - inner.probe_ip);
  const ArgSrc* key_srcs = args_pool + inner.key_off;
  const uint64_t inner_mask = inner.mask;
  const bool inner_live = inner_rel != nullptr && !inner_rel->empty();

  // Partition filter (parallel evaluation): the outer scan is level 0;
  // the inner probe sees every row of its relation.
  const uint64_t pc = static_cast<uint64_t>(ctx->part_count);
  const uint64_t pi = static_cast<uint64_t>(ctx->part_index);
  const bool partitioned = pc > 1;

  Value key[KLen];
  for (int64_t r = 0, rows = outer_rel->size(); r < rows; ++r) {
    if (!outer_rel->live(r)) continue;  // tombstones skip before the counter
    if (partitioned && outer_rel->row_hash(r) % pc != pi) continue;
    ++probes;  // outer candidate row
    const Value* row = outer_rel->row(r).data();
    for (int i = 0; i < outer_nloads; ++i) {
      regs[outer_loads[i].b] = row[outer_loads[i].a];
    }
    ops += outer_nloads + 1;
    if (!inner_live) continue;  // inner level can never match
    for (int k = 0; k < KLen; ++k) {
      ArgSrc s = key_srcs[k];
      key[k] = IsConstSrc(s) ? consts[ConstIdx(s)] : regs[s];
    }
    Relation::Matches m = inner_rel->Probe(inner_mask, key);
    for (int32_t ir = m.row; ir >= 0; ir = m.next[ir]) {
      if (!inner_rel->live(ir)) continue;
      ++probes;  // inner candidate row
      const Value* irow = inner_rel->row(ir).data();
      for (int i = 0; i < inner_nloads; ++i) {
        regs[inner_loads[i].b] = irow[inner_loads[i].a];
      }
      ops += inner_nloads + 2;
      if (!EmitHead(&emit)) {
        r = rows;  // overflow: stop the activation
        break;
      }
    }
  }

  RuleProfile* prof = ctx->profile;
  prof->probes += probes;
  prof->firings += emit.firings;
  prof->duplicates += emit.dups;
  prof->derived += emit.derived;
  prof->ops += ops + 2;  // + the two level openers
}

}  // namespace

KernelId RunCompiled(const CompiledRule& rule, VmContext* ctx,
                     bool use_kernels) {
  KernelId kernel = use_kernels ? rule.kernel : KernelId::kGeneric;
  // scan_probe_emit relies on the inner index; without runtime indexes the
  // generic loop's scan path keeps semantics (and counters) right.
  if (kernel == KernelId::kScanProbeEmit && !ctx->use_indexes) {
    kernel = KernelId::kGeneric;
  }
  switch (kernel) {
    case KernelId::kGeneric:
      RunBytecode(rule, ctx);
      return KernelId::kGeneric;
    case KernelId::kScanFilterEmit:
      RunScanFilterEmit(rule, ctx);
      return KernelId::kScanFilterEmit;
    case KernelId::kScanProbeEmit:
      switch (rule.levels[1].key_len) {
        case 1: RunScanProbeEmit<1>(rule, ctx); break;
        case 2: RunScanProbeEmit<2>(rule, ctx); break;
        case 3: RunScanProbeEmit<3>(rule, ctx); break;
        case 4: RunScanProbeEmit<4>(rule, ctx); break;
        default:
          RunBytecode(rule, ctx);
          return KernelId::kGeneric;
      }
      return KernelId::kScanProbeEmit;
  }
  RunBytecode(rule, ctx);
  return KernelId::kGeneric;
}

}  // namespace sqod
