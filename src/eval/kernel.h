#ifndef SQOD_EVAL_KERNEL_H_
#define SQOD_EVAL_KERNEL_H_

#include "src/eval/bytecode.h"

namespace sqod {

// Specialized join kernels layered over the bytecode executor. The compiler
// (CompileRulePlan) calls SelectKernel once per plan; the evaluator calls
// RunCompiled per activation, which dispatches to the matching kernel or
// falls back to the generic dispatch loop.
//
// Selection rules (compile time, on the lowered plan):
//   scan_filter_emit  — exactly one join level and no negations: iterate the
//                       level (index probe when it has bound columns and
//                       indexes are on, scan otherwise), run the column
//                       actions and comparison filters inline, emit. Covers
//                       EDB projections/selections and iteration-0 seeding
//                       rules.
//   scan_probe_emit   — a binary join probing a fully-bound key: exactly two
//                       levels, no negations or comparisons, inner level
//                       with a non-empty probe mask and 1..4 key columns,
//                       load-only column actions on both levels (no in-atom
//                       repeated variables or constants-on-scan checks). The
//                       inner loop is a flat probe-and-emit specialized on
//                       the key width — the transitive-closure shape that
//                       dominates E2/E4. Requires runtime indexes; falls
//                       back to generic when they are off.
//   generic           — everything else: the bytecode dispatch loop.
//
// All kernels preserve the interpreter's counter semantics exactly
// (probes per candidate row, cmp_checks per comparison, firings per
// complete match, duplicates/derived at emit); only RuleProfile::ops is
// kernel-defined (executed inner-loop steps rather than dispatched ops).

// Picks the kernel for a lowered plan. Pure function of the plan.
KernelId SelectKernel(const CompiledRule& rule);

// Runs one activation through the selected kernel (or the generic loop when
// `use_kernels` is off, the plan selected kGeneric, or the kernel's runtime
// requirements — e.g. indexes — are not met). Returns the kernel that
// actually ran, for the eval/kernel_* activation counters. Callers must
// have run ResolveRelations first.
KernelId RunCompiled(const CompiledRule& rule, VmContext* ctx,
                     bool use_kernels);

}  // namespace sqod

#endif  // SQOD_EVAL_KERNEL_H_
