#include "src/eval/maintain.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "src/base/check.h"
#include "src/eval/bindings.h"
#include "src/obs/trace.h"

namespace sqod {

void MaintainStats::Accumulate(const MaintainStats& other) {
  version = other.version;
  recomputed = other.recomputed;
  edb_inserted += other.edb_inserted;
  edb_deleted += other.edb_deleted;
  idb_inserted += other.idb_inserted;
  idb_deleted += other.idb_deleted;
  over_deleted += other.over_deleted;
  rederived += other.rederived;
  count_updates += other.count_updates;
  strata_incremental += other.strata_incremental;
  strata_recomputed += other.strata_recomputed;
  strata_skipped += other.strata_skipped;
  maintain_ns += other.maintain_ns;
}

std::string MaintainStats::ToString() const {
  std::string out;
  out += "version=" + std::to_string(version);
  out += recomputed ? " mode=recompute" : " mode=incremental";
  out += " edb=+" + std::to_string(edb_inserted) + "/-" +
         std::to_string(edb_deleted);
  out += " idb=+" + std::to_string(idb_inserted) + "/-" +
         std::to_string(idb_deleted);
  out += " over_deleted=" + std::to_string(over_deleted);
  out += " rederived=" + std::to_string(rederived);
  out += " count_updates=" + std::to_string(count_updates);
  out += " strata=" + std::to_string(strata_incremental) + "i/" +
         std::to_string(strata_recomputed) + "r/" +
         std::to_string(strata_skipped) + "s";
  return out;
}

std::string MaintainStats::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "v%lld %s edb +%lld/-%lld idb +%lld/-%lld overdel %lld "
                "rederived %lld (ratio %.2f) strata %di/%dr/%ds",
                static_cast<long long>(version),
                recomputed ? "recompute" : "maintain",
                static_cast<long long>(edb_inserted),
                static_cast<long long>(edb_deleted),
                static_cast<long long>(idb_inserted),
                static_cast<long long>(idb_deleted),
                static_cast<long long>(over_deleted),
                static_cast<long long>(rederived), over_deletion_ratio(),
                strata_incremental, strata_recomputed, strata_skipped);
  return buf;
}

namespace {

// Refines Stratify's negation levels to the SCC condensation of the IDB
// dependency graph, in topological order. Stratify assigns one level per
// negation depth, so a level typically lumps independent predicates
// together — and a single same-level body reference (r(X) :- q(X,Y), ...)
// would force DRed onto the whole level. With one stratum per SCC, DRed
// stays confined to actual recursion and every non-recursive predicate
// gets the cheaper counting maintenance.
std::map<PredId, int> SccStrata(const Program& program,
                                const std::map<PredId, int>& levels) {
  std::vector<PredId> preds;
  std::map<PredId, int> index;
  for (const auto& [pred, level] : levels) {
    index[pred] = static_cast<int>(preds.size());
    preds.push_back(pred);
  }
  const int n = static_cast<int>(preds.size());
  // dep_adj: u -> heads whose rules read u (positive or negated; Stratify
  // guarantees negated edges are never cyclic). pos_adj: positive only —
  // the edges SCCs are computed over.
  std::vector<std::vector<int>> pos_adj(n), dep_adj(n);
  for (const Rule& rule : program.rules()) {
    const int head = index.at(rule.head.pred());
    for (const Literal& lit : rule.body) {
      auto it = index.find(lit.atom.pred());
      if (it == index.end()) continue;  // EDB predicate
      dep_adj[it->second].push_back(head);
      if (!lit.negated) pos_adj[it->second].push_back(head);
    }
  }

  // Kosaraju: forward DFS finish order, then reverse-graph DFS.
  std::vector<std::vector<int>> pos_radj(n);
  for (int u = 0; u < n; ++u) {
    for (int v : pos_adj[u]) pos_radj[v].push_back(u);
  }
  std::vector<int> order, comp(n, -1);
  std::vector<char> seen(n, 0);
  std::vector<std::pair<int, size_t>> stack;  // (node, next child)
  for (int s = 0; s < n; ++s) {
    if (seen[s]) continue;
    stack.emplace_back(s, 0);
    seen[s] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < pos_adj[u].size()) {
        int v = pos_adj[u][next++];
        if (!seen[v]) {
          seen[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }
  int num_comp = 0;
  for (int k = n - 1; k >= 0; --k) {
    int s = order[k];
    if (comp[s] >= 0) continue;
    std::vector<int> dfs{s};
    comp[s] = num_comp;
    while (!dfs.empty()) {
      int u = dfs.back();
      dfs.pop_back();
      for (int v : pos_radj[u]) {
        if (comp[v] < 0) {
          comp[v] = num_comp;
          dfs.push_back(v);
        }
      }
    }
    ++num_comp;
  }

  // Topological order of the condensation over all dependency edges
  // (positive and negated), deterministic via (negation level, min pred)
  // tie-breaking.
  std::vector<int> indegree(num_comp, 0);
  std::vector<std::set<int>> cadj(num_comp);
  for (int u = 0; u < n; ++u) {
    for (int v : dep_adj[u]) {
      if (comp[u] != comp[v] && cadj[comp[u]].insert(comp[v]).second) {
        ++indegree[comp[v]];
      }
    }
  }
  std::vector<std::pair<int, PredId>> rank(
      num_comp, {0, std::numeric_limits<PredId>::max()});
  for (int u = 0; u < n; ++u) {
    int c = comp[u];
    rank[c].first = std::max(rank[c].first, levels.at(preds[u]));
    rank[c].second = std::min(rank[c].second, preds[u]);
  }
  std::set<std::pair<std::pair<int, PredId>, int>> ready;
  for (int c = 0; c < num_comp; ++c) {
    if (indegree[c] == 0) ready.insert({rank[c], c});
  }
  std::map<PredId, int> out;
  int next_stratum = 0;
  while (!ready.empty()) {
    int c = ready.begin()->second;
    ready.erase(ready.begin());
    for (int u = 0; u < n; ++u) {
      if (comp[u] == c) out[preds[u]] = next_stratum;
    }
    ++next_stratum;
    for (int d : cadj[c]) {
      if (--indegree[d] == 0) ready.insert({rank[d], d});
    }
  }
  return out;
}

}  // namespace

Result<MaintenancePlan> BuildMaintenancePlan(const Program& program) {
  SQOD_RETURN_IF_ERROR(program.Validate());
  Result<std::map<PredId, int>> strata = program.Stratify();
  if (!strata.ok()) return strata.status();

  MaintenancePlan plan;
  plan.stratum_of = SccStrata(program, strata.value());
  plan.idb_preds = program.IdbPreds();

  int num_strata = 0;
  for (const auto& [pred, s] : plan.stratum_of) {
    num_strata = std::max(num_strata, s + 1);
  }
  plan.strata.resize(num_strata);

  const std::vector<Rule>& rules = program.rules();
  plan.rules.resize(rules.size());
  PlanScratch scratch;
  for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
    const Rule& rule = rules[r];
    const int stratum = plan.stratum_of.at(rule.head.pred());
    MaintenancePlan::Stratum& st = plan.strata[stratum];
    st.rules.push_back(r);
    st.heads.insert(rule.head.pred());

    MaintenancePlan::RuleMaint& rm = plan.rules[r];
    rm.rule_index = r;
    const int nbody = static_cast<int>(rule.body.size());
    rm.delta_plans.reserve(nbody);
    rm.negated.reserve(nbody);
    rm.body_pred.reserve(nbody);
    for (int i = 0; i < nbody; ++i) {
      const Literal& lit = rule.body[i];
      rm.negated.push_back(lit.negated ? 1 : 0);
      rm.body_pred.push_back(lit.atom.pred());
      st.body_preds.insert(lit.atom.pred());
      if (!lit.negated && plan.idb_preds.count(lit.atom.pred()) > 0 &&
          plan.stratum_of.at(lit.atom.pred()) == stratum) {
        st.recursive = true;
      }
      if (lit.negated) {
        // The delta of "not B" is a finite scan over the change to B:
        // flip the literal positive so BuildPlan can open the body there.
        Rule flipped = rule;
        flipped.body[i].negated = false;
        rm.delta_plans.push_back(BuildPlan(flipped, r, i, &scratch));
      } else {
        rm.delta_plans.push_back(BuildPlan(rule, r, i, &scratch));
      }
    }
    rm.support_plan = BuildPlan(rule, r, -1, &scratch, /*head_bound=*/true);
    rm.init_plan = BuildPlan(rule, r, -1, &scratch);
  }
  return plan;
}

namespace {

// Which rows of a relation a plan position sees: the current live set, the
// previous snapshot, or everything (delta relations are plain and finite).
struct MaintSource {
  const Relation* rel = nullptr;
  enum class View { kLive, kOld, kAll } view = View::kLive;
};

inline bool RowVisible(const MaintSource& src, int64_t r, int64_t old_v) {
  switch (src.view) {
    case MaintSource::View::kLive: return src.rel->live(r);
    case MaintSource::View::kOld: return src.rel->LiveAt(r, old_v);
    case MaintSource::View::kAll: return true;
  }
  return false;
}

// Recursive join over the plan steps against per-position sources, calling
// sink(head_vals, n) per complete body match. A sink sets *stop to end the
// enumeration early (support checks need one witness, not all of them).
template <typename Sink>
void RunMaintSteps(const RulePlan& plan,
                   const std::vector<MaintSource>& sources, int64_t old_v,
                   size_t step_index, Bindings* bindings, bool* stop,
                   Sink&& sink) {
  if (*stop) return;
  if (step_index == plan.steps.size()) {
    Value head[Relation::kMaxArity];
    const int n = static_cast<int>(plan.head.size());
    for (int i = 0; i < n; ++i) head[i] = ArgValue(plan.head[i], *bindings);
    sink(head, n);
    return;
  }
  const PlanStep& step = plan.steps[step_index];
  switch (step.kind) {
    case PlanStep::Kind::kComparison: {
      if (EvalCmp(ArgValue(step.lhs, *bindings), step.op,
                  ArgValue(step.rhs, *bindings))) {
        RunMaintSteps(plan, sources, old_v, step_index + 1, bindings, stop,
                      sink);
      }
      return;
    }
    case PlanStep::Kind::kNegation: {
      Value key[Relation::kMaxArity];
      const int n = static_cast<int>(step.args.size());
      for (int i = 0; i < n; ++i) key[i] = ArgValue(step.args[i], *bindings);
      const MaintSource& src = sources[step.index];
      bool present = false;
      if (src.rel != nullptr) {
        if (src.view == MaintSource::View::kOld) {
          int32_t r = src.rel->FindRow(key, n);
          present = r >= 0 && src.rel->LiveAt(r, old_v);
        } else {
          present = src.rel->Contains(key, n);
        }
      }
      if (!present) {
        RunMaintSteps(plan, sources, old_v, step_index + 1, bindings, stop,
                      sink);
      }
      return;
    }
    case PlanStep::Kind::kJoin: {
      const MaintSource& src = sources[step.index];
      const Relation* rel = src.rel;
      if (rel == nullptr || rel->empty()) return;

      uint64_t mask = 0;
      Value key[Relation::kMaxArity];
      int klen = 0;
      const int n = static_cast<int>(step.args.size());
      for (int i = 0; i < n; ++i) {
        const ArgRef& a = step.args[i];
        if (a.var < 0) {
          mask |= uint64_t{1} << i;
          key[klen++] = a.const_val;
        } else if (bindings->IsBound(a.var)) {
          mask |= uint64_t{1} << i;
          key[klen++] = bindings->Get(a.var);
        }
      }

      auto try_row = [&](int64_t r) {
        if (!RowVisible(src, r, old_v)) return;
        TupleRef row = rel->row(r);
        size_t mark = bindings->Mark();
        bool ok = true;
        for (int i = 0; i < n && ok; ++i) {
          const ArgRef& a = step.args[i];
          ok = a.var < 0 ? a.const_val == row[i]
                         : bindings->Bind(a.var, row[i]);
        }
        if (ok) {
          RunMaintSteps(plan, sources, old_v, step_index + 1, bindings, stop,
                        sink);
        }
        bindings->Restore(mark);
      };

      if (mask != 0) {
        Relation::Matches m = rel->Probe(mask, key);
        for (int32_t r = m.row; r >= 0 && !*stop; r = m.next[r]) try_row(r);
      } else {
        for (int64_t r = 0, rows = rel->size(); r < rows && !*stop; ++r) {
          try_row(r);
        }
      }
      return;
    }
  }
}

// Shared context for one ApplyDeltaToState call.
struct MaintCtx {
  const Program* program;
  const MaintenancePlan* plan;
  MaterializedState* state;
  int64_t old_v = 0;        // previous snapshot version (V - 1)
  Database dplus;           // net insertions so far, EDB + completed strata
  Database dminus;          // net deletions so far
  Bindings bindings;
  MaintainStats* stats = nullptr;

  const Relation* Rel(PredId p) const {
    return plan->idb_preds.count(p) > 0 ? state->idb.Find(p)
                                        : state->edb.Find(p);
  }
};

// How the non-delta positions of a delta plan read the state. Counting uses
// the telescoping discipline (new before the delta position, old after), so
// each changed derivation is enumerated exactly once; DRed phases read one
// consistent snapshot (old while over-deleting, new while re-inserting).
enum class OthersView { kTelescope, kAllOld, kAllLive };

template <typename Sink>
void RunDeltaPlan(MaintCtx* ctx, const MaintenancePlan::RuleMaint& rm, int i,
                  const Relation* delta_rel, OthersView others, Sink&& sink) {
  if (delta_rel == nullptr || delta_rel->empty()) return;
  const RulePlan& plan = rm.delta_plans[i];
  const int nbody = static_cast<int>(rm.body_pred.size());
  std::vector<MaintSource> sources(nbody);
  for (int j = 0; j < nbody; ++j) {
    if (j == i) {
      sources[j] = {delta_rel, MaintSource::View::kAll};
      continue;
    }
    MaintSource::View view = MaintSource::View::kLive;
    switch (others) {
      case OthersView::kTelescope:
        view = j < i ? MaintSource::View::kLive : MaintSource::View::kOld;
        break;
      case OthersView::kAllOld: view = MaintSource::View::kOld; break;
      case OthersView::kAllLive: view = MaintSource::View::kLive; break;
    }
    sources[j] = {ctx->Rel(rm.body_pred[j]), view};
  }
  bool stop = false;
  ctx->bindings.Reset(plan.num_vars);
  RunMaintSteps(plan, sources, ctx->old_v, 0, &ctx->bindings, &stop, sink);
}

// True when `t` has at least one full-body derivation of `rm`'s rule in the
// current live state. The support plan's head slots are seeded from `t`.
bool HasSupport(MaintCtx* ctx, const MaintenancePlan::RuleMaint& rm,
                const Value* t, int n) {
  const RulePlan& plan = rm.support_plan;
  if (static_cast<int>(plan.head.size()) != n) return false;
  ctx->bindings.Reset(plan.num_vars);
  for (int i = 0; i < n; ++i) {
    const ArgRef& a = plan.head[i];
    if (a.var < 0) {
      if (a.const_val != t[i]) return false;
    } else if (!ctx->bindings.Bind(a.var, t[i])) {
      return false;  // repeated head variable with conflicting values
    }
  }
  const int nbody = static_cast<int>(rm.body_pred.size());
  std::vector<MaintSource> sources(nbody);
  for (int j = 0; j < nbody; ++j) {
    sources[j] = {ctx->Rel(rm.body_pred[j]), MaintSource::View::kLive};
  }
  bool found = false;
  bool stop = false;
  RunMaintSteps(plan, sources, ctx->old_v, 0, &ctx->bindings, &stop,
                [&](const Value*, int) {
                  found = true;
                  stop = true;
                });
  return found;
}

// Per-predicate scratch accumulating signed derivation-count deltas for one
// counting stratum; net transitions apply at stratum end so mid-stratum
// enumeration never sees half-applied version stamps.
struct CountScratch {
  struct Entry {
    Relation rel;
    std::vector<int64_t> deltas;
    explicit Entry(int arity) : rel(arity) {}
  };
  std::map<PredId, Entry> preds;

  void Add(PredId pred, const Value* vals, int n, int64_t d) {
    auto it = preds.find(pred);
    if (it == preds.end()) it = preds.emplace(pred, Entry(n)).first;
    Entry& e = it->second;
    int32_t r = e.rel.FindRow(vals, n);
    if (r < 0) {
      e.rel.Insert(vals, n);
      r = static_cast<int32_t>(e.rel.size()) - 1;
      e.deltas.push_back(0);
    }
    e.deltas[r] += d;
  }
};

// Counting maintenance for one non-recursive stratum: accumulate signed
// count deltas from every (rule, position, sign) delta join, then apply the
// net transitions and append this stratum's output deltas to the global
// change sets.
void MaintainCountingStratum(MaintCtx* ctx,
                             const MaintenancePlan::Stratum& stratum) {
  CountScratch scratch;
  for (int r : stratum.rules) {
    const MaintenancePlan::RuleMaint& rm = ctx->plan->rules[r];
    const int nbody = static_cast<int>(rm.body_pred.size());
    for (int i = 0; i < nbody; ++i) {
      PredId p = rm.body_pred[i];
      // Gained derivations: tuples added to a positive subgoal, or removed
      // from a negated one. Lost derivations: the mirror image.
      const Relation* gain =
          rm.negated[i] ? ctx->dminus.Find(p) : ctx->dplus.Find(p);
      const Relation* lose =
          rm.negated[i] ? ctx->dplus.Find(p) : ctx->dminus.Find(p);
      PredId head = rm.delta_plans[i].head_pred;
      RunDeltaPlan(ctx, rm, i, gain, OthersView::kTelescope,
                   [&](const Value* vals, int n) {
                     scratch.Add(head, vals, n, +1);
                   });
      RunDeltaPlan(ctx, rm, i, lose, OthersView::kTelescope,
                   [&](const Value* vals, int n) {
                     scratch.Add(head, vals, n, -1);
                   });
    }
  }

  for (auto& [pred, entry] : scratch.preds) {
    Relation* rel = ctx->state->idb.FindOrCreate(pred, entry.rel.arity());
    rel->EnableCounts();
    const int32_t rows = static_cast<int32_t>(entry.rel.size());
    for (int32_t sr = 0; sr < rows; ++sr) {
      const int64_t dv = entry.deltas[sr];
      if (dv == 0) continue;
      ++ctx->stats->count_updates;
      TupleRef t = entry.rel.row(sr);
      int32_t row = rel->FindRow(t.data(), t.size());
      if (row < 0) {
        SQOD_CHECK_MSG(dv > 0, "negative count for an absent tuple");
        rel->Insert(t);  // stamps added = V
        row = rel->FindRow(t.data(), t.size());
        rel->set_count(row, dv);
        ctx->dplus.Insert(pred, t);
        ++ctx->stats->idb_inserted;
        continue;
      }
      const int64_t c = rel->count(row) + dv;
      SQOD_CHECK_MSG(c >= 0, "derivation count went negative");
      rel->set_count(row, c);
      const bool was = rel->live(row);
      const bool now = c > 0;
      if (was && !now) {
        rel->EraseRow(row);
        ctx->dminus.Insert(pred, t);
        ++ctx->stats->idb_deleted;
      } else if (!was && now) {
        rel->ReviveRow(row);
        ctx->dplus.Insert(pred, t);
        ++ctx->stats->idb_inserted;
      }
    }
  }
}

// DRed maintenance for one recursive stratum: over-delete everything
// reachable from a deletion against the old snapshot, rescue over-deleted
// tuples that still have support, then propagate insertions (and rescues)
// semi-naively against the live state. Output deltas are classified from
// the version stamps of every touched row at the end.
void MaintainDredStratum(MaintCtx* ctx,
                         const MaintenancePlan::Stratum& stratum) {
  MaterializedState* state = ctx->state;
  const int64_t v = state->version;
  std::vector<std::pair<PredId, int32_t>> touched;

  // Tombstones a derived head during over-deletion. Rows that were already
  // dead (before the batch, or from an earlier over-deletion) are skipped.
  Database over_new;
  auto over_delete = [&](const Value* vals, int n, PredId pred) {
    Relation* rel = state->idb.FindOrCreate(pred, n);
    int32_t row = rel->FindRow(vals, n);
    if (row < 0 || !rel->live(row)) return;
    rel->EraseRow(row);
    touched.emplace_back(pred, row);
    over_new.Insert(pred, vals, n);
    ++ctx->stats->over_deleted;
  };

  // Phase 1: over-delete. Seeds come from the global change sets (EDB and
  // lower strata); the worklist then closes over same-stratum derivations,
  // all against the old snapshot.
  for (int r : stratum.rules) {
    const MaintenancePlan::RuleMaint& rm = ctx->plan->rules[r];
    const int nbody = static_cast<int>(rm.body_pred.size());
    for (int i = 0; i < nbody; ++i) {
      PredId p = rm.body_pred[i];
      const Relation* lose =
          rm.negated[i] ? ctx->dplus.Find(p) : ctx->dminus.Find(p);
      PredId head = rm.delta_plans[i].head_pred;
      RunDeltaPlan(ctx, rm, i, lose, OthersView::kAllOld,
                   [&](const Value* vals, int n) {
                     over_delete(vals, n, head);
                   });
    }
  }
  while (over_new.TotalTuples() > 0) {
    Database over_cur = std::move(over_new);
    over_new = Database();
    for (int r : stratum.rules) {
      const MaintenancePlan::RuleMaint& rm = ctx->plan->rules[r];
      const int nbody = static_cast<int>(rm.body_pred.size());
      for (int i = 0; i < nbody; ++i) {
        if (rm.negated[i] || stratum.heads.count(rm.body_pred[i]) == 0) {
          continue;
        }
        const Relation* drel = over_cur.Find(rm.body_pred[i]);
        PredId head = rm.delta_plans[i].head_pred;
        RunDeltaPlan(ctx, rm, i, drel, OthersView::kAllOld,
                     [&](const Value* vals, int n) {
                       over_delete(vals, n, head);
                     });
      }
    }
  }

  // Makes a head live during rederivation/insertion and queues it for
  // same-stratum propagation. A row tombstoned by this very batch is
  // undeleted (net unchanged — its original added-version is preserved);
  // anything else becomes an insertion stamped at V.
  Database newly;
  auto process_up = [&](const Value* vals, int n, PredId pred) {
    Relation* rel = state->idb.FindOrCreate(pred, n);
    int32_t row = rel->FindRow(vals, n);
    if (row >= 0 && rel->live(row)) return;
    if (row < 0) {
      rel->Insert(vals, n);  // stamps added = V
      row = rel->FindRow(vals, n);
    } else if (rel->deleted_version(row) == v) {
      rel->UndeleteRow(row);
      ++ctx->stats->rederived;
    } else {
      rel->ReviveRow(row);
    }
    touched.emplace_back(pred, row);
    newly.Insert(pred, vals, n);
  };

  // Phase 2: rederive. Each over-deleted tuple that still has a full-body
  // witness in the live state comes back with its identity intact.
  const size_t num_over = touched.size();
  for (size_t k = 0; k < num_over; ++k) {
    auto [pred, row] = touched[k];
    Relation* rel = state->idb.FindOrCreate(
        pred, ctx->state->idb.Find(pred)->arity());
    if (rel->live(row)) continue;  // already rescued
    TupleRef t = rel->row(row);
    Value vals[Relation::kMaxArity];
    const int n = t.size();
    for (int i = 0; i < n; ++i) vals[i] = t[i];
    for (int r : stratum.rules) {
      const MaintenancePlan::RuleMaint& rm = ctx->plan->rules[r];
      if (rm.support_plan.head_pred != pred) continue;
      if (HasSupport(ctx, rm, vals, n)) {
        rel->UndeleteRow(row);
        ++ctx->stats->rederived;
        newly.Insert(pred, vals, n);
        break;
      }
    }
  }

  // Inserting a derived head can reallocate the very relation the delta
  // join is scanning (a recursive rule reads its own head predicate), so
  // the insertion phases buffer the derived tuples and make them live only
  // after the scan finishes; the worklist picks them up for propagation.
  std::vector<Tuple> derived;
  auto run_buffered = [&](const MaintenancePlan::RuleMaint& rm, int i,
                          const Relation* drel) {
    derived.clear();
    RunDeltaPlan(ctx, rm, i, drel, OthersView::kAllLive,
                 [&](const Value* vals, int n) {
                   derived.emplace_back(vals, vals + n);
                 });
    PredId head = rm.delta_plans[i].head_pred;
    for (const Tuple& t : derived) {
      process_up(t.data(), static_cast<int>(t.size()), head);
    }
  };

  // Phase 3: insertion seeds from the global change sets.
  for (int r : stratum.rules) {
    const MaintenancePlan::RuleMaint& rm = ctx->plan->rules[r];
    const int nbody = static_cast<int>(rm.body_pred.size());
    for (int i = 0; i < nbody; ++i) {
      PredId p = rm.body_pred[i];
      const Relation* gain =
          rm.negated[i] ? ctx->dminus.Find(p) : ctx->dplus.Find(p);
      run_buffered(rm, i, gain);
    }
  }

  // Phase 4: propagate every newly-live tuple (rescues and insertions
  // alike) through the same-stratum positions until the worklist drains.
  while (newly.TotalTuples() > 0) {
    Database cur = std::move(newly);
    newly = Database();
    for (int r : stratum.rules) {
      const MaintenancePlan::RuleMaint& rm = ctx->plan->rules[r];
      const int nbody = static_cast<int>(rm.body_pred.size());
      for (int i = 0; i < nbody; ++i) {
        if (rm.negated[i] || stratum.heads.count(rm.body_pred[i]) == 0) {
          continue;
        }
        run_buffered(rm, i, cur.Find(rm.body_pred[i]));
      }
    }
  }

  // Classify the net effect of every touched row from its version stamps.
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (auto [pred, row] : touched) {
    const Relation* rel = state->idb.Find(pred);
    if (rel->live(row)) {
      if (rel->added_version(row) == v) {
        ctx->dplus.Insert(pred, rel->row(row));
        ++ctx->stats->idb_inserted;
      }
    } else if (rel->deleted_version(row) == v) {
      ctx->dminus.Insert(pred, rel->row(row));
      ++ctx->stats->idb_deleted;
    }
  }
}

// Validates and nets the batch without mutating anything. On return dplus /
// dminus hold the effective EDB change (dedup'd, no-ops dropped).
Status NetBatch(const MaintenancePlan& plan, const FactDelta& delta,
                const MaterializedState& state, Database* dplus,
                Database* dminus) {
  auto validate = [&](const Atom& a) -> Status {
    if (!a.is_ground()) {
      return Status::InvalidArgument("delta fact is not ground: " +
                                     a.ToString());
    }
    if (a.arity() > Relation::kMaxArity) {
      return Status::InvalidArgument("delta fact arity exceeds " +
                                     std::to_string(Relation::kMaxArity));
    }
    if (plan.idb_preds.count(a.pred()) > 0) {
      return Status::InvalidArgument(
          "cannot apply a delta to derived predicate " + PredName(a.pred()));
    }
    const Relation* rel = state.edb.Find(a.pred());
    if (rel != nullptr && rel->arity() != a.arity()) {
      return Status::InvalidArgument("arity mismatch for " +
                                     PredName(a.pred()) + ": " +
                                     a.ToString());
    }
    return Status::Ok();
  };
  for (const Atom& a : delta.inserts) SQOD_RETURN_IF_ERROR(validate(a));
  for (const Atom& a : delta.deletes) SQOD_RETURN_IF_ERROR(validate(a));

  // Deletes apply before inserts: a tuple in both stays present. Dedup
  // through plain staging databases, then keep only effective changes.
  Database ins, del;
  for (const Atom& a : delta.inserts) ins.InsertAtom(a);
  for (const Atom& a : delta.deletes) del.InsertAtom(a);
  for (const auto& [pred, rel] : del.relations()) {
    const Relation* ins_rel = ins.Find(pred);
    const Relation* cur = state.edb.Find(pred);
    for (TupleRef t : rel.rows()) {
      if (ins_rel != nullptr && ins_rel->Contains(t.data(), t.size())) {
        continue;  // delete + insert = no net change
      }
      if (cur != nullptr && cur->Contains(t.data(), t.size())) {
        dminus->Insert(pred, t);
      }
    }
  }
  for (const auto& [pred, rel] : ins.relations()) {
    const Relation* cur = state.edb.Find(pred);
    for (TupleRef t : rel.rows()) {
      if (cur == nullptr || !cur->Contains(t.data(), t.size())) {
        dplus->Insert(pred, t);
      }
    }
  }
  return Status::Ok();
}

// Full-fixpoint fallback: evaluate the program over the (already stamped)
// new EDB and diff the fresh IDB against the materialized one, stamping
// transitions at the current version. Counts are rebuilt from scratch.
Status RecomputeState(const Program& program, const MaintenancePlan& plan,
                      const EvalOptions& eval, MaterializedState* state,
                      MaintainStats* stats) {
  Evaluator evaluator(program, eval);
  Result<Database> fresh = evaluator.Evaluate(state->edb);
  if (!fresh.ok()) return fresh.status();
  const int64_t v = state->version;

  for (const auto& [pred, frel] : fresh.value().relations()) {
    Relation* rel = state->idb.FindOrCreate(pred, frel.arity());
    for (TupleRef t : frel.rows()) {
      int32_t row = rel->FindRow(t.data(), t.size());
      if (row >= 0 && rel->live(row)) continue;
      if (row < 0) {
        rel->Insert(t);
      } else {
        rel->ReviveRow(row);
      }
      ++stats->idb_inserted;
    }
  }
  for (auto& [pred, rel] : *state->idb.mutable_relations()) {
    const Relation* frel = fresh.value().Find(pred);
    const int32_t rows = static_cast<int32_t>(rel.size());
    for (int32_t r = 0; r < rows; ++r) {
      if (!rel.live(r) || rel.added_version(r) == v) continue;
      TupleRef t = rel.row(r);
      if (frel == nullptr || !frel->Contains(t.data(), t.size())) {
        rel.EraseRow(r);
        ++stats->idb_deleted;
      }
    }
  }

  InitializeDerivationCounts(program, plan, state);
  for (const MaintenancePlan::Stratum& st : plan.strata) {
    if (!st.rules.empty()) ++stats->strata_recomputed;
  }
  stats->recomputed = true;
  return Status::Ok();
}

}  // namespace

void InitializeDerivationCounts(const Program& program,
                                const MaintenancePlan& plan,
                                MaterializedState* state) {
  MaintCtx ctx;
  ctx.program = &program;
  ctx.plan = &plan;
  ctx.state = state;
  ctx.old_v = state->version;

  for (const MaintenancePlan::Stratum& st : plan.strata) {
    if (st.recursive || st.rules.empty()) continue;
    for (PredId pred : st.heads) {
      const int arity = program.Arity(pred);
      Relation* rel = state->idb.FindOrCreate(pred, arity);
      rel->EnableCounts();
      rel->ResetCounts();
    }
    for (int r : st.rules) {
      const MaintenancePlan::RuleMaint& rm = plan.rules[r];
      const RulePlan& ip = rm.init_plan;
      const int nbody = static_cast<int>(rm.body_pred.size());
      std::vector<MaintSource> sources(nbody);
      for (int j = 0; j < nbody; ++j) {
        sources[j] = {ctx.Rel(rm.body_pred[j]), MaintSource::View::kLive};
      }
      Relation* rel = state->idb.FindOrCreate(
          ip.head_pred, static_cast<int>(ip.head.size()));
      bool stop = false;
      ctx.bindings.Reset(ip.num_vars);
      RunMaintSteps(ip, sources, ctx.old_v, 0, &ctx.bindings, &stop,
                    [&](const Value* vals, int n) {
                      int32_t row = rel->FindRow(vals, n);
                      SQOD_CHECK_MSG(row >= 0 && rel->live(row),
                                     "count init found a derivation for a "
                                     "tuple missing from the fixpoint");
                      rel->add_count(row, 1);
                    });
    }
  }
}

Result<MaintainStats> ApplyDeltaToState(const Program& program,
                                        const MaintenancePlan& plan,
                                        const FactDelta& delta,
                                        const ApplyDeltaOptions& options,
                                        MaterializedState* state) {
  const int64_t t0 = NowNs();
  MaintainStats stats;
  stats.version = state->version;

  MaintCtx ctx;
  ctx.program = &program;
  ctx.plan = &plan;
  ctx.state = state;
  ctx.stats = &stats;

  SQOD_RETURN_IF_ERROR(
      NetBatch(plan, delta, *state, &ctx.dplus, &ctx.dminus));
  const int64_t net_plus = ctx.dplus.TotalTuples();
  const int64_t net_minus = ctx.dminus.TotalTuples();
  if (net_plus + net_minus == 0) {
    stats.strata_skipped = static_cast<int>(plan.strata.size());
    stats.maintain_ns = NowNs() - t0;
    return stats;  // no effective change; version unchanged
  }
  const int64_t edb_live = state->edb.TotalTuples();
  const bool recompute =
      options.force_recompute ||
      static_cast<double>(net_plus + net_minus) >
          options.recompute_fraction * static_cast<double>(
                                           std::max<int64_t>(1, edb_live));

  // Advance the snapshot: every transition below stamps with V, the old
  // snapshot stays readable as LiveAt(row, V - 1).
  const int64_t v = state->version + 1;
  state->version = v;
  state->edb.SetVersion(v);
  state->idb.SetVersion(v);
  ctx.old_v = v - 1;
  stats.version = v;

  for (const auto& [pred, rel] : ctx.dminus.relations()) {
    for (TupleRef t : rel.rows()) {
      SQOD_CHECK(state->edb.Erase(pred, t.data(), t.size()));
      ++stats.edb_deleted;
    }
  }
  for (const auto& [pred, rel] : ctx.dplus.relations()) {
    Relation* target = state->edb.FindOrCreate(pred, rel.arity());
    for (TupleRef t : rel.rows()) {
      SQOD_CHECK(target->Insert(t));
      ++stats.edb_inserted;
    }
  }

  if (recompute) {
    SQOD_RETURN_IF_ERROR(
        RecomputeState(program, plan, options.eval, state, &stats));
    stats.maintain_ns = NowNs() - t0;
    return stats;
  }

  for (const MaintenancePlan::Stratum& stratum : plan.strata) {
    if (stratum.rules.empty()) continue;
    bool affected = false;
    for (PredId p : stratum.body_preds) {
      const Relation* dp = ctx.dplus.Find(p);
      const Relation* dm = ctx.dminus.Find(p);
      if ((dp != nullptr && !dp->empty()) ||
          (dm != nullptr && !dm->empty())) {
        affected = true;
        break;
      }
    }
    if (!affected) {
      ++stats.strata_skipped;
      continue;
    }
    if (stratum.recursive) {
      MaintainDredStratum(&ctx, stratum);
    } else {
      MaintainCountingStratum(&ctx, stratum);
    }
    ++stats.strata_incremental;
  }

  stats.maintain_ns = NowNs() - t0;
  return stats;
}

}  // namespace sqod
