#ifndef SQOD_EVAL_MAINTAIN_H_
#define SQOD_EVAL_MAINTAIN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"
#include "src/eval/database.h"
#include "src/eval/evaluator.h"
#include "src/eval/plan.h"

namespace sqod {

// Incremental view maintenance (see docs/ivm.md).
//
// A materialized view keeps the full IDB warm between requests. When the
// EDB changes by a small delta, re-deriving everything from scratch wastes
// work proportional to the database; this layer propagates just the change,
// reusing the semi-naive delta plans:
//
//  * Non-recursive strata use counting: every IDB tuple carries its number
//    of distinct derivations. A delta join with the changed subgoal at
//    position i, positions < i against the new state and positions > i
//    against the old state enumerates each gained/lost derivation exactly
//    once; a tuple dies when its count reaches zero. Negated subgoals flip
//    the sign (facts removed from B create derivations through "not B").
//
//  * Recursive strata use DRed (delete-and-rederive): over-delete
//    everything transitively derivable from a deleted tuple, rederive
//    over-deleted tuples that still have an alternative derivation, then
//    propagate insertions semi-naively. Counting is unsound under recursion
//    (a tuple can support itself through a cycle), DRed is not.
//
// Old and new states coexist in one versioned Database: applying batch
// version V stamps every transition with V, so "old" is LiveAt(row, V-1)
// and "new" is live(row). No relation is copied.

// A batch of EDB fact changes. Deletes apply before inserts: a tuple
// present in both stays present and counts as unchanged. Deleting an
// absent tuple or inserting a present one is a no-op, not an error.
struct FactDelta {
  std::vector<Atom> inserts;
  std::vector<Atom> deletes;
  bool empty() const { return inserts.empty() && deletes.empty(); }
};

// Per-batch maintenance statistics, surfaced through EXPLAIN/ANALYZE, the
// slow-query log, and the E12 benchmark.
struct MaintainStats {
  int64_t version = 0;          // snapshot version this batch produced
  bool recomputed = false;      // fell back to a full fixpoint recompute
  int64_t edb_inserted = 0;     // net EDB tuples inserted
  int64_t edb_deleted = 0;      // net EDB tuples deleted
  int64_t idb_inserted = 0;     // IDB tuples that became live
  int64_t idb_deleted = 0;      // IDB tuples that died
  int64_t over_deleted = 0;     // DRed: tuples tentatively deleted
  int64_t rederived = 0;        // DRed: over-deleted tuples rescued
  int64_t count_updates = 0;    // counting strata: derivation-count changes
  int strata_incremental = 0;   // strata maintained by counting/DRed
  int strata_recomputed = 0;    // strata recomputed from scratch
  int strata_skipped = 0;       // strata untouched by the batch
  int64_t maintain_ns = 0;

  // Fraction of tentative DRed deletions that were rescued: wasted
  // over-deletion work. 0 when DRed never ran.
  double over_deletion_ratio() const {
    return over_deleted == 0 ? 0.0
                             : double(rederived) / double(over_deleted);
  }

  // Folds another batch's stats into this one (version/recomputed keep the
  // most recent batch's values). Used for multi-batch totals.
  void Accumulate(const MaintainStats& other);

  std::string ToString() const;
  // One line for the slow-query log / CLI batch output.
  std::string Summary() const;
};

// The static maintenance plan for one program: stratification, per-rule
// delta/support/init plans, and the predicate indexes used to skip
// untouched strata. Built once per materialized view; immutable afterwards.
struct MaintenancePlan {
  // Per program rule, plans for every way a delta can enter its body.
  struct RuleMaint {
    int rule_index = -1;
    // Parallel to rule.body. delta_plans[i] evaluates the body with the
    // delta at position i (a negated literal is flipped positive there: the
    // delta of "not B" is a scan over the finite change to B).
    std::vector<RulePlan> delta_plans;
    std::vector<uint8_t> negated;   // rule.body[i].negated
    std::vector<PredId> body_pred;  // rule.body[i].atom.pred()
    // Full-body plan ordered as if the head were bound; DRed support
    // checks seed it with a candidate tuple.
    RulePlan support_plan;
    // Full-body plan for count initialization (counting strata only).
    RulePlan init_plan;
  };

  struct Stratum {
    std::vector<int> rules;     // program rule indices
    bool recursive = false;     // has a same-stratum positive body pred
    std::set<PredId> heads;
    std::set<PredId> body_preds;  // positive and negated, all strata
  };

  std::vector<Stratum> strata;
  std::vector<RuleMaint> rules;     // indexed by program rule index
  std::set<PredId> idb_preds;
  std::map<PredId, int> stratum_of;  // IDB pred -> stratum index
};

Result<MaintenancePlan> BuildMaintenancePlan(const Program& program);

// The warm state a MaterializedView maintains: the versioned EDB, the
// materialized (versioned, counted) IDB, and the snapshot version both are
// currently stamped at. Invariant between batches: idb is exactly the
// fixpoint of the program over edb's live tuples, and every live tuple of a
// counting-stratum predicate carries its exact derivation count.
struct MaterializedState {
  Database edb;
  Database idb;
  int64_t version = 0;
};

// Computes exact derivation counts for every counting-stratum (i.e.
// non-recursive) predicate of `plan` by enumerating all rule matches over
// the current state. Called once at materialization and again after a
// recompute fallback.
void InitializeDerivationCounts(const Program& program,
                                const MaintenancePlan& plan,
                                MaterializedState* state);

struct ApplyDeltaOptions {
  // Evaluation options for the recompute fallback (and nothing else; the
  // incremental path does not run the Evaluator).
  EvalOptions eval;
  // Recompute from scratch when the net EDB change exceeds this fraction
  // of the live EDB (incremental maintenance stops paying off well before
  // the delta approaches the database size).
  double recompute_fraction = 0.25;
  // Always recompute (benchmark baseline / escape hatch).
  bool force_recompute = false;
};

// Applies one batch: nets `delta` against the EDB, bumps the version, and
// brings the IDB to the fixpoint of the new EDB — incrementally per
// stratum (counting or DRed), or via the recompute fallback. On success
// state->version advanced by one and the returned stats describe the work;
// an empty net batch returns immediately without a version bump. Errors
// (non-ground atoms, arity mismatches, IDB predicates in the delta) leave
// the state untouched.
Result<MaintainStats> ApplyDeltaToState(const Program& program,
                                        const MaintenancePlan& plan,
                                        const FactDelta& delta,
                                        const ApplyDeltaOptions& options,
                                        MaterializedState* state);

}  // namespace sqod

#endif  // SQOD_EVAL_MAINTAIN_H_
