#include "src/eval/plan.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/eval/relation.h"

namespace sqod {

RulePlan BuildPlan(const Rule& rule, int rule_index, int first,
                   PlanScratch* scratch, bool head_bound) {
  RulePlan plan;
  plan.rule_index = rule_index;
  plan.delta_subgoal = first;

  PlanScratch local;
  PlanScratch& s = scratch != nullptr ? *scratch : local;

  // Dense renumbering of the rule's variables (order of Rule::Vars), so
  // boundness during step ordering is one byte per variable instead of a
  // std::set probe per candidate per round.
  s.var_index.clear();
  for (VarId v : rule.Vars()) {
    s.var_index.emplace(v, static_cast<int32_t>(s.var_index.size()));
  }
  s.bound.assign(s.var_index.size(), 0);
  if (head_bound) {
    s.vars.clear();
    rule.head.CollectVars(&s.vars);
    for (VarId v : s.vars) s.bound[s.var_index.at(v)] = 1;
  }

  std::vector<bool> done_body(rule.body.size(), false);
  std::vector<bool> done_cmp(rule.comparisons.size(), false);

  auto vars_bound = [&](const std::vector<VarId>& vars) {
    return std::all_of(vars.begin(), vars.end(), [&](VarId v) {
      return s.bound[s.var_index.at(v)] != 0;
    });
  };

  auto emit_ready_filters = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < rule.comparisons.size(); ++i) {
        if (done_cmp[i]) continue;
        s.vars.clear();
        rule.comparisons[i].CollectVars(&s.vars);
        if (vars_bound(s.vars)) {
          plan.steps.push_back(
              {PlanStep::Kind::kComparison, static_cast<int>(i)});
          done_cmp[i] = true;
          progress = true;
        }
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done_body[i] || !rule.body[i].negated) continue;
        s.vars.clear();
        rule.body[i].atom.CollectVars(&s.vars);
        if (vars_bound(s.vars)) {
          plan.steps.push_back({PlanStep::Kind::kNegation, static_cast<int>(i)});
          done_body[i] = true;
          progress = true;
        }
      }
    }
  };

  auto emit_join = [&](int i) {
    plan.steps.push_back({PlanStep::Kind::kJoin, i});
    done_body[i] = true;
    s.vars.clear();
    rule.body[i].atom.CollectVars(&s.vars);
    for (VarId v : s.vars) s.bound[s.var_index.at(v)] = 1;
  };

  emit_ready_filters();  // ground comparisons, if any
  if (first >= 0) {
    SQOD_CHECK(!rule.body[first].negated);
    emit_join(first);
    emit_ready_filters();
  }
  for (;;) {
    // Pick the positive subgoal with the most bound argument positions —
    // more bound keys means a narrower index probe. Ties break toward the
    // fewest unbound positions: with equal probe selectivity, the subgoal
    // introducing fewer free variables grows the binding set least, so the
    // joins downstream of it scan smaller intermediates. (Equal on both
    // counts keeps body order, preserving pre-refinement plans.)
    int best = -1;
    int best_score = -1;
    int best_unbound = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (done_body[i] || rule.body[i].negated) continue;
      const Atom& a = rule.body[i].atom;
      int score = 0;
      for (const Term& t : a.args()) {
        if (t.is_const() || s.bound[s.var_index.at(t.var())] != 0) ++score;
      }
      const int unbound = static_cast<int>(a.args().size()) - score;
      if (score > best_score ||
          (score == best_score && unbound < best_unbound)) {
        best_score = score;
        best_unbound = unbound;
        best = static_cast<int>(i);
      }
    }
    if (best == -1) break;
    emit_join(best);
    emit_ready_filters();
  }
  // Safety guarantees every negation and comparison was emitted.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    SQOD_CHECK_MSG(done_body[i] || !rule.body[i].negated,
                   rule.ToString().c_str());
    SQOD_CHECK_MSG(done_body[i], rule.ToString().c_str());
  }
  for (size_t i = 0; i < rule.comparisons.size(); ++i) {
    SQOD_CHECK_MSG(done_cmp[i], rule.ToString().c_str());
  }

  // Compile: renumber the rule's variables densely (order of first
  // appearance along the plan) and pre-resolve every argument to an ArgRef,
  // so the join loops never walk AST terms or hash global VarIds.
  s.slots.clear();
  auto compile_term = [&](const Term& t) {
    ArgRef a;
    if (t.is_const()) {
      a.const_val = t.value();
      return a;
    }
    auto [it, unused] =
        s.slots.emplace(t.var(), static_cast<int32_t>(s.slots.size()));
    a.var = it->second;
    return a;
  };
  for (PlanStep& step : plan.steps) {
    if (step.kind == PlanStep::Kind::kComparison) {
      const Comparison& c = rule.comparisons[step.index];
      step.lhs = compile_term(c.lhs);
      step.rhs = compile_term(c.rhs);
      step.op = c.op;
    } else {
      const Atom& a = rule.body[step.index].atom;
      SQOD_CHECK_MSG(a.arity() <= Relation::kMaxArity, a.ToString().c_str());
      step.pred = a.pred();
      step.args.reserve(a.args().size());
      for (const Term& t : a.args()) step.args.push_back(compile_term(t));
    }
  }
  const size_t body_vars = s.slots.size();
  plan.head_pred = rule.head.pred();
  SQOD_CHECK_MSG(rule.head.arity() <= Relation::kMaxArity,
                 rule.head.ToString().c_str());
  plan.head.reserve(rule.head.args().size());
  for (const Term& t : rule.head.args()) plan.head.push_back(compile_term(t));
  // Safety: every head variable occurs in the body, so compiling the head
  // introduced no new slots (an unbound slot would leak garbage values).
  SQOD_CHECK_MSG(s.slots.size() == body_vars, rule.ToString().c_str());
  plan.num_vars = static_cast<int>(s.slots.size());
  return plan;
}

}  // namespace sqod
