#ifndef SQOD_EVAL_PLAN_H_
#define SQOD_EVAL_PLAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/ast/rule.h"
#include "src/base/value.h"

namespace sqod {

// The rule-plan layer shared by the interpreting evaluator
// (src/eval/evaluator.cc) and the bytecode compiler (src/eval/bytecode.cc):
// BuildPlan picks the body evaluation order for one (rule, delta-subgoal)
// combination and pre-resolves every argument, producing a RulePlan that
// downstream consumers either interpret step by step or lower further into
// flat register bytecode.

// A compiled atom argument: either an inline constant (var < 0) or a
// rule-local variable slot.
struct ArgRef {
  Value const_val;
  int32_t var = -1;
};

// One compiled step of a rule-evaluation plan. Arguments are pre-resolved
// to ArgRefs so the join inner loop touches no AST nodes.
struct PlanStep {
  enum class Kind { kJoin, kNegation, kComparison };
  Kind kind;
  int index;  // into rule.body (kJoin / kNegation) or rule.comparisons
  PredId pred = -1;          // kJoin / kNegation
  std::vector<ArgRef> args;  // kJoin / kNegation
  ArgRef lhs, rhs;           // kComparison
  CmpOp op = CmpOp::kEq;     // kComparison
};

// The precompiled plan for one (rule, delta-subgoal) combination: the order
// in which body elements are evaluated. Comparisons and negations are placed
// at the earliest point where all their variables are bound.
struct RulePlan {
  int rule_index;
  // Index (into rule.body) of the positive subgoal that reads the delta
  // relation, or -1 for "all subgoals read their full relation".
  int delta_subgoal;
  int num_vars = 0;  // distinct variables of the rule, renumbered 0..n-1
  PredId head_pred = -1;
  std::vector<ArgRef> head;
  std::vector<PlanStep> steps;
};

// Reusable scratch for BuildPlan. One instance amortizes the per-call
// allocations (the variable-index map, the boundness bitmap, and the
// CollectVars buffer) across every plan built in a loop — the per-candidate
// per-round allocation churn of the old std::set-based boundness check is
// gone either way.
struct PlanScratch {
  std::unordered_map<VarId, int32_t> var_index;  // global VarId -> dense id
  std::vector<uint8_t> bound;                    // dense boundness bitmap
  std::vector<VarId> vars;                       // CollectVars target
  std::unordered_map<VarId, int32_t> slots;      // plan-order renumbering
};

// Builds the evaluation order for a rule. `first` (if >= 0) is the body
// index of the positive subgoal to evaluate first (the delta subgoal).
// `scratch` (optional) carries reusable buffers across calls.
//
// `head_bound` orders the body as if every head variable were already
// bound (the caller pre-binds plan.head's slots before running the steps).
// Used by the maintenance layer's DRed support checks, which ask "is this
// specific head tuple still derivable" — with the head seeded, the greedy
// most-bound order starts from atoms sharing head variables instead of a
// blind scan.
RulePlan BuildPlan(const Rule& rule, int rule_index, int first,
                   PlanScratch* scratch = nullptr, bool head_bound = false);

}  // namespace sqod

#endif  // SQOD_EVAL_PLAN_H_
