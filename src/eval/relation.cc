#include "src/eval/relation.h"

#include "src/base/check.h"

namespace sqod {

bool Relation::Insert(const Tuple& t) {
  SQOD_CHECK(static_cast<int>(t.size()) == arity_);
  auto [it, inserted] = dedup_.insert(t);
  if (!inserted) return false;
  int row = static_cast<int>(rows_.size());
  rows_.push_back(t);
  for (auto& [mask, index] : indexes_) {
    index[KeyFor(t, mask)].push_back(row);
  }
  return true;
}

Tuple Relation::KeyFor(const Tuple& row, uint64_t mask) const {
  Tuple key;
  for (int i = 0; i < arity_; ++i) {
    if (mask & (uint64_t{1} << i)) key.push_back(row[i]);
  }
  return key;
}

const std::vector<int>* Relation::Probe(uint64_t mask, const Tuple& key) const {
  auto it = indexes_.find(mask);
  if (it == indexes_.end()) {
    Index index;
    for (int row = 0; row < static_cast<int>(rows_.size()); ++row) {
      index[KeyFor(rows_[row], mask)].push_back(row);
    }
    it = indexes_.emplace(mask, std::move(index)).first;
  }
  auto hit = it->second.find(key);
  return hit == it->second.end() ? nullptr : &hit->second;
}

void Relation::Clear() {
  rows_.clear();
  dedup_.clear();
  indexes_.clear();
}

}  // namespace sqod
