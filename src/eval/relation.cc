#include "src/eval/relation.h"

#include <bit>

#include "src/base/check.h"

namespace sqod {

namespace {

// Open-addressing tables grow at 3/4 load.
inline bool NeedsGrow(int64_t occupied, size_t capacity) {
  return capacity == 0 ||
         (occupied + 1) * 4 > static_cast<int64_t>(capacity) * 3;
}

constexpr int32_t kEmptySlot = -1;

}  // namespace

Relation::Relation(int arity) : arity_(arity) {
  SQOD_CHECK_MSG(arity >= 0 && arity <= kMaxArity,
                 "relation arity must be in [0, 64]: uint64_t column masks "
                 "cannot address more columns");
}

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      num_rows_(other.num_rows_),
      num_dead_(other.num_dead_),
      arena_(other.arena_),
      row_hashes_(other.row_hashes_),
      dedup_slots_(other.dedup_slots_),
      indexes_(other.indexes_),
      versioned_(other.versioned_),
      version_(other.version_),
      added_(other.added_),
      deleted_(other.deleted_),
      counts_enabled_(other.counts_enabled_),
      counts_(other.counts_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  SQOD_CHECK_MSG(!frozen_, "cannot assign over a frozen relation");
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  num_dead_ = other.num_dead_;
  arena_ = other.arena_;
  row_hashes_ = other.row_hashes_;
  dedup_slots_ = other.dedup_slots_;
  indexes_ = other.indexes_;
  versioned_ = other.versioned_;
  version_ = other.version_;
  added_ = other.added_;
  deleted_ = other.deleted_;
  counts_enabled_ = other.counts_enabled_;
  counts_ = other.counts_;
  return *this;
}

bool Relation::RowEquals(int32_t row, const Value* vals) const {
  const Value* r = RowData(row);
  for (int i = 0; i < arity_; ++i) {
    if (r[i] != vals[i]) return false;
  }
  return true;
}

uint64_t Relation::MaskedRowHash(int32_t row, uint64_t mask) const {
  const Value* r = RowData(row);
  uint64_t h = HashSeed(std::popcount(mask));
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    int i = std::countr_zero(m);
    h = Mix64(h ^ static_cast<uint64_t>(r[i].Hash()));
  }
  return h;
}

bool Relation::MaskedColsEqualKey(int32_t row, uint64_t mask,
                                  const Value* key) const {
  const Value* r = RowData(row);
  int k = 0;
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    if (r[std::countr_zero(m)] != key[k++]) return false;
  }
  return true;
}

bool Relation::MaskedColsEqualRows(int32_t a, int32_t b, uint64_t mask) const {
  const Value* ra = RowData(a);
  const Value* rb = RowData(b);
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    int i = std::countr_zero(m);
    if (ra[i] != rb[i]) return false;
  }
  return true;
}

void Relation::GrowDedup() {
  size_t cap = dedup_slots_.empty() ? 16 : dedup_slots_.size() * 2;
  dedup_slots_.assign(cap, kEmptySlot);
  size_t m = cap - 1;
  // All stored rows are distinct, so reinsertion never needs an equality
  // check: first empty slot wins.
  for (int32_t row = 0; row < static_cast<int32_t>(num_rows_); ++row) {
    size_t s = row_hashes_[row] & m;
    while (dedup_slots_[s] != kEmptySlot) s = (s + 1) & m;
    dedup_slots_[s] = row;
  }
}

int32_t Relation::FindRow(const Value* vals, int n) const {
  SQOD_CHECK(n == arity_);
  if (dedup_slots_.empty()) return -1;
  uint64_t h = HashValues(vals, n);
  size_t m = dedup_slots_.size() - 1;
  size_t s = h & m;
  while (true) {
    int32_t r = dedup_slots_[s];
    if (r == kEmptySlot) return -1;
    if (row_hashes_[r] == h && RowEquals(r, vals)) return r;
    s = (s + 1) & m;
  }
}

bool Relation::Insert(const Value* vals, int n) {
  SQOD_CHECK(n == arity_);
  SQOD_CHECK_MSG(!frozen_, "Insert on a frozen relation");
  uint64_t h = HashValues(vals, n);
  if (NeedsGrow(num_rows_, dedup_slots_.size())) GrowDedup();
  size_t m = dedup_slots_.size() - 1;
  size_t s = h & m;
  while (true) {
    int32_t r = dedup_slots_[s];
    if (r == kEmptySlot) break;
    if (row_hashes_[r] == h && RowEquals(r, vals)) {
      if (live(r)) return false;
      // Revive a tombstoned row in place: its physical home is unique.
      ReviveRow(r);
      return true;
    }
    s = (s + 1) & m;
  }
  int32_t row = static_cast<int32_t>(num_rows_);
  dedup_slots_[s] = row;
  arena_.insert(arena_.end(), vals, vals + n);
  row_hashes_.push_back(h);
  ++num_rows_;
  if (versioned_) {
    added_.push_back(version_);
    deleted_.push_back(kNeverDeleted);
  }
  if (counts_enabled_) counts_.push_back(0);
  for (auto& [mask, index] : indexes_) {
    AddRowToIndex(mask, &index, row);
  }
  return true;
}

bool Relation::Erase(const Value* vals, int n) {
  SQOD_CHECK_MSG(!frozen_, "Erase on a frozen relation");
  if (!versioned_) EnableVersioning(0);
  int32_t r = FindRow(vals, n);
  if (r < 0 || !live(r)) return false;
  EraseRow(r);
  return true;
}

bool Relation::Contains(const Value* vals, int n) const {
  int32_t r = FindRow(vals, n);
  return r >= 0 && live(r);
}

void Relation::EnableVersioning(int64_t base_version) {
  SQOD_CHECK_MSG(!frozen_, "EnableVersioning on a frozen relation");
  if (versioned_) return;
  versioned_ = true;
  version_ = base_version;
  added_.assign(num_rows_, base_version);
  deleted_.assign(num_rows_, kNeverDeleted);
}

void Relation::EraseRow(int32_t row) {
  SQOD_CHECK(versioned_ && live(row));
  deleted_[row] = version_;
  ++num_dead_;
}

void Relation::ReviveRow(int32_t row) {
  SQOD_CHECK(versioned_ && !live(row));
  added_[row] = version_;
  deleted_[row] = kNeverDeleted;
  --num_dead_;
}

void Relation::UndeleteRow(int32_t row) {
  SQOD_CHECK(versioned_ && !live(row));
  deleted_[row] = kNeverDeleted;
  --num_dead_;
}

void Relation::EnableCounts() {
  if (counts_enabled_) return;
  counts_enabled_ = true;
  counts_.assign(num_rows_, 0);
}

void Relation::ResetCounts() {
  counts_.assign(num_rows_, 0);
}

void Relation::GrowIndex(Index* index) const {
  size_t cap = index->slots.empty() ? 16 : index->slots.size() * 2;
  std::vector<int32_t> old = std::move(index->slots);
  index->slots.assign(cap, kEmptySlot);
  size_t m = cap - 1;
  // Chains move wholesale: rehash each head by its stored key hash; the
  // heads of distinct keys are distinct, so first empty slot wins.
  for (int32_t head : old) {
    if (head == kEmptySlot) continue;
    size_t s = index->key_hash[head] & m;
    while (index->slots[s] != kEmptySlot) s = (s + 1) & m;
    index->slots[s] = head;
  }
}

void Relation::AddRowToIndex(uint64_t mask, Index* index, int32_t row) const {
  if (NeedsGrow(index->distinct_keys, index->slots.size())) GrowIndex(index);
  uint64_t h = MaskedRowHash(row, mask);
  index->key_hash.push_back(h);
  index->next.push_back(kEmptySlot);
  size_t m = index->slots.size() - 1;
  size_t s = h & m;
  while (true) {
    int32_t head = index->slots[s];
    if (head == kEmptySlot) {
      index->slots[s] = row;
      ++index->distinct_keys;
      return;
    }
    if (index->key_hash[head] == h && MaskedColsEqualRows(head, row, mask)) {
      // Same key: prepend to the chain (O(1); enumeration order within a
      // key does not affect evaluation results or counters).
      index->next[row] = head;
      index->slots[s] = row;
      return;
    }
    s = (s + 1) & m;
  }
}

const Relation::Index& Relation::FindOrBuildIndex(uint64_t mask) const {
  auto it = indexes_.find(mask);
  if (it == indexes_.end()) {
    it = indexes_.emplace(mask, Index()).first;
    Index& index = it->second;
    index.next.reserve(num_rows_);
    index.key_hash.reserve(num_rows_);
    for (int32_t row = 0; row < static_cast<int32_t>(num_rows_); ++row) {
      AddRowToIndex(mask, &index, row);
    }
  }
  return it->second;
}

Relation::Matches Relation::Probe(uint64_t mask, const Value* key) const {
  const Index* index;
  if (frozen_) {
    // Shared read-only snapshot: the map mutates on first probe of a mask,
    // so the lookup-or-build must serialize. Once built, an Index never
    // changes (frozen relations take no inserts), so chain walks below are
    // lock-free.
    std::lock_guard<std::mutex> lock(*index_mu_);
    index = &FindOrBuildIndex(mask);
  } else {
    index = &FindOrBuildIndex(mask);
  }
  if (index->slots.empty()) return Matches();
  const int n = std::popcount(mask);
  uint64_t h = HashSeed(n);
  for (int k = 0; k < n; ++k) {
    h = Mix64(h ^ static_cast<uint64_t>(key[k].Hash()));
  }
  size_t m = index->slots.size() - 1;
  size_t s = h & m;
  while (true) {
    int32_t head = index->slots[s];
    if (head == kEmptySlot) return Matches();
    if (index->key_hash[head] == h && MaskedColsEqualKey(head, mask, key)) {
      return Matches{head, index->next.data()};
    }
    s = (s + 1) & m;
  }
}

void Relation::WarmIndex(uint64_t mask) const {
  if (frozen_) {
    std::lock_guard<std::mutex> lock(*index_mu_);
    FindOrBuildIndex(mask);
  } else {
    FindOrBuildIndex(mask);
  }
}

void Relation::Freeze() {
  if (frozen_) return;
  frozen_ = true;
  index_mu_ = std::make_unique<std::mutex>();
}

void Relation::Clear() {
  SQOD_CHECK_MSG(!frozen_, "Clear on a frozen relation");
  num_rows_ = 0;
  num_dead_ = 0;
  arena_.clear();
  row_hashes_.clear();
  dedup_slots_.clear();
  indexes_.clear();
  // Versioning/counts flags survive Clear: subsequent inserts stamp with
  // version_ again.
  added_.clear();
  deleted_.clear();
  counts_.clear();
}

}  // namespace sqod
