#ifndef SQOD_EVAL_RELATION_H_
#define SQOD_EVAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/eval/tuple.h"

namespace sqod {

// A set of tuples of one arity, with duplicate elimination and lazily built
// hash indexes on column subsets. Indexes are created on first probe for a
// column mask and maintained incrementally on insert.
//
// Storage is flat: all rows live in one contiguous arena with stride
// `arity`, addressed as TupleRef views. Dedup and the per-mask indexes are
// open-addressing tables that store row ids and hash the arena in place, so
// Insert / Contains / Probe never materialize a key tuple.
//
// Deletion is by tombstone: rows are never moved or reclaimed, so row ids,
// probe chains, and the dedup table stay valid across Erase. A versioned
// relation (EnableVersioning) stamps every row with the snapshot version it
// was added at and the version it was deleted at, giving two simultaneous
// consistent views: the current one (live()) and the previous snapshot
// (LiveAt(row, v)) — exactly the depth the incremental-maintenance executor
// needs to join "old" and "new" states in one pass (see
// src/eval/maintain.h). Unversioned relations pay nothing: live() is a
// single empty-vector test and Insert never touches the stamps.
//
// A relation may also carry per-row derivation counts (EnableCounts), used
// by counting-based view maintenance for non-recursive strata. Counts are
// bookkeeping owned by the maintenance layer; the relation only stores
// them.
class Relation {
 public:
  // Column masks are uint64_t bitsets, so probe keys cap the arity.
  static constexpr int kMaxArity = 64;
  // deleted_version of a live row.
  static constexpr int64_t kNeverDeleted = INT64_MAX;

  explicit Relation(int arity = 0);

  // Copies share no state; a copy is always mutable and unfrozen.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept = default;
  Relation& operator=(Relation&& other) noexcept = default;

  int arity() const { return arity_; }
  // Physical rows, including tombstones: the exclusive bound for row(i).
  // Scan loops iterate [0, size()) and skip rows where !live(r).
  int64_t size() const { return num_rows_; }
  // Rows that are currently live (the relation's cardinality).
  int64_t live_size() const { return num_rows_ - num_dead_; }
  bool empty() const { return num_rows_ == 0; }
  bool has_tombstones() const { return num_dead_ > 0; }

  // The i-th row, in insertion order. The view is invalidated by Insert.
  TupleRef row(int64_t i) const {
    return TupleRef(arena_.data() + i * arity_, arity_);
  }

  // True when row i has not been tombstoned. Cheap for unversioned
  // relations (one empty-vector test).
  bool live(int64_t i) const {
    return deleted_.empty() || deleted_[i] == kNeverDeleted;
  }
  // True when row i was live in snapshot `v`: added at or before `v` and
  // not deleted at or before it. Rows of unversioned relations are live at
  // every version.
  bool LiveAt(int64_t i, int64_t v) const {
    return !versioned_ || (added_[i] <= v && v < deleted_[i]);
  }

  int64_t added_version(int64_t i) const {
    return versioned_ ? added_[i] : 0;
  }
  int64_t deleted_version(int64_t i) const {
    return versioned_ ? deleted_[i] : kNeverDeleted;
  }

  // Iterable range over all live rows, in insertion order, yielding
  // TupleRef. Tombstoned rows are skipped.
  class RowIterator {
   public:
    RowIterator(const Relation* rel, int64_t i) : rel_(rel), i_(i) { Skip(); }
    TupleRef operator*() const { return rel_->row(i_); }
    RowIterator& operator++() {
      ++i_;
      Skip();
      return *this;
    }
    bool operator!=(const RowIterator& o) const { return i_ != o.i_; }

   private:
    void Skip() {
      while (i_ < rel_->num_rows_ && !rel_->live(i_)) ++i_;
    }
    const Relation* rel_;
    int64_t i_;
  };
  struct RowRange {
    const Relation* rel;
    RowIterator begin() const { return RowIterator(rel, 0); }
    RowIterator end() const { return RowIterator(rel, rel->num_rows_); }
  };
  RowRange rows() const { return RowRange{this}; }

  // Inserts the row `vals[0..n)`; returns true if the live set changed
  // (a brand-new row, or a tombstoned row revived — the revived row is
  // stamped added = version()). Returns false for a live duplicate.
  bool Insert(const Value* vals, int n);
  bool Insert(const Tuple& t) {
    return Insert(t.data(), static_cast<int>(t.size()));
  }
  bool Insert(TupleRef t) { return Insert(t.data(), t.size()); }

  // Tombstones the row equal to `vals` at the current version. Returns
  // false when no live row matches. Enables versioning on first use.
  bool Erase(const Value* vals, int n);
  bool Erase(const Tuple& t) {
    return Erase(t.data(), static_cast<int>(t.size()));
  }

  // Membership over live rows only.
  bool Contains(const Value* vals, int n) const;
  bool Contains(const Tuple& t) const {
    return Contains(t.data(), static_cast<int>(t.size()));
  }

  // The row holding `vals`, live or tombstoned, or -1. The physical home of
  // a tuple is unique: a revived tuple reuses its tombstoned row.
  int32_t FindRow(const Value* vals, int n) const;

  // The whole-row hash of row i, as computed at insert. Stable for the
  // row's lifetime (rows never move), so `row_hash(i) % P` is a consistent
  // partition assignment — the parallel evaluator's bucketing function.
  uint64_t row_hash(int64_t i) const { return row_hashes_[i]; }

  // --- versioning -------------------------------------------------------

  // Stamps all existing rows added = base_version / never deleted and
  // makes subsequent Insert/Erase stamp with version(). Idempotent.
  void EnableVersioning(int64_t base_version);
  bool versioned() const { return versioned_; }
  // The version new stamps are taken from (set by the maintenance layer
  // before applying a batch).
  void set_version(int64_t v) { version_ = v; }
  int64_t version() const { return version_; }

  // Row-level transitions used by the maintenance executor. All CHECK that
  // versioning is enabled and that the row is in the expected state.
  void EraseRow(int32_t row);               // live -> dead at version()
  void ReviveRow(int32_t row);              // dead -> live, added = version()
  void UndeleteRow(int32_t row);            // dead -> live, added preserved

  // --- derivation counts ------------------------------------------------

  void EnableCounts();
  bool counted() const { return !counts_.empty() || counts_enabled_; }
  int64_t count(int32_t row) const { return counts_[row]; }
  void set_count(int32_t row, int64_t c) { counts_[row] = c; }
  void add_count(int32_t row, int64_t d) { counts_[row] += d; }
  void ResetCounts();  // zeroes every row's count

  // --- probing ----------------------------------------------------------

  // The chain of rows whose values at the columns of `mask` (bit i =>
  // column i) equal `key` (the values at the masked columns, in column
  // order; popcount(mask) of them). Builds the index for `mask` on first
  // use. Chains may include tombstoned rows; consumers filter with
  // live()/LiveAt(). Iterate as:
  //   for (int32_t r = m.row; r >= 0; r = m.next[r]) ... rel.row(r) ...
  // `next` stays valid until the next Insert/Clear.
  struct Matches {
    int32_t row = -1;           // head of the chain, -1 for no match
    const int32_t* next = nullptr;  // per-row chain links
  };
  Matches Probe(uint64_t mask, const Value* key) const;
  Matches Probe(uint64_t mask, const Tuple& key) const {
    return Probe(mask, key.data());
  }

  // Builds the index for `mask` if it does not exist yet. The parallel
  // evaluator warms every (relation, mask) pair an iteration's tasks will
  // probe BEFORE firing them: once an index exists, concurrent Probe calls
  // are pure reads, so warmed relations need no per-probe locking even
  // when unfrozen (the single-writer index invariant, docs/evaluator.md).
  void WarmIndex(uint64_t mask) const;

  // Marks the relation immutable and makes Probe safe to call from any
  // number of threads concurrently (first-probe index builds serialize on
  // an internal mutex; everything else is read-only). Insert/Erase on a
  // frozen relation CHECK-fail. Used by the engine's shared base-EDB
  // snapshot, which every request reads without copying.
  void Freeze();
  bool frozen() const { return frozen_; }

  void Clear();

 private:
  // Per-mask index: an open-addressing table of distinct keys, each slot
  // holding the head row of a chain of rows sharing that key. `next` and
  // `key_hash` are parallel to the relation's rows.
  struct Index {
    std::vector<int32_t> slots;      // head row per bucket, -1 = empty
    std::vector<int32_t> next;       // per row: next row with the same key
    std::vector<uint64_t> key_hash;  // per row: hash of the masked columns
    int32_t distinct_keys = 0;
  };

  const Value* RowData(int32_t row) const {
    return arena_.data() + static_cast<int64_t>(row) * arity_;
  }
  bool RowEquals(int32_t row, const Value* vals) const;
  uint64_t MaskedRowHash(int32_t row, uint64_t mask) const;
  bool MaskedColsEqualKey(int32_t row, uint64_t mask, const Value* key) const;
  bool MaskedColsEqualRows(int32_t a, int32_t b, uint64_t mask) const;

  void GrowDedup();
  void GrowIndex(Index* index) const;
  void AddRowToIndex(uint64_t mask, Index* index, int32_t row) const;
  const Index& FindOrBuildIndex(uint64_t mask) const;

  int arity_;
  int64_t num_rows_ = 0;
  int64_t num_dead_ = 0;
  std::vector<Value> arena_;        // num_rows_ * arity_ values
  std::vector<uint64_t> row_hashes_;  // per row: whole-row hash
  std::vector<int32_t> dedup_slots_;  // open addressing, pow-2, -1 = empty
  mutable std::unordered_map<uint64_t, Index> indexes_;

  // Versioning (empty/disabled unless EnableVersioning ran).
  bool versioned_ = false;
  int64_t version_ = 0;
  std::vector<int64_t> added_;    // per row: version the row became live
  std::vector<int64_t> deleted_;  // per row: version tombstoned, or never

  // Derivation counts (maintenance bookkeeping).
  bool counts_enabled_ = false;
  std::vector<int64_t> counts_;

  // Frozen-snapshot support: guards first-probe index builds when the
  // relation is shared read-only across threads.
  bool frozen_ = false;
  std::unique_ptr<std::mutex> index_mu_;
};

}  // namespace sqod

#endif  // SQOD_EVAL_RELATION_H_
