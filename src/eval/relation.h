#ifndef SQOD_EVAL_RELATION_H_
#define SQOD_EVAL_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/eval/tuple.h"

namespace sqod {

// A set of tuples of one arity, with duplicate elimination and lazily built
// hash indexes on column subsets. Indexes are created on first probe for a
// column mask and maintained incrementally on insert.
class Relation {
 public:
  explicit Relation(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  int64_t size() const { return static_cast<int64_t>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  const std::vector<Tuple>& rows() const { return rows_; }

  // Inserts `t`; returns true if it was new.
  bool Insert(const Tuple& t);

  bool Contains(const Tuple& t) const { return dedup_.count(t) > 0; }

  // Row indices whose values at the columns of `mask` (bit i => column i)
  // equal `key` (the values at the masked columns, in column order).
  // Builds the index for `mask` on first use. Returns nullptr when no row
  // matches.
  const std::vector<int>* Probe(uint64_t mask, const Tuple& key) const;

  void Clear();

 private:
  using Index = std::unordered_map<Tuple, std::vector<int>, TupleHash>;

  Tuple KeyFor(const Tuple& row, uint64_t mask) const;

  int arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> dedup_;
  mutable std::unordered_map<uint64_t, Index> indexes_;
};

}  // namespace sqod

#endif  // SQOD_EVAL_RELATION_H_
