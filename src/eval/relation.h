#ifndef SQOD_EVAL_RELATION_H_
#define SQOD_EVAL_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/eval/tuple.h"

namespace sqod {

// A set of tuples of one arity, with duplicate elimination and lazily built
// hash indexes on column subsets. Indexes are created on first probe for a
// column mask and maintained incrementally on insert.
//
// Storage is flat: all rows live in one contiguous arena with stride
// `arity`, addressed as TupleRef views. Dedup and the per-mask indexes are
// open-addressing tables that store row ids and hash the arena in place, so
// Insert / Contains / Probe never materialize a key tuple.
class Relation {
 public:
  // Column masks are uint64_t bitsets, so probe keys cap the arity.
  static constexpr int kMaxArity = 64;

  explicit Relation(int arity = 0);

  int arity() const { return arity_; }
  int64_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  // The i-th row, in insertion order. The view is invalidated by Insert.
  TupleRef row(int64_t i) const {
    return TupleRef(arena_.data() + i * arity_, arity_);
  }

  // Iterable range over all rows, in insertion order, yielding TupleRef.
  class RowIterator {
   public:
    RowIterator(const Relation* rel, int64_t i) : rel_(rel), i_(i) {}
    TupleRef operator*() const { return rel_->row(i_); }
    RowIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const RowIterator& o) const { return i_ != o.i_; }

   private:
    const Relation* rel_;
    int64_t i_;
  };
  struct RowRange {
    const Relation* rel;
    RowIterator begin() const { return RowIterator(rel, 0); }
    RowIterator end() const { return RowIterator(rel, rel->num_rows_); }
  };
  RowRange rows() const { return RowRange{this}; }

  // Inserts the row `vals[0..n)`; returns true if it was new.
  bool Insert(const Value* vals, int n);
  bool Insert(const Tuple& t) {
    return Insert(t.data(), static_cast<int>(t.size()));
  }
  bool Insert(TupleRef t) { return Insert(t.data(), t.size()); }

  bool Contains(const Value* vals, int n) const;
  bool Contains(const Tuple& t) const {
    return Contains(t.data(), static_cast<int>(t.size()));
  }

  // The chain of rows whose values at the columns of `mask` (bit i =>
  // column i) equal `key` (the values at the masked columns, in column
  // order; popcount(mask) of them). Builds the index for `mask` on first
  // use. Iterate as:
  //   for (int32_t r = m.row; r >= 0; r = m.next[r]) ... rel.row(r) ...
  // `next` stays valid until the next Insert/Clear.
  struct Matches {
    int32_t row = -1;           // head of the chain, -1 for no match
    const int32_t* next = nullptr;  // per-row chain links
  };
  Matches Probe(uint64_t mask, const Value* key) const;
  Matches Probe(uint64_t mask, const Tuple& key) const {
    return Probe(mask, key.data());
  }

  void Clear();

 private:
  // Per-mask index: an open-addressing table of distinct keys, each slot
  // holding the head row of a chain of rows sharing that key. `next` and
  // `key_hash` are parallel to the relation's rows.
  struct Index {
    std::vector<int32_t> slots;      // head row per bucket, -1 = empty
    std::vector<int32_t> next;       // per row: next row with the same key
    std::vector<uint64_t> key_hash;  // per row: hash of the masked columns
    int32_t distinct_keys = 0;
  };

  const Value* RowData(int32_t row) const {
    return arena_.data() + static_cast<int64_t>(row) * arity_;
  }
  bool RowEquals(int32_t row, const Value* vals) const;
  uint64_t MaskedRowHash(int32_t row, uint64_t mask) const;
  bool MaskedColsEqualKey(int32_t row, uint64_t mask, const Value* key) const;
  bool MaskedColsEqualRows(int32_t a, int32_t b, uint64_t mask) const;

  void GrowDedup();
  void GrowIndex(Index* index) const;
  void AddRowToIndex(uint64_t mask, Index* index, int32_t row) const;

  int arity_;
  int64_t num_rows_ = 0;
  std::vector<Value> arena_;        // num_rows_ * arity_ values
  std::vector<uint64_t> row_hashes_;  // per row: whole-row hash
  std::vector<int32_t> dedup_slots_;  // open addressing, pow-2, -1 = empty
  mutable std::unordered_map<uint64_t, Index> indexes_;
};

}  // namespace sqod

#endif  // SQOD_EVAL_RELATION_H_
