#ifndef SQOD_EVAL_TUPLE_H_
#define SQOD_EVAL_TUPLE_H_

#include <cstdint>
#include <vector>

#include "src/base/value.h"

namespace sqod {

// A materialized database tuple: a fixed-arity sequence of values. The
// storage engine keeps rows in flat arenas (see relation.h); Tuple is the
// owning escape hatch for callers that need a detached copy (sorting,
// branching search, test fixtures).
using Tuple = std::vector<Value>;

// splitmix64 finalizer. Full-avalanche: every input bit affects every
// output bit, so masking the result down to any table size keeps buckets
// balanced (the previous multiplicative combine leaked low-entropy low
// bits straight into the bucket index).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Seed for an n-value hash; exposed so incremental hashers (masked-column
// probe keys) produce the same digest as HashValues over the gathered key.
inline uint64_t HashSeed(int n) {
  return 0x8f1bbcdcbfa53e0bull ^ static_cast<uint64_t>(n);
}

// Hash of `n` values. Length-seeded and re-mixed per element; used for both
// whole rows and masked-column probe keys, so a gathered key hashes
// identically to the matching columns of a stored row.
inline uint64_t HashValues(const Value* vals, int n) {
  uint64_t h = HashSeed(n);
  for (int i = 0; i < n; ++i) {
    h = Mix64(h ^ static_cast<uint64_t>(vals[i].Hash()));
  }
  return h;
}

// A non-owning view of one stored row: pointer + arity. Valid only while
// the backing relation is alive and un-mutated (inserts may reallocate the
// arena). Call Materialize() to detach an owning Tuple.
class TupleRef {
 public:
  TupleRef() = default;
  TupleRef(const Value* data, int arity) : data_(data), arity_(arity) {}

  int size() const { return arity_; }
  bool empty() const { return arity_ == 0; }
  const Value& operator[](int i) const { return data_[i]; }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + arity_; }

  Tuple Materialize() const { return Tuple(data_, data_ + arity_); }

 private:
  const Value* data_ = nullptr;
  int arity_ = 0;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(
        HashValues(t.data(), static_cast<int>(t.size())));
  }
};

}  // namespace sqod

#endif  // SQOD_EVAL_TUPLE_H_
