#ifndef SQOD_EVAL_TUPLE_H_
#define SQOD_EVAL_TUPLE_H_

#include <vector>

#include "src/base/value.h"

namespace sqod {

// A database tuple: a fixed-arity sequence of values.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = t.size();
    for (const Value& v : t) h = h * 1000003 + v.Hash();
    return h;
  }
};

}  // namespace sqod

#endif  // SQOD_EVAL_TUPLE_H_
