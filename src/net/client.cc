#include "src/net/client.h"

#include <utility>

namespace sqod {

Result<Client> Client::Connect(const ClientOptions& options) {
  Client client;
  client.reader_ = FrameReader(options.max_frame_bytes);
  SQOD_ASSIGN_OR_RETURN(client.fd_,
                        ConnectTcp(options.host, options.port));

  HelloParams hello;
  hello.token = options.token;
  hello.min_version = options.min_version;
  hello.max_version = options.max_version;
  const uint64_t id = client.next_id_++;
  SQOD_RETURN_IF_ERROR(client.SendPayload(EncodeHello(id, hello)));
  SQOD_ASSIGN_OR_RETURN(ServerMessage reply, client.ReadMessage());
  if (reply.type != MsgType::kHello || reply.id != id) {
    return Status::Internal("hello reply mismatch");
  }
  if (!reply.status.ok()) return reply.status;
  client.hello_ = reply.hello;
  return client;
}

Status Client::SendPayload(const std::string& payload) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  const std::string frame = EncodeFrame(payload);
  return WriteAll(fd_.get(), frame.data(), frame.size());
}

Result<ServerMessage> Client::ReadMessage() {
  std::string payload;
  char buf[16 * 1024];
  while (true) {
    SQOD_ASSIGN_OR_RETURN(bool complete, reader_.Next(&payload));
    if (complete) break;
    SQOD_ASSIGN_OR_RETURN(int64_t got,
                          ReadSome(fd_.get(), buf, sizeof(buf)));
    if (got == 0) {
      fd_.Reset();
      return Status::Internal("connection closed by server");
    }
    if (got < 0) {
      // Blocking socket: EAGAIN should not occur; retry defensively.
      continue;
    }
    reader_.Append(buf, static_cast<size_t>(got));
  }
  return DecodeServerMessage(payload);
}

Result<ServerMessage> Client::WaitFor(uint64_t id) {
  auto it = stash_.find(id);
  if (it != stash_.end()) {
    ServerMessage msg = std::move(it->second);
    stash_.erase(it);
    return msg;
  }
  while (true) {
    SQOD_ASSIGN_OR_RETURN(ServerMessage msg, ReadMessage());
    if (msg.id == id) return msg;
    stash_[msg.id] = std::move(msg);
  }
}

Result<ServerMessage> Client::Call(std::string payload, uint64_t id) {
  SQOD_RETURN_IF_ERROR(SendPayload(payload));
  return WaitFor(id);
}

Result<Response> Client::LoadProgram(const std::string& session,
                                     const std::string& source) {
  LoadProgramParams params;
  params.session = session;
  params.source = source;
  const uint64_t id = next_id_++;
  SQOD_ASSIGN_OR_RETURN(ServerMessage reply,
                        Call(EncodeLoadProgram(id, params), id));
  return std::move(reply.query);
}

Result<Response> Client::Query(const QueryParams& params) {
  const uint64_t id = next_id_++;
  SQOD_ASSIGN_OR_RETURN(ServerMessage reply,
                        Call(EncodeQuery(id, params), id));
  return std::move(reply.query);
}

Result<Response> Client::Explain(const std::string& session) {
  const uint64_t id = next_id_++;
  SQOD_ASSIGN_OR_RETURN(ServerMessage reply,
                        Call(EncodeExplain(id, session), id));
  return std::move(reply.query);
}

Result<DeltaResponse> Client::ApplyDelta(const std::string& session,
                                         std::vector<std::string> inserts,
                                         std::vector<std::string> deletes,
                                         bool trace) {
  ApplyDeltaParams params;
  params.session = session;
  params.inserts = std::move(inserts);
  params.deletes = std::move(deletes);
  params.trace = trace;
  const uint64_t id = next_id_++;
  SQOD_ASSIGN_OR_RETURN(ServerMessage reply,
                        Call(EncodeApplyDelta(id, params), id));
  return std::move(reply.delta);
}

Result<JsonValue> Client::Metrics() {
  const uint64_t id = next_id_++;
  SQOD_ASSIGN_OR_RETURN(ServerMessage reply,
                        Call(EncodeMetricsRequest(id), id));
  if (!reply.status.ok()) return reply.status;
  return std::move(reply.metrics);
}

Status Client::Close() {
  if (!fd_.valid()) return Status::Ok();
  const uint64_t id = next_id_++;
  Result<ServerMessage> reply = Call(EncodeClose(id), id);
  fd_.Reset();
  if (!reply.ok()) return reply.status();
  return reply.value().status;
}

Result<uint64_t> Client::SendQuery(const QueryParams& params) {
  const uint64_t id = next_id_++;
  SQOD_RETURN_IF_ERROR(SendPayload(EncodeQuery(id, params)));
  return id;
}

Result<uint64_t> Client::SendApplyDelta(const std::string& session,
                                        std::vector<std::string> inserts,
                                        std::vector<std::string> deletes,
                                        bool trace) {
  ApplyDeltaParams params;
  params.session = session;
  params.inserts = std::move(inserts);
  params.deletes = std::move(deletes);
  params.trace = trace;
  const uint64_t id = next_id_++;
  SQOD_RETURN_IF_ERROR(SendPayload(EncodeApplyDelta(id, params)));
  return id;
}

}  // namespace sqod
