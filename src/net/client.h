#ifndef SQOD_NET_CLIENT_H_
#define SQOD_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/net/socket.h"
#include "src/proto/proto.h"

namespace sqod {

// A small blocking client for the sqo_server protocol. Connect() performs
// the TCP connect and the hello handshake; the typed calls below each send
// one request and block for its reply.
//
// Pipelining: Send* enqueues a request and returns its id without waiting;
// WaitFor(id) blocks until that id's reply arrives, stashing any other
// replies read along the way (the server answers in completion order).
// One thread per Client: the class is not thread-safe.
//
// Error layering: a Result error from a call means the transport or the
// protocol failed (connection lost, undecodable frame) — the connection is
// unusable afterwards. Server-side request failures arrive as OK results
// whose payload carries the status (Response::status etc.).

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string token;
  int min_version = kProtoVersionMin;
  int max_version = kProtoVersionMax;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class Client {
 public:
  // Connects and performs the hello handshake. A hello rejection (bad
  // token, no common version) is returned as that error.
  static Result<Client> Connect(const ClientOptions& options);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // The server's hello reply: negotiated version, resolved tenant, frame
  // ceiling.
  const HelloResult& hello() const { return hello_; }

  // Loads (parses + prepares) `source` under the tenant-scoped session
  // name. Response::status carries any parse/prepare error.
  Result<Response> LoadProgram(const std::string& session,
                               const std::string& source);

  // One query; see QueryParams for session-vs-inline addressing.
  Result<Response> Query(const QueryParams& params);

  // EXPLAIN/ANALYZE against a loaded session; the report is in
  // Response::explain_json.
  Result<Response> Explain(const std::string& session);

  // One EDB delta batch (facts in source syntax) against a session's view.
  Result<DeltaResponse> ApplyDelta(const std::string& session,
                                   std::vector<std::string> inserts,
                                   std::vector<std::string> deletes,
                                   bool trace = false);

  // The server's full metrics export, parsed.
  Result<JsonValue> Metrics();

  // Polite shutdown: close request, wait for the ack, close the socket.
  Status Close();

  // --- pipelined interface ---

  // Sends without waiting; returns the request id to pass to WaitFor.
  Result<uint64_t> SendQuery(const QueryParams& params);
  Result<uint64_t> SendApplyDelta(const std::string& session,
                                  std::vector<std::string> inserts,
                                  std::vector<std::string> deletes,
                                  bool trace = false);

  // Blocks until `id`'s reply arrives (replies for other ids encountered
  // on the way are stashed for their own WaitFor calls).
  Result<ServerMessage> WaitFor(uint64_t id);

  bool connected() const { return fd_.valid(); }

 private:
  Client() : reader_(kDefaultMaxFrameBytes) {}

  Status SendPayload(const std::string& payload);
  // Reads and decodes the next frame off the socket (blocking).
  Result<ServerMessage> ReadMessage();
  // Send + WaitFor in one step.
  Result<ServerMessage> Call(std::string payload, uint64_t id);

  UniqueFd fd_;
  FrameReader reader_;
  HelloResult hello_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, ServerMessage> stash_;
};

}  // namespace sqod

#endif  // SQOD_NET_CLIENT_H_
