#include "src/net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/obs/export.h"
#include "src/parser/parser.h"

namespace sqod {

namespace {

// Wake-pipe bytes: each is a one-shot command the poll thread reads.
constexpr char kWakeReply = 'w';
constexpr char kWakeDrain = 'd';
constexpr char kWakeStop = 's';

std::string QuotaMetric(const std::string& tenant) {
  return "tenant/" + tenant + "/quota_rejected";
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }

  // Tenant table validation up front: a bad table is a configuration
  // error, not something to discover at hello time.
  if (options_.tenants.empty()) {
    // Open access: every token resolves to "default", no quota.
    auto tenant = std::make_unique<Tenant>();
    tenant->config.name = "default";
    tenants_.push_back(std::move(tenant));
  } else {
    for (const TenantConfig& config : options_.tenants) {
      if (config.name.empty() ||
          config.name.find('\x1f') != std::string::npos) {
        return Status::InvalidArgument("bad tenant name '" + config.name +
                                       "'");
      }
      if (config.token.empty()) {
        return Status::InvalidArgument("tenant '" + config.name +
                                       "' has an empty token");
      }
      if (config.max_inflight < 0) {
        return Status::InvalidArgument("tenant '" + config.name +
                                       "' has a negative quota");
      }
      if (by_token_.count(config.token) != 0) {
        return Status::InvalidArgument(
            "duplicate token (tenants must have distinct tokens)");
      }
      auto tenant = std::make_unique<Tenant>();
      tenant->config = config;
      by_token_[config.token] = tenant.get();
      tenants_.push_back(std::move(tenant));
    }
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal("pipe: " + std::string(std::strerror(errno)));
  }
  wake_read_ = UniqueFd(pipe_fds[0]);
  wake_write_ = UniqueFd(pipe_fds[1]);
  SQOD_RETURN_IF_ERROR(SetNonBlocking(wake_read_.get()));
  SQOD_RETURN_IF_ERROR(SetNonBlocking(wake_write_.get()));

  SQOD_ASSIGN_OR_RETURN(listener_,
                        ListenTcp(options_.host, options_.port,
                                  options_.backlog));
  SQOD_ASSIGN_OR_RETURN(uint16_t port, LocalPort(listener_.get()));
  port_.store(port, std::memory_order_release);

  poll_thread_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) {
    // Never started (nothing to join) or already stopped.
    if (started_.load()) Wait();
    return;
  }
  WakePoll(kWakeStop);
  Wait();
}

void Server::RequestDrain() {
  // Async-signal-safe: one write(2), no locks, no allocation.
  if (wake_write_.valid()) {
    [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &kWakeDrain, 1);
  }
}

void Server::Wait() {
  // Joinable-then-join is racy across threads; serialize the join. Never
  // replies_mu_: the poll thread takes that to exit.
  std::lock_guard<std::mutex> lock(join_mu_);
  if (poll_thread_.joinable()) poll_thread_.join();
}

void Server::WakePoll(char byte) {
  if (!wake_write_.valid()) return;
  while (true) {
    const ssize_t n = ::write(wake_write_.get(), &byte, 1);
    if (n == 1) return;
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN: the pipe is full, so the poll thread has wakeups pending
    // anyway — for kWakeReply that is enough. Control bytes must not be
    // lost, but a full pipe means thousands of unread bytes, which only
    // happens if the poll thread is already exiting.
    return;
  }
}

void Server::QueueReply(uint64_t conn_id, Tenant* tenant, std::string frame) {
  {
    std::lock_guard<std::mutex> lock(replies_mu_);
    pending_replies_.push_back(PendingReply{conn_id, tenant,
                                            std::move(frame)});
  }
  WakePoll(kWakeReply);
}

void Server::ApplyPendingReplies() {
  std::vector<PendingReply> replies;
  {
    std::lock_guard<std::mutex> lock(replies_mu_);
    replies.swap(pending_replies_);
  }
  for (PendingReply& reply : replies) {
    if (reply.tenant != nullptr) --reply.tenant->inflight;
    auto it = conns_.find(reply.conn_id);
    if (it == conns_.end()) continue;  // connection died mid-request
    --it->second->inflight;
    it->second->out.append(reply.frame);
    metrics().GetCounter("net/frames_out")->Increment();
  }
}

void Server::AcceptPending() {
  while (true) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error: poll again
    }
    UniqueFd owned(fd);
    if (!SetNonBlocking(fd).ok()) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->fd = std::move(owned);
    conn->id = next_conn_id_++;
    conns_[conn->id] = std::move(conn);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    metrics().GetCounter("net/connections_accepted")->Increment();
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  if (conns_.erase(conn_id) > 0) {
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    metrics().GetCounter("net/connections_closed")->Increment();
  }
}

Server::Tenant* Server::ResolveToken(const std::string& token) {
  if (options_.tenants.empty()) return tenants_.front().get();
  auto it = by_token_.find(token);
  return it == by_token_.end() ? nullptr : it->second;
}

bool Server::FlushWrites(Connection* conn) {
  while (conn->out_pos < conn->out.size()) {
    Result<int64_t> put =
        WriteSome(conn->fd.get(), conn->out.data() + conn->out_pos,
                  conn->out.size() - conn->out_pos);
    if (!put.ok()) return false;
    if (put.value() < 0) return true;  // would block; POLLOUT resumes
    conn->out_pos += static_cast<size_t>(put.value());
    metrics().GetCounter("net/bytes_out")->Add(put.value());
  }
  conn->out.clear();
  conn->out_pos = 0;
  // A closing connection lingers only for its unflushed replies.
  return !(conn->closing && conn->inflight == 0);
}

bool Server::HandleMessage(Connection* conn, const ClientMessage& msg) {
  MetricsRegistry& metrics = this->metrics();

  // Hello-first: nothing else is dispatchable until the tenant is known.
  if (conn->tenant == nullptr) {
    if (msg.type != MsgType::kHello) {
      conn->out.append(EncodeFrame(EncodeErrorResponse(
          msg.id, msg.type,
          Status::FailedPrecondition("first message must be hello"))));
      conn->closing = true;
      metrics.GetCounter("net/protocol_errors")->Increment();
      return true;
    }
    Tenant* tenant = ResolveToken(msg.hello.token);
    if (tenant == nullptr) {
      conn->out.append(EncodeFrame(EncodeErrorResponse(
          msg.id, MsgType::kHello,
          Status::InvalidArgument("unknown token"))));
      conn->closing = true;
      metrics.GetCounter("net/auth_failures")->Increment();
      return true;
    }
    const int version = std::min(msg.hello.max_version, kProtoVersionMax);
    const int floor = std::max(msg.hello.min_version, kProtoVersionMin);
    if (version < floor) {
      conn->out.append(EncodeFrame(EncodeErrorResponse(
          msg.id, MsgType::kHello,
          Status::Unsupported(
              "no common protocol version: server speaks [" +
              std::to_string(kProtoVersionMin) + ", " +
              std::to_string(kProtoVersionMax) + "], client asked [" +
              std::to_string(msg.hello.min_version) + ", " +
              std::to_string(msg.hello.max_version) + "]"))));
      conn->closing = true;
      return true;
    }
    conn->tenant = tenant;
    metrics.GetCounter("tenant/" + tenant->config.name + "/connections")
        ->Increment();
    HelloResult result;
    result.version = version;
    result.tenant = tenant->config.name;
    result.server = options_.server_name;
    result.max_frame_bytes =
        static_cast<int64_t>(options_.max_frame_bytes);
    conn->out.append(EncodeFrame(EncodeHelloResponse(msg.id, result)));
    return true;
  }

  Tenant* tenant = conn->tenant;
  const std::string& tenant_name = tenant->config.name;

  // Per-tenant admission quota, checked before the service's bounded
  // queue so one tenant cannot monopolize it.
  auto admit = [&]() -> bool {
    if (tenant->config.max_inflight > 0 &&
        tenant->inflight >= tenant->config.max_inflight) {
      metrics.GetCounter(QuotaMetric(tenant_name))->Increment();
      conn->out.append(EncodeFrame(EncodeErrorResponse(
          msg.id, msg.type,
          Status::ResourceExhausted(
              "tenant '" + tenant_name + "' is at its inflight quota (" +
              std::to_string(tenant->config.max_inflight) + ")"))));
      return false;
    }
    ++tenant->inflight;
    ++conn->inflight;
    return true;
  };

  switch (msg.type) {
    case MsgType::kHello: {
      conn->out.append(EncodeFrame(EncodeErrorResponse(
          msg.id, MsgType::kHello,
          Status::FailedPrecondition("connection already helloed"))));
      conn->closing = true;
      metrics.GetCounter("net/protocol_errors")->Increment();
      return true;
    }

    case MsgType::kLoadProgram: {
      if (msg.load.session.empty()) {
        conn->out.append(EncodeFrame(EncodeErrorResponse(
            msg.id, msg.type,
            Status::InvalidArgument("load_program needs a session name"))));
        return true;
      }
      if (!admit()) return true;
      // Bind the name now (poll thread owns the map); a failed load keeps
      // the binding and every later query reports the same error.
      tenant->sessions[msg.load.session] = msg.load.source;
      Request request;
      request.source = msg.load.source;
      request.tenant = tenant_name;
      request.load_only = true;
      const uint64_t conn_id = conn->id;
      const uint64_t id = msg.id;
      service_.Submit(std::move(request),
                      [this, conn_id, tenant, id](Response response) {
                        QueueReply(conn_id, tenant,
                                   EncodeFrame(EncodeLoadProgramResponse(
                                       id, response)));
                      });
      return true;
    }

    case MsgType::kQuery:
    case MsgType::kExplain: {
      std::string source = msg.query.source;
      if (!msg.query.session.empty()) {
        auto it = tenant->sessions.find(msg.query.session);
        if (it == tenant->sessions.end()) {
          conn->out.append(EncodeFrame(EncodeErrorResponse(
              msg.id, msg.type,
              Status::FailedPrecondition("unknown session '" +
                                         msg.query.session + "'"))));
          return true;
        }
        source = it->second;
      }
      if (!admit()) return true;
      Request request;
      request.source = std::move(source);
      request.tenant = tenant_name;
      request.deadline_ms = msg.query.deadline_ms;
      request.trace = msg.query.trace;
      request.want_explain = msg.query.explain;
      request.sqo.disabled_passes = msg.query.disabled_passes;
      // Session-addressed queries serve from the session's pinned
      // materialized view (snapshot-versioned answers that ApplyDelta
      // advances); inline one-shots evaluate against the base snapshot
      // unless the client opts in.
      request.materialized =
          !msg.query.session.empty() || msg.query.materialized;
      if (msg.query.eval_mode == "interpret") {
        request.eval.mode = EvalMode::kInterpret;
        request.materialize.eval.mode = EvalMode::kInterpret;
      } else if (msg.query.eval_mode == "compile") {
        request.eval.mode = EvalMode::kCompile;
        request.materialize.eval.mode = EvalMode::kCompile;
      }
      const uint64_t conn_id = conn->id;
      const uint64_t id = msg.id;
      const MsgType type = msg.type;
      service_.Submit(std::move(request),
                      [this, conn_id, tenant, id, type](Response response) {
                        QueueReply(conn_id, tenant,
                                   EncodeFrame(EncodeQueryResponse(
                                       id, type, response)));
                      });
      return true;
    }

    case MsgType::kApplyDelta: {
      auto it = tenant->sessions.find(msg.delta.session);
      if (it == tenant->sessions.end()) {
        conn->out.append(EncodeFrame(EncodeErrorResponse(
            msg.id, msg.type,
            Status::FailedPrecondition("unknown session '" +
                                       msg.delta.session + "'"))));
        return true;
      }
      FactDelta delta;
      Status parse = Status::Ok();
      for (const auto& [facts, into] :
           {std::pair<const std::vector<std::string>*, std::vector<Atom>*>(
                &msg.delta.inserts, &delta.inserts),
            std::pair<const std::vector<std::string>*, std::vector<Atom>*>(
                &msg.delta.deletes, &delta.deletes)}) {
        for (const std::string& text : *facts) {
          Result<Atom> atom = ParseAtomText(text);
          if (!atom.ok()) {
            parse = atom.status().WithContext("bad fact '" + text + "'");
            break;
          }
          into->push_back(std::move(atom).value());
        }
        if (!parse.ok()) break;
      }
      if (!parse.ok()) {
        conn->out.append(EncodeFrame(
            EncodeErrorResponse(msg.id, msg.type, parse)));
        return true;
      }
      if (!admit()) return true;
      DeltaRequest request;
      request.source = it->second;
      request.tenant = tenant_name;
      request.delta = std::move(delta);
      request.trace = msg.delta.trace;
      const uint64_t conn_id = conn->id;
      const uint64_t id = msg.id;
      service_.ApplyDelta(
          std::move(request),
          [this, conn_id, tenant, id](DeltaResponse response) {
            QueueReply(conn_id, tenant,
                       EncodeFrame(EncodeApplyDeltaResponse(id, response)));
          });
      return true;
    }

    case MsgType::kMetrics: {
      // Answered inline: the registry snapshot is thread-safe and cheap,
      // and metrics must stay readable even when the queue is full.
      conn->out.append(EncodeFrame(EncodeMetricsResponse(
          msg.id, ExportMetricsJson(metrics))));
      return true;
    }

    case MsgType::kClose: {
      conn->out.append(EncodeFrame(EncodeCloseResponse(msg.id)));
      conn->closing = true;
      return true;
    }
  }
  return true;
}

bool Server::HandleReadable(Connection* conn) {
  char buf[16 * 1024];
  while (true) {
    Result<int64_t> got = ReadSome(conn->fd.get(), buf, sizeof(buf));
    if (!got.ok()) return false;
    if (got.value() < 0) break;  // drained the socket
    if (got.value() == 0) {
      // EOF. Anything buffered is an incomplete frame; drop it.
      return false;
    }
    conn->reader.Append(buf, static_cast<size_t>(got.value()));
    metrics().GetCounter("net/bytes_in")->Add(got.value());
    if (static_cast<size_t>(got.value()) < sizeof(buf)) break;
  }

  std::string payload;
  while (!conn->closing) {
    Result<bool> next = conn->reader.Next(&payload);
    if (!next.ok()) {
      // Malformed or oversize frame: the stream cannot be resynced. Tell
      // the client why (best effort) and close.
      metrics().GetCounter("net/protocol_errors")->Increment();
      conn->out.append(EncodeFrame(
          EncodeErrorResponse(0, MsgType::kClose, next.status())));
      conn->closing = true;
      return true;  // lingers to flush the error, then closes
    }
    if (!next.value()) break;
    metrics().GetCounter("net/frames_in")->Increment();
    Result<ClientMessage> msg = DecodeClientMessage(payload);
    if (!msg.ok()) {
      metrics().GetCounter("net/protocol_errors")->Increment();
      conn->out.append(EncodeFrame(
          EncodeErrorResponse(0, MsgType::kClose, msg.status())));
      conn->closing = true;
      break;
    }
    if (!HandleMessage(conn, msg.value())) return false;
  }
  return true;
}

void Server::PollLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn_ids;
  bool drained = false;

  while (true) {
    ApplyPendingReplies();

    if (stop_requested_) break;

    if (draining_) {
      listener_.Reset();  // stop accepting
      // Close every connection that has nothing left to say. Flush first:
      // replies applied above may complete a connection this iteration.
      std::vector<uint64_t> done;
      for (auto& [id, conn] : conns_) {
        if (!FlushWrites(conn.get())) {
          done.push_back(id);
          continue;
        }
        if (conn->inflight == 0 && conn->out.empty()) done.push_back(id);
      }
      for (uint64_t id : done) CloseConnection(id);
      if (conns_.empty()) {
        drained = true;
        break;
      }
    }

    fds.clear();
    fd_conn_ids.clear();
    fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    fd_conn_ids.push_back(0);
    if (listener_.valid()) {
      fds.push_back(pollfd{listener_.get(), POLLIN, 0});
      fd_conn_ids.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      // A draining server reads nothing new; a closing connection only
      // flushes. POLLERR/POLLHUP are always reported.
      if (!draining_ && !conn->closing) events |= POLLIN;
      if (conn->out_pos < conn->out.size() || !conn->out.empty()) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{conn->fd.get(), events, 0});
      fd_conn_ids.push_back(id);
    }

    int ready;
    do {
      ready = ::poll(fds.data(), fds.size(), -1);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) break;  // unrecoverable poll failure

    // Wake pipe first: it may carry stop/drain commands that change how
    // the rest of this iteration proceeds.
    if (fds[0].revents & POLLIN) {
      char cmds[256];
      while (true) {
        const ssize_t n = ::read(wake_read_.get(), cmds, sizeof(cmds));
        if (n <= 0) break;
        for (ssize_t i = 0; i < n; ++i) {
          if (cmds[i] == kWakeDrain) draining_ = true;
          if (cmds[i] == kWakeStop) stop_requested_ = true;
        }
      }
    }
    if (stop_requested_) break;

    size_t index = 1;
    if (listener_.valid()) {
      if (fds[index].revents & POLLIN) AcceptPending();
      ++index;
    }

    std::vector<uint64_t> to_close;
    for (; index < fds.size(); ++index) {
      const uint64_t conn_id = fd_conn_ids[index];
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      const short revents = fds[index].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        to_close.push_back(conn_id);
        continue;
      }
      if ((revents & POLLIN) && !HandleReadable(conn)) {
        to_close.push_back(conn_id);
        continue;
      }
      if ((revents & POLLHUP) && conn->out_pos >= conn->out.size()) {
        // Peer hung up and nothing is left to flush toward it.
        to_close.push_back(conn_id);
        continue;
      }
      if (!conn->out.empty() && !FlushWrites(conn)) {
        to_close.push_back(conn_id);
        continue;
      }
    }
    for (uint64_t id : to_close) CloseConnection(id);
  }

  listener_.Reset();
  while (!conns_.empty()) CloseConnection(conns_.begin()->first);
  // Drain the service after the transport: in-flight requests complete
  // (their replies were flushed above in the drain case) and the pool
  // joins. Late callbacks just queue replies nobody routes.
  service_.Shutdown();
  ApplyPendingReplies();  // release tenant quota bookkeeping
  if (drained) FlushDrainLog();
}

void Server::FlushDrainLog() {
  std::string out;
  for (const LogEvent& event : service_.event_log().Events()) {
    out += LogEventToJson(event);
    out += '\n';
  }
  if (options_.drain_log_path.empty()) {
    if (!out.empty()) {
      [[maybe_unused]] ssize_t n = ::write(2, out.data(), out.size());
    }
    return;
  }
  const int fd = ::open(options_.drain_log_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  [[maybe_unused]] ssize_t n = ::write(fd, out.data(), out.size());
  ::close(fd);
}

}  // namespace sqod
