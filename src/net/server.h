#ifndef SQOD_NET_SERVER_H_
#define SQOD_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/socket.h"
#include "src/proto/proto.h"
#include "src/service/query_service.h"

namespace sqod {

// The network front-end over QueryService: one poll(2) thread owns the
// listener, the per-connection read/write buffers, and all protocol state;
// evaluation runs on the service's worker pool. The transport never blocks
// on a query: a dispatched request carries a completion callback that
// encodes the reply on the worker thread, queues the frame, and wakes the
// poll thread through a self-pipe to flush it. Responses therefore go out
// in completion order (the protocol's id field is the correlation key).
//
// Multi-tenancy: each configured tenant authenticates with its token in
// the hello message and gets (a) its own Engine session namespace — two
// tenants loading byte-identical programs share nothing, (b) an inflight
// admission quota checked before the service's bounded queue, with
// rejections visible as tenant/<name>/quota_rejected, and (c) per-tenant
// request/latency series next to the service-wide ones. With no tenants
// configured the server is open: every token resolves to "default".
//
// Named sessions: LoadProgram binds a tenant-scoped name to a program
// source (and warms its prepared plan); queries and delta batches then
// address the name. Session-addressed queries serve from the session's
// pinned materialized view, so every reply carries the view's snapshot
// version and ApplyDelta advances it monotonically.
//
// Graceful drain (RequestDrain, wired to SIGTERM by sqo_server): stop
// accepting, stop reading new frames, let in-flight requests finish and
// flush their replies, close the connections, then shut the service down.
// No accepted request goes unanswered.

struct TenantConfig {
  std::string name;   // metric prefix component; no '\x1f', non-empty
  std::string token;  // hello credential; must be unique across tenants
  // Admission quota: maximum requests in flight (dispatched, reply not yet
  // queued) across all of this tenant's connections. 0 = unlimited.
  int max_inflight = 0;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; resolved port via Server::port()
  int backlog = 64;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::string server_name = "sqo_server";
  // Tenant table; empty = open access (any token -> tenant "default",
  // no quota).
  std::vector<TenantConfig> tenants;
  // The service underneath (worker threads, admission queue, slow-query
  // log, metrics snapshot cadence).
  ServiceOptions service;
  // Where a graceful drain writes the retained event log (slow queries,
  // errors, metric snapshots), one JSON object per line. "" = stderr.
  std::string drain_log_path;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // implies Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Validates the tenant table, binds, listens, and starts the poll
  // thread. Fails with kInvalidArgument on a bad tenant table and
  // kInternal on socket errors.
  Status Start();

  // Hard stop: abandon open connections, drain the service, join. Replies
  // still in flight are discarded. Idempotent.
  void Stop();

  // Begin a graceful drain. Async-signal-safe (one write to the wake
  // pipe): callable straight from a SIGTERM handler. Wait() returns once
  // every in-flight request has been answered and the log flushed.
  void RequestDrain();

  // Blocks until the poll thread exits (after Stop or a completed drain).
  void Wait();

  // The bound port (useful with port 0).
  uint16_t port() const { return port_; }

  QueryService& service() { return service_; }
  MetricsRegistry& metrics() { return service_.metrics(); }

  // Currently open connections (tests, stats).
  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Tenant {
    TenantConfig config;
    // Requests dispatched into the service whose replies have not yet been
    // queued for write. Only the poll thread mutates it (dispatch and
    // reply application both happen there), so a plain int suffices.
    int inflight = 0;
    // Named sessions: name -> program source. Poll thread only.
    std::unordered_map<std::string, std::string> sessions;
  };

  struct Connection {
    UniqueFd fd;
    uint64_t id = 0;
    FrameReader reader;
    std::string out;       // encoded frames awaiting write
    size_t out_pos = 0;    // written prefix of `out`
    Tenant* tenant = nullptr;  // set by a successful hello
    int inflight = 0;      // dispatched, reply not yet queued
    bool closing = false;  // close once `out` flushes

    explicit Connection(size_t max_frame_bytes)
        : reader(max_frame_bytes) {}
  };

  // A completed request's encoded reply, queued by a worker thread for the
  // poll thread to route to its connection (dropped if it closed).
  struct PendingReply {
    uint64_t conn_id = 0;
    Tenant* tenant = nullptr;  // quota release, even if the conn is gone
    std::string frame;
  };

  void PollLoop();
  void AcceptPending();
  void ApplyPendingReplies();
  // Reads, frames, and dispatches everything available on `conn`. Returns
  // false when the connection must close (EOF, error, protocol violation).
  bool HandleReadable(Connection* conn);
  bool FlushWrites(Connection* conn);
  // Dispatches one decoded message; appends any immediate reply to
  // conn->out. Returns false to close the connection.
  bool HandleMessage(Connection* conn, const ClientMessage& msg);
  void QueueReply(uint64_t conn_id, Tenant* tenant, std::string frame);
  void WakePoll(char byte);
  void CloseConnection(uint64_t conn_id);
  void FlushDrainLog();
  Tenant* ResolveToken(const std::string& token);

  ServerOptions options_;
  QueryService service_;

  UniqueFd listener_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::atomic<uint16_t> port_{0};

  std::thread poll_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Poll-thread state (no locks: only PollLoop and its callees touch it).
  bool draining_ = false;
  bool stop_requested_ = false;
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::unordered_map<std::string, Tenant*> by_token_;

  std::atomic<size_t> open_connections_{0};

  std::mutex join_mu_;  // serializes Wait()/Stop() joining the poll thread

  std::mutex replies_mu_;
  std::vector<PendingReply> pending_replies_;
};

}  // namespace sqod

#endif  // SQOD_NET_SERVER_H_
