#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sqod {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: '" + host +
                                   "'");
  }
  return addr;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog) {
  SQOD_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen");
  SQOD_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  SQOD_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return ErrnoStatus("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  // Best-effort: a request/response protocol stalls badly under Nagle.
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

Result<int64_t> ReadSome(int fd, char* buf, size_t n) {
  while (true) {
    const ssize_t got = ::read(fd, buf, n);
    if (got >= 0) return static_cast<int64_t>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return int64_t{-1};
    return ErrnoStatus("read");
  }
}

Result<int64_t> WriteSome(int fd, const char* buf, size_t n) {
  while (true) {
    const ssize_t put = ::write(fd, buf, n);
    if (put >= 0) return static_cast<int64_t>(put);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return int64_t{-1};
    return ErrnoStatus("write");
  }
}

Status WriteAll(int fd, const char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    SQOD_ASSIGN_OR_RETURN(int64_t put, WriteSome(fd, buf + off, n - off));
    if (put < 0) {
      // Blocking fd: EAGAIN should not happen; treat as a stall error
      // rather than spinning.
      return Status::Internal("write stalled on a blocking socket");
    }
    off += static_cast<size_t>(put);
  }
  return Status::Ok();
}

}  // namespace sqod
