#ifndef SQOD_NET_SOCKET_H_
#define SQOD_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"

namespace sqod {

// Thin POSIX socket helpers shared by the server and the client: RAII fd
// ownership plus the handful of syscall wrappers both sides need, with
// errno folded into Status messages. No other file in src/net touches raw
// socket syscalls.

// An owned file descriptor; closes on destruction, move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();  // closes if valid

 private:
  int fd_ = -1;
};

// Creates a TCP listener bound to host:port (port 0 = ephemeral) with
// SO_REUSEADDR, non-blocking, listening. `host` must be a numeric IPv4
// address ("127.0.0.1", "0.0.0.0").
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog);

// Blocking TCP connect to a numeric IPv4 host. TCP_NODELAY is set: the
// protocol is request/response and Nagle would serialize pipelined frames.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

// The local port a bound socket ended up on (resolves port-0 binds).
Result<uint16_t> LocalPort(int fd);

Status SetNonBlocking(int fd);

// read(2)/write(2) with EINTR retried. Returns the transfer count; 0 from
// ReadSome means EOF; -1 means EAGAIN/EWOULDBLOCK (caller polls); any
// other failure is a Status. Partial transfers are normal.
Result<int64_t> ReadSome(int fd, char* buf, size_t n);
Result<int64_t> WriteSome(int fd, const char* buf, size_t n);

// Blocking loop around WriteSome until all n bytes are written (client
// side; the fd must be in blocking mode).
Status WriteAll(int fd, const char* buf, size_t n);

}  // namespace sqod

#endif  // SQOD_NET_SOCKET_H_
