#include "src/obs/context.h"

#include <atomic>

namespace sqod {

namespace {

// splitmix64 finalizer: a bijection on uint64, so distinct counter values
// can never collide, but consecutive ids share no visible structure.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t NextTraceId() {
  // Seeded per process from the monotonic clock so ids differ across runs;
  // the counter guarantees uniqueness within a run.
  static const uint64_t seed = static_cast<uint64_t>(NowNs());
  static std::atomic<uint64_t> counter{1};
  uint64_t id =
      Mix64(seed ^ (counter.fetch_add(1, std::memory_order_relaxed) << 1));
  return id == 0 ? 1 : id;
}

std::string TraceIdHex(uint64_t trace_id) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[trace_id & 0xf];
    trace_id >>= 4;
  }
  return out;
}

uint64_t TraceIdFromHex(const std::string& hex) {
  if (hex.size() != 16) return 0;
  uint64_t id = 0;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return 0;
    }
    id = (id << 4) | static_cast<uint64_t>(d);
  }
  return id;
}

}  // namespace sqod
