#ifndef SQOD_OBS_CONTEXT_H_
#define SQOD_OBS_CONTEXT_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sqod {

// Request-scoped observability context: one trace id, one span collector,
// and the shared metric sink, created where a request enters the system
// (QueryService::Submit, or the CLI for single-shot runs) and carried with
// the request through the thread-pool handoff into Prepare/Execute.
//
// The embedded Tracer is single-threaded by design; a TraceContext relies
// on the request lifecycle for safety instead of locks: the submitting
// thread records admission, the enqueue/dequeue of the worker pool is a
// happens-before edge, and from then on exactly the one worker that owns
// the request touches the tracer. Never share a TraceContext between
// concurrently running requests.
struct TraceContext {
  // Process-unique trace id (never 0 once assigned via NextTraceId).
  uint64_t trace_id = 0;
  // Caller-visible request id; defaults to the trace id when unset.
  uint64_t request_id = 0;
  // Submission timestamp (NowNs scale); start of the root span.
  int64_t submit_ns = 0;
  // Absolute deadline on the NowNs scale, -1 for none.
  int64_t deadline_ns = -1;
  // Per-request span collector. Disabled unless the request asked for a
  // trace, so untraced requests pay one branch per instrumentation site.
  Tracer tracer;
  // Shared sink for counters/histograms; not owned, may be null.
  MetricsRegistry* metrics = nullptr;
};

// Returns a process-unique, never-zero trace id. Thread-safe; ids from one
// process never repeat (an atomic counter mixed through a finalizer so ids
// look random across processes but stay cheap to produce).
uint64_t NextTraceId();

// Canonical rendering of a trace id: 16 lowercase hex digits.
std::string TraceIdHex(uint64_t trace_id);

// Parses the TraceIdHex rendering back; returns 0 on malformed input.
uint64_t TraceIdFromHex(const std::string& hex);

}  // namespace sqod

#endif  // SQOD_OBS_CONTEXT_H_
