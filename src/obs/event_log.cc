#include "src/obs/event_log.h"

#include <algorithm>

#include "src/obs/context.h"
#include "src/obs/json.h"

namespace sqod {

std::string RenderLogEvent(const LogEvent& event) {
  std::string out = "[" + event.kind + "]";
  if (event.trace_id != 0) out += " trace=" + TraceIdHex(event.trace_id);
  if (event.request_id != 0 && event.request_id != event.trace_id) {
    out += " request=" + TraceIdHex(event.request_id);
  }
  for (const auto& [key, value] : event.fields) {
    out += ' ';
    out += key;
    out += '=';
    out += std::to_string(value);
  }
  if (!event.message.empty()) {
    out += " | ";
    out += event.message;
  }
  return out;
}

std::string LogEventToJson(const LogEvent& event) {
  std::string out = "{\"ts_ns\":" + std::to_string(event.ts_ns);
  out += ",\"kind\":\"" + JsonEscape(event.kind) + "\"";
  out += ",\"trace_id\":\"" + TraceIdHex(event.trace_id) + "\"";
  out += ",\"request_id\":\"" + TraceIdHex(event.request_id) + "\"";
  for (const auto& [key, value] : event.fields) {
    out += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  }
  out += ",\"message\":\"" + JsonEscape(event.message) + "\"}";
  return out;
}

EventLog::EventLog(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

void EventLog::Append(LogEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<LogEvent> EventLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, `next_` is the oldest retained entry.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<LogEvent> EventLog::EventsOfKind(std::string_view kind) const {
  std::vector<LogEvent> out;
  for (LogEvent& event : Events()) {
    if (event.kind == kind) out.push_back(std::move(event));
  }
  return out;
}

int64_t EventLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace sqod
