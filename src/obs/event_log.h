#ifndef SQOD_OBS_EVENT_LOG_H_
#define SQOD_OBS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sqod {

// One structured log entry. Events are cheap value types: a kind for
// filtering ("slow_query", "error", "metrics_snapshot"), the trace/request
// ids that tie the entry back to a per-request trace, a free-text message
// (for slow queries, the explain summary), and typed int64 fields.
struct LogEvent {
  int64_t ts_ns = 0;
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  std::string kind;
  std::string message;
  std::vector<std::pair<std::string, int64_t>> fields;
};

// Renders one event as a single text line:
//   [slow_query] trace=00f3... total_ns=1203455 answers=36 | <message>
std::string RenderLogEvent(const LogEvent& event);

// Renders one event as a JSON object (ts_ns, kind, trace_id hex, request_id
// hex, fields inline, message).
std::string LogEventToJson(const LogEvent& event);

// A bounded in-memory structured event log: a mutex-guarded ring buffer
// that drops the oldest entry once `capacity` is reached, so a long-lived
// service keeps the most recent window without unbounded growth. This is
// the sink behind the serving layer's slow-query log. Thread-safe.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024);

  void Append(LogEvent event);

  // All retained events, oldest first.
  std::vector<LogEvent> Events() const;

  // Retained events of one kind, oldest first.
  std::vector<LogEvent> EventsOfKind(std::string_view kind) const;

  // Appends over the log's lifetime, including entries since evicted.
  int64_t total_appended() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<LogEvent> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;             // slot the next Append overwrites
  int64_t total_ = 0;
};

}  // namespace sqod

#endif  // SQOD_OBS_EVENT_LOG_H_
