#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/obs/json.h"

namespace sqod {

std::string FormatDurationNs(int64_t ns) {
  char buf[64];
  if (ns < 10 * 1000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  } else if (ns < 10 * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
  } else if (ns < int64_t{10} * 1000 * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

namespace {

void RenderNode(const SpanRecord& span,
                const std::multimap<int, const SpanRecord*>& children,
                int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  size_t pad = static_cast<size_t>(depth) * 2 + span.name.size();
  if (pad < 40) out->append(40 - pad, ' ');
  *out += "  ";
  *out += FormatDurationNs(span.duration_ns);
  if (!span.attrs.empty()) {
    *out += "  [";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) *out += ' ';
      *out += span.attrs[i].first;
      *out += '=';
      *out += std::to_string(span.attrs[i].second);
    }
    *out += ']';
  }
  *out += '\n';
  auto [begin, end] = children.equal_range(span.id);
  for (auto it = begin; it != end; ++it) {
    RenderNode(*it->second, children, depth + 1, out);
  }
}

}  // namespace

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->id < b->id;
            });
  std::multimap<int, const SpanRecord*> children;
  for (const SpanRecord* s : ordered) {
    if (s->parent_id != -1) children.emplace(s->parent_id, s);
  }
  std::string out;
  for (const SpanRecord* s : ordered) {
    if (s->parent_id == -1) RenderNode(*s, children, 0, &out);
  }
  return out;
}

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->id < b->id;
            });
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const SpanRecord* s : ordered) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(s->name);
    out += "\",\"cat\":\"sqod\",\"ph\":\"X\",\"pid\":1,\"tid\":1";
    // Microsecond timestamps with ns precision (Chrome expects us).
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", s->start_ns / 1e3);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", s->duration_ns / 1e3);
    out += buf;
    out += ",\"args\":{\"id\":";
    out += std::to_string(s->id);
    out += ",\"parent\":";
    out += std::to_string(s->parent_id);
    for (const auto& [key, value] : s->attrs) {
      out += ",\"";
      out += JsonEscape(key);
      out += "\":";
      out += std::to_string(value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string ExportMetricsJson(const MetricsRegistry& registry) {
  // One consistent snapshot: recorders on other threads never block on the
  // (potentially slow) formatting below.
  MetricsSnapshot snapshot = registry.Snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":{\"count\":";
    out += std::to_string(histogram.count);
    out += ",\"sum\":";
    out += std::to_string(histogram.sum);
    out += ",\"min\":";
    out += std::to_string(histogram.min);
    out += ",\"max\":";
    out += std::to_string(histogram.max);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",\"mean\":%.3f", histogram.mean());
    out += buf;
    out += ",\"p50\":";
    out += std::to_string(histogram.Percentile(0.5));
    out += ",\"p90\":";
    out += std::to_string(histogram.Percentile(0.9));
    out += ",\"p99\":";
    out += std::to_string(histogram.Percentile(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace sqod
