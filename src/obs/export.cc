#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/obs/context.h"
#include "src/obs/json.h"

namespace sqod {

std::string FormatDurationNs(int64_t ns) {
  char buf[64];
  if (ns < 10 * 1000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  } else if (ns < 10 * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
  } else if (ns < int64_t{10} * 1000 * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

namespace {

void RenderNode(const SpanRecord& span,
                const std::multimap<int, const SpanRecord*>& children,
                int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  size_t pad = static_cast<size_t>(depth) * 2 + span.name.size();
  if (pad < 40) out->append(40 - pad, ' ');
  *out += "  ";
  *out += FormatDurationNs(span.duration_ns);
  if (!span.attrs.empty()) {
    *out += "  [";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) *out += ' ';
      *out += span.attrs[i].first;
      *out += '=';
      *out += std::to_string(span.attrs[i].second);
    }
    *out += ']';
  }
  *out += '\n';
  auto [begin, end] = children.equal_range(span.id);
  for (auto it = begin; it != end; ++it) {
    RenderNode(*it->second, children, depth + 1, out);
  }
}

}  // namespace

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->id < b->id;
            });
  std::multimap<int, const SpanRecord*> children;
  for (const SpanRecord* s : ordered) {
    if (s->parent_id != -1) children.emplace(s->parent_id, s);
  }
  std::string out;
  for (const SpanRecord* s : ordered) {
    if (s->parent_id == -1) RenderNode(*s, children, 0, &out);
  }
  return out;
}

namespace {

// Appends one complete ("ph":"X") trace event. `trace_id_hex` (optional)
// lands in args so viewers and the slow-query log agree on the request id.
void AppendChromeEvent(const SpanRecord& s, int tid,
                       const std::string& trace_id_hex, bool* first,
                       std::string* out) {
  if (!*first) *out += ',';
  *first = false;
  char buf[64];
  *out += "{\"name\":\"";
  *out += JsonEscape(s.name);
  *out += "\",\"cat\":\"sqod\",\"ph\":\"X\",\"pid\":1,\"tid\":";
  *out += std::to_string(tid);
  // Microsecond timestamps with ns precision (Chrome expects us).
  std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", s.start_ns / 1e3);
  *out += buf;
  std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", s.duration_ns / 1e3);
  *out += buf;
  *out += ",\"args\":{\"id\":";
  *out += std::to_string(s.id);
  *out += ",\"parent\":";
  *out += std::to_string(s.parent_id);
  if (!trace_id_hex.empty()) {
    *out += ",\"trace_id\":\"";
    *out += trace_id_hex;
    *out += '"';
  }
  for (const auto& [key, value] : s.attrs) {
    *out += ",\"";
    *out += JsonEscape(key);
    *out += "\":";
    *out += std::to_string(value);
  }
  *out += "}}";
}

std::vector<const SpanRecord*> ByStartOrder(
    const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->id < b->id;
            });
  return ordered;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord* s : ByStartOrder(spans)) {
    AppendChromeEvent(*s, 1, std::string(), &first, &out);
  }
  out += "]}";
  return out;
}

std::string ExportChromeTrace(const std::vector<RequestTrace>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  int tid = 0;
  for (const RequestTrace& trace : traces) {
    ++tid;
    const std::string hex = TraceIdHex(trace.trace_id);
    for (const SpanRecord* s : ByStartOrder(trace.spans)) {
      AppendChromeEvent(*s, tid, hex, &first, &out);
    }
  }
  out += "]}";
  return out;
}

std::string ExportMetricsJson(const MetricsRegistry& registry) {
  // One consistent snapshot: recorders on other threads never block on the
  // (potentially slow) formatting below.
  return ExportMetricsJson(registry.Snapshot());
}

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":{\"count\":";
    out += std::to_string(histogram.count);
    out += ",\"sum\":";
    out += std::to_string(histogram.sum);
    out += ",\"min\":";
    out += std::to_string(histogram.min);
    out += ",\"max\":";
    out += std::to_string(histogram.max);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",\"mean\":%.3f", histogram.mean());
    out += buf;
    out += ",\"p50\":";
    out += std::to_string(histogram.p50());
    out += ",\"p90\":";
    out += std::to_string(histogram.Percentile(0.9));
    out += ",\"p95\":";
    out += std::to_string(histogram.p95());
    out += ",\"p99\":";
    out += std::to_string(histogram.p99());
    out += '}';
  }
  out += "}}";
  return out;
}

namespace {

void AppendCell(const std::string& cell, size_t width, std::string* out) {
  if (cell.size() < width) out->append(width - cell.size(), ' ');
  *out += cell;
  *out += "  ";
}

}  // namespace

std::string RenderHistogramTable(const MetricsSnapshot& snapshot) {
  if (snapshot.histograms.empty()) return "";
  // name column width, then right-aligned numeric columns.
  size_t name_w = 9;  // "histogram"
  for (const auto& [name, h] : snapshot.histograms) {
    name_w = std::max(name_w, name.size());
  }
  auto row = [&](const std::string& name, const std::string& count,
                 const std::string& mean, const std::string& p50,
                 const std::string& p95, const std::string& p99,
                 const std::string& max, std::string* out) {
    *out += name;
    if (name.size() < name_w) out->append(name_w - name.size(), ' ');
    *out += "  ";
    AppendCell(count, 8, out);
    AppendCell(mean, 10, out);
    AppendCell(p50, 10, out);
    AppendCell(p95, 10, out);
    AppendCell(p99, 10, out);
    AppendCell(max, 10, out);
    while (!out->empty() && out->back() == ' ') out->pop_back();
    *out += '\n';
  };
  std::string out;
  row("histogram", "count", "mean", "p50", "p95", "p99", "max", &out);
  for (const auto& [name, h] : snapshot.histograms) {
    row(name, std::to_string(h.count), FormatDurationNs(int64_t(h.mean())),
        FormatDurationNs(h.p50()), FormatDurationNs(h.p95()),
        FormatDurationNs(h.p99()), FormatDurationNs(h.max), &out);
  }
  return out;
}

std::string RenderSnapshotDiff(const MetricsSnapshot& diff) {
  std::string out;
  for (const auto& [name, delta] : diff.counters) {
    out += name;
    out += delta >= 0 ? " +" : " ";
    out += std::to_string(delta);
    out += '\n';
  }
  for (const auto& [name, value] : diff.gauges) {
    out += name;
    out += " = ";
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, h] : diff.histograms) {
    out += name;
    out += " count=";
    out += std::to_string(h.count);
    out += " sum=";
    out += FormatDurationNs(h.sum);
    out += " p50=";
    out += FormatDurationNs(h.p50());
    out += " p95=";
    out += FormatDurationNs(h.p95());
    out += " p99=";
    out += FormatDurationNs(h.p99());
    out += " max=";
    out += FormatDurationNs(h.max);
    out += '\n';
  }
  return out;
}

}  // namespace sqod
