#ifndef SQOD_OBS_EXPORT_H_
#define SQOD_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sqod {

// Human-readable indented tree of the recorded spans, e.g.
//
//   optimize                          1.234 ms
//     normalize                      12.3 us
//     adorn                         456.7 us  [iterations=3 apreds=5]
//
// Children are ordered by start time. Durations pick a readable unit.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

// Chrome trace-event JSON (the `chrome://tracing` / Perfetto format): one
// complete ("ph":"X") event per span with microsecond timestamps, span
// attributes under "args". Loadable as-is.
std::string ExportChromeTrace(const std::vector<SpanRecord>& spans);

// One request's recorded spans plus the trace id that names them in the
// slow-query log and the Response.
struct RequestTrace {
  uint64_t trace_id = 0;
  std::vector<SpanRecord> spans;
};

// Chrome trace-event JSON over many per-request traces: each request
// renders on its own tid (so concurrent requests stack as lanes in the
// viewer) and every event's args carry the request's trace id (hex, the
// same rendering the slow-query log uses), making a slow-query entry
// cross-referencable to its complete trace.
std::string ExportChromeTrace(const std::vector<RequestTrace>& traces);

// Machine-readable dump of a registry: {"counters": {...}, "gauges": {...},
// "histograms": {name: {count,sum,min,max,mean,p50,p90,p95,p99}}}.
std::string ExportMetricsJson(const MetricsRegistry& registry);

// Same, from an already-taken snapshot (e.g. a DiffSnapshots result).
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);

// Aligned text table over a snapshot's histograms — count, mean, and the
// latency tails (p50/p95/p99/max) per instrument. Empty string when the
// snapshot has no histograms. Printed by `sqo_cli --profile`.
std::string RenderHistogramTable(const MetricsSnapshot& snapshot);

// Human-readable rendering of a DiffSnapshots result: one line per changed
// counter (+delta), gauge (current value), and histogram (window count,
// sum, tails). Empty string for an empty diff.
std::string RenderSnapshotDiff(const MetricsSnapshot& diff);

// Formats a nanosecond duration with a readable unit ("1.234 ms").
std::string FormatDurationNs(int64_t ns);

}  // namespace sqod

#endif  // SQOD_OBS_EXPORT_H_
