#ifndef SQOD_OBS_EXPORT_H_
#define SQOD_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sqod {

// Human-readable indented tree of the recorded spans, e.g.
//
//   optimize                          1.234 ms
//     normalize                      12.3 us
//     adorn                         456.7 us  [iterations=3 apreds=5]
//
// Children are ordered by start time. Durations pick a readable unit.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

// Chrome trace-event JSON (the `chrome://tracing` / Perfetto format): one
// complete ("ph":"X") event per span with microsecond timestamps, span
// attributes under "args". Loadable as-is.
std::string ExportChromeTrace(const std::vector<SpanRecord>& spans);

// Machine-readable dump of a registry: {"counters": {...}, "gauges": {...},
// "histograms": {name: {count,sum,min,max,mean,p50,p90,p99}}}.
std::string ExportMetricsJson(const MetricsRegistry& registry);

// Formats a nanosecond duration with a readable unit ("1.234 ms").
std::string FormatDurationNs(int64_t ns);

}  // namespace sqod

#endif  // SQOD_OBS_EXPORT_H_
