#include "src/obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sqod {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                         std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        if (text_.substr(pos_, 4) != "true") return Fail("bad literal");
        pos_ += 4;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Status::Ok();
      case 'f':
        if (text_.substr(pos_, 5) != "false") return Fail("bad literal");
        pos_ += 5;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Status::Ok();
      case 'n':
        if (text_.substr(pos_, 4) != "null") return Fail("bad literal");
        pos_ += 4;
        out->kind = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Eat('}')) return Status::Ok();
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (!Eat(':')) return Fail("expected ':'");
      JsonValue value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return Status::Ok();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Eat(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      Status s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return Status::Ok();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char e = text_[pos_];
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + i];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return Fail("bad \\u escape");
              }
              code = code * 16 +
                     (std::isdigit(static_cast<unsigned char>(h))
                          ? h - '0'
                          : std::tolower(h) - 'a' + 10);
            }
            pos_ += 4;
            // Minimal UTF-8 encoding; surrogate pairs are passed through
            // as two separate 3-byte sequences (fine for validation).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Eat('-')) {
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected value");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Eat('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Status ValidateJson(std::string_view text) {
  Result<JsonValue> parsed = ParseJson(text);
  return parsed.ok() ? Status::Ok() : parsed.status();
}

}  // namespace sqod
