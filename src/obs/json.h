#ifndef SQOD_OBS_JSON_H_
#define SQOD_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace sqod {

// A deliberately minimal JSON layer: enough to emit the exporters' output
// and to parse it back for validation (tests, the CLI --check-json flag,
// the CTest smoke test). Zero dependencies; not a general-purpose library.

// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

// A parsed JSON value. Numbers are kept as doubles (sufficient for the
// exporters, which emit at most ns-scale integers < 2^53).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // Object member access; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage is an error). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

// Syntax-only check built on ParseJson.
Status ValidateJson(std::string_view text);

}  // namespace sqod

#endif  // SQOD_OBS_JSON_H_
