#include "src/obs/metrics.h"

#include <algorithm>

namespace sqod {

namespace {

// Bucket index for a sample: 0 for 0, otherwise 1 + floor(log2(sample)).
int BucketOf(int64_t sample) {
  if (sample <= 0) return 0;
  int b = 0;
  uint64_t v = static_cast<uint64_t>(sample);
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return std::min(b, Histogram::kBuckets - 1);
}

// Inclusive sample range covered by bucket `b`.
std::pair<int64_t, int64_t> BucketRange(int b) {
  if (b == 0) return {0, 0};
  int64_t lo = int64_t{1} << (b - 1);
  int64_t hi = (b >= 63) ? INT64_MAX : (int64_t{1} << b) - 1;
  return {lo, hi};
}

}  // namespace

void Histogram::Record(int64_t sample) {
  if (sample < 0) sample = 0;
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  ++buckets_[BucketOf(sample)];
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based (nearest-rank definition).
  int64_t rank = static_cast<int64_t>(q * count_);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (seen + buckets_[b] >= rank) {
      auto [lo, hi] = BucketRange(b);
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo || buckets_[b] == 1) return lo;
      // Interpolate the rank position within the bucket.
      double frac = double(rank - seen - 1) / double(buckets_[b] - 1);
      return lo + static_cast<int64_t>(frac * double(hi - lo));
    }
    seen += buckets_[b];
  }
  return max_;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace sqod
