#include "src/obs/metrics.h"

#include <algorithm>

namespace sqod {

namespace {

// Bucket index for a sample: 0 for 0, otherwise 1 + floor(log2(sample)).
int BucketOf(int64_t sample) {
  if (sample <= 0) return 0;
  int b = 0;
  uint64_t v = static_cast<uint64_t>(sample);
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return std::min(b, Histogram::kBuckets - 1);
}

// Inclusive sample range covered by bucket `b`.
std::pair<int64_t, int64_t> BucketRange(int b) {
  if (b == 0) return {0, 0};
  int64_t lo = int64_t{1} << (b - 1);
  int64_t hi = (b >= 63) ? INT64_MAX : (int64_t{1} << b) - 1;
  return {lo, hi};
}

}  // namespace

void Histogram::Record(int64_t sample) {
  if (sample < 0) sample = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  ++buckets_[BucketOf(sample)];
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = count_ == 0 ? 0 : min_;
  snapshot.max = count_ == 0 ? 0 : max_;
  snapshot.buckets = buckets_;
  return snapshot;
}

int64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based (nearest-rank definition).
  int64_t rank = static_cast<int64_t>(q * count);
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t seen = 0;
  for (int b = 0; b < static_cast<int>(buckets.size()); ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      auto [lo, hi] = BucketRange(b);
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi <= lo || buckets[b] == 1) return lo;
      // Interpolate the rank position within the bucket.
      double frac = double(rank - seen - 1) / double(buckets[b] - 1);
      return lo + static_cast<int64_t>(frac * double(hi - lo));
    }
    seen += buckets[b];
  }
  return max;
}

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& prev,
                              const MetricsSnapshot& curr) {
  MetricsSnapshot diff;
  for (const auto& [name, value] : curr.counters) {
    auto it = prev.counters.find(name);
    int64_t delta = value - (it == prev.counters.end() ? 0 : it->second);
    if (delta != 0) diff.counters[name] = delta;
  }
  for (const auto& [name, value] : curr.gauges) {
    auto it = prev.gauges.find(name);
    if (it == prev.gauges.end() || it->second != value) {
      diff.gauges[name] = value;
    }
  }
  for (const auto& [name, now] : curr.histograms) {
    auto it = prev.histograms.find(name);
    const HistogramSnapshot* before =
        it == prev.histograms.end() ? nullptr : &it->second;
    HistogramSnapshot d;
    d.count = now.count - (before == nullptr ? 0 : before->count);
    if (d.count <= 0) continue;
    d.sum = now.sum - (before == nullptr ? 0 : before->sum);
    d.buckets.assign(now.buckets.size(), 0);
    for (size_t b = 0; b < now.buckets.size(); ++b) {
      int64_t prev_b = before == nullptr || b >= before->buckets.size()
                           ? 0
                           : before->buckets[b];
      d.buckets[b] = now.buckets[b] - prev_b;
    }
    // The exact min/max of the window is gone (the histogram only keeps
    // lifetime extremes); estimate from the differenced buckets, clamped to
    // what the lifetime extremes still guarantee.
    d.min = now.max;
    d.max = now.min;
    for (size_t b = 0; b < d.buckets.size(); ++b) {
      if (d.buckets[b] <= 0) continue;
      auto [lo, hi] = BucketRange(static_cast<int>(b));
      d.min = std::min(d.min, std::max(lo, now.min));
      d.max = std::max(d.max, std::min(hi, now.max));
    }
    diff.histograms[name] = std::move(d);
  }
  return diff;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace sqod
