#ifndef SQOD_OBS_METRICS_H_
#define SQOD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sqod {

// A monotonically increasing int64 counter. Updates are lock-free atomics
// (relaxed: counters order nothing, they only count), so instruments
// interned once can be hammered from every worker thread.
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A last-write-wins int64 gauge. Atomic for the same reason as Counter.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A point-in-time copy of one histogram, detached from its mutex: the unit
// exporters and tests read, so a slow consumer never blocks recorders.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  std::vector<int64_t> buckets;

  double mean() const { return count == 0 ? 0.0 : double(sum) / count; }

  // Estimated value at quantile q in [0, 1]. Returns 0 on an empty
  // snapshot; q=0 returns min, q=1 returns max.
  int64_t Percentile(double q) const;

  // The latency-tail quartet every exporter reports (E11 and the serving
  // histograms quote tails, not means).
  int64_t p50() const { return Percentile(0.50); }
  int64_t p95() const { return Percentile(0.95); }
  int64_t p99() const { return Percentile(0.99); }
};

// A histogram of non-negative int64 samples over power-of-two buckets:
// bucket b holds samples in [2^(b-1), 2^b) (bucket 0 holds {0}). Tracks
// exact count/sum/min/max; percentiles are estimated by linear
// interpolation within the containing bucket, so they are exact for
// count/sum-style questions and within a factor-of-2 bucket for tails —
// plenty for profiling. Record and all readers are guarded by one mutex;
// multi-field reads that must be consistent should go through Snapshot().
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t sample);

  HistogramSnapshot Snapshot() const;

  int64_t count() const { return Snapshot().count; }
  int64_t sum() const { return Snapshot().sum; }
  int64_t min() const { return Snapshot().min; }
  int64_t max() const { return Snapshot().max; }
  double mean() const { return Snapshot().mean(); }
  int64_t Percentile(double q) const { return Snapshot().Percentile(q); }
  std::vector<int64_t> buckets() const { return Snapshot().buckets; }

 private:
  mutable std::mutex mu_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  std::vector<int64_t> buckets_ = std::vector<int64_t>(kBuckets, 0);
};

// Every instrument of a registry, copied at one point in time. The
// exporters consume this so they never hold the registry lock while
// formatting.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// What changed between two snapshots of the same registry — the "last N
// seconds" view a periodic exporter publishes. Counters carry their delta
// (entries with zero delta are dropped); gauges carry the current value
// (only gauges that changed, or are new, appear); histograms carry the
// window's samples (bucket-wise difference, min/max estimated from the
// differenced buckets clamped to the current extremes). `curr` must be a
// later snapshot of the same registry as `prev`.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& prev,
                              const MetricsSnapshot& curr);

// A registry of named instruments. Lookup interns the instrument on first
// use; returned pointers stay valid for the registry's lifetime, so hot
// loops should look up once and increment through the pointer. Names are
// slash-separated paths, e.g. "eval/rewritten/rule_firings".
//
// Thread safety: Get* and Snapshot may be called from any thread; the
// instruments themselves are atomic (Counter/Gauge) or internally locked
// (Histogram). The direct map accessors (counters()/gauges()/histograms())
// bypass the lock and are for single-threaded consumers only — exporters
// and concurrent readers should use Snapshot().
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Read-only views, sorted by name (std::map order). Not safe against
  // concurrent Get* calls; prefer Snapshot() when other threads may still
  // be recording.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sqod

#endif  // SQOD_OBS_METRICS_H_
