#ifndef SQOD_OBS_METRICS_H_
#define SQOD_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sqod {

// A monotonically increasing int64 counter.
class Counter {
 public:
  void Add(int64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// A last-write-wins int64 gauge.
class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// A histogram of non-negative int64 samples over power-of-two buckets:
// bucket b holds samples in [2^(b-1), 2^b) (bucket 0 holds {0}). Tracks
// exact count/sum/min/max; percentiles are estimated by linear
// interpolation within the containing bucket, so they are exact for
// count/sum-style questions and within a factor-of-2 bucket for tails —
// plenty for profiling.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t sample);

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : double(sum_) / count_; }

  // Estimated value at quantile q in [0, 1]. Returns 0 on an empty
  // histogram; q=0 returns min(), q=1 returns max().
  int64_t Percentile(double q) const;

  const std::vector<int64_t>& buckets() const { return buckets_; }

 private:
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  std::vector<int64_t> buckets_ = std::vector<int64_t>(kBuckets, 0);
};

// A registry of named instruments. Lookup interns the instrument on first
// use; returned pointers stay valid for the registry's lifetime, so hot
// loops should look up once and increment through the pointer. Names are
// slash-separated paths, e.g. "eval/rewritten/rule_firings".
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Read-only views, sorted by name (std::map order).
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  void Clear();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sqod

#endif  // SQOD_OBS_METRICS_H_
