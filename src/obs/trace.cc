#include "src/obs/trace.h"

#include <chrono>

#include "src/base/check.h"

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#define SQOD_OBS_HAVE_CLOCK_GETTIME 1
#endif

namespace sqod {

int64_t NowNs() {
#ifdef SQOD_OBS_HAVE_CLOCK_GETTIME
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
#endif
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    handle_ = other.handle_;
    other.tracer_ = nullptr;
    other.handle_ = -1;
  }
  return *this;
}

void Span::SetAttr(std::string_view key, int64_t value) {
  if (tracer_ != nullptr) tracer_->SetAttr(handle_, key, value);
}

void Span::End() {
  if (tracer_ != nullptr) {
    tracer_->CloseSpan(handle_);
    tracer_ = nullptr;
    handle_ = -1;
  }
}

void Span::EndAt(int64_t end_ns) {
  if (tracer_ != nullptr) {
    tracer_->CloseSpanAt(handle_, end_ns);
    tracer_ = nullptr;
    handle_ = -1;
  }
}

Span Tracer::StartSpan(std::string_view name) {
  return StartSpanAt(name, NowNs());
}

Span Tracer::StartSpanAt(std::string_view name, int64_t start_ns) {
  if (!enabled_) return Span();
  int handle = static_cast<int>(open_.size());
  SpanRecord record;
  record.id = next_id_++;
  record.parent_id =
      open_stack_.empty() ? -1 : open_[open_stack_.back()].id;
  record.name = std::string(name);
  record.start_ns = start_ns;
  open_.push_back(std::move(record));
  closed_.push_back(false);
  open_stack_.push_back(handle);
  return Span(this, handle);
}

std::vector<SpanRecord> Tracer::TakeSpans() {
  SQOD_CHECK_MSG(open_stack_.empty(), "TakeSpans with open spans");
  std::vector<SpanRecord> out = std::move(spans_);
  Clear();
  return out;
}

void Tracer::CloseSpan(int handle) { CloseSpanAt(handle, NowNs()); }

void Tracer::CloseSpanAt(int handle, int64_t now) {
  SQOD_CHECK(handle >= 0 && handle < static_cast<int>(open_.size()));
  SQOD_CHECK_MSG(!closed_[handle], "span closed twice");
  // Spans closing out of stack order (a moved Span outliving its lexical
  // scope) are tolerated: any open descendant is closed first, with its
  // elapsed time as of now.
  while (!open_stack_.empty() && open_stack_.back() != handle) {
    CloseSpan(open_stack_.back());
  }
  if (!open_stack_.empty()) open_stack_.pop_back();
  SpanRecord& record = open_[handle];
  record.duration_ns = now - record.start_ns;
  closed_[handle] = true;
  spans_.push_back(std::move(record));
  // Handle slots are only reusable once no span is open.
  if (open_stack_.empty()) {
    open_.clear();
    closed_.clear();
  }
}

void Tracer::SetAttr(int handle, std::string_view key, int64_t value) {
  SQOD_CHECK(handle >= 0 && handle < static_cast<int>(open_.size()));
  open_[handle].attrs.emplace_back(std::string(key), value);
}

void Tracer::Clear() {
  open_.clear();
  closed_.clear();
  open_stack_.clear();
  spans_.clear();
  next_id_ = 0;
}

}  // namespace sqod
