#ifndef SQOD_OBS_TRACE_H_
#define SQOD_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sqod {

// Monotonic wall clock in nanoseconds (CLOCK_MONOTONIC; falls back to
// std::chrono::steady_clock on platforms without it).
int64_t NowNs();

// One closed span as recorded by a Tracer. Ids are assigned at open in
// start order, so sorting by `id` recovers chronological/preorder layout;
// spans() itself is ordered by *close* time (children before parents).
struct SpanRecord {
  int id = -1;         // unique, start-ordered
  int parent_id = -1;  // id of the enclosing span, -1 for a root
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  std::vector<std::pair<std::string, int64_t>> attrs;
};

class Tracer;

// RAII handle for an open span. Obtained from Tracer::StartSpan; the span
// closes (and its record becomes visible) when the handle is destroyed or
// End() is called. Move-only. A default-constructed or disabled-tracer Span
// is inert: every member is a no-op, so instrumentation sites need no
// enabled() checks of their own.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  // Attaches a key -> int64 attribute to the span (no-op when inert).
  void SetAttr(std::string_view key, int64_t value);

  // Closes the span now. Idempotent.
  void End();

  // Closes the span with an explicit end timestamp (NowNs() scale), for
  // post-hoc spans whose interval was measured elsewhere — e.g. parallel
  // partition tasks, whose timing the coordinator replays into the
  // single-threaded tracer after the iteration barrier. Idempotent.
  void EndAt(int64_t end_ns);

  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, int handle) : tracer_(tracer), handle_(handle) {}

  Tracer* tracer_ = nullptr;
  int handle_ = -1;
};

// A lightweight single-threaded span collector. Disabled by default:
// StartSpan on a disabled tracer returns an inert Span and costs one branch.
// Parentage is tracked via the tracer's open-span stack, so lexically nested
// StartSpan calls produce a properly nested span tree.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Opens a span named `name` under the innermost open span.
  Span StartSpan(std::string_view name);

  // Same, but with an explicit (typically earlier) start timestamp, for
  // spans whose beginning was observed before a collector was reachable —
  // e.g. a queue-wait span recorded by the worker that dequeues a request,
  // covering the time since submission. `start_ns` is on the NowNs() scale.
  Span StartSpanAt(std::string_view name, int64_t start_ns);

  // Closed spans, in order of closing. Link records via id / parent_id.
  const std::vector<SpanRecord>& spans() const { return spans_; }

  // Moves the closed spans out (and resets the id counter), leaving the
  // tracer ready for reuse. Open spans must be closed first.
  std::vector<SpanRecord> TakeSpans();

  // Drops all recorded and open spans.
  void Clear();

 private:
  friend class Span;

  void CloseSpan(int handle);
  void CloseSpanAt(int handle, int64_t end_ns);
  void SetAttr(int handle, std::string_view key, int64_t value);

  bool enabled_ = false;
  int next_id_ = 0;
  std::vector<SpanRecord> open_;   // handle -> open span record
  std::vector<bool> closed_;       // handle -> already closed?
  std::vector<int> open_stack_;    // handles of currently open spans
  std::vector<SpanRecord> spans_;  // closed records
};

}  // namespace sqod

#endif  // SQOD_OBS_TRACE_H_
