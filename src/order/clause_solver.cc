#include "src/order/clause_solver.h"

#include "src/order/solver.h"

namespace sqod {

namespace {

bool Search(std::vector<Comparison>* assignment,
            const std::vector<OrderClause>& clauses, size_t index) {
  if (!ComparisonsConsistent(*assignment)) return false;
  if (index == clauses.size()) return true;

  const OrderClause& clause = clauses[index];
  // A clause literal already entailed by the assignment satisfies the clause
  // without branching.
  {
    OrderSolver solver(*assignment);
    for (const Comparison& lit : clause) {
      if (solver.Entails(lit)) {
        return Search(assignment, clauses, index + 1);
      }
    }
  }
  for (const Comparison& lit : clause) {
    assignment->push_back(lit);
    if (Search(assignment, clauses, index + 1)) {
      assignment->pop_back();
      return true;
    }
    assignment->pop_back();
  }
  return false;
}

}  // namespace

bool SatisfiableWithClauses(const std::vector<Comparison>& base,
                            const std::vector<OrderClause>& clauses) {
  std::vector<Comparison> assignment = base;
  // An empty clause is an immediate contradiction.
  for (const OrderClause& c : clauses) {
    if (c.empty()) return false;
  }
  return Search(&assignment, clauses, 0);
}

}  // namespace sqod
