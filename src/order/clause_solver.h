#ifndef SQOD_ORDER_CLAUSE_SOLVER_H_
#define SQOD_ORDER_CLAUSE_SOLVER_H_

#include <vector>

#include "src/ast/comparison.h"

namespace sqod {

// A clause is a disjunction of order atoms. Clauses arise when checking
// satisfiability of a rule body w.r.t. {theta}-ICs: every homomorphism of an
// IC into the body contributes the clause "not all of the IC's order atoms
// hold", i.e. the disjunction of their negations.
using OrderClause = std::vector<Comparison>;

// Decides satisfiability of   base /\ (c11 v c12 v ...) /\ (c21 v ...) ...
// over a dense order, by DPLL-style branching on the clauses with
// consistency pruning through OrderSolver. Exponential in the number of
// clauses in the worst case (the problem is Pi2P-hard in general), fine for
// the problem sizes of the paper's constructions.
bool SatisfiableWithClauses(const std::vector<Comparison>& base,
                            const std::vector<OrderClause>& clauses);

}  // namespace sqod

#endif  // SQOD_ORDER_CLAUSE_SOLVER_H_
