#include "src/order/solver.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "src/base/check.h"

namespace sqod {

namespace {

// Union-find over dense node ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

// The normalized constraint system: nodes for every distinct term, `=`
// already merged, digraph of <= / < edges, list of != pairs.
struct System {
  std::vector<Term> node_term;          // node id -> a representative term
  std::map<Term, int> term_node;        // term -> node id (Term has operator<)
  std::vector<std::pair<int, int>> le;  // u <= v
  std::vector<std::pair<int, int>> lt;  // u < v
  std::vector<std::pair<int, int>> ne;  // u != v
  UnionFind uf{0};
  bool trivially_inconsistent = false;

  int NodeFor(const Term& t) {
    auto it = term_node.find(t);
    if (it != term_node.end()) return it->second;
    int id = static_cast<int>(node_term.size());
    node_term.push_back(t);
    term_node.emplace(t, id);
    return id;
  }
};

System BuildSystem(const std::vector<Comparison>& conjuncts) {
  System sys;
  // First pass: create nodes and collect raw relations.
  std::vector<std::pair<int, int>> eq;
  for (const Comparison& raw : conjuncts) {
    Comparison c = raw.Canonical();  // only kLt, kLe, kEq, kNe remain
    int u = sys.NodeFor(c.lhs);
    int v = sys.NodeFor(c.rhs);
    switch (c.op) {
      case CmpOp::kLt: sys.lt.emplace_back(u, v); break;
      case CmpOp::kLe: sys.le.emplace_back(u, v); break;
      case CmpOp::kEq: eq.emplace_back(u, v); break;
      case CmpOp::kNe: sys.ne.emplace_back(u, v); break;
      default: SQOD_CHECK(false);
    }
  }
  // Order the mentioned constants: equal constants share a node already
  // (Term equality), distinct constants get a strict edge per the true order.
  std::vector<int> const_nodes;
  for (int i = 0; i < static_cast<int>(sys.node_term.size()); ++i) {
    if (sys.node_term[i].is_const()) const_nodes.push_back(i);
  }
  for (size_t i = 0; i < const_nodes.size(); ++i) {
    for (size_t j = i + 1; j < const_nodes.size(); ++j) {
      int a = const_nodes[i];
      int b = const_nodes[j];
      if (sys.node_term[a].value() < sys.node_term[b].value()) {
        sys.lt.emplace_back(a, b);
      } else {
        sys.lt.emplace_back(b, a);
      }
    }
  }
  // Merge equality classes.
  sys.uf = UnionFind(static_cast<int>(sys.node_term.size()));
  for (auto [u, v] : eq) sys.uf.Union(u, v);
  return sys;
}

// Tarjan SCC over the merged <=/< digraph. Returns component id per class
// representative; nodes in the same SCC must be equal in any model.
std::vector<int> CondenseSccs(System* sys) {
  const int n = static_cast<int>(sys->node_term.size());
  // Build adjacency over union-find representatives.
  std::vector<std::vector<int>> adj(n);
  auto add_edge = [&](int u, int v) {
    adj[sys->uf.Find(u)].push_back(sys->uf.Find(v));
  };
  for (auto [u, v] : sys->le) add_edge(u, v);
  for (auto [u, v] : sys->lt) add_edge(u, v);

  std::vector<int> comp(n, -1), low(n), num(n, -1), stack;
  std::vector<bool> on_stack(n, false);
  int counter = 0, comp_count = 0;
  // Iterative Tarjan to avoid deep recursion on long chains.
  struct Frame {
    int node;
    size_t edge;
  };
  for (int start = 0; start < n; ++start) {
    if (sys->uf.Find(start) != start || num[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    num[start] = low[start] = counter++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.node].size()) {
        int next = adj[f.node][f.edge++];
        if (num[next] == -1) {
          num[next] = low[next] = counter++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          low[f.node] = std::min(low[f.node], num[next]);
        }
      } else {
        if (low[f.node] == num[f.node]) {
          for (;;) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = comp_count;
            if (w == f.node) break;
          }
          ++comp_count;
        }
        int finished = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[finished]);
        }
      }
    }
  }
  return comp;
}

// Full analysis: returns (consistent, component id per node). Nodes with the
// same component id are forced equal.
std::pair<bool, std::vector<int>> Analyze(
    const std::vector<Comparison>& conjuncts) {
  System sys = BuildSystem(conjuncts);
  const int n = static_cast<int>(sys.node_term.size());
  std::vector<int> comp_of_rep = CondenseSccs(&sys);
  std::vector<int> comp(n);
  for (int i = 0; i < n; ++i) comp[i] = comp_of_rep[sys.uf.Find(i)];

  // A strict edge inside one component contradicts forced equality.
  for (auto [u, v] : sys.lt) {
    if (comp[u] == comp[v]) return {false, comp};
  }
  // Two distinct constants cannot be forced equal (they are distinct points
  // of the order). Distinct constants always have distinct nodes.
  std::map<int, int> const_comp;  // component -> node of a constant in it
  for (int i = 0; i < n; ++i) {
    if (!sys.node_term[i].is_const()) continue;
    auto [it, inserted] = const_comp.emplace(comp[i], i);
    if (!inserted && it->second != i) return {false, comp};
  }
  // A != between members of one component is a contradiction.
  for (auto [u, v] : sys.ne) {
    if (comp[u] == comp[v]) return {false, comp};
  }
  return {true, comp};
}

}  // namespace

bool OrderSolver::Consistent() const { return Analyze(conjuncts_).first; }

bool OrderSolver::Entails(const Comparison& c) const {
  // Fast path: the negated literal alone may be unsatisfiable (e.g. 3 < 2).
  std::vector<Comparison> with_negation = conjuncts_;
  with_negation.push_back(c.Negated());
  return !Analyze(with_negation).first;
}

std::vector<std::pair<VarId, Term>> OrderSolver::ForcedEqualities() const {
  std::vector<std::pair<VarId, Term>> out;
  System sys = BuildSystem(conjuncts_);
  const int n = static_cast<int>(sys.node_term.size());
  std::vector<int> comp_of_rep = CondenseSccs(&sys);
  std::vector<int> comp(n);
  for (int i = 0; i < n; ++i) comp[i] = comp_of_rep[sys.uf.Find(i)];

  // Pick a representative per component: a constant if present, otherwise
  // the smallest term.
  std::map<int, Term> rep;
  for (int i = 0; i < n; ++i) {
    const Term& t = sys.node_term[i];
    auto it = rep.find(comp[i]);
    if (it == rep.end()) {
      rep.emplace(comp[i], t);
    } else if (t.is_const() && !it->second.is_const()) {
      it->second = t;
    } else if (t.is_const() == it->second.is_const() && t < it->second) {
      it->second = t;
    }
  }
  for (int i = 0; i < n; ++i) {
    const Term& t = sys.node_term[i];
    if (!t.is_var()) continue;
    const Term& r = rep.at(comp[i]);
    if (t != r) out.emplace_back(t.var(), r);
  }
  return out;
}

bool ComparisonsConsistent(const std::vector<Comparison>& conjuncts) {
  return OrderSolver(conjuncts).Consistent();
}

bool ComparisonsEntail(const std::vector<Comparison>& conjuncts,
                       const Comparison& c) {
  return OrderSolver(conjuncts).Entails(c);
}

}  // namespace sqod
