#ifndef SQOD_ORDER_SOLVER_H_
#define SQOD_ORDER_SOLVER_H_

#include <utility>
#include <vector>

#include "src/ast/comparison.h"

namespace sqod {

// Decision procedure for conjunctions of order atoms over a *dense* total
// order without endpoints (Section 2 of the paper). Terms are variables or
// constants; the constants are sample points of the dense order, so strict
// room always exists between distinct constants and beyond any constant.
//
// The procedure: merge `=` classes (union-find), add the true order between
// the mentioned constants, collapse strongly connected components of the
// `<=`/`<` digraph (an SCC forces equality of its members), and reject if a
// strict edge lies inside an SCC, two distinct constants fall into one class,
// or a `!=` connects members of one class. A conjunction passing these tests
// is always realizable over a dense order.
class OrderSolver {
 public:
  OrderSolver() = default;
  explicit OrderSolver(std::vector<Comparison> conjuncts)
      : conjuncts_(std::move(conjuncts)) {}

  void Add(const Comparison& c) { conjuncts_.push_back(c); }
  void AddAll(const std::vector<Comparison>& cs) {
    conjuncts_.insert(conjuncts_.end(), cs.begin(), cs.end());
  }

  const std::vector<Comparison>& conjuncts() const { return conjuncts_; }

  // True iff the conjunction is satisfiable over a dense order.
  bool Consistent() const;

  // True iff the conjunction logically implies `c` over a dense order
  // (i.e., conjunction AND NOT c is unsatisfiable). An inconsistent
  // conjunction entails everything.
  bool Entails(const Comparison& c) const;

  // Variable equalities forced by the conjunction (e.g., X <= Y and Y <= X).
  // Each pair is (variable, representative term to substitute for it), where
  // the representative is a constant if the class contains one. Only
  // meaningful when Consistent(). Pairs are returned for every non-
  // representative variable of every class of size >= 2.
  std::vector<std::pair<VarId, Term>> ForcedEqualities() const;

 private:
  std::vector<Comparison> conjuncts_;
};

// Convenience wrappers.
bool ComparisonsConsistent(const std::vector<Comparison>& conjuncts);
bool ComparisonsEntail(const std::vector<Comparison>& conjuncts,
                       const Comparison& c);

}  // namespace sqod

#endif  // SQOD_ORDER_SOLVER_H_
