#include "src/parser/lexer.h"

#include <cctype>

namespace sqod {

namespace {

bool IsIdentStart(char c) { return std::islower(static_cast<unsigned char>(c)); }
bool IsVarStart(char c) {
  return std::isupper(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '@' ||
         c == '\'';
}

std::string Where(int line, int col) {
  return "line " + std::to_string(line) + ", column " + std::to_string(col);
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, std::string text = "", int64_t num = 0) {
    tokens.push_back(Token{kind, std::move(text), num, line, col});
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++col;
      ++i;
      continue;
    }
    if (c == '%') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    int start_col = col;
    auto advance = [&](size_t k) {
      i += k;
      col += static_cast<int>(k);
    };
    if (IsIdentStart(c) || IsVarStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(source[j])) ++j;
      std::string text(source.substr(i, j - i));
      Token t{IsIdentStart(c) ? TokenKind::kIdent : TokenKind::kVariable,
              std::move(text), 0, line, start_col};
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
      int64_t value = 0;
      bool negative = source[i] == '-';
      for (size_t k = i + (negative ? 1 : 0); k < j; ++k) {
        value = value * 10 + (source[k] - '0');
      }
      if (negative) value = -value;
      Token t{TokenKind::kInteger, "", value, line, start_col};
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      while (j < n && source[j] != '"' && source[j] != '\n') ++j;
      if (j >= n || source[j] != '"') {
        return Status::InvalidArgument("unterminated string at " +
                             Where(line, start_col));
      }
      Token t{TokenKind::kString, std::string(source.substr(i + 1, j - i - 1)),
              0, line, start_col};
      tokens.push_back(std::move(t));
      advance(j - i + 1);
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen); advance(1); continue;
      case ')': push(TokenKind::kRParen); advance(1); continue;
      case ',': push(TokenKind::kComma); advance(1); continue;
      case '.': push(TokenKind::kDot); advance(1); continue;
      case ':':
        if (i + 1 < n && source[i + 1] == '-') {
          push(TokenKind::kImplies);
          advance(2);
          continue;
        }
        return Status::InvalidArgument("expected ':-' at " + Where(line, start_col));
      case '?':
        if (i + 1 < n && source[i + 1] == '-') {
          push(TokenKind::kQuery);
          advance(2);
          continue;
        }
        return Status::InvalidArgument("expected '?-' at " + Where(line, start_col));
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNe);
          advance(2);
        } else {
          push(TokenKind::kBang);
          advance(1);
        }
        continue;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLe);
          advance(2);
        } else {
          push(TokenKind::kLt);
          advance(1);
        }
        continue;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGe);
          advance(2);
        } else {
          push(TokenKind::kGt);
          advance(1);
        }
        continue;
      case '=':
        push(TokenKind::kEq);
        advance(1);
        continue;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") + c +
                             "' at " + Where(line, start_col));
    }
  }
  push(TokenKind::kEof);
  return tokens;
}

}  // namespace sqod
