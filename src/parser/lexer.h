#ifndef SQOD_PARSER_LEXER_H_
#define SQOD_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace sqod {

enum class TokenKind {
  kIdent,     // lowercase-leading identifier (predicate / symbol constant)
  kVariable,  // uppercase- or underscore-leading identifier
  kInteger,
  kString,    // double-quoted
  kLParen,
  kRParen,
  kComma,
  kDot,
  kImplies,   // :-
  kQuery,     // ?-
  kBang,      // !
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,        // !=
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier / variable / string payload
  int64_t number = 0; // for kInteger
  int line = 0;
  int column = 0;
};

// Tokenizes a datalog source text. `%` starts a comment running to end of
// line. Returns an error with line/column info on the first bad character.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace sqod

#endif  // SQOD_PARSER_LEXER_H_
