#include "src/parser/parser.h"

#include <optional>
#include <utility>

#include "src/parser/lexer.h"

namespace sqod {

namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedUnit> ParseAll() {
    ParsedUnit unit;
    while (!AtEof()) {
      Status s = ParseClause(&unit);
      if (!s.ok()) return s;
    }
    Status s = unit.program.Validate();
    if (!s.ok()) return s;
    for (const Constraint& ic : unit.constraints) {
      s = unit.program.ValidateConstraint(ic);
      if (!s.ok()) return s;
    }
    // Facts must agree with the arity the program uses.
    for (const Atom& fact : unit.facts) {
      int used = unit.program.Arity(fact.pred());
      if (used != -1 && used != fact.arity()) {
        return Status::InvalidArgument("fact " + fact.ToString() + " has arity " +
                             std::to_string(fact.arity()) +
                             " but the program uses " + PredName(fact.pred()) +
                             "/" + std::to_string(used));
      }
      if (unit.program.IsIdb(fact.pred())) {
        return Status::InvalidArgument("fact " + fact.ToString() +
                             " asserts an IDB predicate; use a rule with an "
                             "empty body instead");
      }
    }
    return unit;
  }

  Result<Rule> ParseSingleRule() {
    ParsedUnit unit;
    Status s = ParseClause(&unit);
    if (!s.ok()) return s;
    if (unit.program.rules().size() == 1) return unit.program.rules()[0];
    if (unit.facts.size() == 1) return Rule(unit.facts[0], {});
    return Status::InvalidArgument("expected a single rule");
  }

  Result<Constraint> ParseSingleConstraint() {
    ParsedUnit unit;
    Status s = ParseClause(&unit);
    if (!s.ok()) return s;
    if (unit.constraints.size() != 1) {
      return Status::InvalidArgument("expected a single integrity constraint");
    }
    return unit.constraints[0];
  }

  Result<Atom> ParseSingleAtom() {
    Result<Atom> atom = ParseAtom();
    if (!atom.ok()) return atom;
    if (!AtEof() && !Check(TokenKind::kDot)) {
      return Status::InvalidArgument("trailing input after atom");
    }
    return atom;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEof() const { return Peek().kind == TokenKind::kEof; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Eat(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  Status ErrorHere(const std::string& msg) const {
    const Token& t = Peek();
    return Status::InvalidArgument(msg + " at line " + std::to_string(t.line) +
                         ", column " + std::to_string(t.column));
  }

  static std::optional<CmpOp> AsCmpOp(TokenKind kind) {
    switch (kind) {
      case TokenKind::kLt: return CmpOp::kLt;
      case TokenKind::kLe: return CmpOp::kLe;
      case TokenKind::kGt: return CmpOp::kGt;
      case TokenKind::kGe: return CmpOp::kGe;
      case TokenKind::kEq: return CmpOp::kEq;
      case TokenKind::kNe: return CmpOp::kNe;
      default: return std::nullopt;
    }
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable:
        Advance();
        return Term::Var(t.text);
      case TokenKind::kInteger:
        Advance();
        return Term::Int(t.number);
      case TokenKind::kString:
        Advance();
        return Term::Symbol(t.text);
      case TokenKind::kIdent:
        Advance();
        return Term::Symbol(t.text);
      default:
        return ErrorHere("expected a term");
    }
  }

  Result<Atom> ParseAtom() {
    if (!Check(TokenKind::kIdent)) return ErrorHere("expected a predicate");
    std::string pred = Advance().text;
    std::vector<Term> args;
    if (Eat(TokenKind::kLParen)) {
      if (!Check(TokenKind::kRParen)) {
        do {
          Result<Term> term = ParseTerm();
          if (!term.ok()) return term.status();
          args.push_back(term.take());
        } while (Eat(TokenKind::kComma));
      }
      if (!Eat(TokenKind::kRParen)) return ErrorHere("expected ')'");
    }
    return Atom(pred, std::move(args));
  }

  // Parses one body element: a literal or a comparison.
  Status ParseBodyElement(std::vector<Literal>* body,
                          std::vector<Comparison>* comparisons) {
    if (Eat(TokenKind::kBang)) {
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      body->push_back(Literal::Neg(atom.take()));
      return Status::Ok();
    }
    // Could be an atom, or a comparison starting with a term. An atom starts
    // with an identifier followed by '(' or by a non-comparison token.
    if (Check(TokenKind::kIdent)) {
      size_t save = pos_;
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      // If a comparison operator follows a 0-ary "atom", re-parse as a term.
      if (!AsCmpOp(Peek().kind).has_value() || atom.value().arity() > 0) {
        body->push_back(Literal::Pos(atom.take()));
        return Status::Ok();
      }
      pos_ = save;
    }
    Result<Term> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    std::optional<CmpOp> op = AsCmpOp(Peek().kind);
    if (!op.has_value()) return ErrorHere("expected a comparison operator");
    Advance();
    Result<Term> rhs = ParseTerm();
    if (!rhs.ok()) return rhs.status();
    comparisons->push_back(Comparison(lhs.take(), *op, rhs.take()));
    return Status::Ok();
  }

  Status ParseBody(std::vector<Literal>* body,
                   std::vector<Comparison>* comparisons) {
    do {
      Status s = ParseBodyElement(body, comparisons);
      if (!s.ok()) return s;
    } while (Eat(TokenKind::kComma));
    if (!Eat(TokenKind::kDot)) return ErrorHere("expected '.'");
    return Status::Ok();
  }

  Status ParseClause(ParsedUnit* unit) {
    if (Eat(TokenKind::kImplies)) {
      // Integrity constraint.
      Constraint ic;
      Status s = ParseBody(&ic.body, &ic.comparisons);
      if (!s.ok()) return s;
      unit->constraints.push_back(std::move(ic));
      return Status::Ok();
    }
    if (Eat(TokenKind::kQuery)) {
      if (!Check(TokenKind::kIdent)) return ErrorHere("expected a predicate");
      unit->program.SetQuery(Advance().text);
      if (!Eat(TokenKind::kDot)) return ErrorHere("expected '.'");
      return Status::Ok();
    }
    Result<Atom> head = ParseAtom();
    if (!head.ok()) return head.status();
    if (Eat(TokenKind::kDot)) {
      // A fact (must be ground).
      if (!head.value().is_ground()) {
        return Status::InvalidArgument("fact " + head.value().ToString() +
                             " is not ground");
      }
      unit->facts.push_back(head.take());
      return Status::Ok();
    }
    if (!Eat(TokenKind::kImplies)) return ErrorHere("expected ':-' or '.'");
    Rule rule;
    rule.head = head.take();
    Status s = ParseBody(&rule.body, &rule.comparisons);
    if (!s.ok()) return s;
    unit->program.AddRule(std::move(rule));
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedUnit> ParseUnit(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.take());
  return parser.ParseAll();
}

Result<Program> ParseProgram(std::string_view source) {
  Result<ParsedUnit> unit = ParseUnit(source);
  if (!unit.ok()) return unit.status();
  return std::move(unit.value().program);
}

Result<Rule> ParseRule(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.take());
  return parser.ParseSingleRule();
}

Result<Constraint> ParseConstraint(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.take());
  return parser.ParseSingleConstraint();
}

Result<Atom> ParseAtomText(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.take());
  return parser.ParseSingleAtom();
}

}  // namespace sqod
