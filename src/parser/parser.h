#ifndef SQOD_PARSER_PARSER_H_
#define SQOD_PARSER_PARSER_H_

#include <string_view>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"

namespace sqod {

// The result of parsing a datalog source unit. A unit may mix:
//   * rules:             head :- body.
//   * ground facts:      p(1, 2).        (collected into `facts`)
//   * integrity constraints:  :- body.
//   * query declaration: ?- pred.
struct ParsedUnit {
  Program program;
  std::vector<Constraint> constraints;
  std::vector<Atom> facts;
};

// Parses `source`; returns the unit or an error with source location. The
// parsed program is validated (arity consistency, safety, EDB-only negation);
// constraints are validated against the program.
Result<ParsedUnit> ParseUnit(std::string_view source);

// Convenience wrappers for tests and examples.
Result<Program> ParseProgram(std::string_view source);
Result<Rule> ParseRule(std::string_view source);
Result<Constraint> ParseConstraint(std::string_view source);
Result<Atom> ParseAtomText(std::string_view source);

}  // namespace sqod

#endif  // SQOD_PARSER_PARSER_H_
