#include "src/proto/proto.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/obs/context.h"

namespace sqod {

namespace {

// Exact-double range for int64s on the wire; see the header comment.
constexpr int64_t kMaxExactDouble = (int64_t{1} << 53) - 1;

void AppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  out->append(JsonEscape(s));
  out->push_back('"');
}

void AppendKey(std::string_view key, std::string* out) {
  AppendQuoted(key, out);
  out->push_back(':');
}

void AppendBool(bool b, std::string* out) {
  out->append(b ? "true" : "false");
}

// ---- decode helpers: every accessor yields kInvalidArgument with the
// field name, so protocol errors point at the offending key.

Status MissingField(std::string_view key) {
  return Status::InvalidArgument("missing or mis-typed field '" +
                                 std::string(key) + "'");
}

Result<const JsonValue*> GetMember(const JsonValue& obj,
                                   const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return MissingField(key);
  return v;
}

Result<std::string> GetString(const JsonValue& obj, const std::string& key) {
  SQOD_ASSIGN_OR_RETURN(const JsonValue* v, GetMember(obj, key));
  if (!v->is_string()) return MissingField(key);
  return v->string;
}

std::string GetStringOr(const JsonValue& obj, const std::string& key,
                        std::string fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->string : std::move(fallback);
}

Result<int64_t> GetInt64(const JsonValue& obj, const std::string& key) {
  SQOD_ASSIGN_OR_RETURN(const JsonValue* v, GetMember(obj, key));
  Result<int64_t> parsed = WireInt64(*v);
  if (!parsed.ok()) return MissingField(key);
  return parsed;
}

int64_t GetInt64Or(const JsonValue& obj, const std::string& key,
                   int64_t fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  Result<int64_t> parsed = WireInt64(*v);
  return parsed.ok() ? parsed.value() : fallback;
}

bool GetBoolOr(const JsonValue& obj, const std::string& key, bool fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool ? v->boolean
                                                           : fallback;
}

// ---- spans: serialized so remote callers see the same per-request span
// trees an in-process Submit returns (and sqo_cli can merge Chrome traces
// from over the wire).

void AppendSpans(const std::vector<SpanRecord>& spans, std::string* out) {
  AppendKey("spans", out);
  out->push_back('[');
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) out->push_back(',');
    out->append("{\"id\":");
    AppendWireInt64(span.id, out);
    out->append(",\"parent\":");
    AppendWireInt64(span.parent_id, out);
    out->push_back(',');
    AppendKey("name", out);
    AppendQuoted(span.name, out);
    out->push_back(',');
    AppendKey("start_ns", out);
    AppendWireInt64(span.start_ns, out);
    out->push_back(',');
    AppendKey("dur_ns", out);
    AppendWireInt64(span.duration_ns, out);
    out->push_back(',');
    AppendKey("attrs", out);
    out->push_back('{');
    for (size_t a = 0; a < span.attrs.size(); ++a) {
      if (a > 0) out->push_back(',');
      AppendKey(span.attrs[a].first, out);
      AppendWireInt64(span.attrs[a].second, out);
    }
    out->append("}}");
  }
  out->push_back(']');
}

std::vector<SpanRecord> DecodeSpans(const JsonValue& payload) {
  std::vector<SpanRecord> spans;
  const JsonValue* arr = payload.Find("spans");
  if (arr == nullptr || !arr->is_array()) return spans;
  spans.reserve(arr->array.size());
  for (const JsonValue& item : arr->array) {
    if (!item.is_object()) continue;
    SpanRecord span;
    span.id = static_cast<int>(GetInt64Or(item, "id", -1));
    span.parent_id = static_cast<int>(GetInt64Or(item, "parent", -1));
    span.name = GetStringOr(item, "name", "");
    span.start_ns = GetInt64Or(item, "start_ns", 0);
    span.duration_ns = GetInt64Or(item, "dur_ns", 0);
    const JsonValue* attrs = item.Find("attrs");
    if (attrs != nullptr && attrs->is_object()) {
      for (const auto& [key, value] : attrs->object) {
        Result<int64_t> parsed = WireInt64(value);
        if (parsed.ok()) span.attrs.emplace_back(key, parsed.value());
      }
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

void AppendEvalStats(const EvalStats& stats, std::string* out) {
  AppendKey("stats", out);
  out->push_back('{');
  AppendKey("iterations", out);
  AppendWireInt64(stats.iterations, out);
  out->push_back(',');
  AppendKey("rule_firings", out);
  AppendWireInt64(stats.rule_firings, out);
  out->push_back(',');
  AppendKey("tuples_derived", out);
  AppendWireInt64(stats.tuples_derived, out);
  out->push_back(',');
  AppendKey("duplicate_derivations", out);
  AppendWireInt64(stats.duplicate_derivations, out);
  out->push_back(',');
  AppendKey("join_probes", out);
  AppendWireInt64(stats.join_probes, out);
  out->push_back(',');
  AppendKey("comparison_checks", out);
  AppendWireInt64(stats.comparison_checks, out);
  out->push_back('}');
}

EvalStats DecodeEvalStats(const JsonValue& payload) {
  EvalStats stats;
  const JsonValue* obj = payload.Find("stats");
  if (obj == nullptr || !obj->is_object()) return stats;
  stats.iterations = GetInt64Or(*obj, "iterations", 0);
  stats.rule_firings = GetInt64Or(*obj, "rule_firings", 0);
  stats.tuples_derived = GetInt64Or(*obj, "tuples_derived", 0);
  stats.duplicate_derivations = GetInt64Or(*obj, "duplicate_derivations", 0);
  stats.join_probes = GetInt64Or(*obj, "join_probes", 0);
  stats.comparison_checks = GetInt64Or(*obj, "comparison_checks", 0);
  return stats;
}

void AppendMaintainStats(const MaintainStats& stats, std::string* out) {
  AppendKey("stats", out);
  out->push_back('{');
  AppendKey("version", out);
  AppendWireInt64(stats.version, out);
  out->push_back(',');
  AppendKey("recomputed", out);
  AppendBool(stats.recomputed, out);
  out->push_back(',');
  AppendKey("edb_inserted", out);
  AppendWireInt64(stats.edb_inserted, out);
  out->push_back(',');
  AppendKey("edb_deleted", out);
  AppendWireInt64(stats.edb_deleted, out);
  out->push_back(',');
  AppendKey("idb_inserted", out);
  AppendWireInt64(stats.idb_inserted, out);
  out->push_back(',');
  AppendKey("idb_deleted", out);
  AppendWireInt64(stats.idb_deleted, out);
  out->push_back(',');
  AppendKey("over_deleted", out);
  AppendWireInt64(stats.over_deleted, out);
  out->push_back(',');
  AppendKey("rederived", out);
  AppendWireInt64(stats.rederived, out);
  out->push_back(',');
  AppendKey("count_updates", out);
  AppendWireInt64(stats.count_updates, out);
  out->push_back(',');
  AppendKey("strata_incremental", out);
  AppendWireInt64(stats.strata_incremental, out);
  out->push_back(',');
  AppendKey("strata_recomputed", out);
  AppendWireInt64(stats.strata_recomputed, out);
  out->push_back(',');
  AppendKey("strata_skipped", out);
  AppendWireInt64(stats.strata_skipped, out);
  out->push_back(',');
  AppendKey("maintain_ns", out);
  AppendWireInt64(stats.maintain_ns, out);
  out->push_back('}');
}

MaintainStats DecodeMaintainStats(const JsonValue& payload) {
  MaintainStats stats;
  const JsonValue* obj = payload.Find("stats");
  if (obj == nullptr || !obj->is_object()) return stats;
  stats.version = GetInt64Or(*obj, "version", 0);
  stats.recomputed = GetBoolOr(*obj, "recomputed", false);
  stats.edb_inserted = GetInt64Or(*obj, "edb_inserted", 0);
  stats.edb_deleted = GetInt64Or(*obj, "edb_deleted", 0);
  stats.idb_inserted = GetInt64Or(*obj, "idb_inserted", 0);
  stats.idb_deleted = GetInt64Or(*obj, "idb_deleted", 0);
  stats.over_deleted = GetInt64Or(*obj, "over_deleted", 0);
  stats.rederived = GetInt64Or(*obj, "rederived", 0);
  stats.count_updates = GetInt64Or(*obj, "count_updates", 0);
  stats.strata_incremental =
      static_cast<int>(GetInt64Or(*obj, "strata_incremental", 0));
  stats.strata_recomputed =
      static_cast<int>(GetInt64Or(*obj, "strata_recomputed", 0));
  stats.strata_skipped =
      static_cast<int>(GetInt64Or(*obj, "strata_skipped", 0));
  stats.maintain_ns = GetInt64Or(*obj, "maintain_ns", 0);
  return stats;
}

// Envelope opener: {"type":"<t>","id":N  — callers append the rest.
std::string OpenEnvelope(MsgType type, uint64_t id) {
  std::string out = "{\"type\":\"";
  out.append(MsgTypeName(type));
  out.append("\",\"id\":");
  AppendWireInt64(static_cast<int64_t>(id), &out);
  return out;
}

void AppendStatus(const Status& status, std::string* out) {
  out->push_back(',');
  AppendKey("code", out);
  AppendQuoted(StatusCodeName(status.code()), out);
  if (!status.ok()) {
    out->push_back(',');
    AppendKey("error", out);
    AppendQuoted(status.message(), out);
  }
}

Status DecodeStatus(const JsonValue& payload) {
  Result<std::string> code_name = GetString(payload, "code");
  if (!code_name.ok()) return code_name.status();
  Result<StatusCode> code = StatusCodeFromName(code_name.value());
  if (!code.ok()) return code.status();
  if (code.value() == StatusCode::kOk) return Status::Ok();
  return Status::Error(code.value(), GetStringOr(payload, "error", ""));
}

const char* EvalModeName(EvalMode mode) {
  return mode == EvalMode::kInterpret ? "interpret" : "compile";
}

}  // namespace

// ------------------------------------------------------------------ frames

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const uint32_t n = static_cast<uint32_t>(payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(payload);
  return frame;
}

Result<bool> FrameReader::Next(std::string* payload) {
  if (buf_.size() - pos_ < kFrameHeaderBytes) {
    // Compact eagerly when everything buffered has been consumed: the
    // common steady state, and it keeps the buffer from creeping.
    if (pos_ == buf_.size() && pos_ != 0) {
      buf_.clear();
      pos_ = 0;
    }
    return false;
  }
  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const size_t n = (size_t{h[0]} << 24) | (size_t{h[1]} << 16) |
                   (size_t{h[2]} << 8) | size_t{h[3]};
  if (n < 2) {
    return Status::InvalidArgument("malformed frame: payload of " +
                                   std::to_string(n) + " byte(s)");
  }
  if (n > max_frame_bytes_) {
    return Status::ResourceExhausted(
        "frame of " + std::to_string(n) + " bytes exceeds the limit of " +
        std::to_string(max_frame_bytes_));
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < n) return false;
  payload->assign(buf_, pos_ + kFrameHeaderBytes, n);
  pos_ += kFrameHeaderBytes + n;
  // Compact once the dead prefix dominates, so long-lived connections
  // don't accrete every frame they ever read.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

// ------------------------------------------------------------ wire helpers

void AppendWireInt64(int64_t value, std::string* out) {
  if (value >= -kMaxExactDouble && value <= kMaxExactDouble) {
    out->append(std::to_string(value));
  } else {
    out->push_back('"');
    out->append(std::to_string(value));
    out->push_back('"');
  }
}

Result<int64_t> WireInt64(const JsonValue& value) {
  if (value.is_number()) {
    const double d = value.number;
    if (std::nearbyint(d) != d) {
      return Status::InvalidArgument("expected an integer, got " +
                                     std::to_string(d));
    }
    return static_cast<int64_t>(d);
  }
  if (value.is_string()) {
    const std::string& s = value.string;
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
      return Status::InvalidArgument("not a decimal int64: '" + s + "'");
    }
    return static_cast<int64_t>(parsed);
  }
  return Status::InvalidArgument("expected an integer");
}

void AppendWireValue(const Value& value, std::string* out) {
  if (value.is_int()) {
    const int64_t v = value.as_int();
    if (v >= -kMaxExactDouble && v <= kMaxExactDouble) {
      out->append(std::to_string(v));
    } else {
      out->append("{\"i\":\"");
      out->append(std::to_string(v));
      out->append("\"}");
    }
  } else {
    AppendQuoted(value.symbol_name(), out);
  }
}

Result<Value> WireValue(const JsonValue& value) {
  if (value.is_number()) {
    SQOD_ASSIGN_OR_RETURN(int64_t v, WireInt64(value));
    return Value::Int(v);
  }
  if (value.is_string()) return Value::Symbol(value.string);
  if (value.is_object()) {
    const JsonValue* i = value.Find("i");
    if (i != nullptr) {
      SQOD_ASSIGN_OR_RETURN(int64_t v, WireInt64(*i));
      return Value::Int(v);
    }
  }
  return Status::InvalidArgument("malformed value in answer tuple");
}

Result<StatusCode> StatusCodeFromName(std::string_view name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    if (name == StatusCodeName(code)) return code;
  }
  return Status::InvalidArgument("unknown status code '" +
                                 std::string(name) + "'");
}

// ---------------------------------------------------------------- messages

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kLoadProgram: return "load_program";
    case MsgType::kQuery: return "query";
    case MsgType::kApplyDelta: return "apply_delta";
    case MsgType::kExplain: return "explain";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kClose: return "close";
  }
  return "unknown";
}

Result<MsgType> MsgTypeFromName(std::string_view name) {
  for (MsgType type :
       {MsgType::kHello, MsgType::kLoadProgram, MsgType::kQuery,
        MsgType::kApplyDelta, MsgType::kExplain, MsgType::kMetrics,
        MsgType::kClose}) {
    if (name == MsgTypeName(type)) return type;
  }
  return Status::InvalidArgument("unknown message type '" +
                                 std::string(name) + "'");
}

// -------------------------------------------------------------- encode side

std::string EncodeHello(uint64_t id, const HelloParams& params) {
  std::string out = OpenEnvelope(MsgType::kHello, id);
  out.push_back(',');
  AppendKey("token", &out);
  AppendQuoted(params.token, &out);
  out.append(",\"min_version\":");
  AppendWireInt64(params.min_version, &out);
  out.append(",\"max_version\":");
  AppendWireInt64(params.max_version, &out);
  out.push_back('}');
  return out;
}

std::string EncodeLoadProgram(uint64_t id, const LoadProgramParams& params) {
  std::string out = OpenEnvelope(MsgType::kLoadProgram, id);
  out.push_back(',');
  AppendKey("session", &out);
  AppendQuoted(params.session, &out);
  out.push_back(',');
  AppendKey("source", &out);
  AppendQuoted(params.source, &out);
  out.push_back('}');
  return out;
}

std::string EncodeQuery(uint64_t id, const QueryParams& params) {
  std::string out = OpenEnvelope(MsgType::kQuery, id);
  if (!params.session.empty()) {
    out.push_back(',');
    AppendKey("session", &out);
    AppendQuoted(params.session, &out);
  }
  if (!params.source.empty()) {
    out.push_back(',');
    AppendKey("source", &out);
    AppendQuoted(params.source, &out);
  }
  out.append(",\"deadline_ms\":");
  AppendWireInt64(params.deadline_ms, &out);
  out.append(",\"materialized\":");
  AppendBool(params.materialized, &out);
  out.append(",\"trace\":");
  AppendBool(params.trace, &out);
  out.append(",\"explain\":");
  AppendBool(params.explain, &out);
  if (!params.eval_mode.empty()) {
    out.push_back(',');
    AppendKey("eval_mode", &out);
    AppendQuoted(params.eval_mode, &out);
  }
  if (!params.disabled_passes.empty()) {
    out.push_back(',');
    AppendKey("disabled_passes", &out);
    out.push_back('[');
    for (size_t i = 0; i < params.disabled_passes.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendQuoted(params.disabled_passes[i], &out);
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

std::string EncodeExplain(uint64_t id, const std::string& session) {
  std::string out = OpenEnvelope(MsgType::kExplain, id);
  out.push_back(',');
  AppendKey("session", &out);
  AppendQuoted(session, &out);
  out.push_back('}');
  return out;
}

std::string EncodeApplyDelta(uint64_t id, const ApplyDeltaParams& params) {
  std::string out = OpenEnvelope(MsgType::kApplyDelta, id);
  out.push_back(',');
  AppendKey("session", &out);
  AppendQuoted(params.session, &out);
  for (const auto& [key, facts] :
       {std::pair<const char*, const std::vector<std::string>*>(
            "inserts", &params.inserts),
        std::pair<const char*, const std::vector<std::string>*>(
            "deletes", &params.deletes)}) {
    out.push_back(',');
    AppendKey(key, &out);
    out.push_back('[');
    for (size_t i = 0; i < facts->size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendQuoted((*facts)[i], &out);
    }
    out.push_back(']');
  }
  out.append(",\"trace\":");
  AppendBool(params.trace, &out);
  out.push_back('}');
  return out;
}

std::string EncodeMetricsRequest(uint64_t id) {
  std::string out = OpenEnvelope(MsgType::kMetrics, id);
  out.push_back('}');
  return out;
}

std::string EncodeClose(uint64_t id) {
  std::string out = OpenEnvelope(MsgType::kClose, id);
  out.push_back('}');
  return out;
}

std::string EncodeHelloResponse(uint64_t id, const HelloResult& result) {
  std::string out = OpenEnvelope(MsgType::kHello, id);
  AppendStatus(Status::Ok(), &out);
  out.append(",\"version\":");
  AppendWireInt64(result.version, &out);
  out.push_back(',');
  AppendKey("tenant", &out);
  AppendQuoted(result.tenant, &out);
  out.push_back(',');
  AppendKey("server", &out);
  AppendQuoted(result.server, &out);
  out.append(",\"max_frame_bytes\":");
  AppendWireInt64(result.max_frame_bytes, &out);
  out.push_back('}');
  return out;
}

std::string EncodeLoadProgramResponse(uint64_t id, const Response& response) {
  std::string out = OpenEnvelope(MsgType::kLoadProgram, id);
  AppendStatus(response.status, &out);
  out.push_back(',');
  AppendKey("trace_id", &out);
  AppendQuoted(TraceIdHex(response.trace_id), &out);
  out.push_back('}');
  return out;
}

std::string EncodeQueryResponse(uint64_t id, MsgType type,
                                const Response& response) {
  std::string out = OpenEnvelope(type, id);
  AppendStatus(response.status, &out);
  out.push_back(',');
  AppendKey("trace_id", &out);
  AppendQuoted(TraceIdHex(response.trace_id), &out);
  if (response.status.ok()) {
    out.push_back(',');
    AppendKey("answers", &out);
    out.push_back('[');
    for (size_t i = 0; i < response.answers.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('[');
      const Tuple& tuple = response.answers[i];
      for (size_t j = 0; j < tuple.size(); ++j) {
        if (j > 0) out.push_back(',');
        AppendWireValue(tuple[j], &out);
      }
      out.push_back(']');
    }
    out.push_back(']');
    out.push_back(',');
    AppendEvalStats(response.stats, &out);
  }
  out.append(",\"snapshot_version\":");
  AppendWireInt64(response.snapshot_version, &out);
  out.append(",\"served_from_view\":");
  AppendBool(response.served_from_view, &out);
  out.append(",\"optimized\":");
  AppendBool(response.optimized, &out);
  out.append(",\"prepare_cache_hit\":");
  AppendBool(response.prepare_cache_hit, &out);
  out.append(",\"passes_ran\":");
  AppendWireInt64(response.passes_ran, &out);
  out.push_back(',');
  AppendKey("eval_mode", &out);
  AppendQuoted(EvalModeName(response.eval_mode), &out);
  out.append(",\"queue_wait_ns\":");
  AppendWireInt64(response.queue_wait_ns, &out);
  out.append(",\"prepare_ns\":");
  AppendWireInt64(response.prepare_ns, &out);
  out.append(",\"execute_ns\":");
  AppendWireInt64(response.execute_ns, &out);
  if (!response.spans.empty()) {
    out.push_back(',');
    AppendSpans(response.spans, &out);
  }
  if (!response.explain_json.empty()) {
    out.push_back(',');
    AppendKey("explain", &out);
    AppendQuoted(response.explain_json, &out);
  }
  out.push_back('}');
  return out;
}

std::string EncodeApplyDeltaResponse(uint64_t id,
                                     const DeltaResponse& response) {
  std::string out = OpenEnvelope(MsgType::kApplyDelta, id);
  AppendStatus(response.status, &out);
  out.push_back(',');
  AppendKey("trace_id", &out);
  AppendQuoted(TraceIdHex(response.trace_id), &out);
  out.append(",\"snapshot_version\":");
  AppendWireInt64(response.snapshot_version, &out);
  if (response.status.ok()) {
    out.push_back(',');
    AppendMaintainStats(response.stats, &out);
  }
  out.append(",\"queue_wait_ns\":");
  AppendWireInt64(response.queue_wait_ns, &out);
  out.append(",\"materialize_ns\":");
  AppendWireInt64(response.materialize_ns, &out);
  out.append(",\"maintain_ns\":");
  AppendWireInt64(response.maintain_ns, &out);
  if (!response.spans.empty()) {
    out.push_back(',');
    AppendSpans(response.spans, &out);
  }
  out.push_back('}');
  return out;
}

std::string EncodeMetricsResponse(uint64_t id,
                                  const std::string& metrics_json) {
  std::string out = OpenEnvelope(MsgType::kMetrics, id);
  AppendStatus(Status::Ok(), &out);
  out.push_back(',');
  AppendKey("metrics", &out);
  out.append(metrics_json);
  out.push_back('}');
  return out;
}

std::string EncodeCloseResponse(uint64_t id) {
  std::string out = OpenEnvelope(MsgType::kClose, id);
  AppendStatus(Status::Ok(), &out);
  out.push_back('}');
  return out;
}

std::string EncodeErrorResponse(uint64_t id, MsgType type,
                                const Status& status) {
  std::string out = OpenEnvelope(type, id);
  AppendStatus(status, &out);
  out.push_back('}');
  return out;
}

// -------------------------------------------------------------- decode side

Result<ClientMessage> DecodeClientMessage(std::string_view payload) {
  SQOD_ASSIGN_OR_RETURN(JsonValue root, ParseJson(payload));
  if (!root.is_object()) {
    return Status::InvalidArgument("request payload is not a JSON object");
  }
  ClientMessage msg;
  SQOD_ASSIGN_OR_RETURN(std::string type_name, GetString(root, "type"));
  SQOD_ASSIGN_OR_RETURN(msg.type, MsgTypeFromName(type_name));
  SQOD_ASSIGN_OR_RETURN(int64_t id, GetInt64(root, "id"));
  msg.id = static_cast<uint64_t>(id);

  switch (msg.type) {
    case MsgType::kHello: {
      msg.hello.token = GetStringOr(root, "token", "");
      msg.hello.min_version = static_cast<int>(
          GetInt64Or(root, "min_version", kProtoVersionMin));
      msg.hello.max_version = static_cast<int>(
          GetInt64Or(root, "max_version", msg.hello.min_version));
      break;
    }
    case MsgType::kLoadProgram: {
      SQOD_ASSIGN_OR_RETURN(msg.load.session, GetString(root, "session"));
      SQOD_ASSIGN_OR_RETURN(msg.load.source, GetString(root, "source"));
      break;
    }
    case MsgType::kQuery: {
      msg.query.session = GetStringOr(root, "session", "");
      msg.query.source = GetStringOr(root, "source", "");
      if (msg.query.session.empty() == msg.query.source.empty()) {
        return Status::InvalidArgument(
            "query needs exactly one of 'session' or 'source'");
      }
      msg.query.deadline_ms = GetInt64Or(root, "deadline_ms", -1);
      msg.query.materialized = GetBoolOr(root, "materialized", false);
      msg.query.trace = GetBoolOr(root, "trace", false);
      msg.query.explain = GetBoolOr(root, "explain", false);
      msg.query.eval_mode = GetStringOr(root, "eval_mode", "");
      if (!msg.query.eval_mode.empty() &&
          msg.query.eval_mode != "interpret" &&
          msg.query.eval_mode != "compile") {
        return Status::InvalidArgument("unknown eval_mode '" +
                                       msg.query.eval_mode + "'");
      }
      const JsonValue* passes = root.Find("disabled_passes");
      if (passes != nullptr) {
        if (!passes->is_array()) return MissingField("disabled_passes");
        for (const JsonValue& item : passes->array) {
          if (!item.is_string()) return MissingField("disabled_passes");
          msg.query.disabled_passes.push_back(item.string);
        }
      }
      break;
    }
    case MsgType::kExplain: {
      SQOD_ASSIGN_OR_RETURN(msg.query.session, GetString(root, "session"));
      msg.query.explain = true;
      break;
    }
    case MsgType::kApplyDelta: {
      SQOD_ASSIGN_OR_RETURN(msg.delta.session, GetString(root, "session"));
      for (const auto& [key, into] :
           {std::pair<const char*, std::vector<std::string>*>(
                "inserts", &msg.delta.inserts),
            std::pair<const char*, std::vector<std::string>*>(
                "deletes", &msg.delta.deletes)}) {
        const JsonValue* arr = root.Find(key);
        if (arr == nullptr) continue;
        if (!arr->is_array()) return MissingField(key);
        for (const JsonValue& item : arr->array) {
          if (!item.is_string()) {
            return Status::InvalidArgument(
                std::string(key) + " entries must be fact strings");
          }
          into->push_back(item.string);
        }
      }
      msg.delta.trace = GetBoolOr(root, "trace", false);
      break;
    }
    case MsgType::kMetrics:
    case MsgType::kClose:
      break;
  }
  return msg;
}

Result<ServerMessage> DecodeServerMessage(std::string_view payload) {
  SQOD_ASSIGN_OR_RETURN(JsonValue root, ParseJson(payload));
  if (!root.is_object()) {
    return Status::InvalidArgument("response payload is not a JSON object");
  }
  ServerMessage msg;
  SQOD_ASSIGN_OR_RETURN(std::string type_name, GetString(root, "type"));
  SQOD_ASSIGN_OR_RETURN(msg.type, MsgTypeFromName(type_name));
  SQOD_ASSIGN_OR_RETURN(int64_t id, GetInt64(root, "id"));
  msg.id = static_cast<uint64_t>(id);
  msg.status = DecodeStatus(root);

  switch (msg.type) {
    case MsgType::kHello: {
      msg.hello.version = static_cast<int>(GetInt64Or(root, "version", 0));
      msg.hello.tenant = GetStringOr(root, "tenant", "");
      msg.hello.server = GetStringOr(root, "server", "");
      msg.hello.max_frame_bytes = GetInt64Or(root, "max_frame_bytes", 0);
      break;
    }
    case MsgType::kLoadProgram: {
      msg.query.status = msg.status;
      msg.query.trace_id = TraceIdFromHex(GetStringOr(root, "trace_id", ""));
      break;
    }
    case MsgType::kQuery:
    case MsgType::kExplain: {
      Response& r = msg.query;
      r.status = msg.status;
      r.trace_id = TraceIdFromHex(GetStringOr(root, "trace_id", ""));
      const JsonValue* answers = root.Find("answers");
      if (answers != nullptr && answers->is_array()) {
        r.answers.reserve(answers->array.size());
        for (const JsonValue& row : answers->array) {
          if (!row.is_array()) {
            return Status::InvalidArgument("answer row is not an array");
          }
          Tuple tuple;
          tuple.reserve(row.array.size());
          for (const JsonValue& cell : row.array) {
            SQOD_ASSIGN_OR_RETURN(Value v, WireValue(cell));
            tuple.push_back(v);
          }
          r.answers.push_back(std::move(tuple));
        }
      }
      r.stats = DecodeEvalStats(root);
      r.snapshot_version = GetInt64Or(root, "snapshot_version", -1);
      r.served_from_view = GetBoolOr(root, "served_from_view", false);
      r.optimized = GetBoolOr(root, "optimized", false);
      r.prepare_cache_hit = GetBoolOr(root, "prepare_cache_hit", false);
      r.passes_ran = static_cast<int>(GetInt64Or(root, "passes_ran", 0));
      r.eval_mode = GetStringOr(root, "eval_mode", "compile") == "interpret"
                        ? EvalMode::kInterpret
                        : EvalMode::kCompile;
      r.queue_wait_ns = GetInt64Or(root, "queue_wait_ns", 0);
      r.prepare_ns = GetInt64Or(root, "prepare_ns", 0);
      r.execute_ns = GetInt64Or(root, "execute_ns", 0);
      r.spans = DecodeSpans(root);
      r.explain_json = GetStringOr(root, "explain", "");
      break;
    }
    case MsgType::kApplyDelta: {
      DeltaResponse& r = msg.delta;
      r.status = msg.status;
      r.trace_id = TraceIdFromHex(GetStringOr(root, "trace_id", ""));
      r.snapshot_version = GetInt64Or(root, "snapshot_version", -1);
      r.stats = DecodeMaintainStats(root);
      r.queue_wait_ns = GetInt64Or(root, "queue_wait_ns", 0);
      r.materialize_ns = GetInt64Or(root, "materialize_ns", 0);
      r.maintain_ns = GetInt64Or(root, "maintain_ns", 0);
      r.spans = DecodeSpans(root);
      break;
    }
    case MsgType::kMetrics: {
      const JsonValue* metrics = root.Find("metrics");
      if (metrics != nullptr) msg.metrics = *metrics;
      break;
    }
    case MsgType::kClose:
      break;
  }
  return msg;
}

}  // namespace sqod
