#ifndef SQOD_PROTO_PROTO_H_
#define SQOD_PROTO_PROTO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/obs/json.h"
#include "src/service/query_service.h"

namespace sqod {

// The sqo_server wire protocol: length-prefixed JSON frames carrying a
// small, versioned request/response schema (docs/protocol.md).
//
// Frame format:
//   uint32 (big endian) payload length | payload bytes (UTF-8 JSON)
// A frame's payload must be at least 2 bytes ("{}") and at most
// max_frame_bytes; anything else is a protocol error and the peer closes
// the connection. FrameReader is the incremental decoder both sides use.
//
// Every request payload is one JSON object:
//   {"type": "<kind>", "id": <client-chosen uint>, ...fields}
// and every response echoes the type and id plus a status:
//   {"type": "<kind>", "id": <id>, "code": "OK", ...payload}
//   {"type": "<kind>", "id": <id>, "code": "INVALID_ARGUMENT",
//    "error": "<message>"}
// Responses may arrive out of request order (the server replies in
// completion order); the id is the correlation key.
//
// The first message on a connection must be `hello`, which authenticates
// the tenant (by token) and negotiates the protocol version: the client
// sends the [min_version, max_version] range it speaks, the server picks
// the highest version both sides support or rejects the connection with
// UNSUPPORTED. Everything after the hello runs under the negotiated
// version and the hello'd tenant's namespace, quotas, and metric prefix.
//
// Integers wider than 2^53-1 do not survive the JSON number round trip
// (the minimal parser stores doubles), so encoders emit any int64 outside
// the exact-double range as a decimal string and decoders accept both
// renderings (WireInt64 below). Trace ids are always hex strings, matching
// the slow-query log's rendering.

inline constexpr int kProtoVersionMin = 1;
inline constexpr int kProtoVersionMax = 1;
inline constexpr size_t kFrameHeaderBytes = 4;
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;  // 4 MiB

// ------------------------------------------------------------------ frames

// Wraps a payload into one wire frame (header + payload).
std::string EncodeFrame(std::string_view payload);

// Incremental frame decoder over a byte stream. Append whatever arrived,
// then call Next until it reports "no complete frame yet". Oversize and
// degenerate (empty) frames surface as errors — the connection is beyond
// resync at that point and must be closed.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t n) { buf_.append(data, n); }
  void Append(std::string_view data) { buf_.append(data); }

  // Extracts the next complete frame payload. Returns true and fills
  // `payload` when a frame was complete, false when more bytes are needed;
  // kInvalidArgument on a zero-length frame, kResourceExhausted on a frame
  // larger than max_frame_bytes.
  Result<bool> Next(std::string* payload);

  // Bytes buffered but not yet consumed by Next.
  size_t buffered() const { return buf_.size() - pos_; }

  size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix; compacted once it grows
};

// ---------------------------------------------------------------- messages

enum class MsgType {
  kHello,
  kLoadProgram,
  kQuery,
  kApplyDelta,
  kExplain,
  kMetrics,
  kClose,
};

// Stable wire name ("hello", "load_program", ...).
const char* MsgTypeName(MsgType type);
Result<MsgType> MsgTypeFromName(std::string_view name);

struct HelloParams {
  std::string token;
  int min_version = kProtoVersionMin;
  int max_version = kProtoVersionMax;
};

struct HelloResult {
  int version = 0;            // the negotiated protocol version
  std::string tenant;         // the resolved tenant namespace
  std::string server;         // server software name, informational
  int64_t max_frame_bytes = 0;  // the server's frame ceiling
};

struct LoadProgramParams {
  std::string session;  // tenant-scoped session name
  std::string source;   // full datalog unit (rules, ICs, facts, query)
};

struct QueryParams {
  // Exactly one of `session` (a name loaded earlier on this tenant) or
  // `source` (an inline one-shot unit) must be set.
  std::string session;
  std::string source;
  int64_t deadline_ms = -1;
  bool materialized = false;
  bool trace = false;
  bool explain = false;
  // "" = server default, else "interpret" | "compile".
  std::string eval_mode;
  // Optimizer passes to switch off (names from PassManager::PassNames;
  // unknown names are a prepare-time error). Part of the server-side
  // prepared-program fingerprint.
  std::vector<std::string> disabled_passes;
};

struct ApplyDeltaParams {
  std::string session;
  // Ground facts in source syntax, e.g. "edge(1, 2)".
  std::vector<std::string> inserts;
  std::vector<std::string> deletes;
  bool trace = false;
};

// A decoded client->server message: the type tag plus the params for that
// type (the others are left default). Explain carries its session in
// `query.session`; Metrics and Close have no params.
struct ClientMessage {
  MsgType type = MsgType::kHello;
  uint64_t id = 0;
  HelloParams hello;
  LoadProgramParams load;
  QueryParams query;
  ApplyDeltaParams delta;
};

// A decoded server->client message. `status` is the request's outcome;
// payload fields are only meaningful when it is OK (except trace_id, which
// rejections carry too).
struct ServerMessage {
  MsgType type = MsgType::kHello;
  uint64_t id = 0;
  Status status;
  HelloResult hello;
  // Query/Explain results decode into the service's own Response type, so
  // a remote call returns exactly what an in-process Submit would.
  Response query;
  DeltaResponse delta;
  // The full metrics export, parsed (counters/gauges/histograms objects).
  JsonValue metrics;
};

// -------------------------------------------------------------- encode side

std::string EncodeHello(uint64_t id, const HelloParams& params);
std::string EncodeLoadProgram(uint64_t id, const LoadProgramParams& params);
std::string EncodeQuery(uint64_t id, const QueryParams& params);
std::string EncodeExplain(uint64_t id, const std::string& session);
std::string EncodeApplyDelta(uint64_t id, const ApplyDeltaParams& params);
std::string EncodeMetricsRequest(uint64_t id);
std::string EncodeClose(uint64_t id);

std::string EncodeHelloResponse(uint64_t id, const HelloResult& result);
std::string EncodeLoadProgramResponse(uint64_t id, const Response& response);
// `type` is kQuery or kExplain (the echo tag).
std::string EncodeQueryResponse(uint64_t id, MsgType type,
                                const Response& response);
std::string EncodeApplyDeltaResponse(uint64_t id,
                                     const DeltaResponse& response);
// `metrics_json` must be a complete JSON object (ExportMetricsJson output);
// it is spliced into the payload verbatim.
std::string EncodeMetricsResponse(uint64_t id,
                                  const std::string& metrics_json);
std::string EncodeCloseResponse(uint64_t id);
// An error reply for any request type (also used for protocol errors,
// where `id` is the offending request's id or 0 when unknowable).
std::string EncodeErrorResponse(uint64_t id, MsgType type,
                                const Status& status);

// -------------------------------------------------------------- decode side

// Decodes one request payload (server side). Malformed JSON, unknown
// types, and missing/mis-typed fields are kInvalidArgument.
Result<ClientMessage> DecodeClientMessage(std::string_view payload);

// Decodes one response payload (client side).
Result<ServerMessage> DecodeServerMessage(std::string_view payload);

// ------------------------------------------------------------ wire helpers
// Exposed for tests and for code that splices custom fields.

// Appends `value` to `out` as a JSON number when exactly representable as
// a double, else as a decimal string.
void AppendWireInt64(int64_t value, std::string* out);
// Reads an int64 encoded either way; kInvalidArgument on anything else.
Result<int64_t> WireInt64(const JsonValue& value);

// Values: integers encode as JSON numbers (or {"i": "<decimal>"} outside
// the exact-double range), symbols as JSON strings.
void AppendWireValue(const Value& value, std::string* out);
Result<Value> WireValue(const JsonValue& value);

// StatusCode <-> stable wire name round trip ("OK", "INVALID_ARGUMENT"...).
Result<StatusCode> StatusCodeFromName(std::string_view name);

}  // namespace sqod

#endif  // SQOD_PROTO_PROTO_H_
