#include "src/service/query_service.h"

#include <chrono>
#include <limits>
#include <utility>

#include "src/engine/explain.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace sqod {

namespace {

EngineOptions MakeEngineOptions(const ServiceOptions& options) {
  EngineOptions engine_options;
  engine_options.metrics = options.metrics;
  return engine_options;
}

ThreadPool::Options MakePoolOptions(const ServiceOptions& options) {
  ThreadPool::Options pool_options;
  pool_options.threads = options.threads;
  pool_options.max_queue = options.max_queue;
  return pool_options;
}

// Per-tenant metric names live under "tenant/<name>/"; empty tenant means
// untenanted (no extra series — the service/ aggregates already cover it).
std::string TenantMetric(const std::string& tenant, const char* suffix) {
  return "tenant/" + tenant + "/" + suffix;
}

}  // namespace

Result<int64_t> DeadlineNsFromMs(int64_t deadline_ms, int64_t now_ns) {
  if (deadline_ms == -1) return int64_t{-1};
  if (deadline_ms < 0) {
    return Status::InvalidArgument(
        "deadline_ms must be -1 (none) or >= 0, got " +
        std::to_string(deadline_ms));
  }
  // now_ns + deadline_ms * 1e6 must fit in int64; check before multiplying.
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  if (deadline_ms > (kMax - now_ns) / 1'000'000) {
    return Status::InvalidArgument("deadline_ms " +
                                   std::to_string(deadline_ms) +
                                   " overflows the ns deadline scale");
  }
  return now_ns + deadline_ms * 1'000'000;
}

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      engine_(MakeEngineOptions(options)),
      event_log_(options.event_log_capacity),
      pool_(MakePoolOptions(options)) {
  if (options_.metrics_snapshot_ms > 0) {
    // Baseline the diff window here, not in the thread: a request served
    // before the thread's first instruction must still show up in the
    // first delta.
    snapshot_thread_ = std::thread(
        [this, prev = metrics().Snapshot()]() mutable {
          SnapshotLoop(std::move(prev));
        });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Deliver(Job* job, Response response) {
  if (job->callback) {
    job->callback(std::move(response));
  } else {
    job->promise.set_value(std::move(response));
  }
}

void QueryService::Deliver(DeltaJob* job, DeltaResponse response) {
  if (job->callback) {
    job->callback(std::move(response));
  } else {
    job->promise.set_value(std::move(response));
  }
}

std::future<Response> QueryService::Submit(Request request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  std::future<Response> future = job->promise.get_future();
  SubmitJob(std::move(job));
  return future;
}

void QueryService::Submit(Request request,
                          std::function<void(Response)> done) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->callback = std::move(done);
  SubmitJob(std::move(job));
}

void QueryService::SubmitJob(std::shared_ptr<Job> job) {
  job->submit_ns = NowNs();

  job->trace.trace_id = NextTraceId();
  job->trace.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  job->trace.submit_ns = job->submit_ns;
  job->trace.metrics = &metrics();
  job->trace.tracer.set_enabled(job->request.trace);
  Tracer& tracer = job->trace.tracer;

  // The single ms→ns deadline conversion. Invalid deadlines are rejected
  // here, before admission, like any other malformed request.
  Result<int64_t> deadline =
      DeadlineNsFromMs(job->request.deadline_ms, job->submit_ns);
  if (!deadline.ok()) {
    metrics().GetCounter("service/requests_rejected")->Increment();
    metrics().GetCounter("service/requests_rejected_invalid")->Increment();
    if (!job->request.tenant.empty()) {
      metrics()
          .GetCounter(TenantMetric(job->request.tenant, "rejected"))
          ->Increment();
    }
    Response response;
    response.trace_id = job->trace.trace_id;
    response.status = deadline.status();
    Deliver(job.get(), std::move(response));
    return;
  }
  job->deadline_ns = deadline.value();
  job->trace.deadline_ns = job->deadline_ns;

  // Everything the submitting thread records must happen strictly before
  // the pool handoff: a worker may start (and touch the tracer) the moment
  // Submit enqueues the job.
  // No trace-id attr here: the Chrome-trace exporter stamps every event's
  // args with the hex trace id, and a second (integer) copy on the root
  // span would shadow it.
  job->root_span = tracer.StartSpanAt("request", job->submit_ns);
  job->root_span.SetAttr("request_id",
                         static_cast<int64_t>(job->trace.request_id));
  {
    Span admission = tracer.StartSpan("request.admission");
    admission.SetAttr("queue_depth",
                      static_cast<int64_t>(pool_.queue_depth()));
  }

  ThreadPool::SubmitResult submitted =
      pool_.Submit([this, job] { Process(job.get()); });
  if (submitted == ThreadPool::SubmitResult::kAccepted) {
    metrics().GetCounter("service/requests_accepted")->Increment();
    if (!job->request.tenant.empty()) {
      metrics()
          .GetCounter(TenantMetric(job->request.tenant, "requests"))
          ->Increment();
    }
    return;
  }

  const bool queue_full = submitted == ThreadPool::SubmitResult::kQueueFull;
  metrics().GetCounter("service/requests_rejected")->Increment();
  metrics()
      .GetCounter(queue_full ? "service/requests_rejected_queue_full"
                             : "service/requests_rejected_shutdown")
      ->Increment();
  if (!job->request.tenant.empty()) {
    metrics()
        .GetCounter(TenantMetric(job->request.tenant, "rejected"))
        ->Increment();
  }
  // Rejected requests never waited, but they still contribute a sample:
  // the queue-wait distribution covers every submitted request, so load
  // shedding pulls the percentiles down instead of hiding them.
  metrics().GetHistogram("service/queue_wait_ns")->Record(0);

  Response response;
  response.trace_id = job->trace.trace_id;
  response.status =
      queue_full ? Status::ResourceExhausted(
                       "admission queue full (max_queue=" +
                       std::to_string(options_.max_queue) + ")")
                 : Status::FailedPrecondition("service is shut down");
  job->root_span.SetAttr("rejected", 1);
  job->root_span.End();
  if (tracer.enabled()) response.spans = tracer.TakeSpans();

  LogEvent event;
  event.ts_ns = NowNs();
  event.trace_id = job->trace.trace_id;
  event.request_id = job->trace.request_id;
  event.kind = "request_rejected";
  event.fields.emplace_back("queue_full", queue_full ? 1 : 0);
  event.message = response.status.message();
  event_log_.Append(std::move(event));

  Deliver(job.get(), std::move(response));
}

Response QueryService::Call(Request request) {
  return Submit(std::move(request)).get();
}

std::future<DeltaResponse> QueryService::ApplyDelta(DeltaRequest request) {
  auto job = std::make_shared<DeltaJob>();
  job->request = std::move(request);
  std::future<DeltaResponse> future = job->promise.get_future();
  SubmitDeltaJob(std::move(job));
  return future;
}

void QueryService::ApplyDelta(DeltaRequest request,
                              std::function<void(DeltaResponse)> done) {
  auto job = std::make_shared<DeltaJob>();
  job->request = std::move(request);
  job->callback = std::move(done);
  SubmitDeltaJob(std::move(job));
}

void QueryService::SubmitDeltaJob(std::shared_ptr<DeltaJob> job) {
  job->submit_ns = NowNs();

  job->trace.trace_id = NextTraceId();
  job->trace.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  job->trace.submit_ns = job->submit_ns;
  job->trace.metrics = &metrics();
  job->trace.tracer.set_enabled(job->request.trace);

  Tracer& tracer = job->trace.tracer;
  job->root_span = tracer.StartSpanAt("delta", job->submit_ns);
  job->root_span.SetAttr("request_id",
                         static_cast<int64_t>(job->trace.request_id));
  job->root_span.SetAttr(
      "inserts", static_cast<int64_t>(job->request.delta.inserts.size()));
  job->root_span.SetAttr(
      "deletes", static_cast<int64_t>(job->request.delta.deletes.size()));
  {
    Span admission = tracer.StartSpan("delta.admission");
    admission.SetAttr("queue_depth",
                      static_cast<int64_t>(pool_.queue_depth()));
  }

  ThreadPool::SubmitResult submitted =
      pool_.Submit([this, job] { ProcessDelta(job.get()); });
  if (submitted == ThreadPool::SubmitResult::kAccepted) {
    metrics().GetCounter("service/delta_batches")->Increment();
    if (!job->request.tenant.empty()) {
      metrics()
          .GetCounter(TenantMetric(job->request.tenant, "delta_batches"))
          ->Increment();
    }
    return;
  }

  const bool queue_full = submitted == ThreadPool::SubmitResult::kQueueFull;
  metrics().GetCounter("service/delta_batches_rejected")->Increment();
  if (!job->request.tenant.empty()) {
    metrics()
        .GetCounter(TenantMetric(job->request.tenant, "rejected"))
        ->Increment();
  }

  DeltaResponse response;
  response.trace_id = job->trace.trace_id;
  response.status =
      queue_full ? Status::ResourceExhausted(
                       "admission queue full (max_queue=" +
                       std::to_string(options_.max_queue) + ")")
                 : Status::FailedPrecondition("service is shut down");
  job->root_span.SetAttr("rejected", 1);
  job->root_span.End();
  if (tracer.enabled()) response.spans = tracer.TakeSpans();

  LogEvent event;
  event.ts_ns = NowNs();
  event.trace_id = job->trace.trace_id;
  event.request_id = job->trace.request_id;
  event.kind = "request_rejected";
  event.fields.emplace_back("queue_full", queue_full ? 1 : 0);
  event.fields.emplace_back("delta", 1);
  event.message = response.status.message();
  event_log_.Append(std::move(event));

  Deliver(job.get(), std::move(response));
}

DeltaResponse QueryService::CallApplyDelta(DeltaRequest request) {
  return ApplyDelta(std::move(request)).get();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    stopping_ = true;
  }
  snapshot_cv_.notify_all();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  pool_.Shutdown();
}

void QueryService::SnapshotLoop(MetricsSnapshot prev) {
  const auto period = std::chrono::milliseconds(options_.metrics_snapshot_ms);
  std::unique_lock<std::mutex> lock(snapshot_mu_);
  while (!stopping_) {
    snapshot_cv_.wait_for(lock, period, [&] { return stopping_; });
    if (stopping_) break;
    // Snapshot without holding snapshot_mu_? Not needed: the registry has
    // its own lock and nothing else takes snapshot_mu_ except Shutdown.
    MetricsSnapshot curr = metrics().Snapshot();
    MetricsSnapshot diff = DiffSnapshots(prev, curr);
    prev = std::move(curr);
    if (diff.empty()) continue;
    LogEvent event;
    event.ts_ns = NowNs();
    event.kind = "metrics_snapshot";
    event.fields.emplace_back(
        "counters", static_cast<int64_t>(diff.counters.size()));
    event.fields.emplace_back("gauges",
                              static_cast<int64_t>(diff.gauges.size()));
    event.fields.emplace_back(
        "histograms", static_cast<int64_t>(diff.histograms.size()));
    event.message = RenderSnapshotDiff(diff);
    event_log_.Append(std::move(event));
  }
}

std::shared_ptr<QueryService::SessionEntry> QueryService::GetSession(
    const std::string& tenant, const std::string& source) {
  // Tenant-qualified key: identical sources under different tenants parse
  // into separate Session objects (separate prepare caches, separate
  // materialized views) — a tenant can never warm or observe another's
  // state. '\x1f' (ASCII unit separator) cannot appear in a tenant name.
  std::string key;
  key.reserve(tenant.size() + 1 + source.size());
  key.append(tenant);
  key.push_back('\x1f');
  key.append(source);
  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    std::shared_ptr<SessionEntry>& slot = sessions_[key];
    if (slot == nullptr) slot = std::make_shared<SessionEntry>();
    entry = slot;
  }
  // Parse single-flight, outside the map lock: concurrent first requests
  // for the same source block here instead of serializing all sources.
  std::call_once(entry->once, [&] {
    Result<Session> opened = engine_.Open(source);
    if (opened.ok()) {
      entry->session = std::make_unique<Session>(std::move(opened).value());
    } else {
      entry->status = opened.status();
    }
  });
  return entry;
}

void QueryService::ProcessDelta(DeltaJob* job) {
  const int64_t start_ns = NowNs();
  MetricsRegistry& metrics = this->metrics();
  metrics.GetHistogram("service/queue_wait_ns")
      ->Record(start_ns - job->submit_ns);

  Tracer& tracer = job->trace.tracer;
  {
    Span queue = tracer.StartSpanAt("delta.queue", job->submit_ns);
  }

  DeltaResponse response;
  response.trace_id = job->trace.trace_id;
  response.queue_wait_ns = start_ns - job->submit_ns;

  auto finish = [&](Status status) {
    response.status = std::move(status);
    metrics
        .GetCounter(response.status.ok() ? "service/delta_batches_completed"
                                         : "service/delta_batches_failed")
        ->Increment();

    const int64_t total_ns = NowNs() - job->submit_ns;
    if (!job->request.tenant.empty()) {
      metrics
          .GetCounter(TenantMetric(job->request.tenant,
                                   response.status.ok() ? "completed"
                                                        : "errors"))
          ->Increment();
      metrics.GetHistogram(TenantMetric(job->request.tenant, "latency_ns"))
          ->Record(total_ns);
    }
    job->root_span.SetAttr("status_code",
                           static_cast<int64_t>(response.status.code()));
    job->root_span.SetAttr("version", response.snapshot_version);
    job->root_span.End();
    if (tracer.enabled()) response.spans = tracer.TakeSpans();

    if (!response.status.ok()) {
      LogEvent event;
      event.ts_ns = NowNs();
      event.trace_id = job->trace.trace_id;
      event.request_id = job->trace.request_id;
      event.kind = "request_error";
      event.fields.emplace_back("code",
                                static_cast<int64_t>(response.status.code()));
      event.fields.emplace_back("total_ns", total_ns);
      event.fields.emplace_back("delta", 1);
      event.message = std::string(StatusCodeName(response.status.code())) +
                      ": " + response.status.message();
      event_log_.Append(std::move(event));
    }

    // Slow maintenance batches land in the same ring as slow queries,
    // joinable with their span tree by trace id.
    if (options_.slow_query_ms >= 0 &&
        total_ns >= options_.slow_query_ms * 1'000'000) {
      metrics.GetCounter("service/slow_queries")->Increment();
      LogEvent event;
      event.ts_ns = NowNs();
      event.trace_id = job->trace.trace_id;
      event.request_id = job->trace.request_id;
      event.kind = "slow_delta";
      event.fields.emplace_back("total_ns", total_ns);
      event.fields.emplace_back("queue_wait_ns", response.queue_wait_ns);
      event.fields.emplace_back("materialize_ns", response.materialize_ns);
      event.fields.emplace_back("maintain_ns", response.maintain_ns);
      event.fields.emplace_back("version", response.snapshot_version);
      if (response.status.ok()) {
        event.message = response.stats.Summary();
      } else {
        event.message = std::string(StatusCodeName(response.status.code())) +
                        ": " + response.status.message();
      }
      event_log_.Append(std::move(event));
    }

    Deliver(job, std::move(response));
  };

  std::shared_ptr<SessionEntry> entry =
      GetSession(job->request.tenant, job->request.source);
  if (entry->session == nullptr) {
    finish(entry->status);
    return;
  }
  Session& session = *entry->session;

  // Maintenance has no original-program fallback: a view exists only for a
  // prepared (rewritten) program, so Prepare errors fail the batch.
  Span prepare_span = tracer.StartSpan("delta.prepare");
  SqoOptions sqo = job->request.sqo;
  if (sqo.tracer == nullptr) sqo.tracer = &tracer;
  bool cache_hit = false;
  Result<const PreparedProgram*> prepared = session.Prepare(sqo, &cache_hit);
  prepare_span.SetAttr("cache_hit", cache_hit ? 1 : 0);
  prepare_span.End();
  if (!prepared.ok()) {
    finish(prepared.status());
    return;
  }

  Span materialize_span = tracer.StartSpan("delta.materialize");
  const int64_t materialize_start_ns = NowNs();
  Result<MaterializedView*> view =
      session.Materialize(*prepared.value(), job->request.materialize);
  response.materialize_ns = NowNs() - materialize_start_ns;
  materialize_span.End();
  if (!view.ok()) {
    finish(view.status());
    return;
  }

  Span maintain_span = tracer.StartSpan("delta.maintain");
  const int64_t maintain_start_ns = NowNs();
  Result<MaintainStats> stats = view.value()->ApplyDelta(job->request.delta);
  response.maintain_ns = NowNs() - maintain_start_ns;
  metrics.GetHistogram("service/apply_delta_ns")
      ->Record(response.maintain_ns);
  if (!stats.ok()) {
    maintain_span.End();
    finish(stats.status());
    return;
  }
  response.stats = stats.value();
  response.snapshot_version = response.stats.version;
  maintain_span.SetAttr("version", response.snapshot_version);
  maintain_span.SetAttr("recomputed", response.stats.recomputed ? 1 : 0);
  maintain_span.SetAttr("idb_delta", response.stats.idb_inserted +
                                         response.stats.idb_deleted);
  maintain_span.End();
  finish(Status::Ok());
}

void QueryService::Process(Job* job) {
  const int64_t start_ns = NowNs();
  MetricsRegistry& metrics = this->metrics();
  metrics.GetHistogram("service/queue_wait_ns")
      ->Record(start_ns - job->submit_ns);

  Tracer& tracer = job->trace.tracer;
  {
    // Retroactive: the wait was observed ending now, having started at
    // submission.
    Span queue = tracer.StartSpanAt("request.queue", job->submit_ns);
  }

  Response response;
  response.trace_id = job->trace.trace_id;
  response.queue_wait_ns = start_ns - job->submit_ns;

  // State the slow-query log reads at finish; filled as the request
  // advances.
  const PreparedProgram* prepared_program = nullptr;
  const MaterializedView* served_view = nullptr;
  std::vector<RuleProfile> profiles;
  const bool slow_armed = options_.slow_query_ms >= 0;

  auto finish = [&](Status status) {
    response.status = std::move(status);
    switch (response.status.code()) {
      case StatusCode::kOk:
        metrics.GetCounter("service/requests_completed")->Increment();
        break;
      case StatusCode::kCancelled:
        metrics.GetCounter("service/requests_cancelled")->Increment();
        break;
      case StatusCode::kDeadlineExceeded:
        metrics.GetCounter("service/requests_deadline_exceeded")->Increment();
        break;
      default:
        metrics.GetCounter("service/requests_failed")->Increment();
        break;
    }

    const int64_t total_ns = NowNs() - job->submit_ns;
    if (!job->request.tenant.empty()) {
      metrics
          .GetCounter(TenantMetric(job->request.tenant,
                                   response.status.ok() ? "completed"
                                                        : "errors"))
          ->Increment();
      metrics.GetHistogram(TenantMetric(job->request.tenant, "latency_ns"))
          ->Record(total_ns);
    }
    job->root_span.SetAttr("status_code",
                           static_cast<int64_t>(response.status.code()));
    job->root_span.SetAttr("answers",
                           static_cast<int64_t>(response.answers.size()));
    job->root_span.End();
    if (tracer.enabled()) response.spans = tracer.TakeSpans();

    if (!response.status.ok()) {
      LogEvent event;
      event.ts_ns = NowNs();
      event.trace_id = job->trace.trace_id;
      event.request_id = job->trace.request_id;
      event.kind = "request_error";
      event.fields.emplace_back("code",
                                static_cast<int64_t>(response.status.code()));
      event.fields.emplace_back("total_ns", total_ns);
      event.message = std::string(StatusCodeName(response.status.code())) +
                      ": " + response.status.message();
      event_log_.Append(std::move(event));
    }

    if (slow_armed && total_ns >= options_.slow_query_ms * 1'000'000) {
      metrics.GetCounter("service/slow_queries")->Increment();
      LogEvent event;
      event.ts_ns = NowNs();
      event.trace_id = job->trace.trace_id;
      event.request_id = job->trace.request_id;
      event.kind = "slow_query";
      event.fields.emplace_back("total_ns", total_ns);
      event.fields.emplace_back("queue_wait_ns", response.queue_wait_ns);
      event.fields.emplace_back("prepare_ns", response.prepare_ns);
      event.fields.emplace_back("execute_ns", response.execute_ns);
      event.fields.emplace_back(
          "answers", static_cast<int64_t>(response.answers.size()));
      if (!response.status.ok()) {
        event.message = std::string(StatusCodeName(response.status.code())) +
                        ": " + response.status.message();
      } else if (prepared_program != nullptr) {
        ExplainReport explain = BuildExplainReport(
            prepared_program->report, prepared_program->compiled.get());
        AttachRuntime(prepared_program->report, response.stats, profiles,
                      static_cast<int64_t>(response.answers.size()),
                      response.execute_ns, &explain);
        if (served_view != nullptr) {
          AttachMaintenance(served_view->totals(), served_view->last_batch(),
                            served_view->batches_applied(), &explain);
        }
        event.message = explain.Summary();
      }
      event_log_.Append(std::move(event));
    }

    Deliver(job, std::move(response));
  };

  const CancelToken* cancel = job->request.cancel.get();
  if (cancel != nullptr && cancel->cancelled()) {
    finish(Status::Cancelled("request cancelled before execution"));
    return;
  }
  if (job->deadline_ns >= 0 && NowNs() >= job->deadline_ns) {
    metrics.GetCounter("service/requests_expired_in_queue")->Increment();
    finish(Status::DeadlineExceeded("deadline expired in the queue after " +
                                    FormatDurationNs(response.queue_wait_ns)));
    return;
  }

  Span prepare_span = tracer.StartSpan("request.prepare");
  const int64_t prepare_start_ns = NowNs();
  std::shared_ptr<SessionEntry> entry =
      GetSession(job->request.tenant, job->request.source);
  if (entry->session == nullptr) {
    prepare_span.End();
    finish(entry->status);
    return;
  }
  Session& session = *entry->session;

  // Prepare is single-flight in the session: the first request for this
  // fingerprint runs the Levy–Sagiv pipeline (its "sqo.*" spans landing
  // under this request's prepare span), concurrent ones block on the
  // in-flight entry, later ones hit the cache.
  SqoOptions sqo = job->request.sqo;
  if (sqo.tracer == nullptr) sqo.tracer = &tracer;
  bool cache_hit = false;
  Result<const PreparedProgram*> prepared = session.Prepare(sqo, &cache_hit);
  response.prepare_ns = NowNs() - prepare_start_ns;
  response.prepare_cache_hit = cache_hit;
  metrics.GetHistogram("service/prepare_ns")->Record(response.prepare_ns);
  prepare_span.SetAttr("cache_hit", cache_hit ? 1 : 0);
  bool fallback = false;
  if (!prepared.ok()) {
    if (options_.fallback_to_original &&
        prepared.status().code() == StatusCode::kUnsupported) {
      // Outside the rewriting's theory (e.g. IDB negation): serve the
      // original program rather than failing the request.
      metrics.GetCounter("service/prepare_fallbacks")->Increment();
      fallback = true;
    } else {
      prepare_span.End();
      finish(prepared.status());
      return;
    }
  } else {
    prepared_program = prepared.value();
    for (const PassRunInfo& info : prepared_program->report.pass_runs) {
      if (info.ran()) ++response.passes_ran;
    }
  }
  prepare_span.End();

  // Load-only requests (the front-end's LoadProgram) stop here: the unit
  // parsed and the optimizer pipeline ran (or the fallback was noted), so
  // later queries on this session hit the plan cache.
  if (job->request.load_only) {
    response.optimized = !fallback;
    response.snapshot_version = 0;
    finish(Status::Ok());
    return;
  }

  // Materialized-view fast path: copy the warm answers out under the
  // view's shared lock instead of evaluating. The first such request pays
  // the initial fixpoint (inside Materialize); the fallback path cannot
  // serve from a view (no prepared program), so it evaluates below.
  if (job->request.materialized && !fallback) {
    Span view_span = tracer.StartSpan("request.view");
    const int64_t exec_start_ns = NowNs();
    Result<MaterializedView*> view =
        session.Materialize(*prepared.value(), job->request.materialize);
    if (!view.ok()) {
      view_span.End();
      finish(view.status());
      return;
    }
    served_view = view.value();
    response.answers = served_view->Answers(&response.snapshot_version);
    response.execute_ns = NowNs() - exec_start_ns;
    metrics.GetHistogram("service/execute_ns")->Record(response.execute_ns);
    metrics.GetCounter("service/view_serves")->Increment();
    view_span.SetAttr("version", response.snapshot_version);
    view_span.SetAttr("answers",
                      static_cast<int64_t>(response.answers.size()));
    view_span.End();
    response.served_from_view = true;
    response.eval_mode = job->request.materialize.eval.mode;
    response.optimized = true;
    if (job->request.want_explain) {
      ExplainReport explain = BuildExplainReport(
          prepared_program->report, prepared_program->compiled.get());
      AttachMaintenance(served_view->totals(), served_view->last_batch(),
                        served_view->batches_applied(), &explain);
      response.explain_json = explain.ToJson();
    }
    finish(Status::Ok());
    return;
  }

  // Every request reads the session's frozen shared base snapshot — the
  // per-request EDB copy is gone. Freeze makes concurrent lazy index
  // builds safe; evaluation writes only to its own IDB/delta relations.
  const Database& edb = session.SharedEdb();

  EvalOptions eval = job->request.eval;
  eval.cancel = cancel;
  if (job->deadline_ns >= 0 &&
      (eval.deadline_ns < 0 || job->deadline_ns < eval.deadline_ns)) {
    eval.deadline_ns = job->deadline_ns;
  }
  if (eval.tracer == nullptr) eval.tracer = &tracer;
  // Service-level default intra-query parallelism; a request that set its
  // own thread count keeps it.
  if (eval.threads <= 1 && options_.eval_threads > 1) {
    eval.threads = options_.eval_threads;
  }
  ParallelEvalStats parallel_stats;
  if (job->request.want_explain && eval.parallel_stats == nullptr) {
    eval.parallel_stats = &parallel_stats;
  }
  // Per-rule profiles feed the slow-query log's EXPLAIN summary and the
  // traced response; untraced fast-path requests skip the clock reads.
  const bool want_profiles = slow_armed || job->request.trace ||
                             eval.profile_rules ||
                             job->request.want_explain;
  if (slow_armed) eval.profile_rules = true;

  Span execute_span = tracer.StartSpan("request.execute");
  const int64_t exec_start_ns = NowNs();
  Result<std::vector<Tuple>> answers =
      fallback ? session.ExecuteOriginal(edb, eval, &response.stats,
                                         want_profiles ? &profiles : nullptr)
               : session.Execute(*prepared.value(), edb, eval, &response.stats,
                                 want_profiles ? &profiles : nullptr);
  response.execute_ns = NowNs() - exec_start_ns;
  metrics.GetHistogram("service/execute_ns")->Record(response.execute_ns);
  execute_span.End();

  if (!answers.ok()) {
    finish(answers.status());
    return;
  }
  response.answers = std::move(answers).value();
  response.optimized = !fallback;
  response.eval_mode = eval.mode;
  response.snapshot_version = 0;  // the immutable base snapshot
  if (job->request.want_explain && prepared_program != nullptr) {
    ExplainReport explain = BuildExplainReport(
        prepared_program->report, prepared_program->compiled.get());
    AttachRuntime(prepared_program->report, response.stats, profiles,
                  static_cast<int64_t>(response.answers.size()),
                  response.execute_ns, &explain);
    if (eval.parallel_stats != nullptr) {
      AttachParallel(*eval.parallel_stats, &explain);
    }
    response.explain_json = explain.ToJson();
  }
  finish(Status::Ok());
}

}  // namespace sqod
