#include "src/service/query_service.h"

#include <utility>

#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace sqod {

namespace {

EngineOptions MakeEngineOptions(const ServiceOptions& options) {
  EngineOptions engine_options;
  engine_options.metrics = options.metrics;
  return engine_options;
}

ThreadPool::Options MakePoolOptions(const ServiceOptions& options) {
  ThreadPool::Options pool_options;
  pool_options.threads = options.threads;
  pool_options.max_queue = options.max_queue;
  return pool_options;
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      engine_(MakeEngineOptions(options)),
      pool_(MakePoolOptions(options)) {}

QueryService::~QueryService() { Shutdown(); }

std::future<Response> QueryService::Submit(Request request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->submit_ns = NowNs();
  job->deadline_ns = job->request.deadline_ms < 0
                         ? -1
                         : job->submit_ns +
                               job->request.deadline_ms * 1'000'000;
  std::future<Response> future = job->promise.get_future();

  ThreadPool::SubmitResult submitted =
      pool_.Submit([this, job] { Process(job.get()); });
  if (submitted == ThreadPool::SubmitResult::kAccepted) {
    metrics().GetCounter("service/requests_accepted")->Increment();
    return future;
  }

  metrics().GetCounter("service/requests_rejected")->Increment();
  Response response;
  response.status =
      submitted == ThreadPool::SubmitResult::kQueueFull
          ? Status::ResourceExhausted(
                "admission queue full (max_queue=" +
                std::to_string(options_.max_queue) + ")")
          : Status::FailedPrecondition("service is shut down");
  job->promise.set_value(std::move(response));
  return future;
}

Response QueryService::Call(Request request) {
  return Submit(std::move(request)).get();
}

void QueryService::Shutdown() { pool_.Shutdown(); }

std::shared_ptr<QueryService::SessionEntry> QueryService::GetSession(
    const std::string& source) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    std::shared_ptr<SessionEntry>& slot = sessions_[source];
    if (slot == nullptr) slot = std::make_shared<SessionEntry>();
    entry = slot;
  }
  // Parse single-flight, outside the map lock: concurrent first requests
  // for the same source block here instead of serializing all sources.
  std::call_once(entry->once, [&] {
    Result<Session> opened = engine_.Open(source);
    if (opened.ok()) {
      entry->session = std::make_unique<Session>(std::move(opened).value());
    } else {
      entry->status = opened.status();
    }
  });
  return entry;
}

void QueryService::Process(Job* job) {
  const int64_t start_ns = NowNs();
  MetricsRegistry& metrics = this->metrics();
  metrics.GetHistogram("service/queue_wait_ns")
      ->Record(start_ns - job->submit_ns);

  Response response;
  response.queue_wait_ns = start_ns - job->submit_ns;

  auto finish = [&](Status status) {
    response.status = std::move(status);
    switch (response.status.code()) {
      case StatusCode::kOk:
        metrics.GetCounter("service/requests_completed")->Increment();
        break;
      case StatusCode::kCancelled:
        metrics.GetCounter("service/requests_cancelled")->Increment();
        break;
      case StatusCode::kDeadlineExceeded:
        metrics.GetCounter("service/requests_deadline_exceeded")->Increment();
        break;
      default:
        metrics.GetCounter("service/requests_failed")->Increment();
        break;
    }
    job->promise.set_value(std::move(response));
  };

  const CancelToken* cancel = job->request.cancel.get();
  if (cancel != nullptr && cancel->cancelled()) {
    finish(Status::Cancelled("request cancelled before execution"));
    return;
  }
  if (job->deadline_ns >= 0 && NowNs() >= job->deadline_ns) {
    finish(Status::DeadlineExceeded("deadline expired in the queue after " +
                                    FormatDurationNs(response.queue_wait_ns)));
    return;
  }

  std::shared_ptr<SessionEntry> entry = GetSession(job->request.source);
  if (entry->session == nullptr) {
    finish(entry->status);
    return;
  }
  Session& session = *entry->session;

  // Prepare is single-flight in the session: the first request for this
  // fingerprint runs the Levy–Sagiv pipeline, concurrent ones block on the
  // in-flight entry, later ones hit the cache.
  Result<const PreparedProgram*> prepared = session.Prepare(job->request.sqo);
  bool fallback = false;
  if (!prepared.ok()) {
    if (options_.fallback_to_original &&
        prepared.status().code() == StatusCode::kUnsupported) {
      // Outside the rewriting's theory (e.g. IDB negation): serve the
      // original program rather than failing the request.
      metrics.GetCounter("service/prepare_fallbacks")->Increment();
      fallback = true;
    } else {
      finish(prepared.status());
      return;
    }
  }

  // Every request evaluates against its own EDB: Relation builds join
  // indexes lazily, so a shared mutable Database across workers would race.
  Database edb = session.MakeEdb();

  EvalOptions eval = job->request.eval;
  eval.cancel = cancel;
  if (job->deadline_ns >= 0 &&
      (eval.deadline_ns < 0 || job->deadline_ns < eval.deadline_ns)) {
    eval.deadline_ns = job->deadline_ns;
  }

  const int64_t exec_start_ns = NowNs();
  Result<std::vector<Tuple>> answers =
      fallback ? session.ExecuteOriginal(edb, eval, &response.stats)
               : session.Execute(*prepared.value(), edb, eval,
                                 &response.stats);
  response.execute_ns = NowNs() - exec_start_ns;
  metrics.GetHistogram("service/execute_ns")->Record(response.execute_ns);

  if (!answers.ok()) {
    finish(answers.status());
    return;
  }
  response.answers = std::move(answers).value();
  response.optimized = !fallback;
  finish(Status::Ok());
}

}  // namespace sqod
