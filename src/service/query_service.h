#ifndef SQOD_SERVICE_QUERY_SERVICE_H_
#define SQOD_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/cancel.h"
#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/service/thread_pool.h"

namespace sqod {

// The concurrent query-serving runtime: a bounded admission queue feeding a
// fixed worker pool, with one shared Engine underneath. Sessions are
// deduplicated by source text and Session::Prepare is single-flight, so N
// concurrent requests for the same (program, ICs, options) fingerprint
// trigger exactly one optimizer pipeline run — the Levy–Sagiv rewriting
// cost is paid once and amortized across every request that follows.
//
// Request lifecycle and its observable failure modes:
//   Submit ── queue full ────────────────→ kResourceExhausted (rejected)
//         ─── after Shutdown ────────────→ kFailedPrecondition (rejected)
//         ─── queued → worker picks it up
//               token already cancelled ─→ kCancelled
//               deadline already passed ─→ kDeadlineExceeded
//               parse / prepare error  ──→ that error
//               evaluation, interrupted at iteration boundaries by the
//               token or the deadline ───→ kCancelled / kDeadlineExceeded
//               otherwise ──────────────→ kOk with the sorted answers
//
// Per-request observability (in metrics(), exported like all registries):
//   service/requests_accepted / _rejected / _cancelled /
//   _deadline_exceeded / _completed / _failed     counters
//   service/prepare_fallbacks                     kUnsupported → original
//   service/queue_wait_ns, service/execute_ns     latency histograms

struct ServiceOptions {
  // Worker threads executing requests.
  int threads = 4;
  // Admission limit: maximum requests waiting for a worker (running
  // requests don't count). 0 = unbounded.
  size_t max_queue = 256;
  // External metrics sink; the service's engine owns a private registry
  // when null. No tracer knob: the Tracer is single-threaded by design, so
  // the serving layer never traces (use the single-request CLI path for
  // span trees).
  MetricsRegistry* metrics = nullptr;
  // When a program is outside the rewriting's theory (Prepare returns
  // kUnsupported, e.g. IDB negation), evaluate the original program
  // instead of failing the request.
  bool fallback_to_original = true;
};

struct Request {
  // A full datalog unit: rules, ICs, optional facts, query declaration.
  // Requests with byte-identical sources share one parsed session (and
  // therefore one prepared-program cache).
  std::string source;
  // Optimizer options; part of the prepared-program fingerprint.
  SqoOptions sqo;
  // Evaluation options. The service fills in cancel/deadline_ns (and the
  // engine fills in metrics), the rest is honored as given.
  EvalOptions eval;
  // Relative deadline from submission, in milliseconds. 0 is already
  // expired (useful for testing the deadline path); -1 = no deadline.
  int64_t deadline_ms = -1;
  // Optional cooperative cancellation, shared with the caller. Checked
  // when a worker dequeues the request and at evaluator iteration
  // boundaries.
  std::shared_ptr<CancelToken> cancel;
};

struct Response {
  Status status;
  // The query predicate's tuples, sorted (empty on error).
  std::vector<Tuple> answers;
  EvalStats stats;
  // False when the kUnsupported fallback evaluated the original program.
  bool optimized = false;
  // Time spent waiting for a worker, and executing on one.
  int64_t queue_wait_ns = 0;
  int64_t execute_ns = 0;
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  ~QueryService();  // implies Shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Admission-controlled, non-blocking submit. The returned future is
  // always valid; rejected requests (queue full, shut down) resolve
  // immediately with the rejection status.
  std::future<Response> Submit(Request request);

  // Convenience: Submit and wait.
  Response Call(Request request);

  // Stops admission, drains queued and in-flight requests, joins the
  // workers. Every future obtained from Submit is ready afterwards.
  // Idempotent; also run by the destructor.
  void Shutdown();

  // Requests currently waiting for a worker.
  size_t queue_depth() const { return pool_.queue_depth(); }

  MetricsRegistry& metrics() { return engine_.metrics(); }
  Engine& engine() { return engine_; }

 private:
  // A parsed-session slot, created single-flight per distinct source text.
  struct SessionEntry {
    std::once_flag once;
    Status status;  // parse/validation error when session == nullptr
    std::unique_ptr<Session> session;
  };

  struct Job {
    Request request;
    std::promise<Response> promise;
    int64_t submit_ns = 0;
    int64_t deadline_ns = -1;  // absolute, NowNs() scale
  };

  std::shared_ptr<SessionEntry> GetSession(const std::string& source);
  void Process(Job* job);

  ServiceOptions options_;
  Engine engine_;
  std::mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  ThreadPool pool_;  // last member: workers stop before the rest tears down
};

}  // namespace sqod

#endif  // SQOD_SERVICE_QUERY_SERVICE_H_
