#ifndef SQOD_SERVICE_QUERY_SERVICE_H_
#define SQOD_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/cancel.h"
#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/engine/view.h"
#include "src/obs/context.h"
#include "src/obs/event_log.h"
#include "src/service/thread_pool.h"

namespace sqod {

// The concurrent query-serving runtime: a bounded admission queue feeding a
// fixed worker pool, with one shared Engine underneath. Sessions are
// deduplicated by source text and Session::Prepare is single-flight, so N
// concurrent requests for the same (program, ICs, options) fingerprint
// trigger exactly one optimizer pipeline run — the Levy–Sagiv rewriting
// cost is paid once and amortized across every request that follows.
//
// Request lifecycle and its observable failure modes:
//   Submit ── queue full ────────────────→ kResourceExhausted (rejected)
//         ─── after Shutdown ────────────→ kFailedPrecondition (rejected)
//         ─── queued → worker picks it up
//               token already cancelled ─→ kCancelled
//               deadline already passed ─→ kDeadlineExceeded
//               parse / prepare error  ──→ that error
//               evaluation, interrupted at iteration boundaries by the
//               token or the deadline ───→ kCancelled / kDeadlineExceeded
//               otherwise ──────────────→ kOk with the sorted answers
//
// Per-request observability (in metrics(), exported like all registries):
//   service/requests_accepted / _rejected / _cancelled /
//   _deadline_exceeded / _completed / _failed     counters
//   service/requests_rejected_queue_full / _rejected_shutdown
//   service/requests_expired_in_queue             deadline passed queued
//   service/prepare_fallbacks                     kUnsupported → original
//   service/slow_queries                          over slow_query_ms
//   service/queue_wait_ns, service/prepare_ns, service/execute_ns
//                                                 latency histograms
//
// Request-scoped tracing: every submitted request gets a TraceContext (a
// process-unique trace id plus a per-request Tracer). With Request::trace
// set, the spans from admission through queue wait, prepare, and per-
// stratum evaluation come back in Response::spans, stitched into one trace
// (export many with ExportChromeTrace over RequestTrace). The per-request
// Tracer stays single-threaded: the submitting thread records admission
// strictly before the pool handoff (a happens-before edge), after which
// only the one worker that dequeued the request touches it.
//
// The event log (event_log()) is a bounded ring of structured events:
// "slow_query" entries (requests slower end-to-end than slow_query_ms,
// carrying the trace id and an EXPLAIN summary), "request_error" /
// "request_rejected" entries, and — with metrics_snapshot_ms set — periodic
// "metrics_snapshot" entries holding the window's metric deltas.

struct ServiceOptions {
  // Worker threads executing requests.
  int threads = 4;
  // Default intra-query parallelism (EvalOptions::threads) applied to
  // requests that leave Request::eval.threads at 1; a request that sets its
  // own value keeps it. Partition tasks run on the engine's shared eval
  // executor (Engine::eval_executor), never on the request workers above —
  // mixing them could deadlock once every worker waits on subtasks with no
  // thread left to run them. 1 = serial evaluation (the default).
  int eval_threads = 1;
  // Admission limit: maximum requests waiting for a worker (running
  // requests don't count). 0 = unbounded.
  size_t max_queue = 256;
  // External metrics sink; the service's engine owns a private registry
  // when null. No tracer knob: the Tracer is single-threaded by design, so
  // the serving layer never traces (use the single-request CLI path for
  // span trees).
  MetricsRegistry* metrics = nullptr;
  // When a program is outside the rewriting's theory (Prepare returns
  // kUnsupported, e.g. IDB negation), evaluate the original program
  // instead of failing the request.
  bool fallback_to_original = true;

  // Slow-query log threshold, in milliseconds of end-to-end latency (queue
  // wait + prepare + execute). Requests at or over it produce a
  // "slow_query" event with the trace id and an EXPLAIN summary, and rule
  // profiling is armed for every request so the summary has runtime rows.
  // -1 = off. 0 logs everything (the smoke-test setting).
  int64_t slow_query_ms = -1;
  // Capacity of the structured event-log ring.
  size_t event_log_capacity = 1024;
  // Period of the background metrics differ: every period, the delta of
  // the metrics registry against the previous snapshot is appended to the
  // event log as a "metrics_snapshot" event. -1 = off.
  int64_t metrics_snapshot_ms = -1;
};

// The single conversion point between caller-facing millisecond deadlines
// and the evaluator's absolute nanosecond deadlines. -1 = no deadline;
// any other negative value, or one whose absolute ns deadline would
// overflow int64, is kInvalidArgument (Submit rejects such requests before
// they reach the queue).
Result<int64_t> DeadlineNsFromMs(int64_t deadline_ms, int64_t now_ns);

struct Request {
  // A full datalog unit: rules, ICs, optional facts, query declaration.
  // Requests with byte-identical sources share one parsed session (and
  // therefore one prepared-program cache).
  std::string source;
  // Tenant namespace. Sessions are deduplicated per (tenant, source), so
  // tenants never share Engine session state even for byte-identical
  // programs, and non-empty tenants get tenant/<name>/... counters and
  // latency histograms next to the service/... ones. "" = untenanted.
  std::string tenant;
  // Optimizer options; part of the prepared-program fingerprint.
  SqoOptions sqo;
  // Evaluation options. The service fills in cancel/deadline_ns (and the
  // engine fills in metrics), the rest is honored as given.
  EvalOptions eval;
  // Relative deadline from submission, in milliseconds. 0 is already
  // expired (useful for testing the deadline path); -1 = no deadline.
  int64_t deadline_ms = -1;
  // Optional cooperative cancellation, shared with the caller. Checked
  // when a worker dequeues the request and at evaluator iteration
  // boundaries.
  std::shared_ptr<CancelToken> cancel;
  // Collect this request's span tree (admission → queue → prepare →
  // evaluation) into Response::spans. Off by default: untraced requests
  // pay one branch per instrumentation site.
  bool trace = false;
  // Serve from the session's materialized view instead of evaluating: the
  // first such request pays the initial fixpoint (materialization), later
  // ones copy the warm answers out under a shared lock. Combine with
  // ApplyDelta to keep the view current as the EDB changes. Ignored (a
  // normal evaluation runs) when the program needed the kUnsupported
  // fallback. `materialize` configures the view when this request is the
  // one that builds it.
  bool materialized = false;
  MaterializeOptions materialize;
  // Validate and warm only: parse the unit (single-flight per session) and
  // run Prepare, then finish without executing. The network front-end's
  // LoadProgram maps here — the optimizer pipeline runs once at load time
  // and every later query on the session hits the plan cache.
  bool load_only = false;
  // Attach an EXPLAIN/ANALYZE report (ExplainReport::ToJson) to the
  // response. Costs per-rule profiling on this request.
  bool want_explain = false;
};

struct Response {
  Status status;
  // The query predicate's tuples, sorted (empty on error).
  std::vector<Tuple> answers;
  EvalStats stats;
  // False when the kUnsupported fallback evaluated the original program.
  bool optimized = false;
  // Time spent waiting for a worker, preparing, and executing.
  int64_t queue_wait_ns = 0;
  int64_t prepare_ns = 0;
  int64_t execute_ns = 0;
  // The request's trace id (assigned at Submit, also for rejections);
  // matches slow-query-log entries and TraceIdHex renderings.
  uint64_t trace_id = 0;
  // Whether Prepare was served from the session's plan cache, and how many
  // pipeline passes the plan's preparation ran (0 on fallback).
  bool prepare_cache_hit = false;
  int passes_ran = 0;
  // The request's span tree (empty unless Request::trace was set).
  std::vector<SpanRecord> spans;
  // The EDB snapshot version the answers reflect: a materialized-view
  // request reports the view's current version; a plain evaluation reports
  // 0 (the session's immutable base snapshot). -1 on error/rejection.
  int64_t snapshot_version = -1;
  // How the answers were produced: true when they were copied from the
  // warm materialized view without running the evaluator.
  bool served_from_view = false;
  // The evaluation mode that actually ran (for view-served answers, the
  // mode the view was materialized/maintained with).
  EvalMode eval_mode = EvalMode::kCompile;
  // EXPLAIN/ANALYZE report (ExplainReport::ToJson) when the request set
  // want_explain and reached execution; empty otherwise.
  std::string explain_json;
};

// One batch of EDB changes against a session's materialized view.
// Admission, queueing, tracing, and the slow-query log mirror Request; the
// worker prepares the program (cache hit after the first), materializes the
// view if this is the first touch, and applies the batch.
struct DeltaRequest {
  // The datalog unit whose view to maintain; requests with byte-identical
  // sources share one session, and therefore one view per fingerprint.
  std::string source;
  // Tenant namespace, as in Request::tenant.
  std::string tenant;
  // Optimizer options; part of the prepared-program fingerprint.
  SqoOptions sqo;
  // View construction/maintenance options (first touch only, like
  // Request::materialize).
  MaterializeOptions materialize;
  // The facts to delete and insert (deletes first; see FactDelta).
  FactDelta delta;
  // Collect the span tree (admission → queue → materialize → maintain).
  bool trace = false;
};

struct DeltaResponse {
  Status status;
  // The batch's maintenance stats (see MaintainStats); zeros on error.
  MaintainStats stats;
  // The view's snapshot version after the batch (-1 on error). An empty
  // net batch leaves the version unchanged.
  int64_t snapshot_version = -1;
  int64_t queue_wait_ns = 0;
  // Time materializing the view (0 when it was already warm) and applying
  // the batch.
  int64_t materialize_ns = 0;
  int64_t maintain_ns = 0;
  // Trace id (joinable with slow-query-log entries), span tree as above.
  uint64_t trace_id = 0;
  std::vector<SpanRecord> spans;
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  ~QueryService();  // implies Shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Admission-controlled, non-blocking submit. The returned future is
  // always valid; rejected requests (queue full, shut down, invalid
  // deadline) resolve immediately with the rejection status.
  std::future<Response> Submit(Request request);

  // Callback-style submit for transports that must never block: `done`
  // runs on the worker thread that completed the request, or on the
  // submitting thread for immediate rejections. Exactly one invocation per
  // submit, rejection included.
  void Submit(Request request, std::function<void(Response)> done);

  // Convenience: Submit and wait.
  Response Call(Request request);

  // Admission-controlled submit of one maintenance batch. Batches share
  // the worker pool and admission queue with queries; batches against the
  // same view serialize on the view's writer lock while readers of other
  // views (and queries) proceed. Observability mirrors Submit:
  // service/delta_batches{,_rejected,_failed} counters, the
  // service/apply_delta_ns latency histogram, and — past slow_query_ms —
  // a "slow_delta" event-log entry joinable with spans by trace id.
  std::future<DeltaResponse> ApplyDelta(DeltaRequest request);

  // Callback-style ApplyDelta, mirroring the callback Submit.
  void ApplyDelta(DeltaRequest request,
                  std::function<void(DeltaResponse)> done);

  // Convenience: ApplyDelta and wait.
  DeltaResponse CallApplyDelta(DeltaRequest request);

  // Stops admission, drains queued and in-flight requests, joins the
  // workers. Every future obtained from Submit is ready afterwards.
  // Idempotent; also run by the destructor.
  void Shutdown();

  // Requests currently waiting for a worker.
  size_t queue_depth() const { return pool_.queue_depth(); }

  MetricsRegistry& metrics() { return engine_.metrics(); }
  Engine& engine() { return engine_; }

  // The structured event ring: slow queries, request errors/rejections,
  // periodic metric snapshots. Thread-safe.
  EventLog& event_log() { return event_log_; }

 private:
  // A parsed-session slot, created single-flight per distinct source text.
  struct SessionEntry {
    std::once_flag once;
    Status status;  // parse/validation error when session == nullptr
    std::unique_ptr<Session> session;
  };

  struct Job {
    Request request;
    // Exactly one of the two delivery paths is used: the promise (future
    // API) or the callback (transport API). Deliver() dispatches.
    std::promise<Response> promise;
    std::function<void(Response)> callback;
    int64_t submit_ns = 0;
    int64_t deadline_ns = -1;  // absolute, NowNs() scale
    // Request-scoped telemetry: the trace id / span collector, and the
    // root "request" span (opened at Submit, closed when the response is
    // fulfilled). The embedded Tracer is touched by the submitting thread
    // only before the pool handoff, and by the owning worker only after —
    // the pool's queue is the happens-before edge between the two.
    TraceContext trace;
    Span root_span;
  };

  struct DeltaJob {
    DeltaRequest request;
    std::promise<DeltaResponse> promise;
    std::function<void(DeltaResponse)> callback;
    int64_t submit_ns = 0;
    TraceContext trace;
    Span root_span;
  };

  // Session lookup key: tenant-qualified source text.
  std::shared_ptr<SessionEntry> GetSession(const std::string& tenant,
                                           const std::string& source);
  // Builds the job (trace context, deadline validation, admission spans)
  // and hands it to the pool; delivers the rejection inline on failure.
  void SubmitJob(std::shared_ptr<Job> job);
  void SubmitDeltaJob(std::shared_ptr<DeltaJob> job);
  static void Deliver(Job* job, Response response);
  static void Deliver(DeltaJob* job, DeltaResponse response);
  void Process(Job* job);
  void ProcessDelta(DeltaJob* job);
  // `prev` is the baseline the first window diffs against; captured by the
  // constructor before any request can arrive, so the first published
  // delta covers everything since service start even when the OS schedules
  // the snapshot thread late.
  void SnapshotLoop(MetricsSnapshot prev);

  ServiceOptions options_;
  Engine engine_;
  std::mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  EventLog event_log_;
  std::atomic<uint64_t> next_request_id_{1};

  // Background metrics differ (running only with metrics_snapshot_ms > 0).
  std::mutex snapshot_mu_;
  std::condition_variable snapshot_cv_;
  bool stopping_ = false;
  std::thread snapshot_thread_;

  ThreadPool pool_;  // last member: workers stop before the rest tears down
};

}  // namespace sqod

#endif  // SQOD_SERVICE_QUERY_SERVICE_H_
