#include "src/service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace sqod {

ThreadPool::ThreadPool(Options options) : options_(options) {
  int threads = std::max(1, options_.threads);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

ThreadPool::SubmitResult ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return SubmitResult::kShutdown;
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      return SubmitResult::kQueueFull;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return SubmitResult::kAccepted;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    shutting_down_ = true;
    joined_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Graceful drain: even during shutdown, run whatever was admitted.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace sqod
