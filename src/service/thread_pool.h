#ifndef SQOD_SERVICE_THREAD_POOL_H_
#define SQOD_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqod {

// A fixed-size worker pool over one condition-variable task queue. Tasks
// run in submission order (FIFO) on whichever worker frees up first.
//
// Admission is bounded: Submit reports kQueueFull once `max_queue` tasks
// are waiting (running tasks don't count), which is the backpressure signal
// the QueryService turns into kResourceExhausted. Shutdown is graceful by
// construction: it stops admission, lets the workers drain every already
// queued task, then joins them.
//
// Submit is safe from any thread. Shutdown must only be called by one
// thread (typically the owner / destructor).
class ThreadPool {
 public:
  enum class SubmitResult {
    kAccepted,   // queued (or picked up immediately)
    kQueueFull,  // max_queue tasks already waiting
    kShutdown,   // Shutdown already started
  };

  struct Options {
    int threads = 4;
    // Maximum number of queued (not yet running) tasks; 0 = unbounded.
    size_t max_queue = 0;
  };

  explicit ThreadPool(Options options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  SubmitResult Submit(std::function<void()> task);

  // Stops admission, drains the queue, joins all workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Tasks waiting in the queue right now (excludes running tasks).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
  bool joined_ = false;
};

}  // namespace sqod

#endif  // SQOD_SERVICE_THREAD_POOL_H_
