#include "src/sqo/adorn.h"

#include <algorithm>
#include <functional>

#include "src/ast/unify.h"
#include "src/order/solver.h"
#include "src/base/check.h"
#include "src/sqo/preprocess.h"

namespace sqod {

namespace {

// All distinct variables appearing in the listed parts of constraint `ic`:
// an index below `atoms.size()` names a positive atom; the index equal to
// `atoms.size()` names the quasi-local pseudo-atom standing for the IC's
// non-local order atoms (their indices in `nonlocal`).
std::vector<VarId> VarsOfUnmapped(const Constraint& ic,
                                  const std::vector<const Atom*>& atoms,
                                  const std::vector<int>& nonlocal,
                                  const std::vector<int>& indices) {
  std::vector<VarId> vars;
  for (int i : indices) {
    if (i < static_cast<int>(atoms.size())) {
      atoms[i]->CollectVars(&vars);
    } else {
      for (int c : nonlocal) ic.comparisons[c].CollectVars(&vars);
    }
  }
  return vars;
}

// Restricts `sigma` to variables occurring in some unmapped part.
void RestrictSigma(const Constraint& ic,
                   const std::vector<const Atom*>& atoms,
                   const std::vector<int>& nonlocal,
                   const std::vector<int>& unmapped,
                   std::map<VarId, Term>* sigma) {
  std::vector<VarId> keep = VarsOfUnmapped(ic, atoms, nonlocal, unmapped);
  for (auto it = sigma->begin(); it != sigma->end();) {
    if (std::find(keep.begin(), keep.end(), it->first) == keep.end()) {
      it = sigma->erase(it);
    } else {
      ++it;
    }
  }
}

// Instantiates an order summary onto the arguments of `atom`.
std::vector<Comparison> InstantiateSummary(
    const std::vector<Comparison>& summary, const Atom& atom) {
  Substitution subst;
  for (int i = 0; i < atom.arity(); ++i) {
    subst.Bind(SummaryPlaceholder(i).var(), atom.arg(i));
  }
  std::vector<Comparison> out;
  out.reserve(summary.size());
  for (const Comparison& c : summary) out.push_back(subst.Apply(c));
  return out;
}

// Computes the head's order summary from the conjunction `total` that holds
// whenever the rule fires: every candidate comparison over head positions
// (and the constants mentioned in `total`) that is entailed.
std::vector<Comparison> ComputeHeadSummary(
    const std::vector<Comparison>& total, const Atom& head) {
  OrderSolver solver(total);
  std::vector<Value> constants;
  for (const Comparison& c : total) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_const() &&
          std::find(constants.begin(), constants.end(), t->value()) ==
              constants.end()) {
        constants.push_back(t->value());
      }
    }
  }
  std::sort(constants.begin(), constants.end());

  std::vector<Comparison> summary;
  auto consider = [&](const Term& concrete_a, const Term& placeholder_a,
                      CmpOp op, const Term& concrete_b,
                      const Term& placeholder_b) {
    if (concrete_a.is_const() && concrete_b.is_const()) return;  // trivial
    if (!solver.Entails(Comparison(concrete_a, op, concrete_b))) return;
    Comparison c = Comparison(placeholder_a, op, placeholder_b).Canonical();
    if (std::find(summary.begin(), summary.end(), c) == summary.end()) {
      summary.push_back(c);
    }
  };
  static constexpr CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq,
                                   CmpOp::kNe};
  for (int i = 0; i < head.arity(); ++i) {
    for (int j = i + 1; j < head.arity(); ++j) {
      for (CmpOp op : kOps) {
        consider(head.arg(i), SummaryPlaceholder(i), op, head.arg(j),
                 SummaryPlaceholder(j));
        consider(head.arg(j), SummaryPlaceholder(j), op, head.arg(i),
                 SummaryPlaceholder(i));
      }
    }
    for (const Value& v : constants) {
      Term c = Term::Const(v);
      for (CmpOp op : kOps) {
        consider(head.arg(i), SummaryPlaceholder(i), op, c, c);
        consider(c, c, op, head.arg(i), SummaryPlaceholder(i));
      }
    }
  }
  std::sort(summary.begin(), summary.end(),
            [](const Comparison& a, const Comparison& b) {
              return a.ToString() < b.ToString();
            });
  return summary;
}

}  // namespace

Term SummaryPlaceholder(int i) {
  return Term::Var("P#" + std::to_string(i));
}

AdornmentEngine::AdornmentEngine(const Program& program,
                                 std::vector<Constraint> ics,
                                 LocalAtomInfo local, AdornOptions options)
    : program_(program),
      ics_(std::move(ics)),
      local_(std::move(local)),
      options_(options),
      idb_(program.IdbPreds()) {}

std::vector<RuleTriplet> AdornmentEngine::EdbBaseTriplets(
    const Rule& rule, const Atom& atom) const {
  std::vector<RuleTriplet> out;
  for (int ic_index = 0; ic_index < static_cast<int>(ics_.size());
       ++ic_index) {
    const Constraint& ic = ics_[ic_index];
    std::vector<const Atom*> positives = ic.PositiveAtoms();
    const int n = static_cast<int>(positives.size());
    const std::vector<int>& nonlocal = local_.NonlocalOrder(ic_index);

    // Enumerate subsets M of the IC's positive atoms all mapping into
    // `atom` under one consistent homomorphism.
    std::vector<int> mapped;
    std::function<void(int, const Substitution&)> recurse =
        [&](int next, const Substitution& h) {
          if (next == n) {
            if (mapped.empty()) return;  // the trivial triplet is implicit
            // Section 4.2 retention: each mapped carrier atom must have its
            // local atoms asserted by the rule with the right polarity.
            for (int a : mapped) {
              if (!RetentionHolds(rule, ics_, local_, ic_index, a, h)) return;
            }
            RuleTriplet t;
            t.ic_index = ic_index;
            for (int i = 0; i < n; ++i) {
              if (std::find(mapped.begin(), mapped.end(), i) ==
                  mapped.end()) {
                t.unmapped.push_back(i);
              }
            }
            // The quasi-local pseudo-atom is never mapped at a leaf.
            if (!nonlocal.empty()) t.unmapped.push_back(n);
            // sigma: shared variables, with their images (rule terms).
            std::vector<VarId> shared =
                VarsOfUnmapped(ic, positives, nonlocal, t.unmapped);
            for (VarId z : shared) {
              const Term* image = h.Lookup(z);
              if (image != nullptr) t.sigma.emplace(z, *image);
            }
            for (const RuleTriplet& existing : out) {
              if (existing.SameAs(t)) return;
            }
            out.push_back(std::move(t));
            return;
          }
          recurse(next + 1, h);  // leave atom `next` unmapped
          Substitution extended = h;
          if (MatchInto(*positives[next], atom, &extended)) {
            mapped.push_back(next);
            recurse(next + 1, extended);
            mapped.pop_back();
          }
        };
    recurse(0, Substitution());
  }
  return out;
}

int AdornmentEngine::InternApred(PredId pred, Adornment adornment,
                                 std::vector<Comparison> summary) {
  std::string key = std::to_string(pred) + "/" + AdornmentKey(adornment) + "~";
  for (const Comparison& c : summary) key += c.ToString() + ";";
  auto it = apred_registry_.find(key);
  if (it != apred_registry_.end()) return it->second;
  int index = static_cast<int>(apreds_.size());
  AdornedPred ap;
  ap.original = pred;
  ap.adornment = std::move(adornment);
  ap.summary = std::move(summary);
  ap.name = InternPred(PredName(pred) + "@" + std::to_string(index));
  apreds_.push_back(std::move(ap));
  apred_registry_.emplace(std::move(key), index);
  if (static_cast<int>(apreds_.size()) > options_.max_adorned_preds) {
    overflow_ = true;
  }
  return index;
}

bool AdornmentEngine::ProcessCombination(int rule_index,
                                         const std::vector<int>& idb_subgoals,
                                         const std::vector<int>& choice) {
  // Registry key for this (rule, subgoal adornments) combination.
  std::string key = std::to_string(rule_index);
  for (int c : choice) key += "," + std::to_string(c);
  if (arule_registry_.count(key) > 0) return false;
  arule_registry_.emplace(key, -1);  // mark processed (maybe inconsistent)

  Rule rule = program_.rules()[rule_index];

  // Pattern specialization (the paper's footnote 1): a triplet of a chosen
  // subgoal adornment whose variable image spans several argument positions
  // guarantees that every fact of that adorned predicate carries equal
  // values at those positions, so the rule is specialized by unifying the
  // subgoal's arguments there. If unification fails (two distinct
  // constants), the adorned subgoal can never match and the combination is
  // dropped altogether.
  {
    Substitution specialize;
    int idb_seen = 0;
    for (int b = 0; b < static_cast<int>(rule.body.size()); ++b) {
      const Literal& lit = rule.body[b];
      if (lit.negated || idb_.count(lit.atom.pred()) == 0) continue;
      int apred = choice[idb_seen++];
      for (const Triplet& t : apreds_[apred].adornment) {
        for (const auto& [z, img] : t.sigma) {
          if (img.is_constant || img.positions.size() < 2) continue;
          for (size_t i = 1; i < img.positions.size(); ++i) {
            if (!UnifyTermsInto(lit.atom.arg(img.positions[0]),
                                lit.atom.arg(img.positions[i]),
                                &specialize)) {
              return false;  // subgoal can never match this adornment
            }
          }
        }
      }
    }
    if (!specialize.empty()) {
      specialize.ResolveChains();
      rule = specialize.Apply(rule);
      // Equating variables can contradict the rule's own order atoms.
      if (!NormalizeRule(&rule)) return false;
    }
  }

  // Positive subgoals in body order; candidate triplets per subgoal.
  std::vector<int> positive_subgoals;
  std::vector<int> subgoal_apred(rule.body.size(), -1);
  std::vector<std::vector<RuleTriplet>> candidates;
  {
    int idb_seen = 0;
    for (int b = 0; b < static_cast<int>(rule.body.size()); ++b) {
      const Literal& lit = rule.body[b];
      if (lit.negated) continue;
      positive_subgoals.push_back(b);
      if (idb_.count(lit.atom.pred()) > 0) {
        SQOD_CHECK(idb_subgoals[idb_seen] == b);
        int apred = choice[idb_seen++];
        subgoal_apred[b] = apred;
        // Translate the adorned predicate's goal-level triplets into rule
        // terms; candidate order mirrors the adornment order so that
        // RuleTriplet::sources indexes the adornment directly.
        std::vector<RuleTriplet> list;
        for (const Triplet& t : apreds_[apred].adornment) {
          RuleTriplet rt;
          rt.ic_index = t.ic_index;
          rt.unmapped = t.unmapped;
          for (const auto& [z, img] : t.sigma) {
            if (img.is_constant) {
              rt.sigma.emplace(z, Term::Const(img.constant));
            } else {
              rt.sigma.emplace(z, lit.atom.arg(img.positions[0]));
            }
          }
          list.push_back(std::move(rt));
        }
        candidates.push_back(std::move(list));
      } else {
        candidates.push_back(EdbBaseTriplets(rule, lit.atom));
      }
    }
    SQOD_CHECK(idb_seen == static_cast<int>(idb_subgoals.size()));
  }

  // Order propagation ([LMSS93], folded into the bottom-up phase): the
  // conjunction of the rule's own order atoms and the chosen subgoals'
  // summaries must be satisfiable, or the rule can never fire with these
  // children.
  std::vector<Comparison> total = rule.comparisons;
  for (int b = 0; b < static_cast<int>(rule.body.size()); ++b) {
    if (subgoal_apred[b] == -1) continue;
    std::vector<Comparison> inst = InstantiateSummary(
        apreds_[subgoal_apred[b]].summary, rule.body[b].atom);
    total.insert(total.end(), inst.begin(), inst.end());
  }
  if (!ComparisonsConsistent(total)) return false;
  std::vector<Comparison> head_summary = ComputeHeadSummary(total, rule.head);

  const int m = static_cast<int>(positive_subgoals.size());

  // Combine triplets per IC: each subgoal contributes one candidate of that
  // IC or the implicit trivial triplet.
  std::vector<RuleTriplet> rule_adornment;
  bool inconsistent = false;
  for (int ic_index = 0;
       ic_index < static_cast<int>(ics_.size()) && !inconsistent;
       ++ic_index) {
    const Constraint& ic = ics_[ic_index];
    std::vector<const Atom*> positives = ic.PositiveAtoms();
    const std::vector<int>& nonlocal = local_.NonlocalOrder(ic_index);
    std::vector<int> all_atoms;
    for (int i = 0; i < static_cast<int>(positives.size()); ++i) {
      all_atoms.push_back(i);
    }
    // The quasi-local pseudo-atom participates as an extra unmapped index.
    if (!nonlocal.empty()) {
      all_atoms.push_back(static_cast<int>(positives.size()));
    }
    // Per-subgoal candidate indices for this IC.
    std::vector<std::vector<int>> per_subgoal(m);
    for (int s = 0; s < m; ++s) {
      for (int c = 0; c < static_cast<int>(candidates[s].size()); ++c) {
        if (candidates[s][c].ic_index == ic_index) {
          per_subgoal[s].push_back(c);
        }
      }
    }

    RuleTriplet current;
    current.ic_index = ic_index;
    current.unmapped = all_atoms;
    current.sources.assign(m, -1);
    int combos = 0;

    std::function<void(int)> combine = [&](int s) {
      if (inconsistent || ++combos > 2000000) {
        overflow_ = overflow_ || combos > 2000000;
        return;
      }
      if (s == m) {
        bool all_trivial = std::all_of(current.sources.begin(),
                                       current.sources.end(),
                                       [](int x) { return x == -1; });
        if (all_trivial) return;
        RuleTriplet t = current;
        RestrictSigma(ic, positives, nonlocal, t.unmapped, &t.sigma);
        if (t.unmapped.empty()) {
          // Empty residue: every instantiation through this adorned rule
          // violates the IC (the *inconsistent adornment* of the paper).
          inconsistent = true;
          return;
        }
        if (!nonlocal.empty() && t.unmapped.size() == 1 &&
            t.unmapped[0] == static_cast<int>(positives.size())) {
          // Only the quasi-local pseudo-atom is left: all EDB atoms of the
          // IC are mapped. If the mapped variables are all visible at this
          // rule node and the rule's own order atoms entail the mapped
          // non-local comparisons, every instantiation violates the IC.
          Substitution h;
          bool all_visible = true;
          for (const auto& [z, term] : t.sigma) h.Bind(z, term);
          std::vector<VarId> needed;
          for (int c : nonlocal) ic.comparisons[c].CollectVars(&needed);
          for (VarId z : needed) {
            if (h.Lookup(z) == nullptr) all_visible = false;
          }
          if (all_visible) {
            OrderSolver solver(rule.comparisons);
            bool entails_all = true;
            for (int c : nonlocal) {
              if (!solver.Entails(h.Apply(ic.comparisons[c]))) {
                entails_all = false;
                break;
              }
            }
            if (entails_all) {
              inconsistent = true;
              return;
            }
          }
        }
        for (const RuleTriplet& existing : rule_adornment) {
          if (existing.SameAs(t)) return;  // sources provenance: keep first
        }
        rule_adornment.push_back(std::move(t));
        return;
      }
      // Trivial contribution from subgoal s.
      combine(s + 1);
      if (inconsistent) return;
      // Each real candidate of subgoal s for this IC.
      for (int c : per_subgoal[s]) {
        const RuleTriplet& cand = candidates[s][c];
        // Merge sigma with compatibility check.
        std::map<VarId, Term> saved_sigma = current.sigma;
        std::vector<int> saved_unmapped = current.unmapped;
        bool ok = true;
        for (const auto& [z, term] : cand.sigma) {
          auto [it, inserted] = current.sigma.emplace(z, term);
          if (!inserted && !(it->second == term)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          std::vector<int> merged;
          std::set_intersection(current.unmapped.begin(),
                                current.unmapped.end(),
                                cand.unmapped.begin(), cand.unmapped.end(),
                                std::back_inserter(merged));
          current.unmapped = std::move(merged);
          current.sources[s] = c;
          combine(s + 1);
          current.sources[s] = -1;
        }
        current.sigma = std::move(saved_sigma);
        current.unmapped = std::move(saved_unmapped);
        if (inconsistent) return;
      }
    };
    combine(0);
  }

  if (inconsistent) return false;  // the adorned rule is dropped entirely

  // Head projection.
  std::vector<std::pair<Triplet, int>> head_triplets;
  for (int k = 0; k < static_cast<int>(rule_adornment.size()); ++k) {
    const RuleTriplet& rt = rule_adornment[k];
    Triplet ht;
    ht.ic_index = rt.ic_index;
    ht.unmapped = rt.unmapped;
    bool ok = true;
    for (const auto& [z, term] : rt.sigma) {
      if (term.is_const()) {
        ht.sigma.emplace(z, VarImage::Constant(term.value()));
        continue;
      }
      std::vector<int> positions;
      for (int i = 0; i < rule.head.arity(); ++i) {
        if (rule.head.arg(i) == term) positions.push_back(i);
      }
      if (positions.empty()) {
        // The shared variable does not survive to the head; the guarantee
        // cannot be tracked upward, so the triplet is not projected.
        ok = false;
        break;
      }
      ht.sigma.emplace(z, VarImage::AtPositions(std::move(positions)));
    }
    if (ok) head_triplets.emplace_back(std::move(ht), k);
  }
  std::sort(head_triplets.begin(), head_triplets.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  head_triplets.erase(
      std::unique(head_triplets.begin(), head_triplets.end(),
                  [](const auto& a, const auto& b) {
                    return a.first == b.first;
                  }),
      head_triplets.end());

  Adornment head_adornment;
  std::vector<int> head_sources;
  for (auto& [t, k] : head_triplets) {
    head_adornment.push_back(std::move(t));
    head_sources.push_back(k);
  }

  int head_apred = InternApred(rule.head.pred(), std::move(head_adornment),
                               std::move(head_summary));

  AdornedRule ar;
  ar.original_rule = rule_index;
  ar.rule = rule;
  ar.head_apred = head_apred;
  ar.subgoal_apred = std::move(subgoal_apred);
  ar.rule_adornment = std::move(rule_adornment);
  ar.positive_subgoals = std::move(positive_subgoals);
  ar.head_sources = std::move(head_sources);
  arule_registry_[key] = static_cast<int>(arules_.size());
  arules_.push_back(std::move(ar));
  if (static_cast<int>(arules_.size()) > options_.max_adorned_rules) {
    overflow_ = true;
  }
  return true;
}

std::vector<int> AdornmentEngine::AdornmentsOf(PredId p) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(apreds_.size()); ++i) {
    if (apreds_[i].original == p) out.push_back(i);
  }
  return out;
}

Status AdornmentEngine::Run() {
  const bool tracing =
      options_.tracer != nullptr && options_.tracer->enabled();
  fixpoint_passes_ = 0;
  bool changed = true;
  while (changed && !overflow_) {
    changed = false;
    Span pass_span;
    if (tracing) {
      pass_span = options_.tracer->StartSpan("sqo.adorn.iteration");
      pass_span.SetAttr("pass", fixpoint_passes_);
    }
    ++fixpoint_passes_;
    for (int r = 0; r < static_cast<int>(program_.rules().size()); ++r) {
      const Rule& rule = program_.rules()[r];
      std::vector<int> idb_subgoals;
      for (int b = 0; b < static_cast<int>(rule.body.size()); ++b) {
        const Literal& lit = rule.body[b];
        if (!lit.negated && idb_.count(lit.atom.pred()) > 0) {
          idb_subgoals.push_back(b);
        }
      }
      // Enumerate all current adornment choices for the IDB subgoals.
      std::vector<std::vector<int>> options;
      bool feasible = true;
      for (int b : idb_subgoals) {
        options.push_back(AdornmentsOf(rule.body[b].atom.pred()));
        if (options.back().empty()) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;

      std::vector<int> choice(idb_subgoals.size());
      std::function<void(size_t)> enumerate = [&](size_t i) {
        if (overflow_) return;
        if (i == idb_subgoals.size()) {
          if (ProcessCombination(r, idb_subgoals, choice)) changed = true;
          return;
        }
        for (int opt : options[i]) {
          choice[i] = opt;
          enumerate(i + 1);
        }
      };
      enumerate(0);
    }
    pass_span.SetAttr("apreds", static_cast<int64_t>(apreds_.size()));
    pass_span.SetAttr("arules", static_cast<int64_t>(arules_.size()));
  }
  if (overflow_) {
    return Status::ResourceExhausted(
        "adornment fixpoint exceeded its safety limits (the construction is "
        "doubly exponential in the worst case; raise AdornOptions to "
        "continue)");
  }
  return Status::Ok();
}

Program AdornmentEngine::AdornedProgram() const {
  Program out;
  for (const AdornedRule& ar : arules_) {
    Rule r;
    r.head = Atom(apreds_[ar.head_apred].name, ar.rule.head.args());
    for (int b = 0; b < static_cast<int>(ar.rule.body.size()); ++b) {
      const Literal& lit = ar.rule.body[b];
      if (!lit.negated && ar.subgoal_apred[b] != -1) {
        r.body.push_back(Literal::Pos(
            Atom(apreds_[ar.subgoal_apred[b]].name, lit.atom.args())));
      } else {
        r.body.push_back(lit);
      }
    }
    r.comparisons = ar.rule.comparisons;
    out.AddRule(std::move(r));
  }
  // Wrapper rules restore the original query predicate over the union of
  // its adorned versions.
  if (program_.query() != -1) {
    int arity = program_.Arity(program_.query());
    std::vector<Term> args;
    for (int i = 0; i < arity; ++i) {
      args.push_back(Term::Var("W" + std::to_string(i)));
    }
    for (int ap : AdornmentsOf(program_.query())) {
      Rule wrapper;
      wrapper.head = Atom(program_.query(), args);
      wrapper.body.push_back(Literal::Pos(Atom(apreds_[ap].name, args)));
      out.AddRule(std::move(wrapper));
    }
    out.SetQuery(program_.query());
  }
  return out;
}

std::string AdornmentEngine::ToString() const {
  std::string s;
  for (int i = 0; i < static_cast<int>(apreds_.size()); ++i) {
    const AdornedPred& ap = apreds_[i];
    s += PredName(ap.name) + " : " + PredName(ap.original) + " " +
         AdornmentToString(ap.adornment, ics_);
    if (!ap.summary.empty()) {
      s += " where {";
      for (size_t c = 0; c < ap.summary.size(); ++c) {
        if (c > 0) s += ", ";
        s += ap.summary[c].ToString();
      }
      s += "}";
    }
    s += "\n";
  }
  for (const AdornedRule& ar : arules_) {
    s += "rule " + std::to_string(ar.original_rule) + " -> head " +
         PredName(apreds_[ar.head_apred].name) + " | A_r = {";
    for (size_t k = 0; k < ar.rule_adornment.size(); ++k) {
      if (k > 0) s += ", ";
      s += ar.rule_adornment[k].ToString(ics_);
    }
    s += "}\n";
  }
  return s;
}

}  // namespace sqod
