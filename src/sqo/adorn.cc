#include "src/sqo/adorn.h"

#include <algorithm>
#include <array>
#include <deque>
#include <functional>
#include <optional>

#include "src/ast/unify.h"
#include "src/order/solver.h"
#include "src/base/check.h"
#include "src/sqo/preprocess.h"

namespace sqod {

namespace {

inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

inline uint64_t PackPair(int32_t hi, int32_t lo) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(hi)) << 32) |
         static_cast<uint32_t>(lo);
}

// All distinct variables appearing in the listed parts of constraint `ic`:
// an index below `atoms.size()` names a positive atom; the index equal to
// `atoms.size()` names the quasi-local pseudo-atom standing for the IC's
// non-local order atoms (their indices in `nonlocal`).
std::vector<VarId> VarsOfUnmapped(const Constraint& ic,
                                  const std::vector<const Atom*>& atoms,
                                  const std::vector<int>& nonlocal,
                                  const std::vector<int>& indices) {
  std::vector<VarId> vars;
  for (int i : indices) {
    if (i < static_cast<int>(atoms.size())) {
      atoms[i]->CollectVars(&vars);
    } else {
      for (int c : nonlocal) ic.comparisons[c].CollectVars(&vars);
    }
  }
  return vars;
}

// Restricts `sigma` to variables occurring in some unmapped part.
void RestrictSigma(const Constraint& ic,
                   const std::vector<const Atom*>& atoms,
                   const std::vector<int>& nonlocal,
                   const std::vector<int>& unmapped,
                   FlatMap<VarId, Term>* sigma) {
  std::vector<VarId> keep = VarsOfUnmapped(ic, atoms, nonlocal, unmapped);
  FlatMap<VarId, Term> kept;
  kept.reserve(sigma->size());
  for (const auto& [var, term] : *sigma) {
    if (std::find(keep.begin(), keep.end(), var) != keep.end()) {
      kept.emplace(var, term);
    }
  }
  *sigma = std::move(kept);
}

// Instantiates an order summary onto the arguments of `atom`.
std::vector<Comparison> InstantiateSummary(
    const std::vector<Comparison>& summary, const Atom& atom) {
  Substitution subst;
  for (int i = 0; i < atom.arity(); ++i) {
    subst.Bind(SummaryPlaceholder(i).var(), atom.arg(i));
  }
  std::vector<Comparison> out;
  out.reserve(summary.size());
  for (const Comparison& c : summary) out.push_back(subst.Apply(c));
  return out;
}

// Computes the head's order summary from the conjunction `total` that holds
// whenever the rule fires: every candidate comparison over head positions
// (and the constants mentioned in `total`) that is entailed.
std::vector<Comparison> ComputeHeadSummary(
    const std::vector<Comparison>& total, const Atom& head) {
  OrderSolver solver(total);
  std::vector<Value> constants;
  for (const Comparison& c : total) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_const() &&
          std::find(constants.begin(), constants.end(), t->value()) ==
              constants.end()) {
        constants.push_back(t->value());
      }
    }
  }
  std::sort(constants.begin(), constants.end());

  std::vector<Comparison> summary;
  auto consider = [&](const Term& concrete_a, const Term& placeholder_a,
                      CmpOp op, const Term& concrete_b,
                      const Term& placeholder_b) {
    if (concrete_a.is_const() && concrete_b.is_const()) return;  // trivial
    if (!solver.Entails(Comparison(concrete_a, op, concrete_b))) return;
    Comparison c = Comparison(placeholder_a, op, placeholder_b).Canonical();
    if (std::find(summary.begin(), summary.end(), c) == summary.end()) {
      summary.push_back(c);
    }
  };
  static constexpr CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq,
                                   CmpOp::kNe};
  for (int i = 0; i < head.arity(); ++i) {
    for (int j = i + 1; j < head.arity(); ++j) {
      for (CmpOp op : kOps) {
        consider(head.arg(i), SummaryPlaceholder(i), op, head.arg(j),
                 SummaryPlaceholder(j));
        consider(head.arg(j), SummaryPlaceholder(j), op, head.arg(i),
                 SummaryPlaceholder(i));
      }
    }
    for (const Value& v : constants) {
      Term c = Term::Const(v);
      for (CmpOp op : kOps) {
        consider(head.arg(i), SummaryPlaceholder(i), op, c, c);
        consider(c, c, op, head.arg(i), SummaryPlaceholder(i));
      }
    }
  }
  std::sort(summary.begin(), summary.end(),
            [](const Comparison& a, const Comparison& b) {
              return a.ToString() < b.ToString();
            });
  return summary;
}

}  // namespace

Term SummaryPlaceholder(int i) {
  // Hot enough that re-interning "P#<i>" each call shows up in profiles;
  // the first few placeholders cover every realistic arity. Thread-safe via
  // magic-static initialization; read-only afterwards.
  constexpr int kCached = 16;
  static const std::array<Term, kCached>& cache = *[] {
    auto* c = new std::array<Term, kCached>();
    for (int i = 0; i < kCached; ++i) {
      (*c)[i] = Term::Var("P#" + std::to_string(i));
    }
    return c;
  }();
  if (i >= 0 && i < kCached) return cache[i];
  return Term::Var("P#" + std::to_string(i));
}

size_t AdornmentEngine::ApredKeyHash::operator()(const ApredKey& k) const {
  size_t h = static_cast<size_t>(k.pred) + 0x165667b1;
  h = HashCombine(h, static_cast<size_t>(k.adornment));
  h = HashCombine(h, static_cast<size_t>(k.summary));
  return h;
}

size_t AdornmentEngine::IntVecHash::operator()(
    const std::vector<int32_t>& v) const {
  size_t h = 0x811c9dc5;
  for (int32_t x : v) h = HashCombine(h, static_cast<size_t>(x));
  return h;
}

AdornmentEngine::AdornmentEngine(const Program& program,
                                 std::vector<Constraint> ics,
                                 LocalAtomInfo local, AdornOptions options)
    : program_(program),
      ics_(std::move(ics)),
      local_(std::move(local)),
      options_(options),
      idb_(program.IdbPreds()) {
  if (options_.store != nullptr) {
    store_ = options_.store;
  } else {
    owned_store_ = std::make_unique<TripletStore>();
    store_ = owned_store_.get();
  }
  memoize_ = options_.memoize && store_->memo_enabled();
}

AdornmentEngine::~AdornmentEngine() = default;

void AdornmentEngine::FillIds(CandidateList* list) const {
  list->ids.reserve(list->triplets.size());
  for (const RuleTriplet& t : list->triplets) {
    list->ids.push_back(store_->InternRuleTriplet(t));
  }
}

AdornmentEngine::CandidateList AdornmentEngine::EdbBaseTriplets(
    const Rule& rule, const Atom& atom) const {
  CandidateList out;
  AtomId target_id = -1;
  if (memoize_) target_id = store_->atoms().Intern(atom);
  for (int ic_index = 0; ic_index < static_cast<int>(ics_.size());
       ++ic_index) {
    const Constraint& ic = ics_[ic_index];
    std::vector<const Atom*> positives = ic.PositiveAtoms();
    const int n = static_cast<int>(positives.size());
    const std::vector<int>& nonlocal = local_.NonlocalOrder(ic_index);

    // One-way matches of each IC atom into `atom`, computed (or recalled
    // from the store's match memo) once per call instead of once per
    // enumeration path.
    std::vector<MatchDelta> local_deltas;
    std::vector<const MatchDelta*> deltas(n);
    if (memoize_) {
      for (int i = 0; i < n; ++i) {
        deltas[i] =
            &store_->atoms().Match(store_->atoms().Intern(*positives[i]),
                                   target_id);
      }
    } else {
      local_deltas.reserve(n);
      for (int i = 0; i < n; ++i) {
        local_deltas.push_back(ComputeMatchDelta(*positives[i], atom));
      }
      for (int i = 0; i < n; ++i) deltas[i] = &local_deltas[i];
    }

    // Enumerate subsets M of the IC's positive atoms all mapping into
    // `atom` under one consistent homomorphism.
    std::vector<int> mapped;
    std::function<void(int, const Substitution&)> recurse =
        [&](int next, const Substitution& h) {
          if (next == n) {
            if (mapped.empty()) return;  // the trivial triplet is implicit
            // Section 4.2 retention: each mapped carrier atom must have its
            // local atoms asserted by the rule with the right polarity.
            for (int a : mapped) {
              if (!RetentionHolds(rule, ics_, local_, ic_index, a, h)) return;
            }
            RuleTriplet t;
            t.ic_index = ic_index;
            for (int i = 0; i < n; ++i) {
              if (std::find(mapped.begin(), mapped.end(), i) ==
                  mapped.end()) {
                t.unmapped.push_back(i);
              }
            }
            // The quasi-local pseudo-atom is never mapped at a leaf.
            if (!nonlocal.empty()) t.unmapped.push_back(n);
            // sigma: shared variables, with their images (rule terms).
            std::vector<VarId> shared =
                VarsOfUnmapped(ic, positives, nonlocal, t.unmapped);
            for (VarId z : shared) {
              const Term* image = h.Lookup(z);
              if (image != nullptr) t.sigma.emplace(z, *image);
            }
            if (memoize_) {
              RuleTripletId id = store_->InternRuleTriplet(t);
              if (std::find(out.ids.begin(), out.ids.end(), id) !=
                  out.ids.end()) {
                return;
              }
              out.ids.push_back(id);
              out.triplets.push_back(std::move(t));
            } else {
              for (const RuleTriplet& existing : out.triplets) {
                if (existing.SameAs(t)) return;
              }
              out.triplets.push_back(std::move(t));
            }
            return;
          }
          recurse(next + 1, h);  // leave atom `next` unmapped
          Substitution extended = h;
          if (ApplyMatchDelta(*deltas[next], &extended)) {
            mapped.push_back(next);
            recurse(next + 1, extended);
            mapped.pop_back();
          }
        };
    recurse(0, Substitution());
  }
  return out;
}

AdornmentEngine::CandidateList AdornmentEngine::TranslateAdornment(
    int apred, const Atom& atom) const {
  // Translate the adorned predicate's goal-level triplets into rule terms;
  // candidate order mirrors the adornment order so that
  // RuleTriplet::sources indexes the adornment directly. No dedup: the
  // positions are the provenance coordinate system.
  CandidateList list;
  for (const Triplet& t : apreds_[apred].adornment) {
    RuleTriplet rt;
    rt.ic_index = t.ic_index;
    rt.unmapped = t.unmapped;
    for (const auto& [z, img] : t.sigma) {
      if (img.is_constant) {
        rt.sigma.emplace(z, Term::Const(img.constant));
      } else {
        rt.sigma.emplace(z, atom.arg(img.positions[0]));
      }
    }
    list.triplets.push_back(std::move(rt));
  }
  if (memoize_) FillIds(&list);
  return list;
}

int AdornmentEngine::InternApred(PredId pred, Adornment adornment,
                                 std::vector<Comparison> summary) {
  ApredKey key;
  key.pred = pred;
  key.adornment = store_->InternAdornment(adornment);
  key.summary = store_->InternSummary(summary);
  auto it = apred_registry_.find(key);
  if (it != apred_registry_.end()) return it->second;
  int index = static_cast<int>(apreds_.size());
  AdornedPred ap;
  ap.original = pred;
  ap.adornment = std::move(adornment);
  ap.summary = std::move(summary);
  ap.name = InternPred(PredName(pred) + "@" + std::to_string(index));
  ap.adornment_id = key.adornment;
  ap.summary_id = key.summary;
  apreds_.push_back(std::move(ap));
  apred_registry_.emplace(key, index);
  apreds_by_pred_[pred].push_back(index);
  if (static_cast<int>(apreds_.size()) > options_.max_adorned_preds) {
    overflow_ = true;
  }
  return index;
}

RuleTripletId AdornmentEngine::RestrictedLeaf(RuleTripletId id) {
  auto memo = restrict_memo_.find(id);
  if (memo != restrict_memo_.end()) return memo->second;
  const RuleTriplet& t = store_->rule_triplet(id);
  const Constraint& ic = ics_[t.ic_index];
  std::vector<const Atom*> positives = ic.PositiveAtoms();
  const std::vector<int>& nonlocal = local_.NonlocalOrder(t.ic_index);
  RuleTriplet restricted = t;
  RestrictSigma(ic, positives, nonlocal, restricted.unmapped,
                &restricted.sigma);
  RuleTripletId rid = store_->InternRuleTriplet(restricted);
  restrict_memo_.emplace(id, rid);
  return rid;
}

bool AdornmentEngine::ProcessCombination(int rule_index,
                                         const std::vector<int>& idb_subgoals,
                                         const std::vector<int>& choice) {
  // Registry key for this (rule, subgoal adornments) combination: ints, not
  // a serialized string — the fixpoint re-enumerates every combination each
  // pass, so this lookup is the hottest line of the whole phase. The scratch
  // buffer keeps the (overwhelmingly common) already-processed path
  // allocation-free.
  key_scratch_.clear();
  key_scratch_.reserve(choice.size() + 1);
  key_scratch_.push_back(rule_index);
  for (int c : choice) key_scratch_.push_back(c);
  if (arule_registry_.find(key_scratch_) != arule_registry_.end()) {
    return false;
  }
  auto registry_it = arule_registry_.emplace(key_scratch_, -1).first;
  // registry_it stays valid: nothing inserts into arule_registry_ below
  // until the final update (unordered_map references are rehash-stable).

  Rule rule = program_.rules()[rule_index];
  bool specialized = false;

  // Pattern specialization (the paper's footnote 1): a triplet of a chosen
  // subgoal adornment whose variable image spans several argument positions
  // guarantees that every fact of that adorned predicate carries equal
  // values at those positions, so the rule is specialized by unifying the
  // subgoal's arguments there. If unification fails (two distinct
  // constants), the adorned subgoal can never match and the combination is
  // dropped altogether.
  {
    Substitution specialize;
    int idb_seen = 0;
    for (int b = 0; b < static_cast<int>(rule.body.size()); ++b) {
      const Literal& lit = rule.body[b];
      if (lit.negated || idb_.count(lit.atom.pred()) == 0) continue;
      int apred = choice[idb_seen++];
      for (const Triplet& t : apreds_[apred].adornment) {
        for (const auto& [z, img] : t.sigma) {
          if (img.is_constant || img.positions.size() < 2) continue;
          for (size_t i = 1; i < img.positions.size(); ++i) {
            if (!UnifyTermsInto(lit.atom.arg(img.positions[0]),
                                lit.atom.arg(img.positions[i]),
                                &specialize)) {
              return false;  // subgoal can never match this adornment
            }
          }
        }
      }
    }
    if (!specialize.empty()) {
      specialize.ResolveChains();
      rule = specialize.Apply(rule);
      specialized = true;
      // Equating variables can contradict the rule's own order atoms.
      if (!NormalizeRule(&rule)) return false;
    }
  }

  // Positive subgoals in body order; candidate triplets per subgoal.
  // Candidate lists come from the memo tables where possible (translation
  // depends only on (apred, atom); EDB base triplets only on the original
  // (rule, occurrence) as long as the rule was not specialized).
  std::vector<int> positive_subgoals;
  std::vector<int> subgoal_apred(rule.body.size(), -1);
  std::vector<const CandidateList*> candidates;
  std::deque<CandidateList> scratch_lists;
  {
    int idb_seen = 0;
    for (int b = 0; b < static_cast<int>(rule.body.size()); ++b) {
      const Literal& lit = rule.body[b];
      if (lit.negated) continue;
      positive_subgoals.push_back(b);
      if (idb_.count(lit.atom.pred()) > 0) {
        SQOD_CHECK(idb_subgoals[idb_seen] == b);
        int apred = choice[idb_seen++];
        subgoal_apred[b] = apred;
        if (memoize_) {
          const uint64_t memo_key =
              PackPair(apred, store_->atoms().Intern(lit.atom));
          auto it = translate_memo_.find(memo_key);
          if (it == translate_memo_.end()) {
            it = translate_memo_
                     .emplace(memo_key, TranslateAdornment(apred, lit.atom))
                     .first;
          }
          candidates.push_back(&it->second);
        } else {
          scratch_lists.push_back(TranslateAdornment(apred, lit.atom));
          candidates.push_back(&scratch_lists.back());
        }
      } else if (memoize_ && !specialized) {
        const uint64_t memo_key = PackPair(rule_index, b);
        auto it = edb_base_memo_.find(memo_key);
        if (it == edb_base_memo_.end()) {
          it = edb_base_memo_
                   .emplace(memo_key, EdbBaseTriplets(rule, lit.atom))
                   .first;
        }
        candidates.push_back(&it->second);
      } else {
        scratch_lists.push_back(EdbBaseTriplets(rule, lit.atom));
        candidates.push_back(&scratch_lists.back());
      }
    }
    SQOD_CHECK(idb_seen == static_cast<int>(idb_subgoals.size()));
  }

  // Order propagation ([LMSS93], folded into the bottom-up phase): the
  // conjunction of the rule's own order atoms and the chosen subgoals'
  // summaries must be satisfiable, or the rule can never fire with these
  // children.
  std::vector<Comparison> total = rule.comparisons;
  for (int b = 0; b < static_cast<int>(rule.body.size()); ++b) {
    if (subgoal_apred[b] == -1) continue;
    const AdornedPred& ap = apreds_[subgoal_apred[b]];
    if (memoize_) {
      const uint64_t memo_key =
          PackPair(ap.summary_id, store_->atoms().Intern(rule.body[b].atom));
      auto it = summary_memo_.find(memo_key);
      if (it == summary_memo_.end()) {
        it = summary_memo_
                 .emplace(memo_key,
                          InstantiateSummary(ap.summary, rule.body[b].atom))
                 .first;
      }
      total.insert(total.end(), it->second.begin(), it->second.end());
    } else {
      std::vector<Comparison> inst =
          InstantiateSummary(ap.summary, rule.body[b].atom);
      total.insert(total.end(), inst.begin(), inst.end());
    }
  }
  // Consistency and head-summary both depend only on (total, head), and the
  // same conjunction recurs across combinations (same subgoal summaries in a
  // different mix). Interning `total` turns both checks into one hash each;
  // ComputeHeadSummary in particular runs several order solves per call.
  std::vector<Comparison> head_summary;
  if (memoize_) {
    const SummaryId total_id = store_->InternSummary(total);
    auto cons = consistent_memo_.find(total_id);
    if (cons == consistent_memo_.end()) {
      cons = consistent_memo_
                 .emplace(total_id, ComparisonsConsistent(total))
                 .first;
    }
    if (!cons->second) return false;
    const uint64_t hs_key =
        PackPair(total_id, store_->atoms().Intern(rule.head));
    auto hs = head_summary_memo_.find(hs_key);
    if (hs == head_summary_memo_.end()) {
      hs = head_summary_memo_
               .emplace(hs_key, ComputeHeadSummary(total, rule.head))
               .first;
    }
    head_summary = hs->second;
  } else {
    if (!ComparisonsConsistent(total)) return false;
    head_summary = ComputeHeadSummary(total, rule.head);
  }

  const int m = static_cast<int>(positive_subgoals.size());

  // The rule's own order theory, shared by every quasi-local leaf check.
  std::optional<OrderSolver> rule_solver;
  auto solver = [&]() -> OrderSolver& {
    if (!rule_solver.has_value()) rule_solver.emplace(rule.comparisons);
    return *rule_solver;
  };

  // Combine triplets per IC: each subgoal contributes one candidate of that
  // IC or the implicit trivial triplet. The memoized path threads an
  // interned rule-triplet id through the recursion and merges via the
  // store (hash lookup per step); the plain path recomputes each merge.
  std::vector<RuleTriplet> rule_adornment;
  std::unordered_set<RuleTripletId> leaf_seen;
  bool inconsistent = false;
  for (int ic_index = 0;
       ic_index < static_cast<int>(ics_.size()) && !inconsistent;
       ++ic_index) {
    const Constraint& ic = ics_[ic_index];
    std::vector<const Atom*> positives = ic.PositiveAtoms();
    const std::vector<int>& nonlocal = local_.NonlocalOrder(ic_index);
    std::vector<int> all_atoms;
    for (int i = 0; i < static_cast<int>(positives.size()); ++i) {
      all_atoms.push_back(i);
    }
    // The quasi-local pseudo-atom participates as an extra unmapped index.
    if (!nonlocal.empty()) {
      all_atoms.push_back(static_cast<int>(positives.size()));
    }
    // Per-subgoal candidate indices for this IC.
    std::vector<std::vector<int>> per_subgoal(m);
    for (int s = 0; s < m; ++s) {
      const std::vector<RuleTriplet>& cand = candidates[s]->triplets;
      for (int c = 0; c < static_cast<int>(cand.size()); ++c) {
        if (cand[c].ic_index == ic_index) {
          per_subgoal[s].push_back(c);
        }
      }
    }

    std::vector<int> sources(m, -1);
    int combos = 0;

    // Checks a fully restricted leaf triplet: detects the inconsistent
    // adornment, dedupes, and records it with its provenance.
    auto process_leaf = [&](const RuleTriplet& t, RuleTripletId id) {
      if (t.unmapped.empty()) {
        // Empty residue: every instantiation through this adorned rule
        // violates the IC (the *inconsistent adornment* of the paper).
        inconsistent = true;
        return;
      }
      if (!nonlocal.empty() && t.unmapped.size() == 1 &&
          t.unmapped[0] == static_cast<int>(positives.size())) {
        // Only the quasi-local pseudo-atom is left: all EDB atoms of the
        // IC are mapped. If the mapped variables are all visible at this
        // rule node and the rule's own order atoms entail the mapped
        // non-local comparisons, every instantiation violates the IC.
        Substitution h;
        bool all_visible = true;
        for (const auto& [z, term] : t.sigma) h.Bind(z, term);
        std::vector<VarId> needed;
        for (int c : nonlocal) ic.comparisons[c].CollectVars(&needed);
        for (VarId z : needed) {
          if (h.Lookup(z) == nullptr) all_visible = false;
        }
        if (all_visible) {
          bool entails_all = true;
          for (int c : nonlocal) {
            if (!solver().Entails(h.Apply(ic.comparisons[c]))) {
              entails_all = false;
              break;
            }
          }
          if (entails_all) {
            inconsistent = true;
            return;
          }
        }
      }
      if (id >= 0) {
        if (!leaf_seen.insert(id).second) return;  // provenance: keep first
      } else {
        for (const RuleTriplet& existing : rule_adornment) {
          if (existing.SameAs(t)) return;  // sources provenance: keep first
        }
      }
      RuleTriplet recorded = t;
      recorded.sources = sources;
      rule_adornment.push_back(std::move(recorded));
    };

    if (memoize_) {
      RuleTriplet start;
      start.ic_index = ic_index;
      start.unmapped = all_atoms;
      const RuleTripletId start_id = store_->InternRuleTriplet(start);
      std::function<void(int, RuleTripletId)> combine =
          [&](int s, RuleTripletId state) {
            if (inconsistent || ++combos > 2000000) {
              overflow_ = overflow_ || combos > 2000000;
              return;
            }
            if (s == m) {
              bool all_trivial =
                  std::all_of(sources.begin(), sources.end(),
                              [](int x) { return x == -1; });
              if (all_trivial) return;
              RuleTripletId restricted = RestrictedLeaf(state);
              process_leaf(store_->rule_triplet(restricted), restricted);
              return;
            }
            // Trivial contribution from subgoal s.
            combine(s + 1, state);
            if (inconsistent) return;
            // Each real candidate of subgoal s for this IC.
            for (int c : per_subgoal[s]) {
              const int32_t merged = store_->MergeRuleTriplets(
                  state, candidates[s]->ids[c]);
              if (merged == TripletStore::kIncompatible) continue;
              sources[s] = c;
              combine(s + 1, merged);
              sources[s] = -1;
              if (inconsistent) return;
            }
          };
      combine(0, start_id);
    } else {
      RuleTriplet current;
      current.ic_index = ic_index;
      current.unmapped = all_atoms;
      std::function<void(int)> combine = [&](int s) {
        if (inconsistent || ++combos > 2000000) {
          overflow_ = overflow_ || combos > 2000000;
          return;
        }
        if (s == m) {
          bool all_trivial = std::all_of(sources.begin(), sources.end(),
                                         [](int x) { return x == -1; });
          if (all_trivial) return;
          RuleTriplet t = current;
          RestrictSigma(ic, positives, nonlocal, t.unmapped, &t.sigma);
          process_leaf(t, -1);
          return;
        }
        // Trivial contribution from subgoal s.
        combine(s + 1);
        if (inconsistent) return;
        // Each real candidate of subgoal s for this IC.
        for (int c : per_subgoal[s]) {
          const RuleTriplet& cand = candidates[s]->triplets[c];
          // Merge sigma with compatibility check.
          FlatMap<VarId, Term> saved_sigma = current.sigma;
          std::vector<int> saved_unmapped = current.unmapped;
          bool ok = true;
          for (const auto& [z, term] : cand.sigma) {
            auto [it, inserted] = current.sigma.emplace(z, term);
            if (!inserted && !(it->second == term)) {
              ok = false;
              break;
            }
          }
          if (ok) {
            std::vector<int> merged;
            std::set_intersection(current.unmapped.begin(),
                                  current.unmapped.end(),
                                  cand.unmapped.begin(), cand.unmapped.end(),
                                  std::back_inserter(merged));
            current.unmapped = std::move(merged);
            sources[s] = c;
            combine(s + 1);
            sources[s] = -1;
          }
          current.sigma = std::move(saved_sigma);
          current.unmapped = std::move(saved_unmapped);
          if (inconsistent) return;
        }
      };
      combine(0);
    }
  }

  if (inconsistent) return false;  // the adorned rule is dropped entirely

  // Head projection.
  std::vector<std::pair<Triplet, int>> head_triplets;
  for (int k = 0; k < static_cast<int>(rule_adornment.size()); ++k) {
    const RuleTriplet& rt = rule_adornment[k];
    Triplet ht;
    ht.ic_index = rt.ic_index;
    ht.unmapped = rt.unmapped;
    bool ok = true;
    for (const auto& [z, term] : rt.sigma) {
      if (term.is_const()) {
        ht.sigma.emplace(z, VarImage::Constant(term.value()));
        continue;
      }
      std::vector<int> positions;
      for (int i = 0; i < rule.head.arity(); ++i) {
        if (rule.head.arg(i) == term) positions.push_back(i);
      }
      if (positions.empty()) {
        // The shared variable does not survive to the head; the guarantee
        // cannot be tracked upward, so the triplet is not projected.
        ok = false;
        break;
      }
      ht.sigma.emplace(z, VarImage::AtPositions(std::move(positions)));
    }
    if (ok) head_triplets.emplace_back(std::move(ht), k);
  }
  std::sort(head_triplets.begin(), head_triplets.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  head_triplets.erase(
      std::unique(head_triplets.begin(), head_triplets.end(),
                  [](const auto& a, const auto& b) {
                    return a.first == b.first;
                  }),
      head_triplets.end());

  Adornment head_adornment;
  std::vector<int> head_sources;
  for (auto& [t, k] : head_triplets) {
    head_adornment.push_back(std::move(t));
    head_sources.push_back(k);
  }

  int head_apred = InternApred(rule.head.pred(), std::move(head_adornment),
                               std::move(head_summary));

  AdornedRule ar;
  ar.original_rule = rule_index;
  ar.rule = rule;
  ar.head_apred = head_apred;
  ar.subgoal_apred = std::move(subgoal_apred);
  ar.rule_adornment = std::move(rule_adornment);
  ar.positive_subgoals = std::move(positive_subgoals);
  ar.head_sources = std::move(head_sources);
  registry_it->second = static_cast<int>(arules_.size());
  arules_.push_back(std::move(ar));
  if (static_cast<int>(arules_.size()) > options_.max_adorned_rules) {
    overflow_ = true;
  }
  return true;
}

std::vector<int> AdornmentEngine::AdornmentsOf(PredId p) const {
  auto it = apreds_by_pred_.find(p);
  return it == apreds_by_pred_.end() ? std::vector<int>() : it->second;
}

Status AdornmentEngine::Run() {
  const bool tracing =
      options_.tracer != nullptr && options_.tracer->enabled();
  fixpoint_passes_ = 0;
  bool changed = true;
  while (changed && !overflow_) {
    changed = false;
    Span pass_span;
    if (tracing) {
      pass_span = options_.tracer->StartSpan("sqo.adorn.iteration");
      pass_span.SetAttr("pass", fixpoint_passes_);
    }
    ++fixpoint_passes_;
    for (int r = 0; r < static_cast<int>(program_.rules().size()); ++r) {
      const Rule& rule = program_.rules()[r];
      std::vector<int> idb_subgoals;
      for (int b = 0; b < static_cast<int>(rule.body.size()); ++b) {
        const Literal& lit = rule.body[b];
        if (!lit.negated && idb_.count(lit.atom.pred()) > 0) {
          idb_subgoals.push_back(b);
        }
      }
      // Enumerate all current adornment choices for the IDB subgoals.
      std::vector<std::vector<int>> options;
      bool feasible = true;
      for (int b : idb_subgoals) {
        options.push_back(AdornmentsOf(rule.body[b].atom.pred()));
        if (options.back().empty()) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;

      std::vector<int> choice(idb_subgoals.size());
      std::function<void(size_t)> enumerate = [&](size_t i) {
        if (overflow_) return;
        if (i == idb_subgoals.size()) {
          if (ProcessCombination(r, idb_subgoals, choice)) changed = true;
          return;
        }
        for (int opt : options[i]) {
          choice[i] = opt;
          enumerate(i + 1);
        }
      };
      enumerate(0);
    }
    pass_span.SetAttr("apreds", static_cast<int64_t>(apreds_.size()));
    pass_span.SetAttr("arules", static_cast<int64_t>(arules_.size()));
  }
  if (overflow_) {
    return Status::ResourceExhausted(
        "adornment fixpoint exceeded its safety limits (the construction is "
        "doubly exponential in the worst case; raise AdornOptions to "
        "continue)");
  }
  return Status::Ok();
}

Program AdornmentEngine::AdornedProgram() const {
  Program out;
  for (const AdornedRule& ar : arules_) {
    Rule r;
    r.head = Atom(apreds_[ar.head_apred].name, ar.rule.head.args());
    for (int b = 0; b < static_cast<int>(ar.rule.body.size()); ++b) {
      const Literal& lit = ar.rule.body[b];
      if (!lit.negated && ar.subgoal_apred[b] != -1) {
        r.body.push_back(Literal::Pos(
            Atom(apreds_[ar.subgoal_apred[b]].name, lit.atom.args())));
      } else {
        r.body.push_back(lit);
      }
    }
    r.comparisons = ar.rule.comparisons;
    out.AddRule(std::move(r));
  }
  // Wrapper rules restore the original query predicate over the union of
  // its adorned versions.
  if (program_.query() != -1) {
    int arity = program_.Arity(program_.query());
    std::vector<Term> args;
    for (int i = 0; i < arity; ++i) {
      args.push_back(Term::Var("W" + std::to_string(i)));
    }
    for (int ap : AdornmentsOf(program_.query())) {
      Rule wrapper;
      wrapper.head = Atom(program_.query(), args);
      wrapper.body.push_back(Literal::Pos(Atom(apreds_[ap].name, args)));
      out.AddRule(std::move(wrapper));
    }
    out.SetQuery(program_.query());
  }
  return out;
}

std::string AdornmentEngine::ToString() const {
  std::string s;
  for (int i = 0; i < static_cast<int>(apreds_.size()); ++i) {
    const AdornedPred& ap = apreds_[i];
    s += PredName(ap.name) + " : " + PredName(ap.original) + " " +
         AdornmentToString(ap.adornment, ics_);
    if (!ap.summary.empty()) {
      s += " where {";
      for (size_t c = 0; c < ap.summary.size(); ++c) {
        if (c > 0) s += ", ";
        s += ap.summary[c].ToString();
      }
      s += "}";
    }
    s += "\n";
  }
  for (const AdornedRule& ar : arules_) {
    s += "rule " + std::to_string(ar.original_rule) + " -> head " +
         PredName(apreds_[ar.head_apred].name) + " | A_r = {";
    for (size_t k = 0; k < ar.rule_adornment.size(); ++k) {
      if (k > 0) s += ", ";
      s += ar.rule_adornment[k].ToString(ics_);
    }
    s += "}\n";
  }
  return s;
}

}  // namespace sqod
