#ifndef SQOD_SQO_ADORN_H_
#define SQOD_SQO_ADORN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"
#include "src/obs/trace.h"
#include "src/sqo/local.h"
#include "src/sqo/triplet.h"
#include "src/sqo/triplet_store.h"

namespace sqod {

// An adorned IDB predicate p^A: the original predicate plus the adornment
// (set of triplets guaranteed for every derivation of a p^A fact) and the
// *order summary* — the conjunction of order atoms over the head argument
// positions (placeholder variables P#0, P#1, ...) that holds for every fact
// derivable through this adorned predicate. The summary is the [LMSS93]
// order-propagation that the paper assumes as preprocessing, incorporated
// into the bottom-up phase as the proof of Theorem 5.1 suggests: a rule
// whose own order atoms contradict a chosen subgoal's summary can never
// fire and is dropped.
struct AdornedPred {
  PredId original = -1;
  Adornment adornment;
  std::vector<Comparison> summary;  // canonical, sorted
  PredId name = -1;                 // generated name "p@<k>"
  // Hash-consed identity in the engine's TripletStore.
  AdornmentId adornment_id = -1;
  SummaryId summary_id = -1;
};

// The placeholder variable for head argument position `i` in summaries.
Term SummaryPlaceholder(int i);

// An adorned rule of the program P1 built by the bottom-up phase.
struct AdornedRule {
  int original_rule = -1;          // index into the input program's rules
  Rule rule;                       // the original rule (original variables)
  int head_apred = -1;             // index into AdornmentEngine::apreds()
  // Per body literal: the adorned predicate index for positive IDB
  // subgoals, -1 for EDB or negated literals.
  std::vector<int> subgoal_apred;
  // A_r: every combined triplet, with provenance in RuleTriplet::sources
  // (aligned with the positive subgoals, see positive_subgoals).
  std::vector<RuleTriplet> rule_adornment;
  // Body indices of the positive subgoals, in body order (the coordinate
  // system of RuleTriplet::sources).
  std::vector<int> positive_subgoals;
  // For each triplet of the head adornment (canonical order): the index of
  // the rule triplet it was projected from.
  std::vector<int> head_sources;
};

struct AdornOptions {
  // Fixpoint safety valves; the construction is doubly exponential in the
  // worst case (Theorem 5.1).
  int max_adorned_preds = 4000;
  int max_adorned_rules = 40000;
  // Optional span collector: each fixpoint pass of Run() becomes a
  // "sqo.adorn.iteration" span with apred/arule counts.
  Tracer* tracer = nullptr;
  // Hash-consing store for triplets / adornments / atoms. Normally the
  // pipeline's PassContext store, shared across passes; when null the
  // engine owns a private one.
  TripletStore* store = nullptr;
  // Memoize the hot combinators (rule-triplet composition, EDB base
  // triplets, adornment translation) in addition to hash-consing. Output
  // is identical either way; the switch exists for A/B testing and the
  // golden interning test.
  bool memoize = true;
};

// The bottom-up phase of the Section 4.1 algorithm. Expects the program to
// be normalized (NormalizeProgram) and, when the ICs have local atoms,
// already rewritten by RewriteForLocalAtoms. ICs must be EDB-only, with all
// order atoms and negated atoms local (carried by `local`).
class AdornmentEngine {
 public:
  AdornmentEngine(const Program& program, std::vector<Constraint> ics,
                  LocalAtomInfo local, AdornOptions options = {});
  ~AdornmentEngine();

  // Runs the fixpoint. Returns an error only when a safety valve triggers.
  Status Run();

  const Program& program() const { return program_; }
  const std::vector<Constraint>& ics() const { return ics_; }
  const std::vector<AdornedPred>& apreds() const { return apreds_; }
  const std::vector<AdornedRule>& arules() const { return arules_; }

  // The hash-consing store the engine interns into (the shared pipeline
  // store, or the engine's own fallback).
  TripletStore& store() const { return *store_; }

  // Adorned predicate indices whose original predicate is `p`.
  std::vector<int> AdornmentsOf(PredId p) const;

  // Number of passes the Run() fixpoint took (0 before Run).
  int fixpoint_passes() const { return fixpoint_passes_; }

  // P1 as a plain datalog program over the generated predicate names, with
  // wrapper rules restoring the original query predicate.
  Program AdornedProgram() const;

  std::string ToString() const;

 private:
  // (pred, adornment-id, summary-id) -> apreds_ index.
  struct ApredKey {
    PredId pred;
    AdornmentId adornment;
    SummaryId summary;
    bool operator==(const ApredKey& other) const {
      return pred == other.pred && adornment == other.adornment &&
             summary == other.summary;
    }
  };
  struct ApredKeyHash {
    size_t operator()(const ApredKey& k) const;
  };
  struct IntVecHash {
    size_t operator()(const std::vector<int32_t>& v) const;
  };

  // A per-subgoal list of candidate rule triplets, with their interned ids
  // (aligned; filled on construction).
  struct CandidateList {
    std::vector<RuleTriplet> triplets;
    std::vector<RuleTripletId> ids;
  };

  // Registers (or finds) the adorned predicate for (pred, adornment,
  // summary).
  int InternApred(PredId pred, Adornment adornment,
                  std::vector<Comparison> summary);

  // Processes one rule under one choice of subgoal adornments. Returns true
  // if a new adorned predicate or rule was created.
  bool ProcessCombination(int rule_index, const std::vector<int>& idb_subgoals,
                          const std::vector<int>& choice);

  // Base triplets for the EDB occurrence `atom` of `rule` (Section 4.1's
  // per-pattern EDB adornments, computed per occurrence so the Section 4.2
  // retention condition can consult the rule context).
  CandidateList EdbBaseTriplets(const Rule& rule, const Atom& atom) const;

  // Goal-level triplets of `apreds_[apred]` translated into rule terms via
  // the subgoal occurrence `atom` (candidate order mirrors the adornment).
  CandidateList TranslateAdornment(int apred, const Atom& atom) const;

  // Restricts (and interns) the leaf rule triplet `id`: drops sigma entries
  // for variables that occur in no unmapped part. Memoized on `id`.
  RuleTripletId RestrictedLeaf(RuleTripletId id);

  void FillIds(CandidateList* list) const;

  Program program_;
  std::vector<Constraint> ics_;
  LocalAtomInfo local_;
  AdornOptions options_;
  std::set<PredId> idb_;

  std::unique_ptr<TripletStore> owned_store_;  // fallback when none shared
  TripletStore* store_ = nullptr;
  bool memoize_ = true;

  std::vector<AdornedPred> apreds_;
  std::unordered_map<ApredKey, int, ApredKeyHash> apred_registry_;
  std::unordered_map<PredId, std::vector<int>> apreds_by_pred_;
  std::vector<AdornedRule> arules_;
  // Combination registry: key is {rule_index, choice...}.
  std::unordered_map<std::vector<int32_t>, int, IntVecHash> arule_registry_;
  std::vector<int32_t> key_scratch_;  // reused registry-lookup buffer

  // Memo tables (used when options_.memoize):
  //   EDB base triplets per unspecialized (rule_index << 32 | body_index);
  //   adornment translation per (apred << 32 | atom id);
  //   instantiated summaries per (summary id << 32 | atom id);
  //   leaf restriction per rule-triplet id;
  //   order-consistency verdicts per interned conjunction (summary id);
  //   head summaries per (conjunction summary id << 32 | head atom id).
  mutable std::unordered_map<uint64_t, CandidateList> edb_base_memo_;
  mutable std::unordered_map<uint64_t, CandidateList> translate_memo_;
  mutable std::unordered_map<uint64_t, std::vector<Comparison>> summary_memo_;
  std::unordered_map<RuleTripletId, RuleTripletId> restrict_memo_;
  mutable std::unordered_map<int32_t, bool> consistent_memo_;
  mutable std::unordered_map<uint64_t, std::vector<Comparison>>
      head_summary_memo_;

  bool overflow_ = false;
  int fixpoint_passes_ = 0;
};

}  // namespace sqod

#endif  // SQOD_SQO_ADORN_H_
