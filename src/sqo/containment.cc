#include "src/sqo/containment.h"

#include <algorithm>

#include "src/ast/unify.h"
#include "src/eval/evaluator.h"

namespace sqod {

Result<bool> DatalogContainedInUcq(const Program& program,
                                   const UnionOfCqs& ucq,
                                   const SqoOptions& options) {
  return DatalogContainedInUcqUnderIcs(program, ucq, {}, options);
}

Result<bool> DatalogContainedInUcqUnderIcs(const Program& program,
                                           const UnionOfCqs& ucq,
                                           const std::vector<Constraint>& ics,
                                           const SqoOptions& options) {
  if (program.query() == -1) {
    return Status::FailedPrecondition("containment requires a query predicate");
  }
  const int arity = program.Arity(program.query());
  for (const ConjunctiveQuery& q : ucq) {
    if (q.head.arity() != arity) {
      return Status::InvalidArgument("UCQ disjunct " + q.ToString() +
                           " does not match the query arity");
    }
    for (const Literal& l : q.body) {
      if (program.IsIdb(l.atom.pred())) {
        return Status::InvalidArgument("UCQ disjunct " + q.ToString() +
                             " mentions IDB predicate " +
                             PredName(l.atom.pred()));
      }
    }
  }

  // Build the marked program.
  Program marked = program;
  PredId ans = InternPred("__ans");
  PredId qtest = InternPred("__qtest");
  std::vector<Term> args;
  for (int i = 0; i < arity; ++i) {
    args.push_back(Term::Var("W" + std::to_string(i)));
  }
  Rule test;
  test.head = Atom(qtest, args);
  test.body.push_back(Literal::Pos(Atom(program.query(), args)));
  test.body.push_back(Literal::Pos(Atom(ans, args)));
  marked.AddRule(std::move(test));
  marked.SetQuery(qtest);

  // One IC per disjunct (no __ans-marked tuple may be produced by Qj),
  // plus the ambient integrity constraints of the relative version.
  std::vector<Constraint> all_ics = ics;
  FreshVarGen gen;
  for (const ConjunctiveQuery& raw : ucq) {
    ConjunctiveQuery q = RenameApart(raw, &gen);
    Constraint ic;
    ic.body.push_back(Literal::Pos(Atom(ans, q.head.args())));
    for (const Literal& l : q.body) ic.body.push_back(l);
    ic.comparisons = q.comparisons;
    all_ics.push_back(std::move(ic));
  }

  Result<bool> satisfiable = QuerySatisfiable(marked, all_ics, options);
  if (!satisfiable.ok()) return satisfiable;
  return !satisfiable.value();
}

Result<bool> UcqContainedInDatalog(const UnionOfCqs& ucq,
                                   const Program& program) {
  if (program.query() == -1) {
    return Status::FailedPrecondition("containment requires a query predicate");
  }
  for (const ConjunctiveQuery& raw : ucq) {
    if (!raw.comparisons.empty()) {
      return Status::InvalidArgument("UcqContainedInDatalog: disjunct " +
                           raw.ToString() + " has order atoms");
    }
    for (const Literal& l : raw.body) {
      if (l.negated) {
        return Status::InvalidArgument("UcqContainedInDatalog: disjunct " +
                             raw.ToString() + " has negation");
      }
    }
    // Canonical database: freeze the disjunct's variables.
    Substitution freeze;
    for (VarId v : raw.Vars()) {
      freeze.Bind(v, Term::Symbol("__frozen_" + GlobalStrings().Name(v)));
    }
    Database canonical;
    for (const Literal& l : raw.body) {
      canonical.InsertAtom(freeze.Apply(l.atom));
    }
    Atom head = freeze.Apply(raw.head);
    Tuple head_tuple;
    for (const Term& t : head.args()) head_tuple.push_back(t.value());

    Result<std::vector<Tuple>> answers = EvaluateQuery(program, canonical);
    if (!answers.ok()) return answers.status();
    bool found = std::find(answers.value().begin(), answers.value().end(),
                           head_tuple) != answers.value().end();
    if (!found) return false;
  }
  return true;
}

}  // namespace sqod
