#ifndef SQOD_SQO_CONTAINMENT_H_
#define SQOD_SQO_CONTAINMENT_H_

#include "src/cq/containment.h"
#include "src/sqo/optimizer.h"

namespace sqod {

// Containment of a recursive datalog program in a union of conjunctive
// queries, via the Proposition 5.1 reduction to satisfiability:
//
//   P is NOT contained in (Q1 u ... u Qk) iff the program
//       __qtest(Xs) :- q(Xs), __ans(Xs).
//   (with fresh EDB predicate __ans) is satisfiable w.r.t. the ICs
//       :- __ans(head(Qj)), body(Qj).        for every j.
//
// A database witnessing satisfiability provides an answer of P marked by
// __ans that no Qj produces — i.e., a counterexample to containment — and
// vice versa. Satisfiability is decided by the query-tree construction, so
// the decidable fragments match Section 4: plain UCQs always work (the
// [CV92] case, doubly exponential); UCQs with order atoms or negated atoms
// work when the induced ICs are local (otherwise an error cites the
// relevant undecidability theorem).
//
// The UCQ's disjuncts must share the query predicate's arity and use only
// EDB predicates of P in their bodies.
Result<bool> DatalogContainedInUcq(const Program& program,
                                   const UnionOfCqs& ucq,
                                   const SqoOptions& options = {});

// Containment *relative to* integrity constraints: P(D) subseteq UCQ(D)
// for every database D satisfying `ics`. (The paper's Proposition 5.1
// footnote treats the IC-free case; relativizing just adds the given ICs to
// the reduction's induced constraints.) Containment relative to ICs is
// weaker than absolute containment: databases violating the ICs do not
// count as counterexamples.
Result<bool> DatalogContainedInUcqUnderIcs(const Program& program,
                                           const UnionOfCqs& ucq,
                                           const std::vector<Constraint>& ics,
                                           const SqoOptions& options = {});

// The converse direction (UCQ contained in a datalog program), decided by
// evaluating the program over each disjunct's canonical database. Plain
// (comparison-free, negation-free) disjuncts only; the program itself may
// use order atoms and negation.
Result<bool> UcqContainedInDatalog(const UnionOfCqs& ucq,
                                   const Program& program);

}  // namespace sqod

#endif  // SQOD_SQO_CONTAINMENT_H_
