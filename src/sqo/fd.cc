#include "src/sqo/fd.h"

#include <algorithm>

#include "src/ast/substitution.h"
#include "src/ast/unify.h"
#include "src/sqo/preprocess.h"

namespace sqod {

std::string FunctionalDependency::ToString() const {
  std::string s = PredName(pred) + ": {";
  for (size_t i = 0; i < determinants.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(determinants[i]);
  }
  return s + "} -> " + std::to_string(determined);
}

Constraint MakeFdConstraint(const FunctionalDependency& fd, int arity) {
  std::vector<Term> args1, args2;
  for (int i = 0; i < arity; ++i) {
    if (std::find(fd.determinants.begin(), fd.determinants.end(), i) !=
        fd.determinants.end()) {
      Term shared = Term::Var("K" + std::to_string(i));
      args1.push_back(shared);
      args2.push_back(shared);
    } else if (i == fd.determined) {
      args1.push_back(Term::Var("Z1"));
      args2.push_back(Term::Var("Z2"));
    } else {
      args1.push_back(Term::Var("Y1_" + std::to_string(i)));
      args2.push_back(Term::Var("Y2_" + std::to_string(i)));
    }
  }
  Constraint ic;
  ic.body.push_back(Literal::Pos(Atom(fd.pred, std::move(args1))));
  ic.body.push_back(Literal::Pos(Atom(fd.pred, std::move(args2))));
  ic.comparisons.push_back(
      Comparison(Term::Var("Z1"), CmpOp::kNe, Term::Var("Z2")));
  return ic;
}

std::vector<FunctionalDependency> ExtractFds(
    const std::vector<Constraint>& ics) {
  std::vector<FunctionalDependency> out;
  for (const Constraint& ic : ics) {
    // Shape: exactly two positive atoms of one predicate, no negation, one
    // != comparison between the two atoms' variables at one position.
    if (ic.body.size() != 2 || ic.comparisons.size() != 1) continue;
    if (ic.body[0].negated || ic.body[1].negated) continue;
    const Atom& a = ic.body[0].atom;
    const Atom& b = ic.body[1].atom;
    if (a.pred() != b.pred() || a.arity() != b.arity()) continue;
    const Comparison& c = ic.comparisons[0];
    if (c.op != CmpOp::kNe || !c.lhs.is_var() || !c.rhs.is_var()) continue;

    FunctionalDependency fd;
    fd.pred = a.pred();
    bool shape_ok = true;
    for (int i = 0; i < a.arity() && shape_ok; ++i) {
      const Term& ta = a.arg(i);
      const Term& tb = b.arg(i);
      if (!ta.is_var() || !tb.is_var()) {
        shape_ok = false;
      } else if (ta == tb) {
        fd.determinants.push_back(i);
      } else if ((ta == c.lhs && tb == c.rhs) ||
                 (ta == c.rhs && tb == c.lhs)) {
        if (fd.determined != -1) shape_ok = false;  // two disequal positions
        fd.determined = i;
      }
      // Positions with unrelated distinct variables are the "Ys": ignored.
    }
    if (!shape_ok || fd.determined == -1) continue;
    // The comparison variables must not appear elsewhere in the atoms
    // (otherwise the constraint means something stronger).
    out.push_back(std::move(fd));
  }
  return out;
}

namespace {

// One pass of FD unification over a rule. Returns true if anything changed.
bool FdPass(Rule* rule, const std::vector<FunctionalDependency>& fds,
            FdRewriteReport* report) {
  for (const FunctionalDependency& fd : fds) {
    std::vector<int> occurrences;
    for (int b = 0; b < static_cast<int>(rule->body.size()); ++b) {
      const Literal& l = (*rule).body[b];
      if (!l.negated && l.atom.pred() == fd.pred) occurrences.push_back(b);
    }
    for (size_t i = 0; i < occurrences.size(); ++i) {
      for (size_t j = i + 1; j < occurrences.size(); ++j) {
        const Atom& a = rule->body[occurrences[i]].atom;
        const Atom& b = rule->body[occurrences[j]].atom;
        bool keys_agree = std::all_of(
            fd.determinants.begin(), fd.determinants.end(),
            [&](int pos) { return a.arg(pos) == b.arg(pos); });
        if (!keys_agree) continue;
        const Term& za = a.arg(fd.determined);
        const Term& zb = b.arg(fd.determined);
        if (za == zb) continue;
        // Unify the determined arguments across the whole rule.
        Substitution subst;
        if (!UnifyTermsInto(za, zb, &subst)) {
          // Two distinct constants under an FD key match: the rule can
          // never match a consistent database. Mark by clearing the body
          // and adding an unsatisfiable comparison.
          rule->comparisons.push_back(
              Comparison(za, CmpOp::kEq, zb));  // constant = constant, false
          return false;
        }
        *rule = subst.Apply(*rule);
        ++report->unifications;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Program ApplyFdRewriting(const Program& program,
                         const std::vector<FunctionalDependency>& fds,
                         FdRewriteReport* report) {
  FdRewriteReport local;
  Program out;
  out.SetQuery(program.query());
  if (fds.empty()) {
    for (const Rule& r : program.rules()) out.AddRule(r);
    if (report != nullptr) *report = local;
    return out;
  }
  for (const Rule& original : program.rules()) {
    Rule rule = original;
    while (FdPass(&rule, fds, &local)) {
    }
    // Deduplicate body atoms that became identical (join elimination).
    std::vector<Literal> deduped;
    for (const Literal& l : rule.body) {
      if (std::find(deduped.begin(), deduped.end(), l) == deduped.end()) {
        deduped.push_back(l);
      } else if (!l.negated) {
        ++local.atoms_removed;
      }
    }
    rule.body = std::move(deduped);
    if (NormalizeRule(&rule)) out.AddRule(std::move(rule));
  }
  if (report != nullptr) *report = local;
  return out;
}

}  // namespace sqod
