#ifndef SQOD_SQO_FD_H_
#define SQOD_SQO_FD_H_

#include <string>
#include <vector>

#include "src/ast/program.h"

namespace sqod {

// Functional dependencies, expressed as integrity constraints of the
// Theorem 5.5 shape
//     :- e(Xs, Ys1, Z1), e(Xs, Ys2, Z2), Z1 != Z2.
// (the determinant positions Xs share variables across the two atoms, the
// determined position holds the disequal pair, the remaining positions are
// independent). The paper's introduction lists "removing redundant joins"
// as a core use of semantic query optimization; FDs are the classic enabler:
// two body atoms that agree on the determinants must agree on the
// determined attribute, so the latter can be unified — often collapsing the
// two atoms into one and eliminating a join.

struct FunctionalDependency {
  PredId pred = -1;
  std::vector<int> determinants;  // sorted argument positions
  int determined = -1;

  std::string ToString() const;
};

// Builds the Theorem 5.5 constraint for `fd` over a predicate of the given
// arity.
Constraint MakeFdConstraint(const FunctionalDependency& fd, int arity);

// Recognizes ICs of the Theorem 5.5 shape and returns the corresponding
// FDs. Other ICs are ignored (they are handled by the main pipeline).
std::vector<FunctionalDependency> ExtractFds(
    const std::vector<Constraint>& ics);

struct FdRewriteReport {
  int unifications = 0;  // determined-position variables merged
  int atoms_removed = 0; // body atoms that became duplicates
};

// Applies FD-based join elimination to every rule: whenever two positive
// body atoms of fd.pred agree syntactically on all determinant positions,
// their determined arguments are unified; body atoms that become identical
// are deduplicated. Sound on every database satisfying the FDs: any
// instantiation over such a database assigns equal values to the unified
// variables anyway.
Program ApplyFdRewriting(const Program& program,
                         const std::vector<FunctionalDependency>& fds,
                         FdRewriteReport* report = nullptr);

}  // namespace sqod

#endif  // SQOD_SQO_FD_H_
