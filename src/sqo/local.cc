#include "src/sqo/local.h"

#include <algorithm>
#include <deque>

#include "src/ast/unify.h"
#include "src/order/solver.h"
#include "src/sqo/preprocess.h"

namespace sqod {

std::vector<const LocalAtomPair*> LocalAtomInfo::PairsFor(int ic_index,
                                                          int carrier) const {
  std::vector<const LocalAtomPair*> out;
  for (const LocalAtomPair& p : pairs) {
    if (p.ic_index == ic_index && p.carrier == carrier) out.push_back(&p);
  }
  return out;
}

namespace {

// True iff all variables of `vars` occur in `atom`.
bool CoveredBy(const std::vector<VarId>& vars, const Atom& atom) {
  std::vector<VarId> atom_vars;
  atom.CollectVars(&atom_vars);
  return std::all_of(vars.begin(), vars.end(), [&](VarId v) {
    return std::find(atom_vars.begin(), atom_vars.end(), v) !=
           atom_vars.end();
  });
}

// Finds a carrier among the IC's positive atoms, or -1. When several atoms
// cover the local atom's variables, prefer the one with the most distinct
// variables: splitting the rules that use a wider predicate specializes
// deeper (in the paper's Section 3 example this picks step(X, Y) over
// startPoint(X) for the atom X < 100, which is what pushes the threshold
// into the recursion).
int FindCarrier(const std::vector<const Atom*>& positives,
                const std::vector<VarId>& vars) {
  int best = -1;
  size_t best_vars = 0;
  for (size_t i = 0; i < positives.size(); ++i) {
    if (!CoveredBy(vars, *positives[i])) continue;
    std::vector<VarId> atom_vars;
    positives[i]->CollectVars(&atom_vars);
    if (best == -1 || atom_vars.size() > best_vars) {
      best = static_cast<int>(i);
      best_vars = atom_vars.size();
    }
  }
  return best;
}

// The instantiated local atom h(l) for an order-atom pair.
Comparison MappedOrderAtom(const Constraint& ic, const LocalAtomPair& pair,
                           const Substitution& h) {
  return h.Apply(ic.comparisons[pair.item]);
}

// The instantiated local atom h(l) for a negated-EDB pair (as a positive
// atom; it appears negated in the IC).
Atom MappedNegatedAtom(const Constraint& ic, const LocalAtomPair& pair,
                       const Substitution& h) {
  return h.Apply(ic.body[pair.item].atom);
}

}  // namespace

const std::vector<int>& LocalAtomInfo::NonlocalOrder(int ic_index) const {
  static const std::vector<int>* empty = new std::vector<int>();
  auto it = nonlocal_order.find(ic_index);
  return it == nonlocal_order.end() ? *empty : it->second;
}

Result<LocalAtomInfo> AnalyzeLocalAtoms(const std::vector<Constraint>& ics) {
  LocalAtomInfo info;
  for (int i = 0; i < static_cast<int>(ics.size()); ++i) {
    const Constraint& ic = ics[i];
    std::vector<const Atom*> positives = ic.PositiveAtoms();
    for (int c = 0; c < static_cast<int>(ic.comparisons.size()); ++c) {
      std::vector<VarId> vars;
      ic.comparisons[c].CollectVars(&vars);
      int carrier = FindCarrier(positives, vars);
      if (carrier == -1) {
        // Quasi-local treatment (end of Section 4.2).
        info.nonlocal_order[i].push_back(c);
        continue;
      }
      info.pairs.push_back(LocalAtomPair{i, carrier, /*is_order=*/true, c});
    }
    for (int b = 0; b < static_cast<int>(ic.body.size()); ++b) {
      if (!ic.body[b].negated) continue;
      std::vector<VarId> vars;
      ic.body[b].atom.CollectVars(&vars);
      int carrier = FindCarrier(positives, vars);
      if (carrier == -1) {
        return Status::Unsupported("negated atom " + ic.body[b].ToString() +
                             " of IC " + ic.ToString() +
                             " is not local (Theorem 5.4 territory: "
                             "satisfiability would be undecidable)");
      }
      info.pairs.push_back(LocalAtomPair{i, carrier, /*is_order=*/false, b});
    }
  }
  return info;
}

Result<Program> RewriteForLocalAtoms(const Program& program,
                                     const std::vector<Constraint>& ics,
                                     const LocalAtomInfo& info,
                                     int max_rules) {
  if (!info.HasPairs()) return program;
  const std::set<PredId> idb = program.IdbPreds();

  std::deque<Rule> queue(program.rules().begin(), program.rules().end());
  std::vector<Rule> done;

  while (!queue.empty()) {
    if (static_cast<int>(queue.size() + done.size()) > max_rules) {
      return Status::ResourceExhausted("local-atom rewriting exceeded max_rules=" +
                           std::to_string(max_rules));
    }
    Rule rule = std::move(queue.front());
    queue.pop_front();

    bool split = false;
    OrderSolver solver(rule.comparisons);
    for (size_t b = 0; b < rule.body.size() && !split; ++b) {
      const Literal& lit = rule.body[b];
      if (lit.negated || idb.count(lit.atom.pred()) > 0) continue;
      for (const LocalAtomPair& pair : info.pairs) {
        const Constraint& ic = ics[pair.ic_index];
        const Atom& carrier = *ic.PositiveAtoms()[pair.carrier];
        Substitution h;
        if (!MatchInto(carrier, lit.atom, &h)) continue;
        if (pair.is_order) {
          Comparison hl = MappedOrderAtom(ic, pair, h);
          if (solver.Entails(hl) || solver.Entails(hl.Negated())) continue;
          Rule with = rule;
          with.comparisons.push_back(hl.Canonical());
          Rule without = rule;
          without.comparisons.push_back(hl.Negated().Canonical());
          queue.push_back(std::move(with));
          queue.push_back(std::move(without));
        } else {
          Atom hl = MappedNegatedAtom(ic, pair, h);
          Literal pos = Literal::Pos(hl);
          Literal neg = Literal::Neg(hl);
          bool has_pos = std::find(rule.body.begin(), rule.body.end(), pos) !=
                         rule.body.end();
          bool has_neg = std::find(rule.body.begin(), rule.body.end(), neg) !=
                         rule.body.end();
          if (has_pos || has_neg) continue;
          Rule with = rule;
          with.body.push_back(pos);
          Rule without = rule;
          without.body.push_back(neg);
          queue.push_back(std::move(with));
          queue.push_back(std::move(without));
        }
        split = true;
        break;
      }
    }
    if (!split) done.push_back(std::move(rule));
  }

  Program out;
  out.SetQuery(program.query());
  for (Rule& r : done) {
    if (NormalizeRule(&r)) out.AddRule(std::move(r));
  }
  return out;
}

bool RetentionHolds(const Rule& rule, const std::vector<Constraint>& ics,
                    const LocalAtomInfo& info, int ic_index, int carrier,
                    const Substitution& h) {
  const Constraint& ic = ics[ic_index];
  for (const LocalAtomPair* pair : info.PairsFor(ic_index, carrier)) {
    if (pair->is_order) {
      Comparison hl = MappedOrderAtom(ic, *pair, h);
      if (!OrderSolver(rule.comparisons).Entails(hl)) return false;
    } else {
      Literal neg = Literal::Neg(MappedNegatedAtom(ic, *pair, h));
      if (std::find(rule.body.begin(), rule.body.end(), neg) ==
          rule.body.end()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace sqod
