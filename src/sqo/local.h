#ifndef SQOD_SQO_LOCAL_H_
#define SQOD_SQO_LOCAL_H_

#include <map>
#include <vector>

#include "src/ast/program.h"
#include "src/ast/substitution.h"
#include "src/base/status.h"

namespace sqod {

// Section 4.2 of the paper: handling ICs with *local* order atoms and local
// negated EDB atoms. An order atom (or negated EDB atom) of an IC is local
// when some positive EDB atom of the same IC contains all its variables;
// that positive atom is the local atom's *carrier* (the pair (a, l) of the
// paper). The problems become undecidable without locality (Theorems
// 5.3-5.5), so AnalyzeLocalAtoms reports an error for non-local ICs.

struct LocalAtomPair {
  int ic_index = -1;
  int carrier = -1;     // index into the IC's positive atoms
  bool is_order = true; // order atom vs negated EDB atom
  int item = -1;        // index into ic.comparisons (order) or ic.body (negated)
};

struct LocalAtomInfo {
  std::vector<LocalAtomPair> pairs;
  // Order atoms without a carrier, per IC index: indices into
  // ic.comparisons. These are handled by the *quasi-local* extension (end
  // of Section 4.2): the adornment machinery carries them as a pseudo-atom
  // that is discharged — producing an inconsistency — only at a rule node
  // where all EDB atoms of the IC are mapped, all their variables are
  // visible, and the rule's own order atoms entail the mapped conjunction.
  std::map<int, std::vector<int>> nonlocal_order;

  bool HasPairs() const { return !pairs.empty(); }
  // Pairs carried by positive atom `carrier` of IC `ic_index`.
  std::vector<const LocalAtomPair*> PairsFor(int ic_index, int carrier) const;
  // Non-local order atoms of IC `ic_index` (empty vector if none).
  const std::vector<int>& NonlocalOrder(int ic_index) const;
};

// Associates every order atom and negated EDB atom of every IC with a
// carrier where one exists. Non-local *order* atoms are collected for the
// quasi-local treatment; a non-local *negated* atom is an error (Theorem
// 5.4: satisfiability is undecidable there and no sound machinery exists in
// this library).
Result<LocalAtomInfo> AnalyzeLocalAtoms(const std::vector<Constraint>& ics);

// The rewriting step of Section 4.2: for every rule r with a positive EDB
// atom a' matched by a carrier a (via the unique homomorphism h from a to
// a'), if neither h(l) nor its negation is already asserted by r, replace r
// by the two rules r + h(l) and r + not h(l). Repeats to fixpoint; the
// rewriting introduces no new variables so it terminates. Equivalence is
// preserved (each split is an instance of excluded middle).
Result<Program> RewriteForLocalAtoms(const Program& program,
                                     const std::vector<Constraint>& ics,
                                     const LocalAtomInfo& info,
                                     int max_rules = 100000);

// The modified retention condition of Section 4.2, checked when an EDB base
// triplet maps the carrier atom of IC `ic_index` into rule `rule` via `h`:
//   * for a local order atom l, h(l) must be entailed by r's comparisons;
//   * for a local negated EDB atom l, the literal not h(l) must appear in
//     r's body.
bool RetentionHolds(const Rule& rule, const std::vector<Constraint>& ics,
                    const LocalAtomInfo& info, int ic_index, int carrier,
                    const Substitution& h);

}  // namespace sqod

#endif  // SQOD_SQO_LOCAL_H_
