#include "src/sqo/optimizer.h"

#include "src/ast/unify.h"
#include "src/sqo/pass_manager.h"

namespace sqod {

// The monolithic pipeline became the pass manager (pass_manager.cc); the
// entry points here are thin wrappers kept for API compatibility.

Result<SqoReport> OptimizeProgram(const Program& program,
                                  const std::vector<Constraint>& ics,
                                  const SqoOptions& options) {
  PassManager manager(options);
  return manager.Run(program, ics);
}

Result<bool> QuerySatisfiable(const Program& program,
                              const std::vector<Constraint>& ics,
                              const SqoOptions& options) {
  SqoOptions opts = options;
  opts.build_query_tree = true;
  opts.attach_residues = false;
  SQOD_ASSIGN_OR_RETURN(SqoReport report,
                        PassManager(opts).Run(program, ics));
  return report.query_satisfiable;
}

Result<bool> QueryReachableAtom(const Program& program,
                                const std::vector<Constraint>& ics,
                                const Atom& atom,
                                const SqoOptions& options) {
  // Reachability is decided on the query tree itself, so run the pipeline
  // up to the tree pass and inspect the surviving classes.
  SqoOptions opts = options;
  opts.build_query_tree = true;
  opts.attach_residues = false;
  opts.disabled_passes.push_back("prune");
  PassManager manager(opts);
  PassContext ctx;
  SQOD_RETURN_IF_ERROR(manager.RunInto(program, ics, &ctx));
  if (ctx.engine == nullptr || ctx.tree == nullptr) {
    return Status::FailedPrecondition(
        "QueryReachableAtom requires the adorn and tree passes "
        "(a query predicate must be set and the passes not disabled)");
  }
  const AdornmentEngine& engine = *ctx.engine;
  const QueryTree& tree = *ctx.tree;

  FreshVarGen gen;
  for (size_t c = 0; c < tree.classes().size(); ++c) {
    if (!tree.productive()[c] || !tree.reachable()[c]) continue;
    const GoalClass& gc = tree.classes()[c];
    if (engine.apreds()[gc.apred].original != atom.pred()) continue;
    // Rename the class atom apart so shared variable names do not block
    // unification, then test compatibility.
    Rule wrapper(gc.atom, {});
    Atom renamed = RenameApart(wrapper, &gen).head;
    if (Unify(renamed, atom).has_value()) return true;
  }
  // EDB atoms: reachable iff they unify with an EDB subgoal of a surviving
  // rule node.
  for (size_t c = 0; c < tree.classes().size(); ++c) {
    if (!tree.productive()[c] || !tree.reachable()[c]) continue;
    for (const GoalClass::RuleChild& child : tree.classes()[c].children) {
      for (size_t b = 0; b < child.instantiated.body.size(); ++b) {
        if (child.subgoal_class[b] != -1) continue;
        const Literal& lit = child.instantiated.body[b];
        if (lit.negated || lit.atom.pred() != atom.pred()) continue;
        Rule wrapper(lit.atom, {});
        Atom renamed = RenameApart(wrapper, &gen).head;
        if (Unify(renamed, atom).has_value()) return true;
      }
    }
  }
  return false;
}

}  // namespace sqod
