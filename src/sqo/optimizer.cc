#include "src/sqo/optimizer.h"

#include "src/ast/unify.h"
#include "src/sqo/fd.h"
#include "src/sqo/local.h"
#include "src/sqo/preprocess.h"
#include "src/sqo/residue.h"

namespace sqod {

namespace {

// RAII scope for one pipeline phase: opens a span (when tracing) and, on
// exit, records the phase's wall time into the "sqo/phase/<name>_ns" gauge
// (when a registry is attached).
class PhaseScope {
 public:
  PhaseScope(const char* phase, const SqoOptions& options)
      : phase_(phase), metrics_(options.metrics) {
    if (options.tracer != nullptr && options.tracer->enabled()) {
      span_ = options.tracer->StartSpan(std::string("sqo.") + phase);
    }
    if (metrics_ != nullptr) t0_ = NowNs();
  }

  ~PhaseScope() {
    if (metrics_ != nullptr) {
      metrics_->GetGauge(std::string("sqo/phase/") + phase_ + "_ns")
          ->Set(NowNs() - t0_);
    }
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  Span& span() { return span_; }

 private:
  const char* phase_;
  MetricsRegistry* metrics_;
  Span span_;
  int64_t t0_ = 0;
};

struct Pipeline {
  Program normalized;
  std::vector<Constraint> ics;
  LocalAtomInfo local;
};

Result<Pipeline> Prepare(const Program& program,
                         const std::vector<Constraint>& ics,
                         const SqoOptions& options) {
  {
    PhaseScope phase("validate", options);
    Status s = program.Validate();
    if (!s.ok()) return s;
    if (!program.NegationOnEdbOnly()) {
      return Status::Error(
          "semantic query optimization requires negation on EDB predicates "
          "only (the paper's Section 2 setting); stratified IDB negation is "
          "supported by the evaluator but not by the rewriting");
    }
    for (const Constraint& ic : ics) {
      s = program.ValidateConstraint(ic);
      if (!s.ok()) return s;
    }
  }

  Pipeline p;
  Program normalized;
  {
    PhaseScope phase("normalize", options);
    phase.span().SetAttr("rules_in",
                         static_cast<int64_t>(program.rules().size()));
    phase.span().SetAttr("ics", static_cast<int64_t>(ics.size()));
    p.ics = NormalizeConstraints(ics);
    Result<LocalAtomInfo> local = AnalyzeLocalAtoms(p.ics);
    if (!local.ok()) return local.status();
    p.local = local.take();

    normalized = NormalizeProgram(program);
    if (options.apply_fd_rewriting) {
      normalized = ApplyFdRewriting(normalized, ExtractFds(p.ics));
    }
    phase.span().SetAttr("rules_out",
                         static_cast<int64_t>(normalized.rules().size()));
  }
  {
    PhaseScope phase("local_rewrite", options);
    Result<Program> rewritten = RewriteForLocalAtoms(
        normalized, p.ics, p.local, options.max_local_rewrite_rules);
    if (!rewritten.ok()) return rewritten.status();
    p.normalized = rewritten.take();
    phase.span().SetAttr("rules_out",
                         static_cast<int64_t>(p.normalized.rules().size()));
  }
  return p;
}

void RecordPipelineGauges(const SqoReport& report, const SqoOptions& options) {
  if (options.metrics == nullptr) return;
  MetricsRegistry* m = options.metrics;
  m->GetGauge("sqo/adorned_preds")->Set(report.adorned_predicates);
  m->GetGauge("sqo/adorned_rules")->Set(report.adorned_rules);
  m->GetGauge("sqo/tree_classes")->Set(report.tree_classes);
  m->GetGauge("sqo/surviving_classes")->Set(report.surviving_classes);
  m->GetGauge("sqo/rewritten_rules")
      ->Set(static_cast<int64_t>(report.rewritten.rules().size()));
}

}  // namespace

Result<SqoReport> OptimizeProgram(const Program& program,
                                  const std::vector<Constraint>& ics,
                                  const SqoOptions& options) {
  PhaseScope root("optimize", options);

  Result<Pipeline> prepared = Prepare(program, ics, options);
  if (!prepared.ok()) return prepared.status();
  Pipeline& p = prepared.value();

  SqoReport report;
  report.normalized = p.normalized;
  report.ics = p.ics;

  AdornOptions adorn_options = options.adorn;
  adorn_options.tracer = options.tracer;
  AdornmentEngine engine(p.normalized, p.ics, p.local, adorn_options);
  {
    PhaseScope phase("adorn", options);
    Status s = engine.Run();
    if (!s.ok()) return s;
    phase.span().SetAttr("passes", engine.fixpoint_passes());
    phase.span().SetAttr("apreds", static_cast<int64_t>(engine.apreds().size()));
    phase.span().SetAttr("arules", static_cast<int64_t>(engine.arules().size()));
  }
  report.adorned = engine.AdornedProgram();
  report.adorned_predicates = static_cast<int>(engine.apreds().size());
  report.adorned_rules = static_cast<int>(engine.arules().size());
  report.adornment_dump = engine.ToString();

  if (options.build_query_tree && p.normalized.query() != -1) {
    QueryTree tree(engine, options.tree);
    {
      PhaseScope phase("tree", options);
      Status s = tree.Build();
      if (!s.ok()) return s;
      report.tree_classes = static_cast<int>(tree.classes().size());
      for (size_t c = 0; c < tree.classes().size(); ++c) {
        if (tree.productive()[c] && tree.reachable()[c]) {
          ++report.surviving_classes;
        }
      }
      phase.span().SetAttr("goal_classes", report.tree_classes);
      phase.span().SetAttr("surviving_classes", report.surviving_classes);
      phase.span().SetAttr("satisfiable", tree.QuerySatisfiable() ? 1 : 0);
    }
    report.query_satisfiable = tree.QuerySatisfiable();
    report.tree_dump = tree.ToString();
    report.tree_dot = tree.ToDot();
    report.rewritten = tree.RewrittenProgram();
  } else {
    report.rewritten = report.adorned;
    report.query_satisfiable = true;  // not decided in this mode
  }

  if (options.attach_residues) {
    PhaseScope phase("residues", options);
    report.rewritten = ApplyClassicSqo(report.rewritten, p.ics);
    phase.span().SetAttr("rules_out",
                         static_cast<int64_t>(report.rewritten.rules().size()));
  }
  {
    PhaseScope phase("prune", options);
    int64_t before = static_cast<int64_t>(report.rewritten.rules().size());
    report.rewritten = PruneUnreachable(report.rewritten);
    phase.span().SetAttr("rules_in", before);
    phase.span().SetAttr("rules_out",
                         static_cast<int64_t>(report.rewritten.rules().size()));
  }
  RecordPipelineGauges(report, options);
  return report;
}

Result<bool> QuerySatisfiable(const Program& program,
                              const std::vector<Constraint>& ics,
                              const SqoOptions& options) {
  SqoOptions opts = options;
  opts.build_query_tree = true;
  opts.attach_residues = false;
  Result<SqoReport> report = OptimizeProgram(program, ics, opts);
  if (!report.ok()) return report.status();
  return report.value().query_satisfiable;
}

Result<bool> QueryReachableAtom(const Program& program,
                                const std::vector<Constraint>& ics,
                                const Atom& atom,
                                const SqoOptions& options) {
  Result<Pipeline> prepared = Prepare(program, ics, options);
  if (!prepared.ok()) return prepared.status();
  Pipeline& p = prepared.value();

  AdornmentEngine engine(p.normalized, p.ics, p.local, options.adorn);
  Status s = engine.Run();
  if (!s.ok()) return s;
  QueryTree tree(engine, options.tree);
  s = tree.Build();
  if (!s.ok()) return s;

  FreshVarGen gen;
  for (size_t c = 0; c < tree.classes().size(); ++c) {
    if (!tree.productive()[c] || !tree.reachable()[c]) continue;
    const GoalClass& gc = tree.classes()[c];
    if (engine.apreds()[gc.apred].original != atom.pred()) continue;
    // Rename the class atom apart so shared variable names do not block
    // unification, then test compatibility.
    Rule wrapper(gc.atom, {});
    Atom renamed = RenameApart(wrapper, &gen).head;
    if (Unify(renamed, atom).has_value()) return true;
  }
  // EDB atoms: reachable iff they unify with an EDB subgoal of a surviving
  // rule node.
  for (size_t c = 0; c < tree.classes().size(); ++c) {
    if (!tree.productive()[c] || !tree.reachable()[c]) continue;
    for (const GoalClass::RuleChild& child : tree.classes()[c].children) {
      for (size_t b = 0; b < child.instantiated.body.size(); ++b) {
        if (child.subgoal_class[b] != -1) continue;
        const Literal& lit = child.instantiated.body[b];
        if (lit.negated || lit.atom.pred() != atom.pred()) continue;
        Rule wrapper(lit.atom, {});
        Atom renamed = RenameApart(wrapper, &gen).head;
        if (Unify(renamed, atom).has_value()) return true;
      }
    }
  }
  return false;
}

}  // namespace sqod
