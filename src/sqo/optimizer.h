#ifndef SQOD_SQO_OPTIMIZER_H_
#define SQOD_SQO_OPTIMIZER_H_

#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sqo/adorn.h"
#include "src/sqo/query_tree.h"

namespace sqod {

// The end-to-end pipeline of the paper:
//
//   normalize (LMSS93 contract)
//     -> local-atom rewriting               (Section 4.2)
//     -> bottom-up adornments, P1           (Section 4.1, phase 1)
//     -> top-down labeled query tree, P'    (Section 4.1, phase 2)
//     -> residue attachment on P'           (classic SQO per specialized
//                                            rule; Example 3.1's Y > X)
//
// The result completely incorporates the ICs (Definition 3.1): for every
// database satisfying the ICs, P' computes the same query relation as P,
// and no rule chain guaranteed empty by the ICs is ever evaluated.

struct SqoOptions {
  // Stop after the bottom-up phase and return P1 as the rewriting.
  // Equivalent to disabling the "tree" pass.
  bool build_query_tree = true;
  // Attach expressible residue negations to the rewritten rules.
  // Equivalent to disabling the "residues" pass.
  bool attach_residues = true;
  // Apply FD-based join elimination (ICs of the Theorem 5.5 shape) before
  // the main pipeline. Equivalent to disabling the "fd_rewrite" pass.
  bool apply_fd_rewriting = true;
  AdornOptions adorn;
  QueryTreeOptions tree;
  int max_local_rewrite_rules = 100000;

  // Memoize the hot combinators of the pipeline's hash-consing store (rule
  // triplet merges, IC-atom match deltas, EDB base-triplet lists). The
  // hash-consing itself is always on; this only toggles the memo tables.
  // Output is identical either way — the switch exists for A/B comparison
  // and the golden interning-equivalence test.
  bool memoize_triplets = true;

  // Render the human-readable diagnostic artifacts (SqoReport's
  // adornment_dump, tree_dump, tree_dot) during the run. Off by default:
  // the dumps serialize every adorned predicate, rule, and goal class and
  // can cost as much as the analysis itself on adornment-heavy inputs, so
  // the serving path (Session::Prepare) should not pay for them. The CLI
  // turns this on when a --dump-* flag asks for the text.
  bool capture_dumps = false;

  // Pass-pipeline configuration: names of passes to skip, on top of the
  // legacy flags above (see PassManager::PassNames for the vocabulary).
  // Unknown names are an error at Run time. Disabling a pass other passes
  // depend on degrades gracefully: e.g. with "adorn" disabled the tree pass
  // is structurally skipped and the normalized program is the rewriting.
  std::vector<std::string> disabled_passes;

  // Observability hooks, optional and off by default. With an enabled
  // tracer the pipeline emits one span per phase under a "sqo.optimize"
  // root (sqo.validate, sqo.normalize, sqo.local_rewrite, sqo.adorn with
  // per-pass children, sqo.tree, sqo.residues, sqo.prune; see
  // docs/observability.md). With a registry, per-phase wall time lands in
  // "sqo/phase/<name>_ns" gauges and pipeline sizes in "sqo/..." gauges.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

// One entry per pipeline pass, in execution order, recording what the pass
// manager did with it plus the shape delta it caused. The "before" of each
// pass is the "after" of its predecessor (the input program's shape for the
// first pass), so the rows chain into a complete account of how the
// pipeline transformed the program — EXPLAIN renders them as per-pass
// delta columns.
struct PassRunInfo {
  std::string name;
  bool disabled = false;  // switched off by options / --disable-pass
  bool skipped = false;   // structurally inapplicable (e.g. no query pred)
  int64_t wall_ns = 0;    // 0 unless the pass ran

  // Program shape around the pass: rule count, total body literals, total
  // negated literals, and total order atoms (comparisons).
  int rules_before = 0;
  int rules_after = 0;
  int literals_before = 0;
  int literals_after = 0;
  int negations_before = 0;
  int negations_after = 0;
  int comparisons_before = 0;
  int comparisons_after = 0;

  bool ran() const { return !disabled && !skipped; }
};

struct SqoReport {
  Program normalized;   // after NormalizeProgram + local-atom rewriting
  Program adorned;      // P1
  Program rewritten;    // P' (the drop-in replacement program)
  std::vector<Constraint> ics;  // normalized ICs

  // Per-pass diagnostics, one entry per pass in pipeline order.
  std::vector<PassRunInfo> pass_runs;

  int adorned_predicates = 0;
  int adorned_rules = 0;
  int tree_classes = 0;
  int surviving_classes = 0;
  bool query_satisfiable = true;

  // Classic-SQO accounting from the residues pass (zeros if it did not
  // run): rules deleted as guaranteed-empty, and order atoms / negations
  // the attached residues contributed.
  int residue_rules_deleted = 0;
  int residue_comparisons_added = 0;
  int residue_negations_added = 0;

  // Hash-consing effectiveness of this run's TripletStore.
  int64_t intern_hits = 0;
  int64_t intern_misses = 0;
  int64_t memo_hits = 0;
  int64_t store_size = 0;

  std::string adornment_dump;  // AdornmentEngine::ToString()
  std::string tree_dump;       // QueryTree::ToString()
  std::string tree_dot;        // QueryTree::ToDot() (Graphviz)
};

// Runs the pipeline. Requirements: `program` validates; every IC validates
// against it (EDB-only bodies); all order atoms and negated atoms of ICs
// are local (Section 4.2; an error cites the theorem otherwise). If the
// program has no query predicate, the query-tree phase is skipped and P1 is
// returned as the rewriting.
//
// This is a thin wrapper over the pass manager (src/sqo/pass_manager.h):
// it runs the standard pipeline (validate, normalize, fd_rewrite,
// local_rewrite, adorn, tree, residues, prune) honoring the option flags.
// New code that needs per-pass control, prepared-program caching, or
// repeated execution should use the engine layer (src/engine/engine.h).
Result<SqoReport> OptimizeProgram(const Program& program,
                                  const std::vector<Constraint>& ics,
                                  const SqoOptions& options = {});

// Is the query predicate satisfiable w.r.t. the ICs? (Theorem 4.1/4.2: the
// query tree has a productive root iff some consistent database yields an
// answer.)
Result<bool> QuerySatisfiable(const Program& program,
                              const std::vector<Constraint>& ics,
                              const SqoOptions& options = {});

// Is `atom` (an IDB goal, possibly with variables) query-reachable w.r.t.
// the ICs — i.e., can an instantiation of it take part in a derivation of
// some answer over a consistent database? Decided at the precision of the
// query tree's goal classes.
Result<bool> QueryReachableAtom(const Program& program,
                                const std::vector<Constraint>& ics,
                                const Atom& atom,
                                const SqoOptions& options = {});

}  // namespace sqod

#endif  // SQOD_SQO_OPTIMIZER_H_
