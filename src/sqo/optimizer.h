#ifndef SQOD_SQO_OPTIMIZER_H_
#define SQOD_SQO_OPTIMIZER_H_

#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sqo/adorn.h"
#include "src/sqo/query_tree.h"

namespace sqod {

// The end-to-end pipeline of the paper:
//
//   normalize (LMSS93 contract)
//     -> local-atom rewriting               (Section 4.2)
//     -> bottom-up adornments, P1           (Section 4.1, phase 1)
//     -> top-down labeled query tree, P'    (Section 4.1, phase 2)
//     -> residue attachment on P'           (classic SQO per specialized
//                                            rule; Example 3.1's Y > X)
//
// The result completely incorporates the ICs (Definition 3.1): for every
// database satisfying the ICs, P' computes the same query relation as P,
// and no rule chain guaranteed empty by the ICs is ever evaluated.

struct SqoOptions {
  // Stop after the bottom-up phase and return P1 as the rewriting.
  bool build_query_tree = true;
  // Attach expressible residue negations to the rewritten rules.
  bool attach_residues = true;
  // Apply FD-based join elimination (ICs of the Theorem 5.5 shape) before
  // the main pipeline.
  bool apply_fd_rewriting = true;
  AdornOptions adorn;
  QueryTreeOptions tree;
  int max_local_rewrite_rules = 100000;

  // Observability hooks, optional and off by default. With an enabled
  // tracer the pipeline emits one span per phase under a "sqo.optimize"
  // root (sqo.validate, sqo.normalize, sqo.local_rewrite, sqo.adorn with
  // per-pass children, sqo.tree, sqo.residues, sqo.prune; see
  // docs/observability.md). With a registry, per-phase wall time lands in
  // "sqo/phase/<name>_ns" gauges and pipeline sizes in "sqo/..." gauges.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

struct SqoReport {
  Program normalized;   // after NormalizeProgram + local-atom rewriting
  Program adorned;      // P1
  Program rewritten;    // P' (the drop-in replacement program)
  std::vector<Constraint> ics;  // normalized ICs

  int adorned_predicates = 0;
  int adorned_rules = 0;
  int tree_classes = 0;
  int surviving_classes = 0;
  bool query_satisfiable = true;

  std::string adornment_dump;  // AdornmentEngine::ToString()
  std::string tree_dump;       // QueryTree::ToString()
  std::string tree_dot;        // QueryTree::ToDot() (Graphviz)
};

// Runs the pipeline. Requirements: `program` validates; every IC validates
// against it (EDB-only bodies); all order atoms and negated atoms of ICs
// are local (Section 4.2; an error cites the theorem otherwise). If the
// program has no query predicate, the query-tree phase is skipped and P1 is
// returned as the rewriting.
Result<SqoReport> OptimizeProgram(const Program& program,
                                  const std::vector<Constraint>& ics,
                                  const SqoOptions& options = {});

// Is the query predicate satisfiable w.r.t. the ICs? (Theorem 4.1/4.2: the
// query tree has a productive root iff some consistent database yields an
// answer.)
Result<bool> QuerySatisfiable(const Program& program,
                              const std::vector<Constraint>& ics,
                              const SqoOptions& options = {});

// Is `atom` (an IDB goal, possibly with variables) query-reachable w.r.t.
// the ICs — i.e., can an instantiation of it take part in a derivation of
// some answer over a consistent database? Decided at the precision of the
// query tree's goal classes.
Result<bool> QueryReachableAtom(const Program& program,
                                const std::vector<Constraint>& ics,
                                const Atom& atom,
                                const SqoOptions& options = {});

}  // namespace sqod

#endif  // SQOD_SQO_OPTIMIZER_H_
