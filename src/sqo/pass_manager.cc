#include "src/sqo/pass_manager.h"

#include <algorithm>
#include <cstring>

#include "src/obs/trace.h"
#include "src/sqo/fd.h"
#include "src/sqo/preprocess.h"
#include "src/sqo/residue.h"

namespace sqod {

namespace {

// ------------------------------------------------------------- the passes

class ValidatePass : public Pass {
 public:
  const char* name() const override { return "validate"; }

  Status Run(PassContext& ctx) override {
    SQOD_RETURN_IF_ERROR(ctx.program.Validate());
    if (!ctx.program.NegationOnEdbOnly()) {
      return Status::Unsupported(
          "semantic query optimization requires negation on EDB predicates "
          "only (the paper's Section 2 setting); stratified IDB negation is "
          "supported by the evaluator but not by the rewriting");
    }
    for (const Constraint& ic : *ctx.input_ics) {
      SQOD_RETURN_IF_ERROR(ctx.program.ValidateConstraint(ic));
    }
    return Status::Ok();
  }
};

class NormalizePass : public Pass {
 public:
  const char* name() const override { return "normalize"; }

  Status Run(PassContext& ctx) override {
    ctx.span().SetAttr("rules_in",
                       static_cast<int64_t>(ctx.program.rules().size()));
    ctx.span().SetAttr("ics", static_cast<int64_t>(ctx.input_ics->size()));
    ctx.ics = NormalizeConstraints(*ctx.input_ics);
    ctx.program = NormalizeProgram(ctx.program);
    ctx.span().SetAttr("rules_out",
                       static_cast<int64_t>(ctx.program.rules().size()));
    return Status::Ok();
  }
};

class FdRewritePass : public Pass {
 public:
  const char* name() const override { return "fd_rewrite"; }

  Status Run(PassContext& ctx) override {
    FdRewriteReport fd_report;
    ctx.program = ApplyFdRewriting(ctx.program, ExtractFds(ctx.ics),
                                   &fd_report);
    ctx.span().SetAttr("unifications", fd_report.unifications);
    ctx.span().SetAttr("atoms_removed", fd_report.atoms_removed);
    return Status::Ok();
  }
};

class LocalRewritePass : public Pass {
 public:
  const char* name() const override { return "local_rewrite"; }

  Status Run(PassContext& ctx) override {
    SQOD_ASSIGN_OR_RETURN(ctx.local, AnalyzeLocalAtoms(ctx.ics));
    SQOD_ASSIGN_OR_RETURN(
        ctx.program,
        RewriteForLocalAtoms(ctx.program, ctx.ics, ctx.local,
                             ctx.options.max_local_rewrite_rules));
    ctx.span().SetAttr("rules_out",
                       static_cast<int64_t>(ctx.program.rules().size()));
    return Status::Ok();
  }
};

class AdornPass : public Pass {
 public:
  const char* name() const override { return "adorn"; }

  Status Run(PassContext& ctx) override {
    AdornOptions adorn_options = ctx.options.adorn;
    adorn_options.tracer = ctx.options.tracer;
    adorn_options.store = ctx.store.get();
    adorn_options.memoize = ctx.options.memoize_triplets;
    ctx.engine = std::make_unique<AdornmentEngine>(ctx.program, ctx.ics,
                                                   ctx.local, adorn_options);
    SQOD_RETURN_IF_ERROR(ctx.engine->Run());
    ctx.span().SetAttr("passes", ctx.engine->fixpoint_passes());
    ctx.span().SetAttr("apreds",
                       static_cast<int64_t>(ctx.engine->apreds().size()));
    ctx.span().SetAttr("arules",
                       static_cast<int64_t>(ctx.engine->arules().size()));

    SqoReport& report = ctx.report;
    report.adorned = ctx.engine->AdornedProgram();
    report.adorned_predicates = static_cast<int>(ctx.engine->apreds().size());
    report.adorned_rules = static_cast<int>(ctx.engine->arules().size());
    if (ctx.options.capture_dumps) {
      report.adornment_dump = ctx.engine->ToString();
    }
    // Default rewriting until (and unless) the tree pass refines it.
    report.rewritten = report.adorned;
    report.query_satisfiable = true;  // not decided without the tree
    return Status::Ok();
  }

  const Program* Current(const PassContext& ctx) const override {
    return &ctx.report.adorned;
  }
};

class TreePass : public Pass {
 public:
  const char* name() const override { return "tree"; }

  bool Applicable(const PassContext& ctx) const override {
    return ctx.engine != nullptr && ctx.program.query() != -1;
  }

  Status Run(PassContext& ctx) override {
    ctx.tree = std::make_unique<QueryTree>(*ctx.engine, ctx.options.tree);
    SQOD_RETURN_IF_ERROR(ctx.tree->Build());

    SqoReport& report = ctx.report;
    report.tree_classes = static_cast<int>(ctx.tree->classes().size());
    report.surviving_classes = 0;
    for (size_t c = 0; c < ctx.tree->classes().size(); ++c) {
      if (ctx.tree->productive()[c] && ctx.tree->reachable()[c]) {
        ++report.surviving_classes;
      }
    }
    ctx.span().SetAttr("goal_classes", report.tree_classes);
    ctx.span().SetAttr("surviving_classes", report.surviving_classes);
    ctx.span().SetAttr("satisfiable", ctx.tree->QuerySatisfiable() ? 1 : 0);

    report.query_satisfiable = ctx.tree->QuerySatisfiable();
    if (ctx.options.capture_dumps) {
      report.tree_dump = ctx.tree->ToString();
      report.tree_dot = ctx.tree->ToDot();
    }
    report.rewritten = ctx.tree->RewrittenProgram();
    return Status::Ok();
  }

  const Program* Current(const PassContext& ctx) const override {
    return &ctx.report.rewritten;
  }
};

class ResiduesPass : public Pass {
 public:
  const char* name() const override { return "residues"; }

  Status Run(PassContext& ctx) override {
    // Deliberately no shared AtomMatchMemo here: by this point every rule
    // has been renamed apart with fresh variables, so body atoms never
    // repeat across rules and memoized match deltas cannot be reused — the
    // interner only accumulates dead entries and pays insert cost (~1.5x
    // slower residues phase on the E4 WideIc workload). ApplyClassicSqo's
    // per-rule delta table already dedups repeated atoms within one rule.
    ClassicSqoReport classic;
    ctx.report.rewritten =
        ApplyClassicSqo(ctx.report.rewritten, ctx.ics, &classic, nullptr);
    ctx.report.residue_rules_deleted = classic.rules_deleted;
    ctx.report.residue_comparisons_added = classic.comparisons_added;
    ctx.report.residue_negations_added = classic.negations_added;
    ctx.span().SetAttr("rules_deleted", classic.rules_deleted);
    ctx.span().SetAttr("comparisons_added", classic.comparisons_added);
    ctx.span().SetAttr("negations_added", classic.negations_added);
    ctx.span().SetAttr(
        "rules_out",
        static_cast<int64_t>(ctx.report.rewritten.rules().size()));
    return Status::Ok();
  }

  const Program* Current(const PassContext& ctx) const override {
    return &ctx.report.rewritten;
  }
};

class PrunePass : public Pass {
 public:
  const char* name() const override { return "prune"; }

  Status Run(PassContext& ctx) override {
    ctx.span().SetAttr(
        "rules_in",
        static_cast<int64_t>(ctx.report.rewritten.rules().size()));
    ctx.report.rewritten = PruneUnreachable(std::move(ctx.report.rewritten));
    ctx.span().SetAttr(
        "rules_out",
        static_cast<int64_t>(ctx.report.rewritten.rules().size()));
    return Status::Ok();
  }

  const Program* Current(const PassContext& ctx) const override {
    return &ctx.report.rewritten;
  }
};

// The shape columns EXPLAIN reports per pass.
struct ProgramShape {
  int rules = 0;
  int literals = 0;
  int negations = 0;
  int comparisons = 0;
};

ProgramShape ShapeOf(const Program& program) {
  ProgramShape shape;
  shape.rules = static_cast<int>(program.rules().size());
  for (const Rule& rule : program.rules()) {
    shape.literals += static_cast<int>(rule.body.size());
    shape.comparisons += static_cast<int>(rule.comparisons.size());
    for (const Literal& literal : rule.body) {
      if (literal.negated) ++shape.negations;
    }
  }
  return shape;
}

void RecordPipelineGauges(PassContext& ctx, const SqoOptions& options) {
  if (ctx.store != nullptr) {
    // Mirror the store stats into the report so EXPLAIN can quote them
    // without a registry.
    TripletStore::Stats s = ctx.store->stats();
    ctx.report.intern_hits = s.intern_hits;
    ctx.report.intern_misses = s.intern_misses;
    ctx.report.memo_hits = s.memo_hits;
    ctx.report.store_size = s.size;
  }
  if (options.metrics == nullptr) return;
  const SqoReport& report = ctx.report;
  MetricsRegistry* m = options.metrics;
  m->GetGauge("sqo/adorned_preds")->Set(report.adorned_predicates);
  m->GetGauge("sqo/adorned_rules")->Set(report.adorned_rules);
  m->GetGauge("sqo/tree_classes")->Set(report.tree_classes);
  m->GetGauge("sqo/surviving_classes")->Set(report.surviving_classes);
  m->GetGauge("sqo/rewritten_rules")
      ->Set(static_cast<int64_t>(report.rewritten.rules().size()));
  if (ctx.store != nullptr) {
    // Hash-consing effectiveness for this run: counters accumulate across
    // runs sharing the registry (one Prepare = one run), the size gauge
    // holds the store's final population.
    TripletStore::Stats s = ctx.store->stats();
    m->GetCounter("sqo/intern_hits")->Add(s.intern_hits);
    m->GetCounter("sqo/intern_misses")->Add(s.intern_misses);
    m->GetCounter("sqo/memo_hits")->Add(s.memo_hits);
    m->GetGauge("sqo/triplet_store/size")->Set(s.size);
  }
}

}  // namespace

bool Pass::Applicable(const PassContext&) const { return true; }

const Program* Pass::Current(const PassContext& ctx) const {
  return &ctx.program;
}

PassManager::PassManager(SqoOptions options) : options_(std::move(options)) {
  passes_.push_back(std::make_unique<ValidatePass>());
  passes_.push_back(std::make_unique<NormalizePass>());
  passes_.push_back(std::make_unique<FdRewritePass>());
  passes_.push_back(std::make_unique<LocalRewritePass>());
  passes_.push_back(std::make_unique<AdornPass>());
  passes_.push_back(std::make_unique<TreePass>());
  passes_.push_back(std::make_unique<ResiduesPass>());
  passes_.push_back(std::make_unique<PrunePass>());
}

PassManager::~PassManager() = default;

const std::vector<std::string>& PassManager::PassNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "validate",  "normalize", "fd_rewrite", "local_rewrite",
      "adorn",     "tree",      "residues",   "prune"};
  return *names;
}

bool PassManager::IsDisabled(const std::string& name) const {
  if (name == "fd_rewrite" && !options_.apply_fd_rewriting) return true;
  if (name == "tree" && !options_.build_query_tree) return true;
  if (name == "residues" && !options_.attach_residues) return true;
  const std::vector<std::string>& disabled = options_.disabled_passes;
  return std::find(disabled.begin(), disabled.end(), name) != disabled.end();
}

Result<SqoReport> PassManager::Run(const Program& program,
                                   const std::vector<Constraint>& ics) {
  PassContext ctx;
  SQOD_RETURN_IF_ERROR(RunInto(program, ics, &ctx));
  return std::move(ctx.report);
}

Status PassManager::RunInto(const Program& program,
                            const std::vector<Constraint>& ics,
                            PassContext* ctx) {
  const std::vector<std::string>& known = PassNames();
  for (const std::string& name : options_.disabled_passes) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::string all;
      for (const std::string& k : known) {
        if (!all.empty()) all += ", ";
        all += k;
      }
      return Status::InvalidArgument("unknown pass \"" + name +
                                     "\" in disabled_passes (passes: " + all +
                                     ")");
    }
  }

  ctx->input = &program;
  ctx->input_ics = &ics;
  ctx->options = options_;
  ctx->program = program;
  ctx->ics = ics;
  ctx->store = std::make_unique<TripletStore>();
  ctx->store->set_memo_enabled(options_.memoize_triplets);

  Tracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  Span root;
  if (tracing) root = tracer->StartSpan("sqo.optimize");

  // Shape chain: each pass's "before" is its predecessor's "after", seeded
  // from the input program, so the PassRunInfo rows account for every rule,
  // literal, negation, and order atom the pipeline adds or removes.
  ProgramShape shape = ShapeOf(program);

  for (const std::unique_ptr<Pass>& pass : passes_) {
    PassRunInfo info;
    info.name = pass->name();
    info.rules_before = shape.rules;
    info.literals_before = shape.literals;
    info.negations_before = shape.negations;
    info.comparisons_before = shape.comparisons;
    if (IsDisabled(info.name)) {
      info.disabled = true;
    } else if (!pass->Applicable(*ctx)) {
      info.skipped = true;
    } else {
      Span span;
      if (tracing) span = tracer->StartSpan("sqo." + info.name);
      ctx->active_span = &span;
      const int64_t t0 = NowNs();
      Status s = pass->Run(*ctx);
      info.wall_ns = NowNs() - t0;
      ctx->active_span = nullptr;
      if (options_.metrics != nullptr) {
        options_.metrics->GetGauge("sqo/phase/" + info.name + "_ns")
            ->Set(info.wall_ns);
      }
      if (!s.ok()) return s;
    }
    if (info.ran()) shape = ShapeOf(*pass->Current(*ctx));
    info.rules_after = shape.rules;
    info.literals_after = shape.literals;
    info.negations_after = shape.negations;
    info.comparisons_after = shape.comparisons;
    ctx->report.pass_runs.push_back(std::move(info));

    // Boundary bookkeeping: after the pre-adornment stages the current
    // program is the report's "normalized" artifact; if adornment did not
    // run, it is also the final rewriting that later passes refine.
    if (std::strcmp(pass->name(), "local_rewrite") == 0) {
      ctx->report.normalized = ctx->program;
      ctx->report.ics = ctx->ics;
    } else if (std::strcmp(pass->name(), "adorn") == 0 &&
               ctx->engine == nullptr) {
      ctx->report.rewritten = ctx->program;
      ctx->report.query_satisfiable = true;
    }
  }

  RecordPipelineGauges(*ctx, options_);
  return Status::Ok();
}

}  // namespace sqod
