#ifndef SQOD_SQO_PASS_MANAGER_H_
#define SQOD_SQO_PASS_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"
#include "src/sqo/adorn.h"
#include "src/sqo/local.h"
#include "src/sqo/optimizer.h"
#include "src/sqo/query_tree.h"

namespace sqod {

// The optimizer pipeline as composable passes. Each phase of the paper's
// algorithm (validate, normalize, fd_rewrite, local_rewrite, adorn, tree,
// residues, prune) is a named Pass with a uniform Run(PassContext&)
// interface; the PassManager owns the pipeline order, per-pass spans and
// gauges, and the SqoOptions-driven enable/disable logic. OptimizeProgram
// is a thin wrapper over this machinery.

// Shared state threaded through the pipeline. Passes read and advance
// `program`/`ics`/`local` and publish their artifacts into `report`;
// `engine` and `tree` carry the structured intermediates so later passes
// (and post-run consumers like QueryReachableAtom) can inspect them.
struct PassContext {
  // Fixed inputs for the run.
  const Program* input = nullptr;
  const std::vector<Constraint>* input_ics = nullptr;
  SqoOptions options;

  // Evolving pipeline state.
  Program program;              // the current rewriting of *input
  std::vector<Constraint> ics;  // normalized ICs (raw until `normalize`)
  LocalAtomInfo local;          // filled by `local_rewrite`
  // Hash-consing store shared by the adorn / tree / residues passes of this
  // run (triplets, adornments, atoms, match/merge memos). Created by the
  // manager before the first pass; its stats land in the "sqo/intern_*" and
  // "sqo/memo_hits" counters per run.
  std::unique_ptr<TripletStore> store;
  std::unique_ptr<AdornmentEngine> engine;  // built by `adorn`
  std::unique_ptr<QueryTree> tree;          // built by `tree`

  SqoReport report;  // filled progressively; pass_runs by the manager

  // The pass's open span while it runs, set by the manager (an inert Span
  // when tracing is off, so passes attach attributes unconditionally).
  Span* active_span = nullptr;
  Span& span() { return *active_span; }
};

// One pipeline phase. Implementations live in pass_manager.cc; clients
// interact with passes by name through the PassManager.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;

  // Advances `ctx`. Returning a non-OK status aborts the pipeline; the
  // status code tells clients why (kInvalidArgument for bad input,
  // kUnsupported for out-of-theory programs, kResourceExhausted for safety
  // valves).
  virtual Status Run(PassContext& ctx) = 0;

  // False when the pass has nothing to do for this context (e.g. the tree
  // pass without a query predicate). Skipped passes are recorded in
  // pass_runs with skipped=true.
  virtual bool Applicable(const PassContext& ctx) const;

  // The program this stage of the pipeline is rewriting, used for the
  // rules_after diagnostics: the working program for the pre-adornment
  // stages, the adorned/rewritten artifact afterwards.
  virtual const Program* Current(const PassContext& ctx) const;
};

class PassManager {
 public:
  // Builds the standard pipeline. `options` carries both the per-phase
  // knobs and the pipeline configuration (disabled_passes + legacy flags).
  explicit PassManager(SqoOptions options = {});
  ~PassManager();

  PassManager(const PassManager&) = delete;
  PassManager& operator=(const PassManager&) = delete;

  // Canonical pass names, in pipeline order.
  static const std::vector<std::string>& PassNames();

  // True if `name` is switched off, either via options.disabled_passes or
  // via the legacy SqoOptions flags (build_query_tree, attach_residues,
  // apply_fd_rewriting).
  bool IsDisabled(const std::string& name) const;

  // Runs the pipeline over `program`/`ics` and returns the report. Emits
  // one "sqo.<pass>" span per pass under an "sqo.optimize" root and
  // "sqo/phase/<pass>_ns" gauges, exactly like the pre-pass-manager
  // monolith, plus a PassRunInfo entry per pass in report.pass_runs.
  Result<SqoReport> Run(const Program& program,
                        const std::vector<Constraint>& ics);

  // Same, but leaves the full pipeline context (adornment engine, query
  // tree) accessible to the caller. `ctx` must outlive any use of the
  // returned references.
  Status RunInto(const Program& program, const std::vector<Constraint>& ics,
                 PassContext* ctx);

 private:
  SqoOptions options_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace sqod

#endif  // SQOD_SQO_PASS_MANAGER_H_
